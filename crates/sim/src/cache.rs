//! A lossy cache-line directory modelling coherence traffic.
//!
//! The model tracks, per 64-byte line, which virtual processor last
//! *wrote* it. Touching a line whose last writer is another processor
//! costs [`Cost::CacheRemote`] (a coherence transfer); touching one's own
//! line costs [`Cost::CacheHit`]. That asymmetry is all that is needed to
//! reproduce the paper's false-sharing results: `active-false` and
//! `passive-false` hammer lines that — under a non-heap-partitioned
//! allocator — are shared between threads, so every write pays the remote
//! cost, while Hoard's per-heap superblocks keep each thread's objects on
//! private lines.
//!
//! The directory is a fixed-size, lock-free, *lossy* open hash of
//! `AtomicU64` entries (line address tag ⊕ owner id). Collisions simply
//! overwrite — acceptable for a cost model and essential for an
//! allocation-free hot path.

use crate::clock::{charge, current_proc};
use crate::cost::{self, Cost};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache line size of the modelled machine, in bytes.
pub const LINE: usize = 64;

const DIR_BITS: usize = 16;
const DIR_SIZE: usize = 1 << DIR_BITS;

/// The cache-line directory. One process-global instance is used by
/// [`crate::touch`]; independent instances can be made for unit tests.
pub struct CacheModel {
    /// Each slot packs `(line_tag << 16) | owner_proc`, 0 = empty.
    dir: Box<[AtomicU64]>,
    /// Exact residency directory: line address → per-processor counts of
    /// *live registered blocks* touching the line. A line with live
    /// blocks of two or more processors is **shared**, and every write
    /// to it pays the remote cost — this is how allocator-induced false
    /// sharing becomes visible even on a single-core host, where real
    /// thread interleaving is too coarse for the last-writer model
    /// alone. Workloads register blocks on allocation (see
    /// [`register_block`](Self::register_block)).
    ///
    /// Locked with `unwrap_or_else(|e| e.into_inner())`: a panicking
    /// workload thread must not poison the whole simulation — the map
    /// is a monotonic residency record, valid even mid-update.
    residency: Mutex<HashMap<usize, ProcCounts>>,
    /// When present, real line addresses are renamed to dense ids in
    /// first-touch order before directory hashing. The lossy directory's
    /// collision pattern then depends only on the *order* lines are
    /// touched — not on where the OS happened to map the memory — which
    /// is what makes sequential replay byte-deterministic across
    /// processes and ASLR (see [`CacheModel::deterministic`]).
    renaming: Option<Mutex<Renaming>>,
    remote_transfers: AtomicU64,
    local_hits: AtomicU64,
}

/// Address → dense-id renaming state for deterministic mode. Ids come
/// from a monotonic counter (never `map.len()`): [`chunk_acquired`]
/// removes entries when the OS recycles an address, and a reused id
/// would let two live lines alias one directory tag.
///
/// [`chunk_acquired`]: CacheModel::chunk_acquired
#[derive(Debug, Default)]
struct Renaming {
    map: HashMap<usize, u64>,
    next: u64,
}

/// Per-line counts of live blocks per processor (small inline map).
#[derive(Debug, Default, Clone)]
struct ProcCounts {
    entries: Vec<(usize, u32)>, // (proc, live blocks)
}

impl ProcCounts {
    fn add(&mut self, proc_id: usize) {
        for (p, n) in &mut self.entries {
            if *p == proc_id {
                *n += 1;
                return;
            }
        }
        self.entries.push((proc_id, 1));
    }

    /// Returns true when the line became completely unoccupied.
    fn remove(&mut self, proc_id: usize) -> bool {
        if let Some(i) = self.entries.iter().position(|(p, _)| *p == proc_id) {
            self.entries[i].1 -= 1;
            if self.entries[i].1 == 0 {
                self.entries.swap_remove(i);
            }
        }
        self.entries.is_empty()
    }

    fn shared_beyond(&self, proc_id: usize) -> bool {
        self.entries.iter().any(|(p, n)| *p != proc_id && *n > 0)
    }
}

impl std::fmt::Debug for CacheModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheModel")
            .field("slots", &self.dir.len())
            .field("remote_transfers", &self.remote_transfers())
            .field("local_hits", &self.local_hits())
            .finish()
    }
}

impl CacheModel {
    /// Create a directory with the default number of slots.
    pub fn new() -> Self {
        let dir: Vec<AtomicU64> = (0..DIR_SIZE).map(|_| AtomicU64::new(0)).collect();
        CacheModel {
            dir: dir.into_boxed_slice(),
            residency: Mutex::new(HashMap::new()),
            renaming: None,
            remote_transfers: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
        }
    }

    /// Create a directory whose hash-collision behavior is independent
    /// of real memory placement: line addresses are renamed to dense
    /// ids in first-touch order before hashing. With a deterministic
    /// touch order (one thread driving the simulation, as under
    /// [`crate::sequential_scope`]), every cost this model charges is a
    /// pure function of the workload — ASLR cannot perturb it.
    pub fn deterministic() -> Self {
        CacheModel {
            renaming: Some(Mutex::new(Renaming::default())),
            ..Self::new()
        }
    }

    /// The directory index key for `line_addr`: the dense first-touch
    /// id in deterministic mode, the real line index otherwise.
    fn line_key(&self, line_addr: usize) -> u64 {
        match &self.renaming {
            Some(renaming) => {
                let mut r = renaming.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(&id) = r.map.get(&line_addr) {
                    return id;
                }
                let id = r.next;
                r.next += 1;
                r.map.insert(line_addr, id);
                id
            }
            None => (line_addr / LINE) as u64,
        }
    }

    /// Note that `ptr..ptr+len` was just handed out by the operating
    /// system: drop any dense-id renamings for its lines, so a recycled
    /// address is indistinguishable from a brand-new mapping (cold
    /// lines, fresh ids). Without this, *whether* the host allocator
    /// reuses an address decides whether the chunk's lines inherit warm
    /// directory ownership — host-dependent state that breaks replay
    /// determinism. No-op outside deterministic mode, where the
    /// directory is keyed on real addresses and staleness is ordinary
    /// lossy-collision noise.
    pub fn chunk_acquired(&self, ptr: *mut u8, len: usize) {
        let Some(renaming) = &self.renaming else {
            return;
        };
        if len == 0 {
            return;
        }
        let mut r = renaming.lock().unwrap_or_else(|e| e.into_inner());
        let mut line = ptr as usize & !(LINE - 1);
        let end = ptr as usize + len;
        while line < end {
            r.map.remove(&line);
            line += LINE;
        }
    }

    /// Record that the calling processor now owns a live block at
    /// `ptr..ptr+len`; its cache lines become (co-)resident.
    pub fn register_block(&self, ptr: *mut u8, len: usize) {
        if len == 0 {
            return;
        }
        let me = current_proc();
        let mut map = self.residency.lock().unwrap_or_else(|e| e.into_inner());
        let mut line = ptr as usize & !(LINE - 1);
        let end = ptr as usize + len;
        while line < end {
            map.entry(line).or_default().add(me);
            line += LINE;
        }
    }

    /// Remove a block previously recorded with
    /// [`register_block`](Self::register_block). The *freeing* processor
    /// may differ from the registering one; pass the registering
    /// processor's id as `owner_proc`.
    pub fn unregister_block(&self, ptr: *mut u8, len: usize, owner_proc: usize) {
        if len == 0 {
            return;
        }
        let mut map = self.residency.lock().unwrap_or_else(|e| e.into_inner());
        let mut line = ptr as usize & !(LINE - 1);
        let end = ptr as usize + len;
        while line < end {
            if let Some(counts) = map.get_mut(&line) {
                if counts.remove(owner_proc) {
                    map.remove(&line);
                }
            }
            line += LINE;
        }
    }

    fn line_is_shared(&self, line: usize, me: usize) -> bool {
        let map = self.residency.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&line).is_some_and(|c| c.shared_beyond(me))
    }

    /// Touch `len` bytes at `ptr`, charging per-line costs to the calling
    /// virtual processor and recording it as owner of written lines.
    ///
    /// When `write` is true one byte per line is actually written
    /// (volatile), so the host memory system sees the traffic too.
    pub fn touch(&self, ptr: *mut u8, len: usize, write: bool) {
        if len == 0 {
            return;
        }
        let me = current_proc() as u64;
        let start = ptr as usize & !(LINE - 1);
        let end = ptr as usize + len;
        let mut line = start;
        let mut cost_units = 0u64;
        let mut remote = 0u64;
        let mut local = 0u64;
        while line < end {
            let key = self.line_key(line);
            let slot = &self.dir[Self::slot(key)];
            let tag = Self::tag(key);
            let cur = slot.load(Ordering::Relaxed);
            let owned_by_me = cur >> 16 == tag && (cur & 0xFFFF) == (me & 0xFFFF);
            // A line co-resident with another processor's live block is
            // in perpetual coherence conflict: writes always pay the
            // remote cost (allocator-induced false sharing). Otherwise
            // fall back to the last-writer migration model.
            let shared = write && self.line_is_shared(line, me as usize);
            if owned_by_me && !shared {
                cost_units += cost::get(Cost::CacheHit);
                local += 1;
            } else {
                cost_units += cost::get(Cost::CacheRemote);
                remote += 1;
            }
            if write {
                slot.store((tag << 16) | (me & 0xFFFF), Ordering::Relaxed);
                // Real traffic: one volatile byte per line keeps the
                // access pattern honest without dominating host runtime.
                unsafe {
                    let p = line.max(ptr as usize) as *mut u8;
                    std::ptr::write_volatile(p, std::ptr::read_volatile(p).wrapping_add(1));
                }
            }
            line += LINE;
        }
        charge(cost_units);
        if remote > 0 {
            self.remote_transfers.fetch_add(remote, Ordering::Relaxed);
        }
        if local > 0 {
            self.local_hits.fetch_add(local, Ordering::Relaxed);
        }
    }

    /// Total remote (cross-processor) line transfers recorded.
    pub fn remote_transfers(&self) -> u64 {
        self.remote_transfers.load(Ordering::Relaxed)
    }

    /// Total owner-local line touches recorded.
    pub fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Clear directory, residency and counters (between experiment runs).
    pub fn reset(&self) {
        for slot in self.dir.iter() {
            slot.store(0, Ordering::Relaxed);
        }
        self.residency.lock().unwrap_or_else(|e| e.into_inner()).clear();
        if let Some(renaming) = &self.renaming {
            let mut r = renaming.lock().unwrap_or_else(|e| e.into_inner());
            r.map.clear();
            r.next = 0;
        }
        self.remote_transfers.store(0, Ordering::Relaxed);
        self.local_hits.store(0, Ordering::Relaxed);
    }

    fn slot(key: u64) -> usize {
        // Fibonacci hashing of the line key (real line index, or the
        // dense first-touch id in deterministic mode).
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> (64 - DIR_BITS)) as usize
    }

    fn tag(key: u64) -> u64 {
        key & 0xFFFF_FFFF_FFFF
    }
}

impl Default for CacheModel {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global directory used by [`crate::touch`].
pub fn global() -> &'static CacheModel {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<CacheModel> = OnceLock::new();
    GLOBAL.get_or_init(CacheModel::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::now;

    fn buf() -> Box<[u8; 4 * LINE]> {
        Box::new([0u8; 4 * LINE])
    }

    #[test]
    fn first_touch_is_remote_then_local() {
        let m = CacheModel::new();
        let mut b = buf();
        let p = b.as_mut_ptr();
        m.touch(p, 8, true);
        assert_eq!(m.remote_transfers(), 1, "cold line counts as transfer");
        m.touch(p, 8, true);
        assert_eq!(m.remote_transfers(), 1);
        assert_eq!(m.local_hits(), 1);
    }

    #[test]
    fn write_from_other_proc_invalidates() {
        // Simulate the other processor by lying about ownership: write
        // from a spawned thread (different proc id), then touch here.
        let m = std::sync::Arc::new(CacheModel::new());
        let mut b = buf();
        let p = b.as_mut_ptr() as usize;
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            m2.touch(p as *mut u8, 8, true);
        })
        .join()
        .unwrap();
        let before = m.remote_transfers();
        m.touch(p as *mut u8, 8, true);
        assert_eq!(m.remote_transfers(), before + 1, "line owned elsewhere");
        m.touch(p as *mut u8, 8, true);
        assert_eq!(m.remote_transfers(), before + 1, "now owned locally");
    }

    #[test]
    fn touch_spans_all_lines() {
        let m = CacheModel::new();
        let mut b = buf();
        // Touch a range crossing 3 lines starting mid-line.
        m.touch(unsafe { b.as_mut_ptr().add(32) }, 2 * LINE, true);
        assert_eq!(m.remote_transfers() + m.local_hits(), 3);
    }

    #[test]
    fn touch_charges_virtual_time() {
        let m = CacheModel::new();
        let mut b = buf();
        let t0 = now();
        m.touch(b.as_mut_ptr(), 8, true);
        assert!(now() > t0);
    }

    #[test]
    fn reads_do_not_take_ownership() {
        let m = std::sync::Arc::new(CacheModel::new());
        let mut b = buf();
        let p = b.as_mut_ptr() as usize;
        let m2 = std::sync::Arc::clone(&m);
        // Another proc owns the line.
        std::thread::spawn(move || m2.touch(p as *mut u8, 8, true))
            .join()
            .unwrap();
        let r0 = m.remote_transfers();
        m.touch(p as *mut u8, 8, false); // read: remote, but no ownership change
        m.touch(p as *mut u8, 8, false); // still remote
        assert_eq!(m.remote_transfers(), r0 + 2);
    }

    #[test]
    fn zero_length_touch_is_free() {
        let m = CacheModel::new();
        let t0 = now();
        m.touch(std::ptr::NonNull::<u8>::dangling().as_ptr(), 0, true);
        assert_eq!(now(), t0);
        assert_eq!(m.remote_transfers() + m.local_hits(), 0);
    }

    #[test]
    fn co_resident_lines_make_writes_remote() {
        let m = std::sync::Arc::new(CacheModel::new());
        let mut b = buf();
        let p = b.as_mut_ptr() as usize;
        // I own the line (write once)...
        m.touch(p as *mut u8, 8, true);
        m.touch(p as *mut u8, 8, true);
        let baseline_remote = m.remote_transfers();
        // ...then another processor registers a live block on it.
        let m2 = std::sync::Arc::clone(&m);
        let other = std::thread::spawn(move || {
            m2.register_block((p + 16) as *mut u8, 8);
            crate::current_proc()
        })
        .join()
        .unwrap();
        m.touch(p as *mut u8, 8, true);
        assert_eq!(
            m.remote_transfers(),
            baseline_remote + 1,
            "write to a shared line must be remote"
        );
        // Unregister (freeing proc differs from owner — allowed).
        m.unregister_block((p + 16) as *mut u8, 8, other);
        m.touch(p as *mut u8, 8, true);
        m.touch(p as *mut u8, 8, true);
        assert_eq!(
            m.remote_transfers(),
            baseline_remote + 1,
            "exclusive again after unregister"
        );
    }

    #[test]
    fn own_registered_blocks_do_not_conflict() {
        let m = CacheModel::new();
        let mut b = buf();
        let p = b.as_mut_ptr();
        m.register_block(p, 8);
        m.register_block(unsafe { p.add(16) }, 8);
        m.touch(p, 8, true);
        m.touch(p, 8, true);
        assert_eq!(m.local_hits(), 1, "self-sharing is not false sharing");
        m.unregister_block(p, 8, crate::current_proc());
        m.unregister_block(unsafe { p.add(16) }, 8, crate::current_proc());
    }

    #[test]
    fn reads_of_shared_lines_are_not_penalized_by_residency() {
        // Only writes trigger the perpetual-conflict rule; reads use the
        // last-writer model alone.
        let m = std::sync::Arc::new(CacheModel::new());
        let mut b = buf();
        let p = b.as_mut_ptr() as usize;
        m.touch(p as *mut u8, 8, true); // own it
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || m2.register_block((p + 16) as *mut u8, 8))
            .join()
            .unwrap();
        let before = m.local_hits();
        m.touch(p as *mut u8, 8, false); // read
        assert_eq!(m.local_hits(), before + 1);
    }

    #[test]
    fn reset_clears_state() {
        let m = CacheModel::new();
        let mut b = buf();
        m.touch(b.as_mut_ptr(), 8, true);
        m.reset();
        assert_eq!(m.remote_transfers(), 0);
        assert_eq!(m.local_hits(), 0);
        m.touch(b.as_mut_ptr(), 8, true);
        assert_eq!(m.remote_transfers(), 1, "directory forgot ownership");
    }
}
