//! The tunable cost model of the virtual machine.
//!
//! Every abstract event in the simulation (a fast-path `malloc`, a lock
//! handoff, a remote cache-line transfer, a chunk request to the
//! "operating system") has a cost in dimensionless *units*. The defaults
//! below are calibrated so the *shapes* of the paper's figures emerge:
//! they roughly correspond to nanoseconds on a late-1990s SMP
//! (uncontended lock ≈ tens of ns, remote cache transfer ≈ hundred ns,
//! page-granularity OS allocation ≈ microseconds).
//!
//! Costs are stored in global atomics so the allocator hot paths can read
//! them with a single relaxed load and experiments can install a custom
//! [`CostModel`] without locking.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A named cost in the virtual-machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Cost {
    /// Instruction cost of a `malloc` fast path (excluding locks/cache).
    MallocFast,
    /// Instruction cost of a `free` fast path (excluding locks/cache).
    FreeFast,
    /// Uncontended lock acquisition.
    LockAcquire,
    /// Lock release.
    LockRelease,
    /// Extra serialized penalty when a lock acquisition was contended
    /// (models the cache-line transfer of the lock word and the data it
    /// protects; it extends the lock's occupancy, which is what makes a
    /// single-lock allocator *slow down* as processors are added).
    LockHandoff,
    /// Reading/writing a cache line already owned by this processor.
    CacheHit,
    /// Remote cache-line transfer (line last written by another
    /// processor). This is the cost false sharing multiplies.
    CacheRemote,
    /// Requesting a fresh superblock-sized chunk from the OS.
    OsChunk,
    /// Returning a chunk to the OS.
    OsRelease,
    /// Moving a superblock between heaps (pointer surgery, bookkeeping).
    SuperblockTransfer,
    /// Cross-thread object handoff through a channel.
    ChannelTransfer,
    /// Barrier synchronization overhead per participant.
    Barrier,
    /// A `malloc`/`free` served entirely by the thread-local magazine
    /// (a push/pop on a warm, thread-private array: no lock, no shared
    /// cache line). This is the cost the front-end substitutes for a
    /// lock acquisition on the common path.
    MagazineOp,
    /// Pushing a block onto a superblock's deferred remote-free stack
    /// (one CAS on a line shared with the owner — cheaper than a lock
    /// handoff and, crucially, not serializing).
    RemoteFreePush,
    /// Recording one telemetry event into a thread-private trace ring
    /// (a bump and a store on warm memory). Charged only when a tracer
    /// is attached, so tracing-off runs are bit-identical in virtual
    /// time; tracing-on overhead stays small but *visible*, the honest
    /// way to model an always-on profiler.
    TraceEvent,
    /// One atomic read-modify-write on a potentially shared cache line
    /// (a CAS or exchange on a Treiber-stack head, a packed remote-free
    /// word, or a shared counter). Costlier than a private cache hit,
    /// cheaper than a lock handoff — and, crucially, it never extends
    /// anyone else's critical section.
    AtomicRmw,
    /// Deriving a block's superblock by masking the pointer's low bits
    /// (one AND plus a validation probe on warm metadata) — the
    /// lock-free back-end's replacement for the header-chase lookup.
    MaskLookup,
    /// One tick of the online feedback controller: snapshotting the
    /// metrics registry, diffing it against the previous tick, and
    /// writing back new per-class capacities/thresholds. Charged to the
    /// thread that claims the tick, so adaptive tuning perturbs virtual
    /// time honestly — and deterministically, since ticks are claimed on
    /// the virtual clock.
    TuneTick,
    /// One heap-profiler sample: updating a site's live-byte counters on
    /// an allocation/free, or taking one fragmentation-timeline reading
    /// (two atomic loads plus a store into a thread-shared series).
    /// Charged only when a profiler is attached, so profiling-off runs
    /// are bit-identical in virtual time; timeline ticks are CAS-claimed
    /// on the virtual clock so `.trc` replay stays byte-deterministic.
    ProfileSample,
}

const N_COSTS: usize = 19;

fn index(cost: Cost) -> usize {
    match cost {
        Cost::MallocFast => 0,
        Cost::FreeFast => 1,
        Cost::LockAcquire => 2,
        Cost::LockRelease => 3,
        Cost::LockHandoff => 4,
        Cost::CacheHit => 5,
        Cost::CacheRemote => 6,
        Cost::OsChunk => 7,
        Cost::OsRelease => 8,
        Cost::SuperblockTransfer => 9,
        Cost::ChannelTransfer => 10,
        Cost::Barrier => 11,
        Cost::MagazineOp => 12,
        Cost::RemoteFreePush => 13,
        Cost::TraceEvent => 14,
        Cost::AtomicRmw => 15,
        Cost::MaskLookup => 16,
        Cost::TuneTick => 17,
        Cost::ProfileSample => 18,
    }
}

/// A complete assignment of costs, installable as the global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    pub malloc_fast: u64,
    pub free_fast: u64,
    pub lock_acquire: u64,
    pub lock_release: u64,
    pub lock_handoff: u64,
    pub cache_hit: u64,
    pub cache_remote: u64,
    pub os_chunk: u64,
    pub os_release: u64,
    pub superblock_transfer: u64,
    pub channel_transfer: u64,
    pub barrier: u64,
    #[serde(default)]
    pub magazine_op: u64,
    #[serde(default)]
    pub remote_free_push: u64,
    #[serde(default)]
    pub trace_event: u64,
    #[serde(default)]
    pub atomic_rmw: u64,
    #[serde(default)]
    pub mask_lookup: u64,
    #[serde(default)]
    pub tune_tick: u64,
    #[serde(default)]
    pub profile_sample: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            malloc_fast: 35,
            free_fast: 30,
            lock_acquire: 15,
            lock_release: 5,
            lock_handoff: 180,
            cache_hit: 2,
            cache_remote: 90,
            os_chunk: 6_000,
            os_release: 3_000,
            superblock_transfer: 300,
            channel_transfer: 250,
            barrier: 400,
            // A magazine hit is a bounds check plus an array push/pop on
            // thread-private memory: a handful of instructions, cheaper
            // than even an uncontended lock acquire+release.
            magazine_op: 6,
            // A deferred remote free is one CAS on a cache line the
            // owner also touches: comparable to a remote transfer,
            // strictly cheaper than a contended lock handoff — and it
            // does not serialize the owner.
            remote_free_push: 60,
            // One ring-buffer store on thread-private memory. Non-zero
            // so tracing-on runs honestly report their perturbation,
            // small so the perturbation stays well under the events it
            // observes.
            trace_event: 1,
            // A CAS/exchange on a line other processors also touch:
            // dearer than an uncontended acquire because the line is
            // often in a remote cache, but far below a lock handoff —
            // the losing CAS retries, it never blocks the winner.
            atomic_rmw: 40,
            // One AND plus a bounds probe on warm metadata; about a
            // cache hit, and strictly cheaper than chasing the per-block
            // header line it replaces.
            mask_lookup: 2,
            // A controller tick walks the metrics registry (a few
            // hundred counter loads) and stores a handful of knobs:
            // roughly a lock handoff's worth of work, paid once per
            // tuning interval rather than per operation.
            tune_tick: 150,
            // A profiler sample is a couple of counter bumps on a warm
            // shared line: pricier than a ring store (it contends with
            // other samplers), far below a fast-path malloc — the honest
            // tax for keeping per-site live-byte books.
            profile_sample: 2,
        }
    }
}

impl CostModel {
    /// The calibrated default model (see module docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// A model approximating the paper's testbed, a late-1990s bus-based
    /// SMP (Sun Enterprise 5000): slower remote transfers and costlier
    /// lock handoffs relative to compute than the default.
    pub fn sun_e5000() -> Self {
        CostModel {
            lock_handoff: 260,
            cache_remote: 140,
            os_chunk: 10_000,
            ..Self::default()
        }
    }

    /// A flat model charging `unit` for every event: useful to separate
    /// *algorithmic* serialization (who waits on whom) from the cost
    /// constants — if a result only appears under skewed costs, it is a
    /// property of the machine model, not the allocator.
    pub fn uniform(unit: u64) -> Self {
        CostModel {
            malloc_fast: unit,
            free_fast: unit,
            lock_acquire: unit,
            lock_release: unit,
            lock_handoff: unit,
            cache_hit: unit,
            cache_remote: unit,
            os_chunk: unit,
            os_release: unit,
            superblock_transfer: unit,
            channel_transfer: unit,
            barrier: unit,
            magazine_op: unit,
            remote_free_push: unit,
            trace_event: unit,
            atomic_rmw: unit,
            mask_lookup: unit,
            tune_tick: unit,
            profile_sample: unit,
        }
    }

    /// Value assigned to `cost` in this model.
    pub fn get(&self, cost: Cost) -> u64 {
        match cost {
            Cost::MallocFast => self.malloc_fast,
            Cost::FreeFast => self.free_fast,
            Cost::LockAcquire => self.lock_acquire,
            Cost::LockRelease => self.lock_release,
            Cost::LockHandoff => self.lock_handoff,
            Cost::CacheHit => self.cache_hit,
            Cost::CacheRemote => self.cache_remote,
            Cost::OsChunk => self.os_chunk,
            Cost::OsRelease => self.os_release,
            Cost::SuperblockTransfer => self.superblock_transfer,
            Cost::ChannelTransfer => self.channel_transfer,
            Cost::Barrier => self.barrier,
            Cost::MagazineOp => self.magazine_op,
            Cost::RemoteFreePush => self.remote_free_push,
            Cost::TraceEvent => self.trace_event,
            Cost::AtomicRmw => self.atomic_rmw,
            Cost::MaskLookup => self.mask_lookup,
            Cost::TuneTick => self.tune_tick,
            Cost::ProfileSample => self.profile_sample,
        }
    }

    /// Install this model as the process-global cost model.
    ///
    /// Affects all subsequent charges; intended to be called between
    /// experiment runs, not concurrently with one.
    pub fn install(&self) {
        for (i, slot) in GLOBAL.iter().enumerate() {
            let cost = ALL[i];
            slot.store(self.get(cost), Ordering::Relaxed);
        }
    }

    /// Read back the currently installed global model.
    pub fn current() -> Self {
        CostModel {
            malloc_fast: get(Cost::MallocFast),
            free_fast: get(Cost::FreeFast),
            lock_acquire: get(Cost::LockAcquire),
            lock_release: get(Cost::LockRelease),
            lock_handoff: get(Cost::LockHandoff),
            cache_hit: get(Cost::CacheHit),
            cache_remote: get(Cost::CacheRemote),
            os_chunk: get(Cost::OsChunk),
            os_release: get(Cost::OsRelease),
            superblock_transfer: get(Cost::SuperblockTransfer),
            channel_transfer: get(Cost::ChannelTransfer),
            barrier: get(Cost::Barrier),
            magazine_op: get(Cost::MagazineOp),
            remote_free_push: get(Cost::RemoteFreePush),
            trace_event: get(Cost::TraceEvent),
            atomic_rmw: get(Cost::AtomicRmw),
            mask_lookup: get(Cost::MaskLookup),
            tune_tick: get(Cost::TuneTick),
            profile_sample: get(Cost::ProfileSample),
        }
    }
}

const ALL: [Cost; N_COSTS] = [
    Cost::MallocFast,
    Cost::FreeFast,
    Cost::LockAcquire,
    Cost::LockRelease,
    Cost::LockHandoff,
    Cost::CacheHit,
    Cost::CacheRemote,
    Cost::OsChunk,
    Cost::OsRelease,
    Cost::SuperblockTransfer,
    Cost::ChannelTransfer,
    Cost::Barrier,
    Cost::MagazineOp,
    Cost::RemoteFreePush,
    Cost::TraceEvent,
    Cost::AtomicRmw,
    Cost::MaskLookup,
    Cost::TuneTick,
    Cost::ProfileSample,
];

static GLOBAL: [AtomicU64; N_COSTS] = {
    const D: CostModel = CostModel {
        malloc_fast: 35,
        free_fast: 30,
        lock_acquire: 15,
        lock_release: 5,
        lock_handoff: 180,
        cache_hit: 2,
        cache_remote: 90,
        os_chunk: 6_000,
        os_release: 3_000,
        superblock_transfer: 300,
        channel_transfer: 250,
        barrier: 400,
        magazine_op: 6,
        remote_free_push: 60,
        trace_event: 1,
        atomic_rmw: 40,
        mask_lookup: 2,
        tune_tick: 150,
        profile_sample: 2,
    };
    [
        AtomicU64::new(D.malloc_fast),
        AtomicU64::new(D.free_fast),
        AtomicU64::new(D.lock_acquire),
        AtomicU64::new(D.lock_release),
        AtomicU64::new(D.lock_handoff),
        AtomicU64::new(D.cache_hit),
        AtomicU64::new(D.cache_remote),
        AtomicU64::new(D.os_chunk),
        AtomicU64::new(D.os_release),
        AtomicU64::new(D.superblock_transfer),
        AtomicU64::new(D.channel_transfer),
        AtomicU64::new(D.barrier),
        AtomicU64::new(D.magazine_op),
        AtomicU64::new(D.remote_free_push),
        AtomicU64::new(D.trace_event),
        AtomicU64::new(D.atomic_rmw),
        AtomicU64::new(D.mask_lookup),
        AtomicU64::new(D.tune_tick),
        AtomicU64::new(D.profile_sample),
    ]
};

/// Read one cost from the installed global model (relaxed; hot path).
pub(crate) fn get(cost: Cost) -> u64 {
    GLOBAL[index(cost)].load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_roundtrips_through_install() {
        let model = CostModel::default();
        model.install();
        assert_eq!(CostModel::current(), model);
    }

    #[test]
    fn install_changes_lookup() {
        let model = CostModel {
            cache_remote: 1234,
            ..Default::default()
        };
        model.install();
        assert_eq!(get(Cost::CacheRemote), 1234);
        CostModel::default().install();
        assert_eq!(get(Cost::CacheRemote), CostModel::default().cache_remote);
    }

    #[test]
    fn every_cost_has_distinct_index() {
        let mut seen = [false; N_COSTS];
        for c in ALL {
            let i = index(c);
            assert!(!seen[i], "duplicate index for {c:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn presets_are_distinct_and_valid() {
        let default = CostModel::new();
        let e5000 = CostModel::sun_e5000();
        assert!(e5000.cache_remote > default.cache_remote);
        assert!(e5000.lock_handoff > default.lock_handoff);
        let flat = CostModel::uniform(7);
        assert_eq!(flat.malloc_fast, 7);
        assert_eq!(flat.cache_remote, 7);
        // Install/restore round-trip.
        e5000.install();
        assert_eq!(CostModel::current(), e5000);
        CostModel::default().install();
    }

    #[test]
    fn handoff_dominates_uncontended_acquire() {
        // The model only produces the paper's "serial allocator slows
        // down with more processors" shape if contended handoffs cost
        // more than uncontended acquisitions.
        let m = CostModel::default();
        assert!(m.lock_handoff > m.lock_acquire + m.lock_release);
    }

    #[test]
    fn lockfree_costs_sit_between_hit_and_handoff() {
        // The lock-free back-end only wins if its primitives undercut
        // the locked protocol they replace: a CAS must be cheaper than
        // a lock handoff, and a mask lookup cheaper than the remote
        // header-line chase it removes.
        let m = CostModel::default();
        assert!(m.atomic_rmw > m.cache_hit);
        assert!(m.atomic_rmw < m.lock_handoff);
        assert!(m.mask_lookup <= m.cache_hit);
    }
}
