//! Per-thread virtual clocks and virtual-processor identities.
//!
//! Each OS thread participating in a simulation owns a [`VirtualClock`]:
//! a monotonically increasing counter of abstract cost units. The clock
//! lives in a `thread_local` `Cell`, so advancing it is a couple of
//! nanoseconds — cheap enough to leave permanently enabled inside the
//! allocators.
//!
//! Threads also carry a *virtual processor id*. Under [`crate::Machine`]
//! the id is the processor index `0..p`; threads created outside a
//! machine lazily draw a unique id from a global counter, so allocators
//! can always map "current thread" to a heap without registration.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static CLOCK: Cell<u64> = const { Cell::new(0) };
    static PROC: Cell<usize> = const { Cell::new(usize::MAX) };
    static ALLOC_SITE: Cell<u32> = const { Cell::new(0) };
}

static NEXT_FREE_PROC: AtomicUsize = AtomicUsize::new(0);

/// A handle to the calling thread's virtual clock.
///
/// Mostly used through the free functions [`now`], [`charge`] and
/// [`set_clock`]; the struct exists so the clock can be named in APIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock;

impl VirtualClock {
    /// Current virtual time of the calling thread.
    pub fn now(&self) -> u64 {
        now()
    }

    /// Advance the calling thread's virtual time by `units`.
    pub fn charge(&self, units: u64) {
        charge(units)
    }
}

/// Current virtual time of the calling thread.
pub fn now() -> u64 {
    CLOCK.with(|c| c.get())
}

/// Advance the calling thread's virtual time by `units`.
pub fn charge(units: u64) {
    CLOCK.with(|c| {
        let t = c.get() + units;
        c.set(t);
        crate::gate::publish(t);
    });
}

/// Set the calling thread's virtual time to `max(current, t)`.
///
/// Used by synchronization primitives ([`crate::VLock`],
/// [`crate::VBarrier`], [`crate::vchannel`]) to express "this thread
/// could not have proceeded before virtual time `t`".
pub fn set_clock(t: u64) {
    CLOCK.with(|c| {
        if t > c.get() {
            c.set(t);
            crate::gate::publish(t);
        }
    });
}

/// Reset the calling thread's clock to zero (machine start).
pub(crate) fn reset_clock() {
    CLOCK.with(|c| c.set(0));
}

/// Switch the calling thread's virtual-processor context to
/// (`proc`, `t`), returning the previous `(proc, clock)` pair.
///
/// This is the context switch of a **sequential** multiprocessor
/// simulation (see [`crate::sequential_scope`]): one OS thread
/// impersonates every virtual processor in turn, so — unlike
/// [`set_clock`] — the clock here may move *backwards*. Each virtual
/// processor's own timeline stays monotone; it is only the host
/// thread's view that jumps around. Must not be called from inside a
/// [`crate::Machine`] worker, whose processor identity is fixed.
pub fn switch_context(proc: usize, t: u64) -> (usize, u64) {
    let prev_proc = PROC.with(|p| p.replace(proc));
    let prev_clock = CLOCK.with(|c| c.replace(t));
    crate::gate::publish(t);
    (prev_proc, prev_clock)
}

/// The calling thread's virtual processor id.
///
/// Inside a [`crate::Machine`] run this is the processor index assigned
/// by the machine; elsewhere a process-unique id is lazily assigned, so
/// the function never fails and two distinct threads never share an id
/// (machine processor ids are reused across runs by design — a machine
/// *is* the set of processors).
pub fn current_proc() -> usize {
    PROC.with(|p| {
        let v = p.get();
        if v != usize::MAX {
            v
        } else {
            // Lazily assigned ids start far above any machine size so they
            // never collide with the ids a Machine hands out.
            let id = NEXT_FREE_PROC.fetch_add(1, Ordering::Relaxed) + 1024;
            p.set(id);
            id
        }
    })
}

/// Whether the calling thread has already been assigned a processor id
/// (true inside `Machine::run` workers and after the first
/// [`current_proc`] call).
pub fn has_proc() -> bool {
    PROC.with(|p| p.get() != usize::MAX)
}

/// Assign a machine processor id to the calling thread.
pub(crate) fn set_proc(id: usize) {
    PROC.with(|p| p.set(id));
}

/// Tag the calling thread's next allocations with `site`, returning the
/// previous tag.
///
/// The *allocation site* is a workload-chosen token (0 = untagged)
/// identifying the logical call site of the allocations that follow —
/// the simulated analogue of a return-address sample. It rides in a
/// thread-local so the tag crosses the allocator API without widening
/// any signature; an attached heap profiler reads it via
/// [`current_alloc_site`], and with no profiler attached the register
/// is never consulted. Callers restore the previous tag when their
/// scope ends (see `Obj::alloc_site` in the workloads crate).
pub fn set_alloc_site(site: u32) -> u32 {
    ALLOC_SITE.with(|s| s.replace(site))
}

/// The calling thread's current allocation-site tag (0 = untagged).
pub fn current_alloc_site() -> u32 {
    ALLOC_SITE.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let t0 = now();
        charge(5);
        charge(7);
        assert_eq!(now(), t0 + 12);
    }

    #[test]
    fn set_clock_is_monotone() {
        charge(100);
        let t = now();
        set_clock(t.saturating_sub(50));
        assert_eq!(now(), t, "set_clock must never move time backwards");
        set_clock(t + 50);
        assert_eq!(now(), t + 50);
    }

    #[test]
    fn lazily_assigned_proc_ids_are_distinct() {
        let a = std::thread::spawn(current_proc).join().unwrap();
        let b = std::thread::spawn(current_proc).join().unwrap();
        assert_ne!(a, b);
        assert!(a >= 1024 && b >= 1024);
    }

    #[test]
    fn proc_id_is_stable_within_a_thread() {
        assert_eq!(current_proc(), current_proc());
    }
}
