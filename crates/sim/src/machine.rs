//! The simulated multiprocessor: run one closure per virtual processor.
//!
//! [`Machine::run`] spawns `p` real OS threads, assigns them processor
//! ids `0..p`, zeroes their virtual clocks, runs the provided workers and
//! collects each worker's final virtual time. The **makespan** — the
//! maximum final clock — plays the role of the paper's wall-clock
//! runtime; `speedup(P) = makespan(1) / makespan(P)` for equal total
//! work.

use crate::clock;
use crate::gate;
use crate::report::RunReport;

/// A virtual multiprocessor with a fixed number of processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    processors: usize,
}

impl Machine {
    /// Create a machine with `processors` virtual processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(processors: usize) -> Self {
        assert!(processors > 0, "a machine needs at least one processor");
        Machine { processors }
    }

    /// Number of virtual processors.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Run the simulation.
    ///
    /// `make_worker` is called once per processor id (on the calling
    /// thread, in order) to build that processor's workload closure; each
    /// closure then runs on its own OS thread with its virtual clock
    /// reset to zero. Threads are *scoped*, so workers may borrow from
    /// the caller's stack (e.g. a shared `&dyn MtAllocator`). Returns a
    /// [`RunReport`] with per-processor final virtual times.
    ///
    /// # Panics
    ///
    /// Propagates panics from worker threads.
    pub fn run<W, F>(&self, mut make_worker: F) -> RunReport
    where
        W: FnOnce() + Send,
        F: FnMut(usize) -> W,
    {
        let workers: Vec<W> = (0..self.processors).map(&mut make_worker).collect();
        let state = gate::MachineState::new(self.processors);
        let finals: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(proc_id, worker)| {
                    let state = std::sync::Arc::clone(&state);
                    std::thread::Builder::new()
                        .name(format!("vcpu-{proc_id}"))
                        .spawn_scoped(scope, move || {
                            clock::set_proc(proc_id);
                            clock::reset_clock();
                            gate::attach(&state, proc_id);
                            worker();
                            gate::detach();
                            clock::now()
                        })
                        .expect("spawn vcpu thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vcpu thread panicked"))
                .collect()
        });
        RunReport::new(finals)
    }
}

/// Run `f` on the calling thread inside a private machine context for a
/// **sequential** `processors`-way simulation.
///
/// This is the substrate for deterministic replay: instead of spawning
/// real threads (whose host scheduling leaks into virtual lock-handoff
/// and cache-transfer order), a single thread impersonates every
/// virtual processor in turn via [`crate::switch_context`]. The scope
/// provides a **private** [`crate::CacheModel`] (so concurrent
/// simulations in one process cannot contaminate each other's coherence
/// state) and disables the ordering gate — a lone runner needs no
/// conservative window, and its execution order is exactly the virtual
/// order its driver chooses.
///
/// The caller's own `(proc, clock)` context is restored when `f`
/// returns. Must not be called from inside a [`Machine`] worker.
pub fn sequential_scope<T>(processors: usize, f: impl FnOnce() -> T) -> T {
    let state = gate::MachineState::with_cache(
        processors.max(1),
        crate::CacheModel::deterministic(),
    );
    // Only the calling thread ever runs; every other slot is marked done
    // so the ordering gate's minimum is empty and never spins.
    for s in state.states.iter().skip(1) {
        s.store(gate::STATE_DONE, std::sync::atomic::Ordering::Relaxed);
    }
    // Restore the caller's context even if `f` unwinds.
    struct Restore {
        prev_ctx: Option<(std::sync::Arc<gate::MachineState>, usize)>,
        prev: (usize, u64),
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            clock::switch_context(self.prev.0, self.prev.1);
            gate::swap_ctx(self.prev_ctx.take());
        }
    }
    let prev_ctx = gate::swap_ctx(Some((state, 0)));
    let prev = clock::switch_context(0, 0);
    let _restore = Restore { prev_ctx, prev };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{work, VLock};
    use std::sync::Arc;

    #[test]
    fn makespan_is_max_of_processor_times() {
        let report = Machine::new(3).run(|proc_id| move || work((proc_id as u64 + 1) * 100));
        assert_eq!(report.makespan(), 300);
        assert_eq!(report.per_processor(), &[100, 200, 300]);
    }

    #[test]
    fn independent_work_parallelizes_perfectly() {
        // Total work 8000 units: 1 processor does it alone; 8 split it.
        let t1 = Machine::new(1).run(|_| || work(8000)).makespan();
        let t8 = Machine::new(8).run(|_| || work(1000)).makespan();
        assert_eq!(t1, 8000);
        assert_eq!(t8, 1000);
        assert_eq!(t1 / t8, 8, "perfect virtual speedup for lock-free work");
    }

    #[test]
    fn fully_serialized_work_does_not_speed_up() {
        // All work under one lock: makespan must be >= total critical work
        // regardless of processor count.
        let total_ops = 64u64;
        let per_op = 100u64;
        let run = |p: usize| {
            let lock = Arc::new(VLock::new());
            let ops_per_proc = total_ops / p as u64;
            Machine::new(p)
                .run(|_proc| {
                    let lock = Arc::clone(&lock);
                    move || {
                        for _ in 0..ops_per_proc {
                            let _g = lock.lock();
                            work(per_op);
                        }
                    }
                })
                .makespan()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t1 >= total_ops * per_op);
        // Contended handoffs make 4 processors *slower* than 1 — the
        // serial-allocator shape from the paper.
        assert!(
            t4 > t1,
            "serialized+contended should degrade: t1={t1} t4={t4}"
        );
    }

    #[test]
    fn clocks_reset_between_runs() {
        let m = Machine::new(2);
        let r1 = m.run(|_| || work(10));
        let r2 = m.run(|_| || work(10));
        assert_eq!(r1.makespan(), r2.makespan());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::new(0);
    }

    #[test]
    fn sequential_scope_isolates_and_restores_context() {
        let my_proc = crate::current_proc();
        crate::charge(123);
        let my_clock = crate::now();
        let inside = sequential_scope(3, || {
            // Starts as processor 0 at time 0.
            assert_eq!(crate::current_proc(), 0);
            assert_eq!(crate::now(), 0);
            // Impersonate processor 2, run some work, switch back.
            clock::switch_context(2, 500);
            work(50);
            let t2 = crate::now();
            clock::switch_context(0, 10);
            assert_eq!(crate::now(), 10, "clock may move backwards here");
            t2
        });
        assert_eq!(inside, 550);
        assert_eq!(crate::current_proc(), my_proc, "identity restored");
        assert_eq!(crate::now(), my_clock, "clock restored");
    }

    #[test]
    fn sequential_scope_serializes_virtual_lock_time() {
        // Two virtual processors take the same lock from one real
        // thread; the second (virtually earlier) acquirer must wait
        // past the first's release — same model as real Machine runs.
        let m = crate::CostModel::current();
        let (t_a, t_b) = sequential_scope(2, || {
            let lock = VLock::new();
            clock::switch_context(0, 0);
            {
                let _g = lock.lock();
                work(10_000);
            }
            let t_a = crate::now();
            clock::switch_context(1, 0);
            let _g = lock.lock();
            (t_a, crate::now())
        });
        assert!(t_b >= t_a + m.lock_handoff, "t_a={t_a} t_b={t_b}");
    }
}
