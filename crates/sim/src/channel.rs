//! Virtual-time-aware message channel.
//!
//! Wraps a `crossbeam` channel so that a receive never appears to happen
//! *before* (in virtual time) the corresponding send: each message
//! carries the sender's virtual timestamp, and the receiver's clock is
//! advanced to `send_time + ChannelTransfer`. Used by the Larson and
//! producer–consumer workloads, where objects are bled across threads.

use crate::clock;
use crate::cost::{self, Cost};
use crossbeam::channel as cb;

/// Sending half of a virtual-time channel.
#[derive(Debug, Clone)]
pub struct VSender<T> {
    inner: cb::Sender<(T, u64)>,
}

/// Receiving half of a virtual-time channel.
#[derive(Debug, Clone)]
pub struct VReceiver<T> {
    inner: cb::Receiver<(T, u64)>,
}

/// Create an unbounded virtual-time channel.
pub fn vchannel<T>() -> (VSender<T>, VReceiver<T>) {
    let (tx, rx) = cb::unbounded();
    (VSender { inner: tx }, VReceiver { inner: rx })
}

/// Create a bounded virtual-time channel with real backpressure: a send
/// into a full channel blocks (marked as Blocked for the ordering gate)
/// until a receiver drains a slot.
pub fn vchannel_bounded<T>(cap: usize) -> (VSender<T>, VReceiver<T>) {
    let (tx, rx) = cb::bounded(cap);
    (VSender { inner: tx }, VReceiver { inner: rx })
}

impl<T> VSender<T> {
    /// Send `value`, stamping it with the sender's current virtual time.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiving side has disconnected.
    pub fn send(&self, value: T) -> Result<(), T> {
        let stamp = clock::now();
        // Bounded channels block when full: excluded from gate minima.
        crate::gate::while_blocked(|| self.inner.send((value, stamp)))
            .map_err(|e| e.into_inner().0)
    }
}

impl<T> VReceiver<T> {
    /// Receive a message, blocking in real time if necessary, and advance
    /// the receiver's virtual clock past the send time plus the transfer
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel is empty and all senders have
    /// disconnected.
    pub fn recv(&self) -> Result<T, RecvClosed> {
        // A receiver blocked on an empty channel is excluded from the
        // ordering gate's minimum (its clock advances only via the send).
        let (value, send_time) =
            crate::gate::while_blocked(|| self.inner.recv()).map_err(|_| RecvClosed)?;
        clock::set_clock(send_time + cost::get(Cost::ChannelTransfer));
        Ok(value)
    }

    /// Non-blocking receive; `Ok(None)` when the channel is currently
    /// empty but senders remain.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel is empty and all senders have
    /// disconnected.
    pub fn try_recv(&self) -> Result<Option<T>, RecvClosed> {
        match self.inner.try_recv() {
            Ok((value, send_time)) => {
                clock::set_clock(send_time + cost::get(Cost::ChannelTransfer));
                Ok(Some(value))
            }
            Err(cb::TryRecvError::Empty) => Ok(None),
            Err(cb::TryRecvError::Disconnected) => Err(RecvClosed),
        }
    }
}

/// Error: all senders disconnected and the channel drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvClosed;

impl std::fmt::Display for RecvClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: all senders disconnected")
    }
}

impl std::error::Error for RecvClosed {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{charge, now};

    #[test]
    fn recv_inherits_sender_time() {
        let (tx, rx) = vchannel::<u32>();
        // "Sender" far ahead in virtual time.
        std::thread::spawn(move || {
            charge(50_000);
            tx.send(7).unwrap();
        })
        .join()
        .unwrap();
        let t0 = now();
        assert!(t0 < 50_000);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(now() >= 50_000, "receiver must wait in virtual time");
    }

    #[test]
    fn recv_does_not_rewind_a_fast_receiver() {
        let (tx, rx) = vchannel::<u32>();
        tx.send(1).unwrap(); // sender at ~0
        charge(99_999);
        let t = now();
        rx.recv().unwrap();
        assert_eq!(now(), t, "receiver already past the send time");
    }

    #[test]
    fn try_recv_empty_and_closed() {
        let (tx, rx) = vchannel::<u32>();
        assert_eq!(rx.try_recv().unwrap(), None);
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(RecvClosed));
        assert_eq!(rx.recv(), Err(RecvClosed));
    }

    #[test]
    fn send_after_receiver_drop_errors_with_value() {
        let (tx, rx) = vchannel::<String>();
        drop(rx);
        assert_eq!(tx.send("x".to_string()), Err("x".to_string()));
    }
}
