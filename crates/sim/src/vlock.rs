//! [`VLock`] — a real spinlock that also serializes *virtual* time.
//!
//! The lock provides genuine mutual exclusion between OS threads (the
//! allocators' correctness relies on it), and simultaneously keeps a
//! virtual-time ledger: the virtual instant at which the previous holder
//! released it. An acquiring thread whose own clock is behind that
//! instant "waits" in virtual time (its clock jumps forward), and a
//! virtually contended acquisition additionally pays the handoff penalty
//! — the modelled cache-line transfer of the lock word and the data it
//! protects.
//!
//! This is the mechanism that makes a single-lock serial allocator's
//! virtual speedup *collapse* as virtual processors are added, exactly
//! like the Solaris allocator in the paper's figures, while Hoard's
//! per-processor heap locks stay uncontended and scale.
//!
//! The lock is allocation-free and `const`-constructible so it can live
//! inside a `#[global_allocator]`.

use crate::clock;
use crate::cost::{self, Cost};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A virtual-time-aware spinlock. See the module docs.
#[derive(Debug)]
pub struct VLock {
    /// Real mutual exclusion flag.
    locked: AtomicBool,
    /// Virtual instant of the most recent release. Written while holding
    /// the lock, read immediately after acquiring it.
    v_release: AtomicU64,
    /// Total acquisitions (telemetry).
    acquisitions: AtomicU64,
    /// Acquisitions that were *virtually* contended: the acquirer's clock
    /// was behind the previous release (it would have had to wait on a
    /// real multiprocessor).
    contended: AtomicU64,
}

impl VLock {
    /// Create an unlocked lock. `const`, so it can sit in a `static`.
    pub const fn new() -> Self {
        VLock {
            locked: AtomicBool::new(false),
            v_release: AtomicU64::new(0),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Acquire the lock, spinning (with `yield_now` back-off) until it is
    /// available, and advance the caller's virtual clock per the model.
    pub fn lock(&self) -> VLockGuard<'_> {
        // Conservative ordering: workers far ahead in virtual time yield
        // until laggards catch up, so real acquisition order approximates
        // virtual-time order (see `gate`). Never while holding a lock —
        // that keeps the protocol deadlock-free.
        if crate::gate::lock_depth() == 0 {
            crate::gate::gate(clock::now());
        }
        // --- real acquisition ---
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        // --- virtual accounting (we now hold the real lock) ---
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut t = clock::now() + cost::get(Cost::LockAcquire);
        let rel = self.v_release.load(Ordering::Relaxed);
        let mut waited = 0;
        if rel > t {
            // Another processor held the lock past our arrival: we wait
            // in virtual time and pay the contended-handoff penalty,
            // which is serialized (it delays the next holder too because
            // our eventual release time includes it).
            let target = rel + cost::get(Cost::LockHandoff);
            waited = target - t;
            t = target;
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        clock::set_clock(t);
        crate::gate::inc_lock_depth();
        VLockGuard { lock: self, waited }
    }

    /// Try to acquire without spinning. On failure the caller's clock is
    /// untouched (a real `trylock` returns immediately).
    pub fn try_lock(&self) -> Option<VLockGuard<'_>> {
        if self.locked.swap(true, Ordering::Acquire) {
            return None;
        }
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut t = clock::now() + cost::get(Cost::LockAcquire);
        let rel = self.v_release.load(Ordering::Relaxed);
        let mut waited = 0;
        if rel > t {
            let target = rel + cost::get(Cost::LockHandoff);
            waited = target - t;
            t = target;
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        clock::set_clock(t);
        crate::gate::inc_lock_depth();
        Some(VLockGuard { lock: self, waited })
    }

    /// Total acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Virtually contended acquisitions so far.
    pub fn contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Reset telemetry counters (between experiment runs).
    pub fn reset_counters(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.v_release.store(0, Ordering::Relaxed);
    }

    fn unlock(&self) {
        let t = clock::now() + cost::get(Cost::LockRelease);
        clock::set_clock(t);
        self.v_release.store(t, Ordering::Relaxed);
        self.locked.store(false, Ordering::Release);
    }
}

impl Default for VLock {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard returned by [`VLock::lock`]; releases on drop.
#[derive(Debug)]
pub struct VLockGuard<'a> {
    lock: &'a VLock,
    /// Virtual units this acquisition waited beyond an uncontended
    /// acquire (0 when uncontended). Includes the handoff penalty.
    waited: u64,
}

impl VLockGuard<'_> {
    /// Whether this particular acquisition was virtually contended
    /// (the acquirer's clock was behind the previous holder's release).
    pub fn was_contended(&self) -> bool {
        self.waited > 0
    }

    /// Virtual units spent waiting on this acquisition beyond the
    /// uncontended acquire cost; 0 when uncontended. The per-acquisition
    /// datum behind the tracer's lock-wait histogram.
    pub fn waited(&self) -> u64 {
        self.waited
    }
}

impl Drop for VLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
        crate::gate::dec_lock_depth();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{charge, now};
    use std::sync::Arc;

    #[test]
    fn lock_advances_clock_by_acquire_and_release() {
        let l = VLock::new();
        charge(1000); // get ahead of any stale v_release
        let t0 = now();
        drop(l.lock());
        let m = crate::CostModel::current();
        assert_eq!(now(), t0 + m.lock_acquire + m.lock_release);
        assert_eq!(l.acquisitions(), 1);
        assert_eq!(l.contentions(), 0);
    }

    #[test]
    fn reacquisition_by_same_thread_is_uncontended() {
        let l = VLock::new();
        charge(1000);
        for _ in 0..10 {
            drop(l.lock());
        }
        assert_eq!(l.contentions(), 0, "own releases are never in our future");
    }

    #[test]
    fn cross_thread_contention_is_detected_and_serializes_time() {
        // Thread A holds the lock while far ahead in virtual time; when B
        // (at time 0) acquires, B must jump past A's release.
        let l = Arc::new(VLock::new());
        let l2 = Arc::clone(&l);
        {
            let _g = l.lock();
            charge(10_000); // A accumulates virtual work inside...
        } // release records ~10k
        let handle = std::thread::spawn(move || {
            let _g = l2.lock();
            now()
        });
        let b_time = handle.join().unwrap();
        let m = crate::CostModel::current();
        assert!(
            b_time >= 10_000 + m.lock_handoff,
            "B acquired at {b_time}, expected to wait past 10000"
        );
        assert_eq!(l.contentions(), 1);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = VLock::new();
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn real_mutual_exclusion_under_hammering() {
        // Classic counter test: without real mutual exclusion the final
        // count would be lost-update-corrupted.
        struct RacyCell(std::cell::UnsafeCell<u64>);
        // Safety: all accesses to the cell happen under `l`.
        unsafe impl Send for RacyCell {}
        unsafe impl Sync for RacyCell {}
        let l = Arc::new(VLock::new());
        let counter = Arc::new(RacyCell(std::cell::UnsafeCell::new(0u64)));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let _g = l.lock();
                        unsafe { *c.0.get() += 1 };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(unsafe { *counter.0.get() }, 40_000);
        assert_eq!(l.acquisitions(), 40_000);
    }

    #[test]
    fn reset_counters_clears_telemetry() {
        let l = VLock::new();
        drop(l.lock());
        l.reset_counters();
        assert_eq!(l.acquisitions(), 0);
        assert_eq!(l.contentions(), 0);
    }
}
