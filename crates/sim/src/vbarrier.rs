//! Virtual-time barrier.
//!
//! A real [`std::sync::Barrier`] augmented with virtual-time semantics:
//! all participants leave the barrier at the *maximum* of their arrival
//! clocks plus a barrier cost — nobody proceeds before the slowest
//! virtual processor arrives. Used by phase-structured workloads
//! (BEM-like solver, Barnes–Hut steps).
//!
//! Because virtual clocks are monotone within a machine run, the running
//! maximum never needs resetting between generations: every participant
//! leaves generation `g` at `M_g + barrier cost`, so all generation
//! `g+1` arrivals strictly exceed `M_g` and `fetch_max` does the right
//! thing. A `VBarrier` must therefore not be reused across *separate*
//! [`crate::Machine::run`] invocations (which reset clocks to zero);
//! workloads create a fresh barrier per run.

use crate::clock;
use crate::cost::{self, Cost};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// A virtual-time barrier for a fixed set of participants, reusable
/// across generations within a single machine run.
#[derive(Debug)]
pub struct VBarrier {
    real: Barrier,
    /// Running maximum arrival clock (monotone across generations).
    max_arrival: AtomicU64,
    /// Second rendezvous: everyone reads `max_arrival` before anyone may
    /// re-arrive and bump it for the next generation.
    settle: Barrier,
}

impl VBarrier {
    /// Create a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        VBarrier {
            real: Barrier::new(n),
            max_arrival: AtomicU64::new(0),
            settle: Barrier::new(n),
        }
    }

    /// Wait for all participants; on return every participant's virtual
    /// clock is at least `max(arrival clocks) + Barrier cost`.
    pub fn wait(&self) {
        self.max_arrival.fetch_max(clock::now(), Ordering::Relaxed);
        // Blocked workers are excluded from the ordering gate's minimum
        // (their clocks cannot advance until everyone arrives).
        crate::gate::while_blocked(|| {
            self.real.wait();
        });
        let t = self.max_arrival.load(Ordering::Relaxed) + cost::get(Cost::Barrier);
        clock::set_clock(t);
        crate::gate::while_blocked(|| {
            self.settle.wait();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{charge, now};
    use std::sync::Arc;

    #[test]
    fn everyone_leaves_at_the_slowest_clock() {
        let b = Arc::new(VBarrier::new(3));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    clock::set_clock(0); // fresh threads start at 0 anyway
                    charge((i as u64 + 1) * 1000);
                    b.wait();
                    now()
                })
            })
            .collect();
        let times: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let expected = 3000 + crate::CostModel::current().barrier;
        for t in &times {
            assert_eq!(*t, expected);
        }
    }

    #[test]
    fn barrier_synchronizes_every_generation() {
        let b = Arc::new(VBarrier::new(2));
        let per_round: Vec<_> = (0..2)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut exits = Vec::new();
                    for round in 0..5u64 {
                        charge((i as u64 + 1) * 10 + round);
                        b.wait();
                        exits.push(now());
                    }
                    exits
                })
            })
            .collect();
        let results: Vec<Vec<u64>> = per_round.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0], results[1], "both exit each round synchronized");
        for w in results[0].windows(2) {
            assert!(w[1] > w[0], "generations strictly advance");
        }
    }
}
