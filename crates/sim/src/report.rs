//! Results of one simulated machine run.

use serde::{Deserialize, Serialize};

/// Per-run virtual-time results returned by [`crate::Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    per_processor: Vec<u64>,
}

impl RunReport {
    pub(crate) fn new(per_processor: Vec<u64>) -> Self {
        RunReport { per_processor }
    }

    /// Build a report from externally tracked per-processor final
    /// clocks — for simulations that drive virtual processors without
    /// [`crate::Machine::run`] (e.g. the sequential replay engine under
    /// [`crate::sequential_scope`]).
    pub fn from_per_processor(per_processor: Vec<u64>) -> Self {
        RunReport::new(per_processor)
    }

    /// Virtual makespan: the maximum final clock over all processors —
    /// the analogue of wall-clock runtime on the simulated machine.
    pub fn makespan(&self) -> u64 {
        self.per_processor.iter().copied().max().unwrap_or(0)
    }

    /// Final virtual clock of each processor, indexed by processor id.
    pub fn per_processor(&self) -> &[u64] {
        &self.per_processor
    }

    /// Number of processors that participated.
    pub fn processors(&self) -> usize {
        self.per_processor.len()
    }

    /// Load imbalance: makespan divided by mean processor time (1.0 =
    /// perfectly balanced). Returns 1.0 for an empty or all-zero run.
    pub fn imbalance(&self) -> f64 {
        let n = self.per_processor.len();
        if n == 0 {
            return 1.0;
        }
        let sum: u64 = self.per_processor.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        self.makespan() as f64 * n as f64 / sum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_imbalance() {
        let r = RunReport::new(vec![100, 200, 300]);
        assert_eq!(r.makespan(), 300);
        assert_eq!(r.processors(), 3);
        assert!((r.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn balanced_run_has_unit_imbalance() {
        let r = RunReport::new(vec![500, 500]);
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_runs_are_safe() {
        assert_eq!(RunReport::new(vec![]).makespan(), 0);
        assert!((RunReport::new(vec![]).imbalance() - 1.0).abs() < 1e-9);
        assert!((RunReport::new(vec![0, 0]).imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serializes_to_json() {
        let r = RunReport::new(vec![1, 2]);
        let s = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
