//! # hoard-sim — a virtual-time SMP substrate
//!
//! The Hoard paper (ASPLOS 2000) evaluates allocator scalability on a
//! 14-processor Sun Enterprise 5000. This reproduction runs on commodity
//! hardware that may have only **one** core, so wall-clock speedup curves
//! cannot physically be measured. Instead, this crate provides a
//! *virtual-time* model of a small shared-memory multiprocessor:
//!
//! * every simulated thread is a **virtual processor** with its own
//!   [`VirtualClock`] (a plain per-thread counter of abstract cost units);
//! * [`VLock`] is a real spinlock that *additionally* serializes virtual
//!   time: a thread entering the lock observes the previous holder's
//!   release time and advances its own clock past it, plus a handoff
//!   penalty when the acquisition was virtually contended;
//! * [`CacheModel`] is a lossy cache-line directory: writing a line whose
//!   last writer was another virtual processor costs a remote-transfer
//!   penalty — this is what makes *false sharing* visible in the model;
//! * [`Machine::run`] executes one closure per virtual processor on real
//!   OS threads and reports the **virtual makespan** (the maximum final
//!   clock), from which speedup curves are computed.
//!
//! The allocators under test are *real* concurrent data structures — real
//! memory, real atomic operations, real mutual exclusion. Only *time* is
//! modelled. The three effects the paper's figures measure — lock
//! serialization, heap contention and cache-line ping-ponging — are
//! exactly the quantities the virtual clock accounts.
//!
//! ## Example
//!
//! ```
//! use hoard_sim::{Machine, CostModel, work, VLock};
//! use std::sync::Arc;
//!
//! let lock = Arc::new(VLock::new());
//! let report = Machine::new(4).run(|proc_id| {
//!     let lock = Arc::clone(&lock);
//!     move || {
//!         for _ in 0..100 {
//!             work(10); // local compute: advances only this clock
//!             let _g = lock.lock(); // serializes virtual time
//!             work(5);
//!         }
//!         let _ = proc_id;
//!     }
//! });
//! assert!(report.makespan() > 0);
//! ```

mod cache;
mod channel;
mod clock;
mod cost;
mod gate;
mod machine;
mod report;
mod vbarrier;
mod vlock;

pub use cache::CacheModel;
pub use channel::{vchannel, vchannel_bounded, VReceiver, VSender};
pub use clock::{
    charge, current_alloc_site, current_proc, has_proc, now, set_alloc_site, set_clock,
    switch_context, VirtualClock,
};
pub use cost::{Cost, CostModel};
pub use machine::{sequential_scope, Machine};
pub use report::RunReport;
pub use vbarrier::VBarrier;
pub use vlock::{VLock, VLockGuard};

/// Advance the calling virtual processor's clock by `units` of local
/// compute work.
///
/// This is how workloads express "the application did some computation
/// here" without actually burning host cycles; purely local work
/// parallelizes perfectly across virtual processors.
pub fn work(units: u64) {
    clock::charge(units);
}

/// Charge a named cost from the globally installed [`CostModel`].
pub fn charge_cost(cost: Cost) {
    clock::charge(cost::get(cost));
}

/// Clear the fallback global [`CacheModel`] (directory, residency,
/// counters). Machine workers use a per-machine cache model created
/// fresh by every [`Machine::run`], so runs cannot contaminate each
/// other; this reset only affects non-machine threads' modelling.
pub fn reset_cache() {
    cache::global().reset();
}

/// Remote-transfer / local-hit counters of the calling thread's cache
/// model (the machine's own when attached, the global fallback
/// otherwise).
pub fn cache_counters() -> (u64, u64) {
    gate::machine_cache(|c| (c.remote_transfers(), c.local_hits()))
        .unwrap_or_else(|| {
            let g = cache::global();
            (g.remote_transfers(), g.local_hits())
        })
}

/// Record a live block with the global [`CacheModel`]'s residency
/// directory (see [`CacheModel::register_block`]): lines hosting live
/// blocks of several virtual processors charge remote-transfer costs on
/// every write — the observable form of allocator-induced false sharing.
pub fn register_block(ptr: *mut u8, len: usize) {
    if gate::machine_cache(|c| c.register_block(ptr, len)).is_none() {
        cache::global().register_block(ptr, len);
    }
}

/// Remove a block recorded by [`register_block`]; `owner_proc` is the
/// processor that registered it (which may differ from the caller).
pub fn unregister_block(ptr: *mut u8, len: usize, owner_proc: usize) {
    if gate::machine_cache(|c| c.unregister_block(ptr, len, owner_proc)).is_none() {
        cache::global().unregister_block(ptr, len, owner_proc);
    }
}

/// Tell the calling thread's cache model that `ptr..ptr+len` was just
/// handed out fresh by the operating system (see
/// [`CacheModel::chunk_acquired`]). Chunk sources call this on every
/// OS-level chunk allocation so that, in deterministic replay, a
/// recycled address behaves exactly like a brand-new one.
///
/// Deliberately no global-cache fallback: only machine-scoped caches
/// can be deterministic, so on a detached thread this is a no-op —
/// and since chunk sources call it from *inside* an allocation, lazily
/// initializing the global cache here would recurse into the allocator
/// when a Hoard instance is installed as `#[global_allocator]`.
pub fn chunk_acquired(ptr: *mut u8, len: usize) {
    let _ = gate::machine_cache(|c| c.chunk_acquired(ptr, len));
}

/// Touch `len` bytes at `ptr` through the global [`CacheModel`],
/// charging cache-hit or remote-transfer costs per 64-byte line and
/// performing a real volatile write per line when `write` is true (so the
/// memory access pattern is real, not just modelled).
///
/// # Safety
///
/// `ptr..ptr+len` must be valid for writes when `write` is true (reads
/// otherwise).
pub unsafe fn touch(ptr: *mut u8, len: usize, write: bool) {
    if gate::machine_cache(|c| c.touch(ptr, len, write)).is_none() {
        cache::global().touch(ptr, len, write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_advances_clock() {
        let before = now();
        work(123);
        assert_eq!(now(), before + 123);
    }

    #[test]
    fn charge_cost_uses_model() {
        let before = now();
        charge_cost(Cost::MallocFast);
        assert!(now() > before);
    }
}
