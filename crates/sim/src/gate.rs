//! Virtual-time ordering gate — conservative scheduling for the
//! single-host simulation.
//!
//! On a multiprocessor, threads contend for a lock at roughly the times
//! their (virtual) clocks say; on this simulator's single-core host, the
//! OS may run one worker to completion before another starts, so the
//! *real* acquisition order can be wildly different from virtual-time
//! order. A naive virtually-timed lock then produces a convoy: the late
//! runner inherits the early runner's *final* release time and the
//! simulation degenerates to full serialization.
//!
//! The fix is the conservative discrete-event rule: before acquiring a
//! lock (the only ordering-sensitive operation), a worker whose virtual
//! clock is more than a small window ahead of the slowest *runnable*
//! worker in its machine yields the host CPU until the laggards catch
//! up. Blocked workers (waiting at a barrier or on a channel) and
//! finished workers are excluded from the minimum — their clocks only
//! move when someone else progresses, so waiting on them would deadlock.
//! Workers holding a lock are never gated (see [`crate::VLock`]), which
//! keeps the protocol deadlock-free: the minimum-clock worker is always
//! free to run.

use crate::cache::CacheModel;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// How far (in virtual units) a worker may run ahead of the slowest
/// runnable worker before it yields. Smaller = more faithful ordering,
/// more host yields.
const WINDOW: u64 = 1_000;

/// Yield budget before a gate gives up (escape hatch against
/// pathological schedules; counted in [`MachineState::gate_timeouts`]).
const YIELD_LIMIT: u32 = 20_000;

/// Worker states for the gate's minimum computation.
pub(crate) const STATE_ACTIVE: u8 = 0;
pub(crate) const STATE_BLOCKED: u8 = 1;
pub(crate) const STATE_DONE: u8 = 2;

/// Shared per-machine scheduling state, including the machine's own
/// cache model (so concurrent machines — e.g. parallel tests — cannot
/// interfere with each other's coherence state).
#[derive(Debug)]
pub(crate) struct MachineState {
    pub clocks: Vec<AtomicU64>,
    pub states: Vec<AtomicU8>,
    pub gate_timeouts: AtomicUsize,
    pub cache: CacheModel,
}

impl MachineState {
    pub fn new(processors: usize) -> Arc<Self> {
        Self::with_cache(processors, CacheModel::new())
    }

    /// A machine state with a caller-chosen cache model (the
    /// deterministic one for [`crate::sequential_scope`]).
    pub fn with_cache(processors: usize, cache: CacheModel) -> Arc<Self> {
        Arc::new(MachineState {
            clocks: (0..processors).map(|_| AtomicU64::new(0)).collect(),
            states: (0..processors).map(|_| AtomicU8::new(STATE_ACTIVE)).collect(),
            gate_timeouts: AtomicUsize::new(0),
            cache,
        })
    }

    /// Minimum clock over *other* active workers, or `None` when every
    /// other worker is blocked or done.
    fn min_other_active(&self, me: usize) -> Option<u64> {
        let mut min = None;
        for i in 0..self.clocks.len() {
            if i == me || self.states[i].load(Ordering::Relaxed) != STATE_ACTIVE {
                continue;
            }
            let c = self.clocks[i].load(Ordering::Relaxed);
            min = Some(min.map_or(c, |m: u64| m.min(c)));
        }
        min
    }
}

thread_local! {
    /// This worker's machine context (owns an Arc, keeping it alive) +
    /// slot index.
    static CTX: std::cell::RefCell<Option<(Arc<MachineState>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Depth of currently held [`crate::VLock`]s; gating only at depth 0.
    static LOCK_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Attach the calling worker to `state` as processor `idx`.
pub(crate) fn attach(state: &Arc<MachineState>, idx: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(state), idx)));
}

/// Swap the calling thread's machine context wholesale, returning the
/// previous one (for [`crate::sequential_scope`], which must restore
/// the caller's context on exit rather than mark it done).
pub(crate) fn swap_ctx(
    new: Option<(Arc<MachineState>, usize)>,
) -> Option<(Arc<MachineState>, usize)> {
    CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), new))
}

/// Detach the calling worker (marks it done).
pub(crate) fn detach() {
    CTX.with(|c| {
        if let Some((state, idx)) = c.borrow_mut().take() {
            state.states[idx].store(STATE_DONE, Ordering::Relaxed);
        }
    });
}

/// Publish the calling worker's clock to its machine slot (no-op for
/// non-machine threads).
pub(crate) fn publish(clock: u64) {
    CTX.with(|c| {
        if let Some((state, idx)) = c.borrow().as_ref() {
            state.clocks[*idx].store(clock, Ordering::Relaxed);
        }
    });
}

/// The calling worker's machine cache model, if attached to a machine.
pub(crate) fn machine_cache<T>(f: impl FnOnce(&CacheModel) -> T) -> Option<T> {
    CTX.with(|c| c.borrow().as_ref().map(|(state, _)| f(&state.cache)))
}

/// Mark the calling worker blocked (excluded from gate minima) while `f`
/// performs a real blocking wait.
pub(crate) fn while_blocked<T>(f: impl FnOnce() -> T) -> T {
    let ctx = CTX.with(|c| c.borrow().clone());
    if let Some((state, idx)) = ctx {
        state.states[idx].store(STATE_BLOCKED, Ordering::Relaxed);
        let out = f();
        state.states[idx].store(STATE_ACTIVE, Ordering::Relaxed);
        out
    } else {
        f()
    }
}

/// Current lock-hold depth of this thread.
pub(crate) fn lock_depth() -> u32 {
    LOCK_DEPTH.with(|d| d.get())
}

pub(crate) fn inc_lock_depth() {
    LOCK_DEPTH.with(|d| d.set(d.get() + 1));
}

pub(crate) fn dec_lock_depth() {
    LOCK_DEPTH.with(|d| d.set(d.get() - 1));
}

/// The ordering gate: yield the host CPU until this worker's virtual
/// clock is within [`WINDOW`] of the slowest runnable peer. Called by
/// [`crate::VLock::lock`] at lock depth 0.
pub(crate) fn gate(my_clock: u64) {
    let Some((state, idx)) = CTX.with(|c| c.borrow().clone()) else {
        return;
    };
    state.clocks[idx].store(my_clock, Ordering::Relaxed);
    let mut spins = 0u32;
    loop {
        match state.min_other_active(idx) {
            Some(min) if my_clock > min + WINDOW => {
                spins += 1;
                if spins > YIELD_LIMIT {
                    state.gate_timeouts.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                std::thread::yield_now();
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_machine_threads_are_never_gated() {
        // Must return immediately: no context attached.
        gate(u64::MAX);
    }

    #[test]
    fn min_excludes_blocked_done_and_self() {
        let s = MachineState::new(4);
        s.clocks[0].store(10, Ordering::Relaxed);
        s.clocks[1].store(20, Ordering::Relaxed);
        s.clocks[2].store(5, Ordering::Relaxed);
        s.clocks[3].store(1, Ordering::Relaxed);
        s.states[2].store(STATE_BLOCKED, Ordering::Relaxed);
        s.states[3].store(STATE_DONE, Ordering::Relaxed);
        assert_eq!(s.min_other_active(0), Some(20));
        assert_eq!(s.min_other_active(1), Some(10));
        s.states[0].store(STATE_DONE, Ordering::Relaxed);
        assert_eq!(s.min_other_active(1), None, "nobody else runnable");
    }

    #[test]
    fn lock_depth_nests() {
        assert_eq!(lock_depth(), 0);
        inc_lock_depth();
        inc_lock_depth();
        assert_eq!(lock_depth(), 2);
        dec_lock_depth();
        dec_lock_depth();
        assert_eq!(lock_depth(), 0);
    }
}
