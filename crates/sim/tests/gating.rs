//! Integration tests for the virtual-time machinery under adversarial
//! schedules: the ordering gate's convoy prevention, deadlock freedom
//! with nested locks, and the blocked-state bookkeeping of barriers and
//! channels.

use hoard_sim::{vchannel, work, Machine, VBarrier, VLock};
use std::sync::Arc;

#[test]
fn convoy_prevention_across_a_shared_lock() {
    // Workers do mostly-local work with occasional brief lock use. The
    // naive single-host pitfall: the first-scheduled worker finishes
    // entirely, and everyone else inherits its final release time. With
    // the gate, the makespan must stay near the per-worker ideal.
    let p = 8usize;
    let rounds = 50u64;
    let local = 1_000u64;
    let lock = Arc::new(VLock::new());
    let report = Machine::new(p).run(|_| {
        let lock = Arc::clone(&lock);
        move || {
            for _ in 0..rounds {
                work(local);
                let _g = lock.lock();
                work(10);
            }
        }
    });
    let ideal = rounds * (local + 10 + 20);
    assert!(
        report.makespan() < ideal * 2,
        "convoy detected: makespan {} vs ideal {ideal}",
        report.makespan()
    );
    // Sanity: without any lock the same work would be `ideal`-ish.
    assert!(report.makespan() >= rounds * local);
}

#[test]
fn nested_lock_acquisition_does_not_deadlock() {
    // Outer lock held while taking an inner one (Hoard's heap -> global
    // pattern): the gate must never fire while holding a lock, or the
    // minimum-clock worker could be blocked on the holder.
    let outer: Arc<Vec<VLock>> = Arc::new((0..4).map(|_| VLock::new()).collect());
    let inner = Arc::new(VLock::new());
    let report = Machine::new(4).run(|proc| {
        let outer = Arc::clone(&outer);
        let inner = Arc::clone(&inner);
        move || {
            for round in 0..200u64 {
                // Stagger virtual progress so gates would engage.
                work((proc as u64 + 1) * 37 + round % 13);
                let _o = outer[proc].lock();
                let _i = inner.lock();
                work(5);
            }
        }
    });
    assert!(report.makespan() > 0, "completed without deadlock");
}

#[test]
fn barrier_and_channel_blocked_states_release_the_gate() {
    // Producer sprints ahead in virtual time, consumer blocks on the
    // channel; a third worker takes locks continuously. If blocked
    // workers were not excluded from the gate minimum this would stall
    // for the yield limit on every acquisition and take minutes.
    let (tx, rx) = vchannel::<u64>();
    let lock = Arc::new(VLock::new());
    let barrier = Arc::new(VBarrier::new(3));
    let start = std::time::Instant::now();
    let report = Machine::new(3).run(|proc| {
        let tx = tx.clone();
        let rx = rx.clone();
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        move || {
            barrier.wait();
            match proc {
                0 => {
                    for i in 0..50u64 {
                        work(10_000); // far ahead
                        tx.send(i).expect("consumer alive");
                    }
                }
                1 => {
                    for _ in 0..50u64 {
                        let _ = rx.recv().expect("producer alive");
                    }
                }
                _ => {
                    for _ in 0..200u64 {
                        let _g = lock.lock();
                        work(100);
                    }
                }
            }
            barrier.wait();
        }
    });
    assert!(report.makespan() >= 500_000, "producer work dominates");
    assert!(
        start.elapsed().as_secs() < 30,
        "gate stalls detected: took {:?}",
        start.elapsed()
    );
}

#[test]
fn virtual_time_is_schedule_invariant_for_independent_workers() {
    // No shared state: the virtual result must be identical run to run
    // regardless of how the host schedules the threads.
    let run = || {
        Machine::new(6)
            .run(|proc| move || work((proc as u64 + 1) * 12_345))
            .per_processor()
            .to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn makespan_reflects_critical_path_with_channels() {
    // A two-stage virtual pipeline: the makespan must be at least the
    // critical path (producer work + transfer + consumer work for the
    // last item), not the sum of all work.
    let (tx, rx) = vchannel::<()>();
    let items = 20u64;
    let report = Machine::new(2).run(|proc| {
        let tx = tx.clone();
        let rx = rx.clone();
        move || {
            if proc == 0 {
                for _ in 0..items {
                    work(100);
                    tx.send(()).expect("consumer alive");
                }
            } else {
                for _ in 0..items {
                    rx.recv().expect("producer alive");
                    work(300);
                }
            }
        }
    });
    let producer_total = items * 100;
    let consumer_total = items * 300;
    assert!(report.makespan() >= consumer_total);
    assert!(
        report.makespan() >= producer_total + 300,
        "last item's consumer work extends past the producer"
    );
    // And it must not serialize the two stages completely.
    assert!(
        report.makespan() < producer_total + consumer_total + 100 * 300,
        "pipeline did not overlap at all"
    );
}
