// The stub ProptestConfig used offline has only the fields we set, which
// makes `..default()` a needless_update under clippy; keep it for real proptest.
#![allow(clippy::needless_update)]

//! Property tests for the `.trc` wire format: encode→decode identity
//! over randomized record streams, and corruption/truncation rejection
//! with typed errors — the codec-level half of the pipeline's
//! determinism contract (the replay half lives in `hoard-workloads`).

use hoard_trace::{TrcError, TrcOp, TrcRecord, TrcTrace};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = TrcOp> {
    prop_oneof![
        4 => (any::<u64>(), any::<u32>(), any::<u32>())
            .prop_map(|(token, size, site)| TrcOp::Alloc { token, size, site }),
        3 => any::<u64>().prop_map(|token| TrcOp::Free { token }),
        1 => (any::<u64>(), 0u32..64).prop_map(|(token, to)| TrcOp::Send { token, to }),
        2 => any::<u32>().prop_map(|units| TrcOp::Work { units }),
    ]
}

fn record_strategy() -> impl Strategy<Value = TrcRecord> {
    (any::<u64>(), op_strategy()).prop_map(|(dt, op)| TrcRecord { dt, op })
}

fn trace_strategy() -> impl Strategy<Value = TrcTrace> {
    (
        any::<u64>(),
        prop_oneof![
            Just(String::new()),
            Just("larson P=4 hoard-mag".to_string()),
            Just("服务器 traffic ×".to_string()),
        ],
        proptest::collection::vec(
            proptest::collection::vec(record_strategy(), 0..40),
            1..5,
        ),
    )
        .prop_map(|(seed, config, streams)| TrcTrace {
            seed,
            config,
            streams,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_is_identity(trace in trace_strategy()) {
        let bytes = trace.encode();
        let back = TrcTrace::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn encoding_is_a_pure_function(trace in trace_strategy()) {
        prop_assert_eq!(trace.encode(), trace.encode());
    }

    #[test]
    fn every_single_byte_flip_is_rejected(trace in trace_strategy(), flip in any::<u64>()) {
        let mut bytes = trace.encode();
        let i = (flip % bytes.len() as u64) as usize;
        let bit = 1u8 << (flip % 8);
        bytes[i] ^= bit;
        // FNV-1a chains bijective per-byte steps, so one flipped payload
        // byte always moves the checksum; flips inside the stored
        // checksum mismatch trivially; flips in the magic are typed.
        prop_assert!(
            TrcTrace::decode(&bytes).is_err(),
            "flip of bit {} at byte {}/{} was accepted", flip % 8, i, bytes.len()
        );
    }

    #[test]
    fn every_truncation_is_rejected(trace in trace_strategy(), cut in any::<u64>()) {
        let bytes = trace.encode();
        let n = (cut % bytes.len() as u64) as usize;
        let err = TrcTrace::decode(&bytes[..n]).expect_err("prefix accepted");
        prop_assert!(
            matches!(err, TrcError::Truncated(_) | TrcError::ChecksumMismatch { .. }),
            "prefix {}: unexpected error {:?}", n, err
        );
    }
}

#[test]
fn golden_fixture_decodes_with_stable_header() {
    // The fixture is the byte-level contract: if this test fails after
    // an intentional format change, bump TRC_VERSION, regenerate via
    // the blessing test in hoard-core (TRC_BLESS=1), and note the
    // migration in DESIGN.md §12.
    let bytes = include_bytes!("fixtures/golden.trc");
    let trace = TrcTrace::decode(bytes).expect("golden fixture decodes");
    assert_eq!(trace.seed, 42);
    assert_eq!(trace.config, "golden single-proc");
    assert!(!trace.is_empty());
    assert!(trace.allocs() > 0);
}
