//! Chrome-trace (`trace_event`) export: turn a [`TraceLog`] into JSON
//! that Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`
//! load directly.
//!
//! Mapping:
//! - one *thread track* per virtual processor (`pid` 1, `tid` = proc),
//!   named via `thread_name` metadata events;
//! - [`EventKind::LockRelease`] becomes a complete-duration event
//!   (`ph: "X"`) spanning the lock hold — its timestamp is backdated by
//!   the recorded hold time so the slice starts at acquisition;
//! - every other kind becomes a thread-scoped instant (`ph: "i"`,
//!   `s: "t"`) carrying its decoded arguments.
//!
//! Timestamps are the sim's virtual units passed through as
//! microseconds — absolute scale is meaningless for virtual time, but
//! relative spacing (what Perfetto visualizes) is exact. Events within
//! a track are sorted by timestamp after backdating, keeping each
//! track monotone as the format expects.

use crate::event::EventKind;
use crate::jsonio::{obj, JsonValue};
use crate::log::TraceLog;

/// The `pid` used for the single simulated process.
pub const CHROME_PID: u64 = 1;

/// Convert a collected trace into Chrome `trace_event` JSON.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut events: Vec<JsonValue> =
        Vec::with_capacity(log.total_events() + log.tracks.len() + 1);
    events.push(obj(vec![
        ("name", JsonValue::Str("process_name".into())),
        ("ph", JsonValue::Str("M".into())),
        ("pid", JsonValue::Uint(CHROME_PID)),
        ("tid", JsonValue::Uint(0)),
        (
            "args",
            obj(vec![("name", JsonValue::Str("hoard-sim".into()))]),
        ),
    ]));
    for track in &log.tracks {
        events.push(obj(vec![
            ("name", JsonValue::Str("thread_name".into())),
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::Uint(CHROME_PID)),
            ("tid", JsonValue::Uint(track.proc as u64)),
            (
                "args",
                obj(vec![("name", JsonValue::Str(format!("vcpu-{}", track.proc)))]),
            ),
        ]));
        let mut converted: Vec<(u64, JsonValue)> = track
            .events
            .iter()
            .map(|e| {
                let (a0, a1) = e.kind.arg_names();
                let args = obj(vec![
                    (a0, JsonValue::Uint(e.arg0 as u64)),
                    (a1, JsonValue::Uint(e.arg1)),
                ]);
                if e.kind == EventKind::LockRelease {
                    // The hold slice: starts at acquisition, lasts the
                    // recorded hold.
                    let start = e.ts.saturating_sub(e.arg1);
                    let v = obj(vec![
                        ("name", JsonValue::Str(format!("lock-hold heap{}", e.arg0))),
                        ("cat", JsonValue::Str(e.kind.category().into())),
                        ("ph", JsonValue::Str("X".into())),
                        ("ts", JsonValue::Uint(start)),
                        ("dur", JsonValue::Uint(e.arg1)),
                        ("pid", JsonValue::Uint(CHROME_PID)),
                        ("tid", JsonValue::Uint(track.proc as u64)),
                        ("args", args),
                    ]);
                    (start, v)
                } else {
                    let v = obj(vec![
                        ("name", JsonValue::Str(e.kind.label().into())),
                        ("cat", JsonValue::Str(e.kind.category().into())),
                        ("ph", JsonValue::Str("i".into())),
                        ("s", JsonValue::Str("t".into())),
                        ("ts", JsonValue::Uint(e.ts)),
                        ("pid", JsonValue::Uint(CHROME_PID)),
                        ("tid", JsonValue::Uint(track.proc as u64)),
                        ("args", args),
                    ]);
                    (e.ts, v)
                }
            })
            .collect();
        converted.sort_by_key(|(ts, _)| *ts);
        events.extend(converted.into_iter().map(|(_, v)| v));
    }
    obj(vec![
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", JsonValue::Str("ms".into())),
        (
            "otherData",
            obj(vec![("dropped_events", JsonValue::Uint(log.dropped))]),
        ),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::log::TrackLog;

    fn sample() -> TraceLog {
        TraceLog {
            tracks: vec![TrackLog {
                proc: 2,
                events: vec![
                    Event {
                        ts: 100,
                        kind: EventKind::Alloc,
                        arg0: 3,
                        arg1: 32,
                    },
                    Event {
                        ts: 250,
                        kind: EventKind::LockRelease,
                        arg0: 2,
                        arg1: 200,
                    },
                ],
            }],
            dropped: 0,
        }
    }

    #[test]
    fn export_has_required_fields() {
        let json = chrome_trace_json(&sample());
        let v = JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 4, "metadata + 2 events");
        for e in events {
            for field in ["name", "ph", "pid", "tid"] {
                assert!(e.get(field).is_some(), "missing {field}: {e:?}");
            }
            if e.get("ph").unwrap().as_str() != Some("M") {
                assert!(e.get("ts").unwrap().as_u64().is_some());
            }
        }
    }

    #[test]
    fn lock_release_becomes_backdated_duration_slice() {
        let json = chrome_trace_json(&sample());
        let v = JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("a complete-duration event");
        assert_eq!(
            slice.get("ts").unwrap().as_u64(),
            Some(50),
            "release at 250 held 200 -> starts at 50"
        );
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(200));
        assert_eq!(
            slice.get("args").unwrap().get("heap").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn backdated_slices_keep_tracks_sorted() {
        // The hold slice starts *before* the instant that precedes it in
        // emission order; the exporter must re-sort the track.
        let json = chrome_trace_json(&sample());
        let v = JsonValue::parse(&json).unwrap();
        let ts: Vec<u64> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ts, [50, 100], "slice (backdated to 50) precedes instant");
    }
}
