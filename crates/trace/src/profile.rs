//! The live-heap profiler: allocation-site attribution, fragmentation
//! timelines, and leak/retention reports.
//!
//! The telemetry layer (PR 3) and trace pipeline (PR 8) observe
//! *events*; this module observes *memory state over time* — which
//! allocation sites own the live bytes, how held bytes `A` track live
//! bytes `U` across a run, and what remains unfreed at quiesce. It is
//! an attachable device like [`crate::TraceSink`] and
//! [`crate::TrcRecorder`]: the allocator holds it behind a null-default
//! `AtomicPtr`, so with no profiler attached the hot paths pay one
//! atomic load and are bit-identical (the same off-path proof
//! obligation the telemetry tests enforce).
//!
//! Three kinds of record flow in:
//!
//! * **site samples** — every allocation carries the thread's current
//!   *allocation-site* tag (`hoard_sim::set_alloc_site`, a workload-
//!   chosen token; 0 = untagged). The profiler keeps per-site live
//!   bytes/objects, cumulative counters and peaks, and the live-block
//!   map that turns a later free back into its site. Each sample is
//!   charged `Cost::ProfileSample` by the allocator, so profiling-on
//!   perturbs virtual time honestly (and deterministically).
//! * **timeline samples** — `(ts, A, U)` readings taken at CAS-claimed
//!   virtual-clock ticks (same discipline as the tuning controller's
//!   ticks): one thread wins the claim per interval, charges one
//!   `Cost::ProfileSample`, and appends the point — so `.trc` replay
//!   with profiling on stays byte-deterministic.
//! * **the quiesce report** — [`HeapProfiler::snapshot`] freezes the
//!   state into a [`ProfileSnapshot`]: Pareto-ranked sites, the
//!   timeline, and unfreed blocks grouped by site and age decile.
//!
//! Sampling: with `sample_shift = k > 0` only one in `2^k` allocations
//! is tracked (frees of untracked blocks are recognized by their
//! absence from the live map). The default is 0 — exact accounting —
//! because the leak gate's "zero leaks" budget is only meaningful when
//! every block is tracked.

use crate::jsonio::{obj, JsonValue};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Schema identifier stamped into exported heap-profile JSON.
pub const HEAP_PROFILE_SCHEMA: &str = "hoard-heap-profile-v1";

/// Default virtual-time distance between fragmentation-timeline samples.
pub const DEFAULT_TIMELINE_INTERVAL: u64 = 20_000;

/// Profiler construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Track one in `2^sample_shift` allocations (0 = every allocation,
    /// required for exact leak accounting).
    pub sample_shift: u32,
    /// Virtual units between fragmentation-timeline samples.
    pub timeline_interval: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            sample_shift: 0,
            timeline_interval: DEFAULT_TIMELINE_INTERVAL,
        }
    }
}

/// One tracked live block.
#[derive(Debug, Clone, Copy)]
struct LiveBlock {
    site: u32,
    size: u32,
    ts: u64,
}

/// Mutable per-site books.
#[derive(Debug, Clone, Copy, Default)]
struct SiteBooks {
    live_bytes: u64,
    live_objects: u64,
    total_allocs: u64,
    total_bytes: u64,
    peak_live_bytes: u64,
}

/// Everything the profiler mutates, behind one mutex. The allocator
/// charges a flat `Cost::ProfileSample` per record, so the host mutex
/// never shows up in virtual time; it only bounds wall-clock
/// concurrency, and replay (the deterministic consumer) is sequential.
#[derive(Debug, Default)]
struct ProfState {
    sites: HashMap<u32, SiteBooks>,
    live: HashMap<usize, LiveBlock>,
    names: HashMap<u32, String>,
    timeline: Vec<TimelinePoint>,
    live_bytes: u64,
    live_objects: u64,
    live_peak_bytes: u64,
    held_peak_bytes: u64,
    total_allocs: u64,
    total_frees: u64,
    unmatched_frees: u64,
}

/// The attachable live-heap profiler. See the module docs.
#[derive(Debug)]
pub struct HeapProfiler {
    config: ProfileConfig,
    /// Virtual timestamp of the last claimed timeline tick (CAS-claimed).
    last_tick: AtomicU64,
    /// Allocation ordinal, used only when `sample_shift > 0`.
    alloc_ordinal: AtomicU64,
    state: Mutex<ProfState>,
}

impl Default for HeapProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapProfiler {
    /// An exact (unsampled) profiler with the default timeline interval.
    pub fn new() -> Self {
        Self::with_config(ProfileConfig::default())
    }

    /// A profiler with explicit sampling/timeline knobs.
    pub fn with_config(config: ProfileConfig) -> Self {
        HeapProfiler {
            config,
            last_tick: AtomicU64::new(0),
            alloc_ordinal: AtomicU64::new(0),
            state: Mutex::new(ProfState::default()),
        }
    }

    fn locked(&self) -> MutexGuard<'_, ProfState> {
        // Poisoning only marks a panic elsewhere; the books themselves
        // are always internally consistent, so recover and read on.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attach a human-readable name to a site id (used by the
    /// collapsed-stack exporter; unnamed sites print as `site_<id>`).
    pub fn name_site(&self, site: u32, name: &str) {
        self.locked().names.insert(site, name.to_string());
    }

    /// Record an allocation of `size` bytes at `addr`, tagged with
    /// `site`, at virtual time `ts`. Returns `false` when the sampling
    /// filter skipped it.
    pub fn record_alloc(&self, addr: usize, size: u32, site: u32, ts: u64) -> bool {
        if self.config.sample_shift > 0 {
            let n = self.alloc_ordinal.fetch_add(1, Ordering::Relaxed);
            if n & ((1 << self.config.sample_shift) - 1) != 0 {
                return false;
            }
        }
        let mut s = self.locked();
        if let Some(stale) = s.live.insert(addr, LiveBlock { site, size, ts }) {
            // The address came back without a free we could see (e.g.
            // the profiler was attached mid-run): retire the stale
            // entry so site books never double-count a block.
            release(&mut s, stale);
        }
        s.live_bytes += size as u64;
        s.live_objects += 1;
        s.live_peak_bytes = s.live_peak_bytes.max(s.live_bytes);
        s.total_allocs += 1;
        let live_bytes = s.live_bytes;
        let books = s.sites.entry(site).or_default();
        books.live_bytes += size as u64;
        books.live_objects += 1;
        books.total_allocs += 1;
        books.total_bytes += size as u64;
        books.peak_live_bytes = books.peak_live_bytes.max(books.live_bytes);
        debug_assert!(live_bytes >= books.live_bytes);
        true
    }

    /// Record a free of the block at `addr`. Returns `true` when the
    /// block was tracked (false for sampled-out or pre-attach blocks).
    pub fn record_free(&self, addr: usize) -> bool {
        let mut s = self.locked();
        s.total_frees += 1;
        match s.live.remove(&addr) {
            Some(block) => {
                release(&mut s, block);
                true
            }
            None => {
                s.unmatched_frees += 1;
                false
            }
        }
    }

    /// Claim the fragmentation-timeline tick due at virtual time `now`,
    /// if any. At most one caller per interval wins; the winner charges
    /// one `Cost::ProfileSample` and calls [`record_sample`]
    /// (Self::record_sample) with the `A`/`U` gauges it read.
    pub fn maybe_tick(&self, now: u64) -> bool {
        let last = self.last_tick.load(Ordering::Relaxed);
        if now < last.saturating_add(self.config.timeline_interval) {
            return false;
        }
        self.last_tick
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Append a fragmentation-timeline point: held bytes `A` and live
    /// bytes `U` as the allocator's own books see them at `ts`.
    pub fn record_sample(&self, ts: u64, held_bytes: u64, live_bytes: u64) {
        let mut s = self.locked();
        s.held_peak_bytes = s.held_peak_bytes.max(held_bytes);
        s.timeline.push(TimelinePoint {
            ts,
            held_bytes,
            live_bytes,
        });
    }

    /// Bytes currently tracked as live across all sites (the profiler's
    /// own `U`; equals the allocator's `live_current` when the profiler
    /// was attached from the start with sampling off).
    pub fn live_bytes(&self) -> u64 {
        self.locked().live_bytes
    }

    /// Freeze the books into a report as of virtual time `end_ts`.
    /// Anything still live becomes a leak record; call after quiescing
    /// (flushing magazines and draining the workload) for a true leak
    /// report, or mid-run for a retention snapshot.
    pub fn snapshot(&self, end_ts: u64) -> ProfileSnapshot {
        let s = self.locked();
        let mut sites: Vec<SiteStats> = s
            .sites
            .iter()
            .map(|(&site, b)| SiteStats {
                site,
                name: site_name(&s.names, site),
                live_bytes: b.live_bytes,
                live_objects: b.live_objects,
                total_allocs: b.total_allocs,
                total_bytes: b.total_bytes,
                peak_live_bytes: b.peak_live_bytes,
            })
            .collect();
        // Pareto order: who owns the live bytes, ties broken by
        // cumulative volume then id so the report is deterministic.
        sites.sort_by(|a, b| {
            b.live_bytes
                .cmp(&a.live_bytes)
                .then(b.total_bytes.cmp(&a.total_bytes))
                .then(a.site.cmp(&b.site))
        });

        let max_age = s
            .live
            .values()
            .map(|b| end_ts.saturating_sub(b.ts))
            .max()
            .unwrap_or(0);
        let mut age_deciles = [0u64; 10];
        let mut by_site: HashMap<u32, LeakRecord> = HashMap::new();
        for block in s.live.values() {
            let age = end_ts.saturating_sub(block.ts);
            age_deciles[decile(age, max_age)] += 1;
            let rec = by_site.entry(block.site).or_insert_with(|| LeakRecord {
                site: block.site,
                name: site_name(&s.names, block.site),
                objects: 0,
                bytes: 0,
                oldest_age: 0,
            });
            rec.objects += 1;
            rec.bytes += block.size as u64;
            rec.oldest_age = rec.oldest_age.max(age);
        }
        let mut leaks: Vec<LeakRecord> = by_site.into_values().collect();
        leaks.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.site.cmp(&b.site)));

        ProfileSnapshot {
            end_ts,
            sample_shift: self.config.sample_shift,
            timeline_interval: self.config.timeline_interval,
            total_allocs: s.total_allocs,
            total_frees: s.total_frees,
            unmatched_frees: s.unmatched_frees,
            live_bytes: s.live_bytes,
            live_objects: s.live_objects,
            live_peak_bytes: s.live_peak_bytes,
            held_peak_bytes: s.held_peak_bytes,
            sites,
            timeline: s.timeline.clone(),
            leaks,
            age_deciles,
        }
    }
}

/// Retire `block` from the aggregate and per-site live books.
fn release(s: &mut ProfState, block: LiveBlock) {
    s.live_bytes = s.live_bytes.saturating_sub(block.size as u64);
    s.live_objects = s.live_objects.saturating_sub(1);
    if let Some(b) = s.sites.get_mut(&block.site) {
        b.live_bytes = b.live_bytes.saturating_sub(block.size as u64);
        b.live_objects = b.live_objects.saturating_sub(1);
    }
}

fn site_name(names: &HashMap<u32, String>, site: u32) -> String {
    names.get(&site).cloned().unwrap_or_else(|| {
        if site == 0 {
            "untagged".to_string()
        } else {
            format!("site_{site}")
        }
    })
}

/// Decile bucket for `age` given the observed `max_age` (0..=9).
fn decile(age: u64, max_age: u64) -> usize {
    if max_age == 0 {
        return 0;
    }
    (((age * 10) / (max_age + 1)) as usize).min(9)
}

/// One allocation site's frozen books.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The workload-chosen site id (0 = untagged).
    pub site: u32,
    /// Display name (`site_<id>` unless registered via `name_site`).
    pub name: String,
    /// Bytes currently live from this site.
    pub live_bytes: u64,
    /// Objects currently live from this site.
    pub live_objects: u64,
    /// Allocations ever tracked from this site.
    pub total_allocs: u64,
    /// Bytes ever allocated from this site.
    pub total_bytes: u64,
    /// High-water mark of this site's live bytes.
    pub peak_live_bytes: u64,
}

/// One fragmentation-timeline reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Virtual timestamp of the sample.
    pub ts: u64,
    /// Held bytes `A` at the sample (allocator bookkeeping).
    pub held_bytes: u64,
    /// Live bytes `U` at the sample.
    pub live_bytes: u64,
}

/// Unfreed blocks from one site at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakRecord {
    /// Site id owning the unfreed blocks.
    pub site: u32,
    /// Display name of the site.
    pub name: String,
    /// Unfreed object count.
    pub objects: u64,
    /// Unfreed bytes.
    pub bytes: u64,
    /// Age of the oldest unfreed block (virtual units).
    pub oldest_age: u64,
}

/// A frozen heap profile: Pareto-ranked sites, the `A`/`U` timeline,
/// and the leak report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Virtual timestamp the books were frozen at.
    pub end_ts: u64,
    /// Sampling shift the profile ran with (0 = exact).
    pub sample_shift: u32,
    /// Timeline sampling interval (virtual units).
    pub timeline_interval: u64,
    /// Allocations tracked.
    pub total_allocs: u64,
    /// Frees observed (tracked or not).
    pub total_frees: u64,
    /// Frees of blocks the profiler was not tracking (sampled-out or
    /// allocated before attach) — nonzero is expected under sampling,
    /// suspicious without it.
    pub unmatched_frees: u64,
    /// Bytes live at snapshot time.
    pub live_bytes: u64,
    /// Objects live at snapshot time.
    pub live_objects: u64,
    /// High-water mark of tracked live bytes.
    pub live_peak_bytes: u64,
    /// High-water mark of held bytes `A` seen by timeline samples.
    pub held_peak_bytes: u64,
    /// Per-site books, Pareto-ordered by live bytes.
    pub sites: Vec<SiteStats>,
    /// The fragmentation timeline in sample order.
    pub timeline: Vec<TimelinePoint>,
    /// Unfreed blocks by site, largest first.
    pub leaks: Vec<LeakRecord>,
    /// Unfreed object counts by age decile (bucket 9 = oldest) over
    /// the observed age range.
    pub age_deciles: [u64; 10],
}

impl ProfileSnapshot {
    /// The top `k` sites by live bytes.
    pub fn top_sites(&self, k: usize) -> &[SiteStats] {
        &self.sites[..self.sites.len().min(k)]
    }

    /// Leaked bytes across all sites.
    pub fn leaked_bytes(&self) -> u64 {
        self.leaks.iter().map(|l| l.bytes).sum()
    }

    /// Collapsed-stack ("folded") site profile: one
    /// `hoard;<site> <bytes>` line per site, flamegraph-compatible.
    /// `live` selects live bytes (a live-heap flame graph) versus
    /// cumulative allocated bytes.
    pub fn collapsed_stack(&self, live: bool) -> String {
        let mut out = String::new();
        for s in &self.sites {
            let value = if live { s.live_bytes } else { s.total_bytes };
            if value > 0 {
                out.push_str(&format!("hoard;{} {}\n", s.name, value));
            }
        }
        out
    }

    /// The profile as a deterministic JSON value under the
    /// [`HEAP_PROFILE_SCHEMA`] schema.
    pub fn to_json_value(&self) -> JsonValue {
        obj(vec![
            ("schema", JsonValue::Str(HEAP_PROFILE_SCHEMA.into())),
            ("end_ts", JsonValue::Uint(self.end_ts)),
            ("sample_shift", JsonValue::Uint(self.sample_shift as u64)),
            (
                "timeline_interval",
                JsonValue::Uint(self.timeline_interval),
            ),
            (
                "totals",
                obj(vec![
                    ("allocs", JsonValue::Uint(self.total_allocs)),
                    ("frees", JsonValue::Uint(self.total_frees)),
                    ("unmatched_frees", JsonValue::Uint(self.unmatched_frees)),
                    ("live_bytes", JsonValue::Uint(self.live_bytes)),
                    ("live_objects", JsonValue::Uint(self.live_objects)),
                    ("live_peak_bytes", JsonValue::Uint(self.live_peak_bytes)),
                    ("held_peak_bytes", JsonValue::Uint(self.held_peak_bytes)),
                ]),
            ),
            (
                "sites",
                JsonValue::Arr(
                    self.sites
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("site", JsonValue::Uint(s.site as u64)),
                                ("name", JsonValue::Str(s.name.clone())),
                                ("live_bytes", JsonValue::Uint(s.live_bytes)),
                                ("live_objects", JsonValue::Uint(s.live_objects)),
                                ("total_allocs", JsonValue::Uint(s.total_allocs)),
                                ("total_bytes", JsonValue::Uint(s.total_bytes)),
                                ("peak_live_bytes", JsonValue::Uint(s.peak_live_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "timeline",
                JsonValue::Arr(
                    self.timeline
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("ts", JsonValue::Uint(p.ts)),
                                ("held_bytes", JsonValue::Uint(p.held_bytes)),
                                ("live_bytes", JsonValue::Uint(p.live_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "leaks",
                JsonValue::Arr(
                    self.leaks
                        .iter()
                        .map(|l| {
                            obj(vec![
                                ("site", JsonValue::Uint(l.site as u64)),
                                ("name", JsonValue::Str(l.name.clone())),
                                ("objects", JsonValue::Uint(l.objects)),
                                ("bytes", JsonValue::Uint(l.bytes)),
                                ("oldest_age", JsonValue::Uint(l.oldest_age)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "age_deciles",
                JsonValue::Arr(self.age_deciles.iter().map(|&n| JsonValue::Uint(n)).collect()),
            ),
        ])
    }

    /// Serialized [`Self::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_balance_across_alloc_and_free() {
        let p = HeapProfiler::new();
        assert!(p.record_alloc(0x1000, 64, 7, 10));
        assert!(p.record_alloc(0x2000, 100, 7, 20));
        assert!(p.record_alloc(0x3000, 8, 9, 30));
        assert_eq!(p.live_bytes(), 172);
        assert!(p.record_free(0x2000));
        assert_eq!(p.live_bytes(), 72);

        let snap = p.snapshot(100);
        assert_eq!(snap.total_allocs, 3);
        assert_eq!(snap.total_frees, 1);
        assert_eq!(snap.unmatched_frees, 0);
        assert_eq!(snap.live_peak_bytes, 172);
        let s7 = snap.sites.iter().find(|s| s.site == 7).unwrap();
        assert_eq!(s7.live_bytes, 64);
        assert_eq!(s7.total_bytes, 164);
        assert_eq!(s7.peak_live_bytes, 164);
        assert_eq!(s7.name, "site_7");
    }

    #[test]
    fn unmatched_and_reused_addresses_stay_consistent() {
        let p = HeapProfiler::new();
        assert!(!p.record_free(0x1000), "free of an untracked block");
        p.record_alloc(0x1000, 32, 1, 0);
        // Address reuse without an observed free: the stale entry is
        // retired so the books never double-count.
        p.record_alloc(0x1000, 48, 2, 5);
        assert_eq!(p.live_bytes(), 48);
        let snap = p.snapshot(10);
        assert_eq!(snap.unmatched_frees, 1);
        assert_eq!(snap.live_objects, 1);
        let s1 = snap.sites.iter().find(|s| s.site == 1).unwrap();
        assert_eq!(s1.live_bytes, 0, "stale block released from site 1");
    }

    #[test]
    fn ticks_claim_once_per_interval() {
        let p = HeapProfiler::with_config(ProfileConfig {
            sample_shift: 0,
            timeline_interval: 100,
        });
        assert!(!p.maybe_tick(50), "inside the first interval");
        assert!(p.maybe_tick(100));
        assert!(!p.maybe_tick(150), "tick already claimed");
        assert!(p.maybe_tick(230));
        p.record_sample(100, 800, 500);
        p.record_sample(230, 900, 400);
        let snap = p.snapshot(300);
        assert_eq!(snap.timeline.len(), 2);
        assert_eq!(snap.held_peak_bytes, 900);
    }

    #[test]
    fn sampling_shift_tracks_a_subset() {
        let p = HeapProfiler::with_config(ProfileConfig {
            sample_shift: 2,
            timeline_interval: DEFAULT_TIMELINE_INTERVAL,
        });
        let mut tracked = 0;
        for i in 0..16 {
            if p.record_alloc(0x1000 + i * 64, 64, 3, i as u64) {
                tracked += 1;
            }
        }
        assert_eq!(tracked, 4, "one in 2^2 allocations tracked");
        assert_eq!(p.live_bytes(), 4 * 64);
        for i in 0..16 {
            p.record_free(0x1000 + i * 64);
        }
        assert_eq!(p.live_bytes(), 0);
        assert_eq!(p.snapshot(20).unmatched_frees, 12);
    }

    #[test]
    fn leaks_group_by_site_and_age_decile() {
        let p = HeapProfiler::new();
        p.name_site(5, "session_buf");
        p.record_alloc(0x1000, 100, 5, 0); // oldest
        p.record_alloc(0x2000, 50, 5, 900);
        p.record_alloc(0x3000, 10, 6, 990); // youngest
        p.record_free(0x3000);
        let snap = p.snapshot(1000);
        assert_eq!(snap.leaks.len(), 1);
        let leak = &snap.leaks[0];
        assert_eq!((leak.site, leak.objects, leak.bytes), (5, 2, 150));
        assert_eq!(leak.name, "session_buf");
        assert_eq!(leak.oldest_age, 1000);
        assert_eq!(snap.leaked_bytes(), 150);
        assert_eq!(snap.age_deciles[9], 1, "age 1000 of max 1000");
        assert_eq!(snap.age_deciles[0], 1, "age 100 of max 1000");
        assert_eq!(snap.age_deciles.iter().sum::<u64>(), 2);
    }

    #[test]
    fn sites_rank_by_live_bytes_and_top_k_trims() {
        let p = HeapProfiler::new();
        for (addr, size, site) in [(0x1000, 10u32, 1u32), (0x2000, 300, 2), (0x3000, 20, 3)] {
            p.record_alloc(addr, size, site, 0);
        }
        let snap = p.snapshot(1);
        let order: Vec<u32> = snap.sites.iter().map(|s| s.site).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(snap.top_sites(2).len(), 2);
        assert_eq!(snap.top_sites(10).len(), 3);
    }

    #[test]
    fn collapsed_stack_and_json_are_deterministic() {
        let p = HeapProfiler::new();
        p.name_site(1, "request");
        p.record_alloc(0x1000, 128, 1, 0);
        p.record_alloc(0x2000, 64, 0, 0);
        p.record_free(0x2000);
        let snap = p.snapshot(10);

        let folded = snap.collapsed_stack(true);
        assert_eq!(folded, "hoard;request 128\n", "only live sites listed");
        let cumulative = snap.collapsed_stack(false);
        assert!(cumulative.contains("hoard;untagged 64\n"));

        let text = snap.to_json();
        assert_eq!(text, snap.to_json(), "stable serialization");
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some(HEAP_PROFILE_SCHEMA)
        );
        assert_eq!(
            v.get("totals").unwrap().get("live_bytes").unwrap().as_u64(),
            Some(128)
        );
        assert_eq!(v.get("sites").unwrap().as_array().unwrap().len(), 2);
    }
}
