//! Heap-map snapshots: a structural photograph of the allocator's
//! memory state.
//!
//! Where the metrics registry (PR 3) counts *events*, a [`HeapMap`]
//! captures *state*: for every heap × size class, how many superblocks
//! are held, how full each one is, and how the heap's held bytes `a`
//! compare to its live bytes `u`. Hoard's central claims — bounded
//! blowup `O(U + P·S)`, the emptiness invariant, low fragmentation —
//! are statements about exactly these quantities, so the snapshot is
//! the measurement the claims are judged against.
//!
//! The types live here (core-agnostic plain data) so exporters and the
//! harness can consume them without depending on `hoard-core`; the
//! allocator builds them via `HoardAllocator::heap_map_snapshot`, which
//! walks each heap's superblock lists under that heap's lock.

use crate::jsonio::{obj, JsonValue};

/// Number of occupancy buckets in [`HeapMapClass::occupancy`]: bucket
/// `i` counts superblocks with `in_use/capacity` in `[i/8, (i+1)/8)`,
/// except the last which also includes completely full blocks.
pub const OCCUPANCY_BUCKETS: usize = 8;

/// One heap × size-class row: superblock count, aggregate block usage,
/// and an occupancy histogram over the class's superblocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapMapClass {
    /// Size-class index.
    pub class: u32,
    /// Block size of the class in bytes.
    pub block_size: u32,
    /// Superblocks of this class attached to the heap.
    pub superblocks: u32,
    /// Blocks currently allocated across those superblocks.
    pub blocks_in_use: u64,
    /// Total block capacity across those superblocks.
    pub capacity: u64,
    /// Superblock counts by fullness octile (see [`OCCUPANCY_BUCKETS`]).
    pub occupancy: [u32; OCCUPANCY_BUCKETS],
}

impl HeapMapClass {
    /// The occupancy bucket for a superblock `in_use/capacity` ratio.
    pub fn bucket(in_use: u64, capacity: u64) -> usize {
        if capacity == 0 {
            return 0;
        }
        (((in_use * OCCUPANCY_BUCKETS as u64) / capacity) as usize).min(OCCUPANCY_BUCKETS - 1)
    }
}

/// One heap's snapshot: `u`/`a` gauges plus per-class rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapMapHeap {
    /// Heap index (0 is the global heap).
    pub index: usize,
    /// Live (allocated) bytes attributed to the heap — Hoard's `u_i`,
    /// in block-size bytes.
    pub live_bytes: u64,
    /// Held bytes attributed to the heap — Hoard's `a_i`.
    pub held_bytes: u64,
    /// Completely empty superblocks parked on the heap (the pool the
    /// emptiness invariant bounds by `K`).
    pub empty_superblocks: usize,
    /// Per-class rows, ascending by class; classes with no superblocks
    /// are omitted.
    pub classes: Vec<HeapMapClass>,
}

/// A full per-heap × per-class snapshot of allocator memory state at
/// one virtual instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapMap {
    /// Virtual timestamp the snapshot was taken at.
    pub ts: u64,
    /// One entry per heap, ascending by index.
    pub heaps: Vec<HeapMapHeap>,
}

impl HeapMap {
    /// Live bytes summed over all heaps (Hoard's `U`, as the heap
    /// bookkeeping sees it).
    pub fn live_bytes(&self) -> u64 {
        self.heaps.iter().map(|h| h.live_bytes).sum()
    }

    /// Held bytes summed over all heaps (Hoard's `A`).
    pub fn held_bytes(&self) -> u64 {
        self.heaps.iter().map(|h| h.held_bytes).sum()
    }

    /// Empty superblocks summed over all heaps.
    pub fn empty_superblocks(&self) -> usize {
        self.heaps.iter().map(|h| h.empty_superblocks).sum()
    }

    /// Heaps whose parked-empty pool exceeds the slack `k` — superblocks
    /// the emptiness invariant says should have moved to the global
    /// heap (a retention signal, not necessarily a bug: the front-end
    /// may be holding them deliberately).
    pub fn heaps_over_slack(&self, k: usize) -> Vec<usize> {
        self.heaps
            .iter()
            .filter(|h| h.index != 0 && h.empty_superblocks > k)
            .map(|h| h.index)
            .collect()
    }

    /// The snapshot as a deterministic JSON value (embedded by the
    /// `hoard-heap-profile-v1` exporter and the trc report).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("ts".into(), JsonValue::Uint(self.ts)),
            ("live_bytes".into(), JsonValue::Uint(self.live_bytes())),
            ("held_bytes".into(), JsonValue::Uint(self.held_bytes())),
            (
                "empty_superblocks".into(),
                JsonValue::Uint(self.empty_superblocks() as u64),
            ),
            (
                "heaps".into(),
                JsonValue::Arr(self.heaps.iter().map(heap_json).collect()),
            ),
        ])
    }
}

fn heap_json(h: &HeapMapHeap) -> JsonValue {
    obj(vec![
        ("index", JsonValue::Uint(h.index as u64)),
        ("live_bytes", JsonValue::Uint(h.live_bytes)),
        ("held_bytes", JsonValue::Uint(h.held_bytes)),
        (
            "empty_superblocks",
            JsonValue::Uint(h.empty_superblocks as u64),
        ),
        (
            "classes",
            JsonValue::Arr(
                h.classes
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("class", JsonValue::Uint(c.class as u64)),
                            ("block_size", JsonValue::Uint(c.block_size as u64)),
                            ("superblocks", JsonValue::Uint(c.superblocks as u64)),
                            ("blocks_in_use", JsonValue::Uint(c.blocks_in_use)),
                            ("capacity", JsonValue::Uint(c.capacity)),
                            (
                                "occupancy",
                                JsonValue::Arr(
                                    c.occupancy
                                        .iter()
                                        .map(|&n| JsonValue::Uint(n as u64))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HeapMap {
        HeapMap {
            ts: 42,
            heaps: vec![
                HeapMapHeap {
                    index: 0,
                    live_bytes: 0,
                    held_bytes: 8192,
                    empty_superblocks: 1,
                    classes: vec![],
                },
                HeapMapHeap {
                    index: 1,
                    live_bytes: 640,
                    held_bytes: 8192,
                    empty_superblocks: 3,
                    classes: vec![HeapMapClass {
                        class: 2,
                        block_size: 64,
                        superblocks: 1,
                        blocks_in_use: 10,
                        capacity: 120,
                        occupancy: {
                            let mut o = [0; OCCUPANCY_BUCKETS];
                            o[0] = 1;
                            o
                        },
                    }],
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_heaps() {
        let m = sample();
        assert_eq!(m.live_bytes(), 640);
        assert_eq!(m.held_bytes(), 16384);
        assert_eq!(m.empty_superblocks(), 4);
    }

    #[test]
    fn slack_check_skips_the_global_heap() {
        let m = sample();
        assert_eq!(m.heaps_over_slack(2), vec![1]);
        assert!(m.heaps_over_slack(3).is_empty(), "at the bound is fine");
    }

    #[test]
    fn occupancy_buckets_cover_the_range() {
        assert_eq!(HeapMapClass::bucket(0, 120), 0);
        assert_eq!(HeapMapClass::bucket(119, 120), OCCUPANCY_BUCKETS - 1);
        assert_eq!(
            HeapMapClass::bucket(120, 120),
            OCCUPANCY_BUCKETS - 1,
            "full blocks land in the last bucket"
        );
        assert_eq!(HeapMapClass::bucket(0, 0), 0, "bump superblocks");
    }

    #[test]
    fn json_roundtrips_and_is_deterministic() {
        let m = sample();
        let text = m.to_json_value().to_json();
        assert_eq!(text, m.to_json_value().to_json());
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("live_bytes").unwrap().as_u64(), Some(640));
        assert_eq!(
            v.get("heaps").unwrap().as_array().unwrap().len(),
            2,
            "both heaps exported"
        );
    }
}
