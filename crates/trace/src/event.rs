//! The event taxonomy: every dynamic behaviour the allocator's claims
//! rest on, as a small fixed vocabulary of typed records.
//!
//! Events are deliberately *address-free*: they carry a virtual
//! timestamp, a kind, and two small integer arguments (size class, heap
//! index, batch size, wait duration — whatever the kind calls for, see
//! each variant). Omitting pointers is what makes traces deterministic
//! and diffable across runs: two runs of the same seeded workload
//! produce byte-identical traces even though the OS hands their chunks
//! out at different addresses.

use serde::{Deserialize, Serialize};

/// What happened. The `arg0`/`arg1` documentation on each variant is
/// the schema for [`Event`]'s payload fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Small allocation served under the heap lock.
    /// `arg0` = size class, `arg1` = block size in bytes.
    Alloc,
    /// Small allocation served lock-free from a thread magazine.
    /// `arg0` = size class, `arg1` = block size in bytes.
    AllocMagazine,
    /// Large allocation served straight from the chunk source.
    /// `arg0` = 0, `arg1` = requested bytes.
    AllocLarge,
    /// Small free applied under the owning heap's lock.
    /// `arg0` = size class, `arg1` = owning heap index.
    Free,
    /// Small free absorbed lock-free by a thread magazine.
    /// `arg0` = size class, `arg1` = 0.
    FreeMagazine,
    /// Large free returned to the chunk source.
    /// `arg0` = 0, `arg1` = freed bytes.
    FreeLarge,
    /// A dry magazine pulled a batch from its heap.
    /// `arg0` = size class, `arg1` = blocks pulled.
    MagazineRefill,
    /// A full magazine returned a batch to its heap.
    /// `arg0` = size class, `arg1` = blocks returned.
    MagazineFlush,
    /// A free from a non-owning thread deferred onto the superblock's
    /// remote stack. `arg0` = size class, `arg1` = owning heap index.
    RemoteFreePush,
    /// The owner drained a superblock's deferred remote stack.
    /// `arg0` = size class, `arg1` = blocks drained.
    RemoteFreeDrain,
    /// A superblock migrated from a per-processor heap to the global
    /// heap (emptiness-invariant restoration).
    /// `arg0` = source heap index, `arg1` = superblock fullness in
    /// percent at the moment of transfer.
    TransferToGlobal,
    /// A superblock fetched from the global heap into a per-processor
    /// heap. `arg0` = destination heap index, `arg1` = fullness %.
    TransferFromGlobal,
    /// A free pushed its heap across the emptiness-invariant boundary
    /// (`u < a − K·S ∧ u < (1−f)·a`), arming the release latch.
    /// `arg0` = heap index, `arg1` = 0.
    EmptinessCross,
    /// A heap lock acquisition, including its (possibly zero) virtual
    /// wait. `arg0` = heap index, `arg1` = virtual units waited beyond
    /// an uncontended acquire (> 0 means the acquisition was contended).
    LockAcquire,
    /// A heap lock release, closing an acquisition.
    /// `arg0` = heap index, `arg1` = virtual units the lock was held.
    LockRelease,
    /// The hardening layer rejected a corrupt operation.
    /// `arg0` = `CorruptionKind` as ordinal, `arg1` = 0.
    Corruption,
    /// OOM recovery reclaimed cached empty superblocks.
    /// `arg0` = heap index scanned from, `arg1` = chunks reclaimed.
    OomReclaim,
    /// A poisoned mutex (a thread panicked while holding it) was
    /// recovered by the poisoning-tolerant accessor.
    /// `arg0` = 0, `arg1` = 0.
    LockPoisoned,
    /// The feedback controller changed one size class's magazine
    /// capacity. `arg0` = size class, `arg1` = new capacity in the high
    /// 32 bits, new refill/flush batch size in the low 32.
    TuneCapacity,
    /// The feedback controller changed the emptiness thresholds.
    /// `arg0` = new slack `K`, `arg1` = new empty-fraction numerator
    /// (the denominator is fixed by the configuration).
    TuneThreshold,
}

impl EventKind {
    /// Stable short label, used by the Chrome exporter and `hoardscope`.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Alloc => "alloc",
            EventKind::AllocMagazine => "alloc.magazine",
            EventKind::AllocLarge => "alloc.large",
            EventKind::Free => "free",
            EventKind::FreeMagazine => "free.magazine",
            EventKind::FreeLarge => "free.large",
            EventKind::MagazineRefill => "magazine.refill",
            EventKind::MagazineFlush => "magazine.flush",
            EventKind::RemoteFreePush => "remote.push",
            EventKind::RemoteFreeDrain => "remote.drain",
            EventKind::TransferToGlobal => "transfer.to_global",
            EventKind::TransferFromGlobal => "transfer.from_global",
            EventKind::EmptinessCross => "emptiness.cross",
            EventKind::LockAcquire => "lock.acquire",
            EventKind::LockRelease => "lock.release",
            EventKind::Corruption => "corruption",
            EventKind::OomReclaim => "oom.reclaim",
            EventKind::LockPoisoned => "lock.poisoned",
            EventKind::TuneCapacity => "tune.capacity",
            EventKind::TuneThreshold => "tune.threshold",
        }
    }

    /// Inverse of [`label`](Self::label), for parsing native traces.
    pub fn from_label(label: &str) -> Option<EventKind> {
        Self::ALL.iter().copied().find(|k| k.label() == label)
    }

    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 20] = [
        EventKind::Alloc,
        EventKind::AllocMagazine,
        EventKind::AllocLarge,
        EventKind::Free,
        EventKind::FreeMagazine,
        EventKind::FreeLarge,
        EventKind::MagazineRefill,
        EventKind::MagazineFlush,
        EventKind::RemoteFreePush,
        EventKind::RemoteFreeDrain,
        EventKind::TransferToGlobal,
        EventKind::TransferFromGlobal,
        EventKind::EmptinessCross,
        EventKind::LockAcquire,
        EventKind::LockRelease,
        EventKind::Corruption,
        EventKind::OomReclaim,
        EventKind::LockPoisoned,
        EventKind::TuneCapacity,
        EventKind::TuneThreshold,
    ];

    /// Chrome-trace category for the kind (groups tracks of related
    /// events in the Perfetto UI).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Alloc | EventKind::AllocMagazine | EventKind::AllocLarge => "alloc",
            EventKind::Free | EventKind::FreeMagazine | EventKind::FreeLarge => "free",
            EventKind::MagazineRefill
            | EventKind::MagazineFlush
            | EventKind::RemoteFreePush
            | EventKind::RemoteFreeDrain => "magazine",
            EventKind::TransferToGlobal
            | EventKind::TransferFromGlobal
            | EventKind::EmptinessCross => "transfer",
            EventKind::LockAcquire | EventKind::LockRelease => "lock",
            EventKind::Corruption | EventKind::OomReclaim | EventKind::LockPoisoned => "hardening",
            EventKind::TuneCapacity | EventKind::TuneThreshold => "tuning",
        }
    }

    /// Names for (`arg0`, `arg1`) per the variant schemas above; used
    /// for the `args` object in the Chrome export.
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Alloc | EventKind::AllocMagazine => ("class", "bytes"),
            EventKind::AllocLarge | EventKind::FreeLarge => ("zero", "bytes"),
            EventKind::Free | EventKind::RemoteFreePush => ("class", "heap"),
            EventKind::FreeMagazine => ("class", "zero"),
            EventKind::MagazineRefill | EventKind::MagazineFlush | EventKind::RemoteFreeDrain => {
                ("class", "blocks")
            }
            EventKind::TransferToGlobal | EventKind::TransferFromGlobal => {
                ("heap", "fullness_pct")
            }
            EventKind::EmptinessCross => ("heap", "zero"),
            EventKind::LockAcquire => ("heap", "waited"),
            EventKind::LockRelease => ("heap", "held"),
            EventKind::Corruption => ("kind", "zero"),
            EventKind::OomReclaim => ("heap", "chunks"),
            EventKind::LockPoisoned => ("zero", "zero"),
            EventKind::TuneCapacity => ("class", "capacity_batch"),
            EventKind::TuneThreshold => ("slack_k", "f_num"),
        }
    }
}

/// One recorded occurrence: virtual timestamp plus the kind's payload.
/// The emitting virtual processor is implied by the track the event sits
/// in (see [`crate::TraceLog`]), keeping the record at 24 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual-clock instant (`hoard_sim::now()`) at emission.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload field; see [`EventKind`] variant docs.
    pub arg0: u32,
    /// Second payload field; see [`EventKind`] variant docs.
    pub arg1: u64,
}

impl Event {
    /// Zeroed placeholder used to pre-fill ring storage.
    pub(crate) const EMPTY: Event = Event {
        ts: 0,
        kind: EventKind::Alloc,
        arg0: 0,
        arg1: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_roundtrip() {
        let mut labels: Vec<_> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EventKind::from_label("nonsense"), None);
    }

    #[test]
    fn event_record_stays_small() {
        // The ring pre-allocates capacity × tracks of these; keep the
        // record compact so a default sink stays a few megabytes.
        assert!(std::mem::size_of::<Event>() <= 24);
    }
}
