//! [`TraceSink`] — lock-free per-processor event rings.
//!
//! One sink is attached to one allocator. It owns a fixed array of
//! single-writer *tracks*, one per simulated processor: the emitting
//! thread is `current_proc()`, machine workers get procs `0..P`, and a
//! proc writes only its own track, so the hot path is a bounds check,
//! one relaxed length load, a store into thread-warm memory, and a
//! release length publish — no lock, no shared cache line with other
//! emitters. A full track *drops* (and counts) rather than blocks or
//! reallocates: tracing must never change what the allocator does,
//! only record it.
//!
//! Threads outside the machine's processor range (the test harness's
//! own thread, `Drop` at teardown) land in a mutex-guarded spill
//! buffer; that path is never inside a simulated workload's hot loop.
//!
//! Each recorded event charges [`Cost::TraceEvent`] to the emitting
//! thread's virtual clock — tracing-on perturbation is modelled
//! honestly instead of pretended away, and tracing-off paths never call
//! into this module at all (see the allocator-side gate).

use crate::event::{Event, EventKind};
use crate::log::{TraceLog, TrackLog};
use hoard_sim::{charge_cost, current_proc, now, Cost};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sizing for a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Number of per-processor tracks (procs `0..tracks` record
    /// lock-free; higher procs spill). Covers the experiment grid's
    /// P ≤ 14 with the default of 16.
    pub tracks: usize,
    /// Events retained per track before the track starts dropping.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            tracks: 16,
            capacity: 1 << 15,
        }
    }
}

/// One processor's ring. Single writer (the owning proc), any reader
/// after a release-published length.
struct Track {
    len: AtomicUsize,
    dropped: AtomicU64,
    buf: Box<[UnsafeCell<Event>]>,
}

// Safety: `buf[i]` for `i < len` is only written before the release
// store that published `len`, and never rewritten; writes at `i >= len`
// are exclusive to the single writing proc.
unsafe impl Sync for Track {}
unsafe impl Send for Track {}

impl Track {
    fn new(capacity: usize) -> Self {
        Track {
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            buf: (0..capacity).map(|_| UnsafeCell::new(Event::EMPTY)).collect(),
        }
    }

    fn push(&self, ev: Event) {
        let len = self.len.load(Ordering::Relaxed);
        match self.buf.get(len) {
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(slot) => {
                unsafe { *slot.get() = ev };
                self.len.store(len + 1, Ordering::Release);
            }
        }
    }

    fn snapshot(&self) -> (Vec<Event>, u64) {
        let len = self.len.load(Ordering::Acquire);
        let events = self.buf[..len]
            .iter()
            .map(|slot| unsafe { *slot.get() })
            .collect();
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

/// The attachable event recorder. See the module docs for the
/// concurrency contract.
pub struct TraceSink {
    tracks: Box<[Track]>,
    /// Events from procs outside `0..tracks.len()`, with their proc id.
    spill: Mutex<Vec<(usize, Event)>>,
}

impl TraceSink {
    /// A sink with [`TraceConfig::default`] sizing (16 tracks × 32 Ki
    /// events).
    pub fn new() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// A sink with explicit track count and per-track capacity.
    pub fn with_config(cfg: TraceConfig) -> Self {
        TraceSink {
            tracks: (0..cfg.tracks.max(1))
                .map(|_| Track::new(cfg.capacity.max(1)))
                .collect(),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Record one event, stamped with the caller's virtual clock, onto
    /// the caller's processor track (or the spill buffer for
    /// out-of-range procs), charging [`Cost::TraceEvent`].
    pub fn emit(&self, kind: EventKind, arg0: u32, arg1: u64) {
        charge_cost(Cost::TraceEvent);
        let ev = Event {
            ts: now(),
            kind,
            arg0,
            arg1,
        };
        let proc = current_proc();
        match self.tracks.get(proc) {
            Some(track) => track.push(ev),
            None => self.spill.lock().unwrap().push((proc, ev)),
        }
    }

    /// Copy out everything recorded so far as a [`TraceLog`].
    ///
    /// Always memory-safe; for a *complete* log call it at a quiescent
    /// point (after `Machine::run` returns), since a proc mid-`emit`
    /// publishes its event only at the release store.
    pub fn collect(&self) -> TraceLog {
        let mut tracks = Vec::new();
        let mut dropped = 0u64;
        for (proc, track) in self.tracks.iter().enumerate() {
            let (events, d) = track.snapshot();
            dropped += d;
            if !events.is_empty() {
                tracks.push(TrackLog { proc, events });
            }
        }
        let spill = self.spill.lock().unwrap();
        for &(proc, ev) in spill.iter() {
            match tracks.iter_mut().find(|t| t.proc == proc) {
                Some(t) => t.events.push(ev),
                None => tracks.push(TrackLog {
                    proc,
                    events: vec![ev],
                }),
            }
        }
        tracks.sort_by_key(|t| t.proc);
        TraceLog { tracks, dropped }
    }

    /// Total events currently recorded (tracks + spill).
    pub fn len(&self) -> usize {
        let in_tracks: usize = self
            .tracks
            .iter()
            .map(|t| t.len.load(Ordering::Acquire))
            .sum();
        in_tracks + self.spill.lock().unwrap().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to full tracks so far.
    pub fn dropped(&self) -> u64 {
        self.tracks
            .iter()
            .map(|t| t.dropped.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_collect_roundtrip() {
        let sink = TraceSink::with_config(TraceConfig {
            tracks: 4,
            capacity: 8,
        });
        assert!(sink.is_empty());
        sink.emit(EventKind::Alloc, 3, 64);
        sink.emit(EventKind::Free, 3, 1);
        let log = sink.collect();
        assert_eq!(log.total_events(), 2);
        assert_eq!(log.dropped, 0);
        // This test thread is not a machine worker: its proc is a lazy
        // id ≥ 1024, so both events rode the spill path yet kept their
        // proc attribution.
        assert_eq!(log.tracks.len(), 1);
        assert!(log.tracks[0].proc >= 4);
        assert_eq!(log.tracks[0].events[0].kind, EventKind::Alloc);
        assert_eq!(log.tracks[0].events[1].kind, EventKind::Free);
    }

    #[test]
    fn full_track_drops_and_counts() {
        // Drive a track directly (proc-independent) to check the ring
        // bound; `push` is the same code `emit` uses.
        let track = Track::new(4);
        for i in 0..10u64 {
            track.push(Event {
                ts: i,
                kind: EventKind::Alloc,
                arg0: 0,
                arg1: i,
            });
        }
        let (events, dropped) = track.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        assert_eq!(events[3].arg1, 3, "oldest events win; overflow drops");
    }

    #[test]
    fn emit_charges_virtual_time() {
        let sink = TraceSink::new();
        let before = hoard_sim::now();
        sink.emit(EventKind::Alloc, 0, 0);
        let per_event = hoard_sim::CostModel::current().trace_event;
        assert_eq!(hoard_sim::now(), before + per_event);
    }

    #[test]
    fn timestamps_are_monotone_within_a_track() {
        let sink = TraceSink::new();
        for i in 0..50 {
            sink.emit(EventKind::Alloc, i, 0);
        }
        let log = sink.collect();
        for t in &log.tracks {
            assert!(t.events.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }
}
