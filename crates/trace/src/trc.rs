//! The `.trc` binary allocation-trace format.
//!
//! A `.trc` file freezes every `malloc`/`free` of a run — op kind,
//! size, emitting virtual processor, virtual-time delta, and a
//! *pointer token* (a dense id standing in for the address, so traces
//! of the same seeded run are byte-identical even though the OS hands
//! chunks out at different addresses) — compactly enough that
//! millions-of-sessions server traffic fits in a few megabytes:
//!
//! ```text
//! offset  field
//! 0       magic  "HTRC"                      (4 bytes)
//! 4       version                            (u16 LE)
//! 6       seed                               (varint u64)
//! ..      stream count T                     (varint)
//! ..      config tag: byte length, UTF-8     (varint + bytes)
//! ..      T stream sections:
//!             record count N                 (varint)
//!             N records:
//!                 opcode                     (1 byte: 0=alloc 1=free
//!                                             2=send 3=work
//!                                             4=alloc+site, v2+)
//!                 dt since previous record   (varint, virtual units)
//!                 alloc: token, size         (varint, varint)
//!                 free:  token               (varint)
//!                 send:  token, dest stream  (varint, varint)
//!                 work:  units               (varint)
//!                 alloc+site: token, size,
//!                             site           (varint ×3)
//! end-8   FNV-1a 64 checksum of everything before it (u64 LE)
//! ```
//!
//! All integers except the fixed-width version and checksum are LEB128
//! varints. Stream index = virtual processor = replay thread. Within a
//! stream, records are program-ordered and `dt` is the virtual-clock
//! advance since the stream's previous record (first record: since 0).
//!
//! Versioning rule: the magic and version are fixed-position so any
//! future layout may change everything after byte 6; readers reject
//! versions they don't know ([`TrcError::UnsupportedVersion`]) rather
//! than guessing. Version 2 added the allocation-site tag on `Alloc`
//! records (opcode 4, used only when the site is nonzero — untagged
//! traces encode byte-identically to v1 modulo the version field); this
//! reader accepts v1 files, decoding their allocs as site 0, and v1
//! readers reject v2 files outright rather than mis-decoding opcode 4.
//!
//! [`TrcWriter`] streams records in (per-stream buffers, O(record)
//! work per push); [`TrcReader`] parses back out of a borrowed byte
//! slice without copying record payloads — iteration decodes on the
//! fly, so a reader over a memory-mapped capture allocates nothing per
//! record.

use std::fmt;

/// File magic: the first four bytes of every `.trc`.
pub const TRC_MAGIC: [u8; 4] = *b"HTRC";

/// Current wire-format version.
pub const TRC_VERSION: u16 = 2;

/// Oldest wire-format version this reader still decodes.
pub const TRC_MIN_VERSION: u16 = 1;

const CHECKSUM_LEN: usize = 8;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Why a `.trc` byte stream was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrcError {
    /// The first four bytes are not [`TRC_MAGIC`].
    BadMagic,
    /// The version field names a layout this reader doesn't know.
    UnsupportedVersion(u16),
    /// The stream ended inside the named field.
    Truncated(&'static str),
    /// A varint ran past 10 bytes (not a valid LEB128 `u64`).
    BadVarint(&'static str),
    /// An unknown record opcode.
    BadOpcode(u8),
    /// The config tag is not UTF-8.
    BadConfigTag,
    /// The trailing checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// Well-formed streams, but extra bytes before the checksum.
    TrailingBytes(usize),
}

impl fmt::Display for TrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrcError::BadMagic => write!(f, "not a .trc file (bad magic)"),
            TrcError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .trc version {v} (this reader knows {TRC_MIN_VERSION}..={TRC_VERSION})"
                )
            }
            TrcError::Truncated(what) => write!(f, "truncated .trc: ended inside {what}"),
            TrcError::BadVarint(what) => write!(f, "malformed varint in {what}"),
            TrcError::BadOpcode(op) => write!(f, "unknown record opcode {op:#x}"),
            TrcError::BadConfigTag => write!(f, "config tag is not UTF-8"),
            TrcError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            TrcError::TrailingBytes(n) => {
                write!(f, "{n} unexpected bytes between the last stream and the checksum")
            }
        }
    }
}

impl std::error::Error for TrcError {}

/// One trace operation. `token` is the pointer token: allocations mint
/// it, frees and sends refer back to it. Replay remaps tokens to live
/// allocations (see `hoard_workloads::trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrcOp {
    /// Allocate `size` bytes; the result is known as `token` from here.
    Alloc {
        /// Pointer token minted by this allocation.
        token: u64,
        /// Requested size in bytes.
        size: u32,
        /// Allocation-site tag for the heap profiler (0 = untagged;
        /// see `hoard_sim::set_alloc_site`). Wire format v2+.
        site: u32,
    },
    /// Free the allocation behind `token`.
    Free {
        /// Pointer token being released.
        token: u64,
    },
    /// Hand `token` to stream `to` (which frees or holds it).
    Send {
        /// Pointer token changing hands.
        token: u64,
        /// Destination stream (= replay thread).
        to: u32,
    },
    /// Local computation of `units` virtual work units.
    Work {
        /// Work units.
        units: u32,
    },
}

const OP_ALLOC: u8 = 0;
const OP_FREE: u8 = 1;
const OP_SEND: u8 = 2;
const OP_WORK: u8 = 3;
/// v2+: an alloc carrying a nonzero site tag (site-0 allocs keep the
/// shorter [`OP_ALLOC`] encoding, so untagged traces pay nothing).
const OP_ALLOC_SITE: u8 = 4;

/// One record: the stream's virtual-clock advance since its previous
/// record, plus the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrcRecord {
    /// Virtual units since the stream's previous record (0 for
    /// synthesized traces that carry no timing).
    pub dt: u64,
    /// The operation.
    pub op: TrcOp,
}

/// Parsed `.trc` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrcHeader {
    /// Wire-format version the file was written with.
    pub version: u16,
    /// Seed all randomness in the captured/generated run derived from.
    pub seed: u64,
    /// Free-form tag naming the workload/allocator configuration
    /// (e.g. `"threadtest P=4 hoard-mag"`).
    pub config: String,
    /// Number of streams (virtual processors / replay threads).
    pub streams: u32,
}

/// An in-memory trace: header plus per-stream record vectors. The
/// convenient form for generators and tests; bulk pipelines can stay
/// on [`TrcWriter`]/[`TrcReader`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrcTrace {
    /// Seed recorded in the header.
    pub seed: u64,
    /// Config tag recorded in the header.
    pub config: String,
    /// Per-stream records, program-ordered.
    pub streams: Vec<Vec<TrcRecord>>,
}

impl TrcTrace {
    /// Total records across all streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of `Alloc` records (sessions/objects in the trace).
    pub fn allocs(&self) -> u64 {
        self.streams
            .iter()
            .flatten()
            .filter(|r| matches!(r.op, TrcOp::Alloc { .. }))
            .count() as u64
    }

    /// Encode to `.trc` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TrcWriter::new(self.seed, &self.config, self.streams.len());
        for (t, stream) in self.streams.iter().enumerate() {
            for r in stream {
                w.push(t, *r);
            }
        }
        w.finish()
    }

    /// Decode `.trc` bytes (strict: checksum and framing verified).
    ///
    /// # Errors
    ///
    /// Any [`TrcError`] the byte stream earns.
    pub fn decode(bytes: &[u8]) -> Result<TrcTrace, TrcError> {
        let reader = TrcReader::new(bytes)?;
        let mut streams = Vec::with_capacity(reader.header().streams as usize);
        for stream in reader.streams() {
            streams.push(stream.collect::<Result<Vec<_>, _>>()?);
        }
        Ok(TrcTrace {
            seed: reader.header().seed,
            config: reader.header().config.clone(),
            streams,
        })
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Streaming `.trc` encoder: push records in any stream interleaving;
/// each push encodes immediately into that stream's buffer, so memory
/// is the encoded bytes (a handful per record), not a record vector.
#[derive(Debug)]
pub struct TrcWriter {
    seed: u64,
    config: String,
    /// Per-stream: (encoded record bytes, record count, last abs ts).
    streams: Vec<(Vec<u8>, u64)>,
}

impl TrcWriter {
    /// Start a trace of `streams` streams.
    pub fn new(seed: u64, config: &str, streams: usize) -> Self {
        TrcWriter {
            seed,
            config: config.to_string(),
            streams: vec![(Vec::new(), 0); streams],
        }
    }

    /// Append one record to `stream` (grows the stream table if the
    /// index is past the constructor's count).
    pub fn push(&mut self, stream: usize, r: TrcRecord) {
        while self.streams.len() <= stream {
            self.streams.push((Vec::new(), 0));
        }
        let (buf, count) = &mut self.streams[stream];
        match r.op {
            TrcOp::Alloc { token, size, site: 0 } => {
                buf.push(OP_ALLOC);
                push_varint(buf, r.dt);
                push_varint(buf, token);
                push_varint(buf, u64::from(size));
            }
            TrcOp::Alloc { token, size, site } => {
                buf.push(OP_ALLOC_SITE);
                push_varint(buf, r.dt);
                push_varint(buf, token);
                push_varint(buf, u64::from(size));
                push_varint(buf, u64::from(site));
            }
            TrcOp::Free { token } => {
                buf.push(OP_FREE);
                push_varint(buf, r.dt);
                push_varint(buf, token);
            }
            TrcOp::Send { token, to } => {
                buf.push(OP_SEND);
                push_varint(buf, r.dt);
                push_varint(buf, token);
                push_varint(buf, u64::from(to));
            }
            TrcOp::Work { units } => {
                buf.push(OP_WORK);
                push_varint(buf, r.dt);
                push_varint(buf, u64::from(units));
            }
        }
        *count += 1;
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.streams.iter().map(|(_, n)| n).sum()
    }

    /// Assemble the final `.trc` bytes (header, streams, checksum).
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&TRC_MAGIC);
        out.extend_from_slice(&TRC_VERSION.to_le_bytes());
        push_varint(&mut out, self.seed);
        push_varint(&mut out, self.streams.len() as u64);
        push_varint(&mut out, self.config.len() as u64);
        out.extend_from_slice(self.config.as_bytes());
        for (buf, count) in &self.streams {
            push_varint(&mut out, *count);
            out.extend_from_slice(buf);
        }
        let checksum = fnv1a(FNV_OFFSET, &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TrcError> {
        let end = self.pos.checked_add(n).ok_or(TrcError::Truncated(what))?;
        if end > self.bytes.len() {
            return Err(TrcError::Truncated(what));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn byte(&mut self, what: &'static str) -> Result<u8, TrcError> {
        Ok(self.take(1, what)?[0])
    }

    fn varint(&mut self, what: &'static str) -> Result<u64, TrcError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let b = self.byte(what)?;
            let low = u64::from(b & 0x7f);
            if shift == 9 && b > 0x01 {
                // A u64 is at most 10 LEB128 bytes, last holding 1 bit.
                return Err(TrcError::BadVarint(what));
            }
            v |= low << (shift * 7);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TrcError::BadVarint(what))
    }
}

/// Zero-copy `.trc` reader over a borrowed byte slice. Construction
/// validates magic, version, header framing, and the trailing checksum;
/// records decode lazily as the per-stream iterators advance.
pub struct TrcReader<'a> {
    header: TrcHeader,
    /// `(offset, record count)` of each stream's record section.
    sections: Vec<(usize, u64)>,
    bytes: &'a [u8],
}

impl<'a> TrcReader<'a> {
    /// Validate the container and index its streams.
    ///
    /// # Errors
    ///
    /// Any [`TrcError`] the byte stream earns; a reader is only
    /// returned for a fully well-framed, checksum-clean trace.
    pub fn new(bytes: &'a [u8]) -> Result<TrcReader<'a>, TrcError> {
        if bytes.len() < TRC_MAGIC.len() {
            return Err(TrcError::Truncated("magic"));
        }
        if bytes[..4] != TRC_MAGIC {
            return Err(TrcError::BadMagic);
        }
        let payload_len = bytes
            .len()
            .checked_sub(CHECKSUM_LEN)
            .filter(|&l| l >= 6)
            .ok_or(TrcError::Truncated("checksum"))?;
        let stored = u64::from_le_bytes(bytes[payload_len..].try_into().expect("8 bytes"));
        let computed = fnv1a(FNV_OFFSET, &bytes[..payload_len]);
        if stored != computed {
            return Err(TrcError::ChecksumMismatch { stored, computed });
        }

        let payload = &bytes[..payload_len];
        let mut c = Cursor { bytes: payload, pos: 4 };
        let version = u16::from_le_bytes(c.take(2, "version")?.try_into().expect("2 bytes"));
        if !(TRC_MIN_VERSION..=TRC_VERSION).contains(&version) {
            return Err(TrcError::UnsupportedVersion(version));
        }
        let seed = c.varint("seed")?;
        let streams = c.varint("stream count")?;
        if streams > u64::from(u32::MAX) {
            return Err(TrcError::BadVarint("stream count"));
        }
        let config_len = c.varint("config length")? as usize;
        let config = std::str::from_utf8(c.take(config_len, "config tag")?)
            .map_err(|_| TrcError::BadConfigTag)?
            .to_string();

        // Index (and thereby fully validate the framing of) each
        // stream section; record payloads are decoded again lazily.
        let mut sections = Vec::with_capacity(streams as usize);
        for _ in 0..streams {
            let count = c.varint("record count")?;
            sections.push((c.pos, count));
            for _ in 0..count {
                skip_record(&mut c, version)?;
            }
        }
        if c.pos != payload_len {
            return Err(TrcError::TrailingBytes(payload_len - c.pos));
        }
        Ok(TrcReader {
            header: TrcHeader {
                version,
                seed,
                config,
                streams: streams as u32,
            },
            sections,
            bytes: payload,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &TrcHeader {
        &self.header
    }

    /// Total records across all streams.
    pub fn records(&self) -> u64 {
        self.sections.iter().map(|&(_, n)| n).sum()
    }

    /// Iterate the streams; each yields its records lazily.
    pub fn streams(&self) -> impl Iterator<Item = TrcStreamIter<'a>> + '_ {
        self.sections.iter().map(|&(pos, count)| TrcStreamIter {
            cursor: Cursor { bytes: self.bytes, pos },
            remaining: count,
            version: self.header.version,
        })
    }
}

fn decode_record(c: &mut Cursor<'_>, version: u16) -> Result<TrcRecord, TrcError> {
    let opcode = c.byte("record opcode")?;
    let dt = c.varint("record dt")?;
    let op = match opcode {
        OP_ALLOC => TrcOp::Alloc {
            token: c.varint("alloc token")?,
            size: c.varint("alloc size")?.min(u64::from(u32::MAX)) as u32,
            site: 0,
        },
        // Opcode 4 did not exist in v1, so a v1 byte stream carrying it
        // is corrupt, not forward-compatible.
        OP_ALLOC_SITE if version >= 2 => TrcOp::Alloc {
            token: c.varint("alloc token")?,
            size: c.varint("alloc size")?.min(u64::from(u32::MAX)) as u32,
            site: c.varint("alloc site")?.min(u64::from(u32::MAX)) as u32,
        },
        OP_FREE => TrcOp::Free {
            token: c.varint("free token")?,
        },
        OP_SEND => TrcOp::Send {
            token: c.varint("send token")?,
            to: c.varint("send dest")?.min(u64::from(u32::MAX)) as u32,
        },
        OP_WORK => TrcOp::Work {
            units: c.varint("work units")?.min(u64::from(u32::MAX)) as u32,
        },
        other => return Err(TrcError::BadOpcode(other)),
    };
    Ok(TrcRecord { dt, op })
}

fn skip_record(c: &mut Cursor<'_>, version: u16) -> Result<(), TrcError> {
    decode_record(c, version).map(|_| ())
}

/// Lazy record iterator over one stream of a [`TrcReader`].
pub struct TrcStreamIter<'a> {
    cursor: Cursor<'a>,
    remaining: u64,
    version: u16,
}

impl Iterator for TrcStreamIter<'_> {
    type Item = Result<TrcRecord, TrcError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Framing was validated by `TrcReader::new`, so this cannot
        // fail on a reader-produced cursor; the Result stays in the
        // signature for defense in depth.
        Some(decode_record(&mut self.cursor, self.version))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrcTrace {
        TrcTrace {
            seed: 0xDEAD_BEEF,
            config: "unit-test P=2".into(),
            streams: vec![
                vec![
                    TrcRecord { dt: 0, op: TrcOp::Alloc { token: 0, size: 64, site: 0 } },
                    TrcRecord { dt: 17, op: TrcOp::Work { units: 40 } },
                    TrcRecord { dt: 3, op: TrcOp::Send { token: 0, to: 1 } },
                    TrcRecord { dt: 2, op: TrcOp::Alloc { token: 1, size: 16, site: 9 } },
                ],
                vec![
                    TrcRecord { dt: 1 << 40, op: TrcOp::Free { token: 0 } },
                    TrcRecord { dt: 0, op: TrcOp::Free { token: 1 } },
                ],
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let bytes = t.encode();
        let back = TrcTrace::decode(&bytes).expect("decode");
        assert_eq!(back, t);
        assert_eq!(back.len(), 6);
        assert_eq!(back.allocs(), 2);
    }

    #[test]
    fn header_fields_survive() {
        let bytes = sample().encode();
        let r = TrcReader::new(&bytes).unwrap();
        assert_eq!(r.header().version, TRC_VERSION);
        assert_eq!(r.header().seed, 0xDEAD_BEEF);
        assert_eq!(r.header().config, "unit-test P=2");
        assert_eq!(r.header().streams, 2);
        assert_eq!(r.records(), 6);
    }

    /// A v1 byte stream (no site opcodes) hand-downgraded from the
    /// current writer: flip the version field and re-seal the checksum.
    fn as_v1(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        let n = bytes.len() - CHECKSUM_LEN;
        let sum = fnv1a(FNV_OFFSET, &bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn v1_traces_still_decode_as_site_zero() {
        let t = TrcTrace {
            seed: 11,
            config: "legacy".into(),
            streams: vec![vec![
                TrcRecord { dt: 5, op: TrcOp::Alloc { token: 0, size: 32, site: 0 } },
                TrcRecord { dt: 1, op: TrcOp::Free { token: 0 } },
            ]],
        };
        // Site-0 records encode identically in v1 and v2 (same
        // opcodes), so only the version field differs.
        let back = TrcTrace::decode(&as_v1(t.encode())).expect("v1 decodes");
        assert_eq!(back, t);
    }

    #[test]
    fn site_opcode_in_a_v1_stream_is_rejected() {
        let t = TrcTrace {
            seed: 11,
            config: "forged".into(),
            streams: vec![vec![TrcRecord {
                dt: 0,
                op: TrcOp::Alloc { token: 0, size: 32, site: 3 },
            }]],
        };
        assert_eq!(
            TrcTrace::decode(&as_v1(t.encode())),
            Err(TrcError::BadOpcode(OP_ALLOC_SITE)),
            "opcode 4 did not exist in v1"
        );
    }

    #[test]
    fn untagged_allocs_keep_the_short_encoding() {
        let rec = |site| TrcTrace {
            seed: 0,
            config: String::new(),
            streams: vec![vec![TrcRecord { dt: 0, op: TrcOp::Alloc { token: 1, size: 8, site } }]],
        };
        assert_eq!(
            rec(0).encode().len() + 1,
            rec(3).encode().len(),
            "a site tag costs exactly its varint (one byte for small sites)"
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(TrcTrace::decode(&bytes), Err(TrcError::BadMagic));

        let mut bytes = sample().encode();
        bytes[4] = 0xFF;
        bytes[5] = 0x00;
        // Version is inside the checksum, so flip the checksum too by
        // recomputing it — the version error must win over trailing
        // garbage once the checksum is right.
        let n = bytes.len() - CHECKSUM_LEN;
        let sum = fnv1a(FNV_OFFSET, &bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(TrcTrace::decode(&bytes), Err(TrcError::UnsupportedVersion(0xFF)));
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            TrcTrace::decode(&bytes),
            Err(TrcError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            let err = TrcTrace::decode(&bytes[..n]).expect_err("prefix accepted");
            assert!(
                matches!(err, TrcError::Truncated(_) | TrcError::ChecksumMismatch { .. }),
                "prefix {n}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = TrcTrace { seed: 0, config: String::new(), streams: vec![] };
        assert_eq!(TrcTrace::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn writer_grows_streams_on_demand() {
        let mut w = TrcWriter::new(7, "grow", 1);
        w.push(3, TrcRecord { dt: 0, op: TrcOp::Work { units: 1 } });
        assert_eq!(w.records(), 1);
        let t = TrcTrace::decode(&w.finish()).unwrap();
        assert_eq!(t.streams.len(), 4);
        assert!(t.streams[0].is_empty() && t.streams[3].len() == 1);
    }

    #[test]
    fn extreme_varints_roundtrip() {
        let t = TrcTrace {
            seed: u64::MAX,
            config: "max".into(),
            streams: vec![vec![
                TrcRecord {
                    dt: u64::MAX,
                    op: TrcOp::Alloc { token: u64::MAX, size: u32::MAX, site: u32::MAX },
                },
                TrcRecord { dt: 0, op: TrcOp::Free { token: u64::MAX } },
            ]],
        };
        assert_eq!(TrcTrace::decode(&t.encode()).unwrap(), t);
    }
}
