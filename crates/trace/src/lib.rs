//! # hoard-trace — the observability layer
//!
//! Deterministic, virtual-time telemetry for the Hoard reproduction:
//!
//! - **Event tracing** ([`TraceSink`], [`Event`], [`EventKind`]):
//!   lock-free per-processor rings recording typed, address-free
//!   events stamped with the sim's virtual clock. Traces of a seeded
//!   workload are byte-identical across runs — diffable artifacts, not
//!   samples.
//! - **Metrics registry** ([`MetricsRegistry`], [`MetricsSnapshot`]):
//!   per-heap × per-size-class counters plus log₂ histograms of lock
//!   wait/hold, superblock fullness at transfer, and magazine
//!   occupancy, with snapshot/delta semantics and JSON export.
//! - **Live-heap profiler** ([`HeapProfiler`], [`ProfileSnapshot`],
//!   [`HeapMap`]): allocation-site live-byte attribution, CAS-claimed
//!   fragmentation timelines (`A` vs `U` on the virtual clock), leak
//!   reports at quiesce, and per-heap × per-class occupancy snapshots,
//!   exported as collapsed-stack profiles and `hoard-heap-profile-v1`
//!   JSON.
//! - **Exporters**: [`chrome_trace_json`] emits Chrome `trace_event`
//!   JSON (one track per simulated processor) loadable in Perfetto;
//!   the `hoardscope` harness binary renders text reports.
//!
//! All recorders are *attachable*: an allocator holds a null pointer
//! until a sink/registry/profiler is installed, so the disabled
//! configuration costs one relaxed load + branch in real time and
//! **zero** virtual time — the bit-identity guarantee DESIGN.md §10
//! documents and `crates/core/tests/telemetry.rs` enforces.

mod chrome;
mod event;
mod heapmap;
pub mod jsonio;
mod log;
mod metrics;
mod profile;
mod recorder;
mod sink;
mod trc;

pub use chrome::{chrome_trace_json, CHROME_PID};
pub use event::{Event, EventKind};
pub use log::{TraceLog, TrackLog};
pub use metrics::{
    ClassMetrics, ClassTotals, HardeningMetrics, HeapMetrics, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, RegistryMetrics, HISTOGRAM_BUCKETS,
};
pub use heapmap::{HeapMap, HeapMapClass, HeapMapHeap, OCCUPANCY_BUCKETS};
pub use profile::{
    HeapProfiler, LeakRecord, ProfileConfig, ProfileSnapshot, SiteStats, TimelinePoint,
    DEFAULT_TIMELINE_INTERVAL, HEAP_PROFILE_SCHEMA,
};
pub use recorder::{RecorderStats, TrcRecorder};
pub use sink::{TraceConfig, TraceSink};
pub use trc::{
    TrcError, TrcHeader, TrcOp, TrcReader, TrcRecord, TrcStreamIter, TrcTrace, TrcWriter,
    TRC_MAGIC, TRC_MIN_VERSION, TRC_VERSION,
};
