//! The collected, serializable form of a trace: per-processor event
//! tracks plus the drop count. This is the native interchange format —
//! `hoardscope` consumes it, the Chrome exporter converts it, and the
//! golden-trace test byte-compares its JSON.

use crate::event::{Event, EventKind};
use crate::jsonio::{obj, JsonValue};
use serde::{Deserialize, Serialize};

/// Events recorded by one virtual processor, in emission order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackLog {
    /// The virtual processor (`hoard_sim::current_proc()`) that emitted
    /// these events. Machine workers are `0..P`.
    pub proc: usize,
    /// The events, timestamp-ordered (each proc's clock is monotone).
    pub events: Vec<Event>,
}

/// A complete collected trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Non-empty tracks, sorted by processor id.
    pub tracks: Vec<TrackLog>,
    /// Events lost to full tracks (0 means the trace is complete).
    pub dropped: u64,
}

impl TraceLog {
    /// Total events across all tracks.
    pub fn total_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Count of events of `kind` across all tracks.
    pub fn count(&self, kind: EventKind) -> usize {
        self.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == kind)
            .count()
    }

    /// Iterate `(proc, event)` over every recorded event.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Event)> {
        self.tracks
            .iter()
            .flat_map(|t| t.events.iter().map(move |e| (t.proc, e)))
    }

    /// Serialize to the native JSON form: each event encoded compactly
    /// as `[ts, "kind", arg0, arg1]`. Deterministic: same log, same
    /// bytes (the golden-trace property rides on this).
    pub fn to_json(&self) -> String {
        let tracks = self
            .tracks
            .iter()
            .map(|t| {
                let events = t
                    .events
                    .iter()
                    .map(|e| {
                        JsonValue::Arr(vec![
                            JsonValue::Uint(e.ts),
                            JsonValue::Str(e.kind.label().to_string()),
                            JsonValue::Uint(e.arg0 as u64),
                            JsonValue::Uint(e.arg1),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("proc", JsonValue::Uint(t.proc as u64)),
                    ("events", JsonValue::Arr(events)),
                ])
            })
            .collect();
        obj(vec![
            ("tracks", JsonValue::Arr(tracks)),
            ("dropped", JsonValue::Uint(self.dropped)),
        ])
        .to_json()
    }

    /// Parse a native-form JSON trace (the inverse of
    /// [`to_json`](Self::to_json)).
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(json)?;
        let mut tracks = Vec::new();
        for t in doc
            .get("tracks")
            .and_then(|v| v.as_array())
            .ok_or("missing 'tracks' array")?
        {
            let proc = t
                .get("proc")
                .and_then(|v| v.as_u64())
                .ok_or("track missing 'proc'")? as usize;
            let mut events = Vec::new();
            for e in t
                .get("events")
                .and_then(|v| v.as_array())
                .ok_or("track missing 'events'")?
            {
                let fields = e.as_array().filter(|a| a.len() == 4).ok_or("bad event")?;
                let label = fields[1].as_str().ok_or("bad event kind")?;
                events.push(Event {
                    ts: fields[0].as_u64().ok_or("bad event ts")?,
                    kind: EventKind::from_label(label)
                        .ok_or_else(|| format!("unknown event kind '{label}'"))?,
                    arg0: fields[2].as_u64().ok_or("bad event arg0")? as u32,
                    arg1: fields[3].as_u64().ok_or("bad event arg1")?,
                });
            }
            tracks.push(TrackLog { proc, events });
        }
        let dropped = doc
            .get("dropped")
            .and_then(|v| v.as_u64())
            .ok_or("missing 'dropped'")?;
        Ok(TraceLog { tracks, dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        TraceLog {
            tracks: vec![
                TrackLog {
                    proc: 0,
                    events: vec![
                        Event {
                            ts: 10,
                            kind: EventKind::Alloc,
                            arg0: 2,
                            arg1: 24,
                        },
                        Event {
                            ts: 20,
                            kind: EventKind::Free,
                            arg0: 2,
                            arg1: 1,
                        },
                    ],
                },
                TrackLog {
                    proc: 1,
                    events: vec![Event {
                        ts: 15,
                        kind: EventKind::Alloc,
                        arg0: 5,
                        arg1: 64,
                    }],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let log = sample();
        let json = log.to_json();
        let back = TraceLog::from_json(&json).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.to_json(), json, "re-serialization is stable");
    }

    #[test]
    fn counting_and_iteration() {
        let log = sample();
        assert_eq!(log.total_events(), 3);
        assert_eq!(log.count(EventKind::Alloc), 2);
        assert_eq!(log.count(EventKind::Free), 1);
        assert_eq!(log.count(EventKind::LockAcquire), 0);
        let procs: Vec<usize> = log.iter().map(|(p, _)| p).collect();
        assert_eq!(procs, [0, 0, 1]);
    }
}
