//! The metrics registry: `AllocStats` generalized from one global
//! struct to **per-heap × per-size-class** counters plus virtual-time
//! histograms.
//!
//! The registry is the aggregate companion to the event tracer: the
//! tracer answers *when and in what order*, the registry answers *how
//! much, where* without the storage cost of a full trace. Both are
//! attachable and both are off (and free) by default.
//!
//! All counters are relaxed atomics — the registry is updated from
//! allocator hot paths under whatever concurrency the allocator already
//! has, and a snapshot is a point-in-time read, exact only at quiescent
//! points (the same contract `AllocStats` has). Snapshots subtract
//! ([`MetricsSnapshot::delta`]) so an experiment can meter one phase of
//! a run.

use crate::jsonio::{obj, JsonValue};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Power-of-two histogram buckets: bucket 0 holds zeros, bucket *i*
/// holds values in `[2^(i−1), 2^i)`, the last bucket saturates.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log₂ histogram of `u64` samples (virtual-time durations,
/// percentages, occupancy levels).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`] for the layout).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (not delta-able; a delta keeps `self`'s max).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`) as the upper bound of
    /// the bucket containing that rank; 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Samples recorded since `base` (saturating per bucket).
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(base.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
        }
    }
}

#[derive(Debug, Default)]
struct ClassCell {
    allocs: AtomicU64,
    frees: AtomicU64,
    remote_frees: AtomicU64,
    magazine_ops: AtomicU64,
    refills: AtomicU64,
    flushes: AtomicU64,
}

#[derive(Debug, Default)]
struct HeapCell {
    lock_acquires: AtomicU64,
    lock_contended: AtomicU64,
    lock_wait_units: AtomicU64,
    lock_hold_units: AtomicU64,
    transfers_in: AtomicU64,
    transfers_out: AtomicU64,
}

/// Per-heap × per-size-class counters, virtual-time histograms, and
/// hardening gauges. Construct with the allocator's geometry and attach
/// (see `HoardAllocator::attach_metrics`).
#[derive(Debug)]
pub struct MetricsRegistry {
    heaps: usize,
    classes: usize,
    class_cells: Box<[ClassCell]>,
    heap_cells: Box<[HeapCell]>,
    lock_wait: Histogram,
    lock_hold: Histogram,
    transfer_fullness: Histogram,
    magazine_fill: Histogram,
    /// corruption_reports, quarantined, chunk_reclaims, rescued_allocations
    hardening: [AtomicU64; 4],
    /// occupancy, capacity, overflowed (0/1) of the lock-free
    /// superblock registry.
    registry: [AtomicU64; 3],
}

impl MetricsRegistry {
    /// A registry for `heaps` heaps (index 0 = global) × `classes` size
    /// classes.
    pub fn new(heaps: usize, classes: usize) -> Self {
        let heaps = heaps.max(1);
        let classes = classes.max(1);
        MetricsRegistry {
            heaps,
            classes,
            class_cells: (0..heaps * classes).map(|_| ClassCell::default()).collect(),
            heap_cells: (0..heaps).map(|_| HeapCell::default()).collect(),
            lock_wait: Histogram::new(),
            lock_hold: Histogram::new(),
            transfer_fullness: Histogram::new(),
            magazine_fill: Histogram::new(),
            hardening: [const { AtomicU64::new(0) }; 4],
            registry: [const { AtomicU64::new(0) }; 3],
        }
    }

    /// Number of heaps this registry meters.
    pub fn heaps(&self) -> usize {
        self.heaps
    }

    /// Number of size classes this registry meters.
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn class_cell(&self, heap: usize, class: usize) -> Option<&ClassCell> {
        if heap < self.heaps && class < self.classes {
            Some(&self.class_cells[heap * self.classes + class])
        } else {
            None
        }
    }

    /// Count a small allocation on `heap`/`class` (`magazine` = served
    /// lock-free by the front-end).
    pub fn on_alloc(&self, heap: usize, class: usize, magazine: bool) {
        if let Some(c) = self.class_cell(heap, class) {
            c.allocs.fetch_add(1, Relaxed);
            if magazine {
                c.magazine_ops.fetch_add(1, Relaxed);
            }
        }
    }

    /// Count a small free on `heap`/`class`.
    pub fn on_free(&self, heap: usize, class: usize, magazine: bool) {
        if let Some(c) = self.class_cell(heap, class) {
            c.frees.fetch_add(1, Relaxed);
            if magazine {
                c.magazine_ops.fetch_add(1, Relaxed);
            }
        }
    }

    /// Count a deferred remote free pushed toward `heap`/`class`. This
    /// is the user-facing free (it also counts in `frees`, keeping
    /// `total_frees` in step with `AllocStats`); the later drain under
    /// the owner's lock is bookkeeping, not a second free.
    pub fn on_remote_free(&self, heap: usize, class: usize) {
        if let Some(c) = self.class_cell(heap, class) {
            c.frees.fetch_add(1, Relaxed);
            c.remote_frees.fetch_add(1, Relaxed);
        }
    }

    /// Count a magazine refill for `heap`/`class` (a dry magazine
    /// pulled a batch under the heap lock, or from the lock-free
    /// back-end). Refill *frequency* is the feedback controller's
    /// signal that a class's capacity or batch size is too small.
    pub fn on_magazine_refill(&self, heap: usize, class: usize) {
        if let Some(c) = self.class_cell(heap, class) {
            c.refills.fetch_add(1, Relaxed);
        }
    }

    /// Count a magazine flush for `heap`/`class` (a full magazine
    /// returned a batch); the flush-side companion to
    /// [`on_magazine_refill`](Self::on_magazine_refill).
    pub fn on_magazine_flush(&self, heap: usize, class: usize) {
        if let Some(c) = self.class_cell(heap, class) {
            c.flushes.fetch_add(1, Relaxed);
        }
    }

    /// Record a heap-lock acquisition and its virtual wait (0 when
    /// uncontended; contended waits also feed the wait histogram).
    pub fn on_lock(&self, heap: usize, waited: u64) {
        if let Some(h) = self.heap_cells.get(heap) {
            h.lock_acquires.fetch_add(1, Relaxed);
            if waited > 0 {
                h.lock_contended.fetch_add(1, Relaxed);
                h.lock_wait_units.fetch_add(waited, Relaxed);
                self.lock_wait.record(waited);
            }
        }
    }

    /// Record a heap-lock release after holding it `held` virtual units.
    pub fn on_unlock(&self, heap: usize, held: u64) {
        if let Some(h) = self.heap_cells.get(heap) {
            h.lock_hold_units.fetch_add(held, Relaxed);
            self.lock_hold.record(held);
        }
    }

    /// Record a superblock leaving `heap` for the global heap at
    /// `fullness_pct` percent occupancy.
    pub fn on_transfer_to_global(&self, heap: usize, fullness_pct: u64) {
        if let Some(h) = self.heap_cells.get(heap) {
            h.transfers_out.fetch_add(1, Relaxed);
            self.transfer_fullness.record(fullness_pct);
        }
    }

    /// Record a superblock arriving at `heap` from the global heap at
    /// `fullness_pct` percent occupancy.
    pub fn on_transfer_from_global(&self, heap: usize, fullness_pct: u64) {
        if let Some(h) = self.heap_cells.get(heap) {
            h.transfers_in.fetch_add(1, Relaxed);
            self.transfer_fullness.record(fullness_pct);
        }
    }

    /// Record a magazine's occupancy at a refill or flush boundary.
    pub fn on_magazine_level(&self, level: u64) {
        self.magazine_fill.record(level);
    }

    /// Set the hardening gauges (absolute values, not increments) —
    /// called by the allocator when snapshotting, from its
    /// `CorruptionLog` and `RecoveryStats`.
    pub fn set_hardening(
        &self,
        corruption_reports: u64,
        quarantined: u64,
        chunk_reclaims: u64,
        rescued_allocations: u64,
    ) {
        let values = [
            corruption_reports,
            quarantined,
            chunk_reclaims,
            rescued_allocations,
        ];
        for (slot, v) in self.hardening.iter().zip(values) {
            slot.store(v, Relaxed);
        }
    }

    /// Set the superblock-registry gauges (absolute values) — occupancy
    /// and capacity of the lock-free registry backing the masked-
    /// metadata checks, and whether its overflow latch has tripped
    /// (degraded mode: contains-checks fall back to header validation).
    pub fn set_registry(&self, occupancy: u64, capacity: u64, overflowed: bool) {
        let values = [occupancy, capacity, u64::from(overflowed)];
        for (slot, v) in self.registry.iter().zip(values) {
            slot.store(v, Relaxed);
        }
    }

    /// Point-in-time copy of everything (heaps with no activity are
    /// omitted, classes with no activity are omitted per heap).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut heaps = Vec::new();
        for heap in 0..self.heaps {
            let h = &self.heap_cells[heap];
            let mut classes = Vec::new();
            for class in 0..self.classes {
                let c = &self.class_cells[heap * self.classes + class];
                let m = ClassMetrics {
                    class,
                    allocs: c.allocs.load(Relaxed),
                    frees: c.frees.load(Relaxed),
                    remote_frees: c.remote_frees.load(Relaxed),
                    magazine_ops: c.magazine_ops.load(Relaxed),
                    refills: c.refills.load(Relaxed),
                    flushes: c.flushes.load(Relaxed),
                };
                if !m.is_zero() {
                    classes.push(m);
                }
            }
            let hm = HeapMetrics {
                heap,
                lock_acquires: h.lock_acquires.load(Relaxed),
                lock_contended: h.lock_contended.load(Relaxed),
                lock_wait_units: h.lock_wait_units.load(Relaxed),
                lock_hold_units: h.lock_hold_units.load(Relaxed),
                transfers_in: h.transfers_in.load(Relaxed),
                transfers_out: h.transfers_out.load(Relaxed),
                classes,
            };
            if !hm.is_zero() {
                heaps.push(hm);
            }
        }
        let hd = &self.hardening;
        MetricsSnapshot {
            heaps,
            lock_wait: self.lock_wait.snapshot(),
            lock_hold: self.lock_hold.snapshot(),
            transfer_fullness: self.transfer_fullness.snapshot(),
            magazine_fill: self.magazine_fill.snapshot(),
            hardening: HardeningMetrics {
                corruption_reports: hd[0].load(Relaxed),
                quarantined: hd[1].load(Relaxed),
                chunk_reclaims: hd[2].load(Relaxed),
                rescued_allocations: hd[3].load(Relaxed),
            },
            registry: RegistryMetrics {
                occupancy: self.registry[0].load(Relaxed),
                capacity: self.registry[1].load(Relaxed),
                overflowed: self.registry[2].load(Relaxed) != 0,
            },
        }
    }
}

/// One size class's counters within one heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Size-class index.
    pub class: usize,
    /// Allocations served (magazine + locked).
    pub allocs: u64,
    /// Frees applied (magazine + locked).
    pub frees: u64,
    /// Deferred remote frees pushed toward this heap/class.
    pub remote_frees: u64,
    /// Operations that bypassed the heap lock via a magazine.
    pub magazine_ops: u64,
    /// Magazine refills (dry magazine pulled a batch).
    pub refills: u64,
    /// Magazine flushes (full magazine returned a batch).
    pub flushes: u64,
}

impl ClassMetrics {
    fn is_zero(&self) -> bool {
        self.allocs == 0
            && self.frees == 0
            && self.remote_frees == 0
            && self.magazine_ops == 0
            && self.refills == 0
            && self.flushes == 0
    }

    fn delta(&self, base: &ClassMetrics) -> ClassMetrics {
        ClassMetrics {
            class: self.class,
            allocs: self.allocs.saturating_sub(base.allocs),
            frees: self.frees.saturating_sub(base.frees),
            remote_frees: self.remote_frees.saturating_sub(base.remote_frees),
            magazine_ops: self.magazine_ops.saturating_sub(base.magazine_ops),
            refills: self.refills.saturating_sub(base.refills),
            flushes: self.flushes.saturating_sub(base.flushes),
        }
    }
}

/// One heap's counters and its per-class breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapMetrics {
    /// Heap index (0 = global heap).
    pub heap: usize,
    /// Lock acquisitions on this heap's lock.
    pub lock_acquires: u64,
    /// Virtually contended acquisitions.
    pub lock_contended: u64,
    /// Total virtual units spent waiting on contended acquisitions.
    pub lock_wait_units: u64,
    /// Total virtual units the lock was held.
    pub lock_hold_units: u64,
    /// Superblocks received from the global heap.
    pub transfers_in: u64,
    /// Superblocks surrendered to the global heap.
    pub transfers_out: u64,
    /// Per-class activity (classes with any activity only).
    pub classes: Vec<ClassMetrics>,
}

impl HeapMetrics {
    fn is_zero(&self) -> bool {
        self.lock_acquires == 0
            && self.transfers_in == 0
            && self.transfers_out == 0
            && self.classes.is_empty()
    }

    /// Sum of `allocs` across classes.
    pub fn total_allocs(&self) -> u64 {
        self.classes.iter().map(|c| c.allocs).sum()
    }

    /// Sum of `frees` across classes.
    pub fn total_frees(&self) -> u64 {
        self.classes.iter().map(|c| c.frees).sum()
    }
}

/// Hardening visibility: corruption and OOM-recovery totals, surfaced
/// so harness summaries see them without installing a corruption hook.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardeningMetrics {
    /// Corrupt operations detected and rejected (`CorruptionLog::total`).
    pub corruption_reports: u64,
    /// Blocks quarantined instead of recycled.
    pub quarantined: u64,
    /// Empty-superblock chunks reclaimed by OOM recovery.
    pub chunk_reclaims: u64,
    /// Allocations that succeeded only thanks to OOM recovery.
    pub rescued_allocations: u64,
}

impl HardeningMetrics {
    fn delta(&self, base: &HardeningMetrics) -> HardeningMetrics {
        HardeningMetrics {
            corruption_reports: self.corruption_reports.saturating_sub(base.corruption_reports),
            quarantined: self.quarantined.saturating_sub(base.quarantined),
            chunk_reclaims: self.chunk_reclaims.saturating_sub(base.chunk_reclaims),
            rescued_allocations: self
                .rescued_allocations
                .saturating_sub(base.rescued_allocations),
        }
    }
}

/// Superblock-registry visibility: the lock-free registry that
/// validates masked metadata lookups is a fixed open-addressed table;
/// when it fills, an overflow latch trips and `contains` degrades to
/// header-only validation (ROADMAP's "degraded mode deserves a
/// gauge"). These are absolute gauges sampled at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryMetrics {
    /// Live entries in the registry (tombstones excluded).
    pub occupancy: u64,
    /// Slot capacity of the fixed table.
    pub capacity: u64,
    /// Whether the overflow latch has tripped (sticky: once degraded,
    /// the registry stays degraded for the allocator's lifetime).
    pub overflowed: bool,
}

impl RegistryMetrics {
    /// Occupancy as a fraction of capacity (0.0 for a zero-capacity /
    /// unsampled gauge).
    pub fn occupancy_ratio(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.capacity as f64
        }
    }
}

/// One size class summed across all heaps (see
/// [`MetricsSnapshot::class_totals`]) — the coordinate system the
/// feedback controller works in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTotals {
    /// Allocations served (magazine + locked).
    pub allocs: u64,
    /// Frees applied (magazine + locked).
    pub frees: u64,
    /// Deferred remote frees.
    pub remote_frees: u64,
    /// Operations that bypassed the heap lock via a magazine.
    pub magazine_ops: u64,
    /// Magazine refills.
    pub refills: u64,
    /// Magazine flushes.
    pub flushes: u64,
}

impl ClassTotals {
    /// Total allocator operations (allocs + frees) on the class.
    pub fn ops(&self) -> u64 {
        self.allocs + self.frees
    }

    /// Share of operations the front-end absorbed without a heap lock,
    /// in percent (100 when the class saw no traffic, so an idle class
    /// never reads as "needs a bigger magazine").
    pub fn bypass_pct(&self) -> u64 {
        (self.magazine_ops * 100).checked_div(self.ops()).unwrap_or(100)
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Heaps with any recorded activity, ascending by index.
    pub heaps: Vec<HeapMetrics>,
    /// Contended lock waits (virtual units).
    pub lock_wait: HistogramSnapshot,
    /// Lock hold durations (virtual units).
    pub lock_hold: HistogramSnapshot,
    /// Superblock fullness (percent) at global↔local transfer.
    pub transfer_fullness: HistogramSnapshot,
    /// Magazine occupancy at refill/flush boundaries.
    pub magazine_fill: HistogramSnapshot,
    /// Corruption / OOM-recovery gauges.
    pub hardening: HardeningMetrics,
    /// Superblock-registry occupancy / degraded-mode gauges.
    pub registry: RegistryMetrics,
}

impl MetricsSnapshot {
    /// Activity recorded since `base` (counter-wise saturating
    /// subtraction; heaps/classes that saw no new activity drop out).
    pub fn delta(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let heaps = self
            .heaps
            .iter()
            .map(|h| {
                let empty;
                let b = match base.heaps.iter().find(|b| b.heap == h.heap) {
                    Some(b) => b,
                    None => {
                        empty = HeapMetrics {
                            heap: h.heap,
                            lock_acquires: 0,
                            lock_contended: 0,
                            lock_wait_units: 0,
                            lock_hold_units: 0,
                            transfers_in: 0,
                            transfers_out: 0,
                            classes: Vec::new(),
                        };
                        &empty
                    }
                };
                let zero = |class| ClassMetrics {
                    class,
                    allocs: 0,
                    frees: 0,
                    remote_frees: 0,
                    magazine_ops: 0,
                    refills: 0,
                    flushes: 0,
                };
                HeapMetrics {
                    heap: h.heap,
                    lock_acquires: h.lock_acquires.saturating_sub(b.lock_acquires),
                    lock_contended: h.lock_contended.saturating_sub(b.lock_contended),
                    lock_wait_units: h.lock_wait_units.saturating_sub(b.lock_wait_units),
                    lock_hold_units: h.lock_hold_units.saturating_sub(b.lock_hold_units),
                    transfers_in: h.transfers_in.saturating_sub(b.transfers_in),
                    transfers_out: h.transfers_out.saturating_sub(b.transfers_out),
                    classes: h
                        .classes
                        .iter()
                        .map(|c| {
                            c.delta(
                                &b.classes
                                    .iter()
                                    .find(|x| x.class == c.class)
                                    .copied()
                                    .unwrap_or_else(|| zero(c.class)),
                            )
                        })
                        .filter(|c| !c.is_zero())
                        .collect(),
                }
            })
            .filter(|h| !h.is_zero())
            .collect();
        MetricsSnapshot {
            heaps,
            lock_wait: self.lock_wait.delta(&base.lock_wait),
            lock_hold: self.lock_hold.delta(&base.lock_hold),
            transfer_fullness: self.transfer_fullness.delta(&base.transfer_fullness),
            magazine_fill: self.magazine_fill.delta(&base.magazine_fill),
            hardening: self.hardening.delta(&base.hardening),
            // Gauges, not counters: a delta keeps the later sample.
            registry: self.registry,
        }
    }

    /// Total allocations across all heaps and classes.
    pub fn total_allocs(&self) -> u64 {
        self.heaps.iter().map(|h| h.total_allocs()).sum()
    }

    /// Total frees across all heaps and classes.
    pub fn total_frees(&self) -> u64 {
        self.heaps.iter().map(|h| h.total_frees()).sum()
    }

    /// One size class's counters aggregated across every heap — the
    /// feedback controller's per-class sensor (it steers capacity per
    /// class, not per heap × class).
    pub fn class_totals(&self, class: usize) -> ClassTotals {
        let mut t = ClassTotals::default();
        for h in &self.heaps {
            for c in h.classes.iter().filter(|c| c.class == class) {
                t.allocs += c.allocs;
                t.frees += c.frees;
                t.remote_frees += c.remote_frees;
                t.magazine_ops += c.magazine_ops;
                t.refills += c.refills;
                t.flushes += c.flushes;
            }
        }
        t
    }

    /// Superblock transfers in either direction summed across heaps —
    /// the controller's ping-pong sensor.
    pub fn total_transfers(&self) -> u64 {
        self.heaps
            .iter()
            .map(|h| h.transfers_in + h.transfers_out)
            .sum()
    }

    /// Serialize to JSON (the form the harness writes next to its
    /// summary tables). Deterministic member order.
    pub fn to_json(&self) -> String {
        let heaps = self
            .heaps
            .iter()
            .map(|h| {
                let classes = h
                    .classes
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("class", JsonValue::Uint(c.class as u64)),
                            ("allocs", JsonValue::Uint(c.allocs)),
                            ("frees", JsonValue::Uint(c.frees)),
                            ("remote_frees", JsonValue::Uint(c.remote_frees)),
                            ("magazine_ops", JsonValue::Uint(c.magazine_ops)),
                            ("refills", JsonValue::Uint(c.refills)),
                            ("flushes", JsonValue::Uint(c.flushes)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("heap", JsonValue::Uint(h.heap as u64)),
                    ("lock_acquires", JsonValue::Uint(h.lock_acquires)),
                    ("lock_contended", JsonValue::Uint(h.lock_contended)),
                    ("lock_wait_units", JsonValue::Uint(h.lock_wait_units)),
                    ("lock_hold_units", JsonValue::Uint(h.lock_hold_units)),
                    ("transfers_in", JsonValue::Uint(h.transfers_in)),
                    ("transfers_out", JsonValue::Uint(h.transfers_out)),
                    ("classes", JsonValue::Arr(classes)),
                ])
            })
            .collect();
        let hist = |h: &HistogramSnapshot| {
            obj(vec![
                (
                    "buckets",
                    JsonValue::Arr(h.buckets.iter().map(|&b| JsonValue::Uint(b)).collect()),
                ),
                ("count", JsonValue::Uint(h.count)),
                ("sum", JsonValue::Uint(h.sum)),
                ("max", JsonValue::Uint(h.max)),
            ])
        };
        obj(vec![
            ("heaps", JsonValue::Arr(heaps)),
            ("lock_wait", hist(&self.lock_wait)),
            ("lock_hold", hist(&self.lock_hold)),
            ("transfer_fullness", hist(&self.transfer_fullness)),
            ("magazine_fill", hist(&self.magazine_fill)),
            (
                "hardening",
                obj(vec![
                    (
                        "corruption_reports",
                        JsonValue::Uint(self.hardening.corruption_reports),
                    ),
                    ("quarantined", JsonValue::Uint(self.hardening.quarantined)),
                    (
                        "chunk_reclaims",
                        JsonValue::Uint(self.hardening.chunk_reclaims),
                    ),
                    (
                        "rescued_allocations",
                        JsonValue::Uint(self.hardening.rescued_allocations),
                    ),
                ]),
            ),
            (
                "registry",
                obj(vec![
                    ("occupancy", JsonValue::Uint(self.registry.occupancy)),
                    ("capacity", JsonValue::Uint(self.registry.capacity)),
                    ("overflowed", JsonValue::Bool(self.registry.overflowed)),
                ]),
            ),
        ])
        .to_json()
    }

    /// Parse a JSON snapshot (the inverse of [`to_json`](Self::to_json)).
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(json)?;
        let u = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing numeric '{key}'"))
        };
        let hist = |key: &str| -> Result<HistogramSnapshot, String> {
            let h = doc.get(key).ok_or_else(|| format!("missing '{key}'"))?;
            Ok(HistogramSnapshot {
                buckets: h
                    .get("buckets")
                    .and_then(|b| b.as_array())
                    .ok_or("missing histogram buckets")?
                    .iter()
                    .map(|b| b.as_u64().ok_or("bad bucket"))
                    .collect::<Result<_, _>>()?,
                count: u(h, "count")?,
                sum: u(h, "sum")?,
                max: u(h, "max")?,
            })
        };
        let mut heaps = Vec::new();
        for h in doc
            .get("heaps")
            .and_then(|v| v.as_array())
            .ok_or("missing 'heaps' array")?
        {
            let mut classes = Vec::new();
            for c in h
                .get("classes")
                .and_then(|v| v.as_array())
                .ok_or("heap missing 'classes'")?
            {
                classes.push(ClassMetrics {
                    class: u(c, "class")? as usize,
                    allocs: u(c, "allocs")?,
                    frees: u(c, "frees")?,
                    remote_frees: u(c, "remote_frees")?,
                    magazine_ops: u(c, "magazine_ops")?,
                    // Added with the feedback controller; default to 0
                    // so snapshots written before it still parse.
                    refills: u(c, "refills").unwrap_or(0),
                    flushes: u(c, "flushes").unwrap_or(0),
                });
            }
            heaps.push(HeapMetrics {
                heap: u(h, "heap")? as usize,
                lock_acquires: u(h, "lock_acquires")?,
                lock_contended: u(h, "lock_contended")?,
                lock_wait_units: u(h, "lock_wait_units")?,
                lock_hold_units: u(h, "lock_hold_units")?,
                transfers_in: u(h, "transfers_in")?,
                transfers_out: u(h, "transfers_out")?,
                classes,
            });
        }
        let hd = doc.get("hardening").ok_or("missing 'hardening'")?;
        let rg = doc.get("registry").ok_or("missing 'registry'")?;
        Ok(MetricsSnapshot {
            heaps,
            lock_wait: hist("lock_wait")?,
            lock_hold: hist("lock_hold")?,
            transfer_fullness: hist("transfer_fullness")?,
            magazine_fill: hist("magazine_fill")?,
            hardening: HardeningMetrics {
                corruption_reports: u(hd, "corruption_reports")?,
                quarantined: u(hd, "quarantined")?,
                chunk_reclaims: u(hd, "chunk_reclaims")?,
                rescued_allocations: u(hd, "rescued_allocations")?,
            },
            registry: RegistryMetrics {
                occupancy: u(rg, "occupancy")?,
                capacity: u(rg, "capacity")?,
                overflowed: rg
                    .get("overflowed")
                    .and_then(|v| v.as_bool())
                    .ok_or("missing boolean 'overflowed'")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1, "zeros");
        assert_eq!(s.buckets[1], 1, "[1,2)");
        assert_eq!(s.buckets[2], 2, "[2,4)");
        assert_eq!(s.buckets[11], 1, "[1024,2048)");
    }

    #[test]
    fn histogram_percentile_and_mean() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 8, "p50 in the [4,8) bucket -> bound 8");
        assert_eq!(s.percentile(1.0), 1 << 21);
        assert!(s.mean() > 4.0);
    }

    #[test]
    fn registry_counts_per_heap_and_class() {
        let r = MetricsRegistry::new(4, 8);
        r.on_alloc(1, 2, false);
        r.on_alloc(1, 2, true);
        r.on_free(1, 2, true);
        r.on_remote_free(3, 5);
        r.on_lock(1, 0);
        r.on_lock(1, 120);
        r.on_unlock(1, 40);
        r.on_transfer_to_global(1, 12);
        r.on_transfer_from_global(2, 80);
        let s = r.snapshot();
        assert_eq!(s.heaps.len(), 3);
        let h1 = &s.heaps[0];
        assert_eq!(h1.heap, 1);
        assert_eq!(h1.lock_acquires, 2);
        assert_eq!(h1.lock_contended, 1);
        assert_eq!(h1.lock_wait_units, 120);
        assert_eq!(h1.lock_hold_units, 40);
        assert_eq!(h1.transfers_out, 1);
        assert_eq!(h1.classes.len(), 1);
        assert_eq!(h1.classes[0].allocs, 2);
        assert_eq!(h1.classes[0].frees, 1);
        assert_eq!(h1.classes[0].magazine_ops, 2);
        assert_eq!(s.heaps[1].heap, 2);
        assert_eq!(s.heaps[1].transfers_in, 1);
        assert_eq!(s.heaps[2].classes[0].remote_frees, 1);
        assert_eq!(s.heaps[2].classes[0].frees, 1, "remote free is a free");
        assert_eq!(s.total_allocs(), 2);
        assert_eq!(s.transfer_fullness.count, 2);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let r = MetricsRegistry::new(2, 2);
        r.on_alloc(99, 0, false);
        r.on_alloc(0, 99, false);
        r.on_lock(99, 5);
        assert!(r.snapshot().heaps.is_empty());
    }

    #[test]
    fn delta_subtracts_and_drops_quiet_entries() {
        let r = MetricsRegistry::new(4, 4);
        r.on_alloc(1, 1, false);
        r.on_alloc(2, 0, false);
        let base = r.snapshot();
        r.on_alloc(1, 1, false);
        r.on_alloc(1, 1, false);
        r.on_lock(3, 50);
        let d = r.snapshot().delta(&base);
        assert_eq!(d.heaps.len(), 2, "heap 2 saw nothing new: {d:?}");
        assert_eq!(d.heaps[0].heap, 1);
        assert_eq!(d.heaps[0].classes[0].allocs, 2);
        assert_eq!(d.heaps[1].heap, 3);
        assert_eq!(d.heaps[1].lock_contended, 1);
        assert_eq!(d.lock_wait.count, 1);
    }

    #[test]
    fn hardening_gauges_are_absolute() {
        let r = MetricsRegistry::new(1, 1);
        r.set_hardening(3, 2, 1, 4);
        r.set_hardening(5, 2, 1, 4);
        let s = r.snapshot();
        assert_eq!(s.hardening.corruption_reports, 5);
        assert_eq!(s.hardening.rescued_allocations, 4);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let r = MetricsRegistry::new(3, 3);
        r.on_alloc(1, 2, true);
        r.on_lock(1, 7);
        r.set_hardening(1, 0, 2, 3);
        r.set_registry(17, 4096, true);
        let s = r.snapshot();
        let back = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn refill_flush_counters_and_class_totals() {
        let r = MetricsRegistry::new(4, 8);
        r.on_alloc(1, 2, true);
        r.on_alloc(2, 2, true);
        r.on_free(1, 2, true);
        r.on_alloc(1, 2, false);
        r.on_magazine_refill(1, 2);
        r.on_magazine_refill(2, 2);
        r.on_magazine_flush(1, 2);
        let s = r.snapshot();
        let t = s.class_totals(2);
        assert_eq!(t.allocs, 3);
        assert_eq!(t.frees, 1);
        assert_eq!(t.magazine_ops, 3);
        assert_eq!(t.refills, 2, "refills aggregate across heaps");
        assert_eq!(t.flushes, 1);
        assert_eq!(t.bypass_pct(), 75);
        assert_eq!(s.class_totals(7).bypass_pct(), 100, "idle class");
        // Refill-only activity must survive snapshotting and deltas.
        r.on_magazine_refill(1, 5);
        let d = r.snapshot().delta(&s);
        assert_eq!(d.class_totals(5).refills, 1);
        assert_eq!(d.class_totals(2).refills, 0);
        // And the JSON round-trip carries the new counters.
        let back = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn registry_gauges_are_absolute_and_survive_delta() {
        let r = MetricsRegistry::new(1, 1);
        r.set_registry(10, 4096, false);
        let base = r.snapshot();
        assert_eq!(base.registry.occupancy, 10);
        assert!(!base.registry.overflowed);
        assert!((base.registry.occupancy_ratio() - 10.0 / 4096.0).abs() < 1e-12);
        r.set_registry(4096, 4096, true);
        let d = r.snapshot().delta(&base);
        assert_eq!(d.registry.occupancy, 4096, "gauge keeps the later sample");
        assert!(d.registry.overflowed);
    }
}
