//! Self-contained JSON reading/writing for the telemetry formats.
//!
//! The trace and metrics exports are *artifacts* — the golden-trace
//! test byte-compares them and `hoardscope`/Perfetto parse them — so
//! their encoding must be fully deterministic and cannot depend on a
//! particular serde backend being present (the workspace builds against
//! stub third-party crates in offline dev environments). This module
//! is a minimal, dependency-free JSON value model with a writer that
//! preserves insertion order and a recursive-descent parser; the
//! public telemetry types keep their serde derives for interop, but
//! every format this crate itself reads or writes goes through here.

use std::fmt::Write as _;

/// A JSON document node. Object member order is preserved (and written)
/// in insertion order — determinism is the point.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits `u64` (the common case for
    /// counters and virtual timestamps; kept exact).
    Uint(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` otherwise).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Exact `u64` value (`None` for non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean value (`None` otherwise).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String contents (`None` otherwise).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace), deterministically.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description (with byte offset) for
    /// malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience: an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(n) = token.parse::<u64>() {
        return Ok(JsonValue::Uint(n));
    }
    token
        .parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("bad number '{token}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("empty char")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_document() {
        let doc = obj(vec![
            ("name", JsonValue::Str("vcpu-0 \"main\"\n".into())),
            ("n", JsonValue::Uint(u64::MAX)),
            ("pi", JsonValue::Float(3.5)),
            ("flag", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Arr(vec![JsonValue::Uint(1), JsonValue::Uint(2)]),
            ),
        ]);
        let text = doc.to_json();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_json(), text, "stable re-serialization");
    }

    #[test]
    fn u64_values_stay_exact() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn accessors_navigate() {
        let v = JsonValue::parse(r#"{"a":{"b":[10,"x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(10));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = JsonValue::parse(" { \"k\" : \"a\\u0041\\n\" , \"n\" : -2.5 } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("aA\n"));
        assert_eq!(v.get("n"), Some(&JsonValue::Float(-2.5)));
    }

    #[test]
    fn malformed_input_errors() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,2").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }
}
