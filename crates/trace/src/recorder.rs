//! [`TrcRecorder`] — the attachable capture device behind
//! `hoardscope record`.
//!
//! Attached to an allocator exactly like [`TraceSink`](crate::TraceSink)
//! (null-default pointer, one relaxed load when detached), but instead
//! of address-free [`Event`](crate::Event)s it captures the *replayable*
//! stream: every `allocate`/`deallocate` with its size, site tag,
//! emitting virtual processor, virtual timestamp, and a **pointer
//! token**. Tokens are dense ids minted at allocation and retired at
//! free, so a recording of a seeded run is byte-identical across
//! processes even though the OS hands out different addresses — the
//! property the golden-fixture test pins down.
//!
//! **Timing fidelity**: each captured op carries a `[start, end]`
//! virtual-time span (the allocator stamps `start` before entering its
//! own paths and patches `end` after leaving them). At
//! [`TrcRecorder::trace`] time the gap between one op's end and the
//! next op's start on the same processor — the application's own
//! compute — is materialized as a synthesized [`TrcOp::Work`] record,
//! so a replay that re-executes the allocation schedule *and* charges
//! the recorded inter-op work lands on the recorded makespan instead of
//! undershooting it.
//!
//! Each captured op charges [`Cost::TraceEvent`], the same honesty rule
//! as the event tracer: capture overhead shows up in virtual makespan
//! instead of being pretended away.
//!
//! Concurrency: per-processor record tracks behind per-track mutexes
//! (uncontended — a proc only writes its own track; the lock exists so
//! out-of-range procs and `finish` stay safe), plus one global token
//! map mutex. Real-time lock costs never leak into virtual time, so
//! determinism is unaffected.

use crate::trc::{TrcOp, TrcRecord, TrcTrace};
use hoard_sim::{charge_cost, current_proc, now, Cost};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capture counters, for overhead reports and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Allocations captured.
    pub allocs: u64,
    /// Frees captured (matched to a live token).
    pub frees: u64,
    /// Frees of addresses never seen by this recorder (allocated before
    /// attach, or via a path the recorder does not cover). Dropped from
    /// the trace — a replay could not resolve them.
    pub unmatched_frees: u64,
    /// Ops captured from processors outside the track range (harness
    /// threads, teardown); they land on the shared overflow stream.
    pub spilled: u64,
}

struct TokenMap {
    by_addr: HashMap<usize, u64>,
    next: u64,
}

/// One captured op with its virtual-time span.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u64,
    end: u64,
    op: TrcOp,
}

/// One capture stream: spans in program order, locked independently of
/// every other stream.
type Track = Mutex<Vec<Span>>;

/// The attachable `.trc` capture device. See the module docs.
pub struct TrcRecorder {
    seed: u64,
    config: String,
    /// Per-proc tracks of op spans; deltas and inter-op `Work` records
    /// are computed at [`TrcRecorder::trace`] time.
    tracks: Box<[Track]>,
    /// Ops from procs outside `0..tracks.len()`, all on one overflow
    /// stream (index `tracks.len()` in the finished trace). No `Work`
    /// synthesis: the stream mixes procs, so gaps are meaningless.
    spill: Track,
    tokens: Mutex<TokenMap>,
    unmatched_frees: AtomicU64,
    spilled: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl TrcRecorder {
    /// A recorder whose header will carry `seed` and `config`, with
    /// lock-free-ish tracks for procs `0..tracks`.
    pub fn new(seed: u64, config: &str, tracks: usize) -> Self {
        TrcRecorder {
            seed,
            config: config.to_string(),
            tracks: (0..tracks.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            spill: Mutex::new(Vec::new()),
            tokens: Mutex::new(TokenMap {
                by_addr: HashMap::new(),
                next: 0,
            }),
            unmatched_frees: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    fn push(&self, start: u64, op: TrcOp) {
        charge_cost(Cost::TraceEvent);
        let end = now();
        let proc = current_proc();
        let span = Span {
            start: start.min(end),
            end,
            op,
        };
        match self.tracks.get(proc) {
            Some(track) => track.lock().unwrap().push(span),
            None => {
                self.spilled.fetch_add(1, Ordering::Relaxed);
                self.spill.lock().unwrap().push(span);
            }
        }
    }

    /// Capture a successful allocation of `size` bytes at `addr` tagged
    /// with `site`, minting a fresh pointer token for it. `start_ts` is
    /// the caller's clock from *before* it entered the allocator, so
    /// the span covers the allocation's own cost.
    pub fn record_alloc(&self, addr: usize, size: usize, site: u32, start_ts: u64) {
        let token = {
            let mut map = self.tokens.lock().unwrap();
            let token = map.next;
            map.next += 1;
            // Address reuse after a free re-mints: insert overwrites.
            map.by_addr.insert(addr, token);
            token
        };
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.push(
            start_ts,
            TrcOp::Alloc {
                token,
                size: u32::try_from(size).unwrap_or(u32::MAX),
                site,
            },
        );
    }

    /// Capture a free of `addr`, retiring its token. Frees of addresses
    /// this recorder never saw allocated are counted and dropped.
    ///
    /// Must be called *before* the block is actually released (so a
    /// concurrent re-allocation of the address cannot overtake the
    /// token retirement); the caller patches the span's end with
    /// [`finish_op`](Self::finish_op) once the free completes.
    pub fn record_free(&self, addr: usize, start_ts: u64) {
        let token = self.tokens.lock().unwrap().by_addr.remove(&addr);
        match token {
            Some(token) => {
                self.frees.fetch_add(1, Ordering::Relaxed);
                self.push(start_ts, TrcOp::Free { token });
            }
            None => {
                self.unmatched_frees.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Extend the end of the calling processor's most recent captured
    /// op to `end_ts` (no-op for spilled procs). Lets the allocator
    /// close a free's span after the deallocation work is done, so the
    /// gap to the next op doesn't double-count cost the replay will
    /// re-execute.
    pub fn finish_op(&self, end_ts: u64) {
        if let Some(track) = self.tracks.get(current_proc()) {
            if let Some(last) = track.lock().unwrap().last_mut() {
                last.end = last.end.max(end_ts);
            }
        }
    }

    /// Capture counters so far.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            unmatched_frees: self.unmatched_frees.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
        }
    }

    /// Assemble everything captured so far into a [`TrcTrace`]
    /// (absolute timestamps become per-stream deltas, inter-op gaps
    /// become `Work` records). Call at a quiescent point — after
    /// `Machine::run` returns — for a complete trace. The overflow
    /// stream, if any ops spilled, is appended after the per-proc
    /// streams, ordered by timestamp.
    pub fn trace(&self) -> TrcTrace {
        let mut streams = Vec::with_capacity(self.tracks.len() + 1);
        for track in self.tracks.iter() {
            streams.push(delta_encode(&track.lock().unwrap(), true));
        }
        let mut spill = self.spill.lock().unwrap().clone();
        if !spill.is_empty() {
            // Spill mixes procs; timestamp order is the only defensible
            // program order for it. Sort is stable, preserving arrival
            // order between equal stamps.
            spill.sort_by_key(|s| s.end);
            streams.push(delta_encode(&spill, false));
        }
        // Drop empty trailing streams so a P=1 capture is 1 stream.
        while streams.last().is_some_and(|s| s.is_empty()) {
            streams.pop();
        }
        TrcTrace {
            seed: self.seed,
            config: self.config.clone(),
            streams,
        }
    }

    /// [`TrcRecorder::trace`] encoded to `.trc` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.trace().encode()
    }
}

/// Turn spans into delta-stamped records. With `fill_gaps`, the
/// stream's inter-op idle time — the application's own compute — is
/// materialized as `Work` records so replay reproduces the recorded
/// pacing, not just the recorded schedule.
fn delta_encode(spans: &[Span], fill_gaps: bool) -> Vec<TrcRecord> {
    let mut out = Vec::with_capacity(spans.len());
    let mut prev = 0u64;
    for s in spans {
        if fill_gaps {
            let mut gap = s.start.saturating_sub(prev);
            while gap > 0 {
                let units = gap.min(u64::from(u32::MAX));
                out.push(TrcRecord {
                    dt: units,
                    op: TrcOp::Work {
                        units: units as u32,
                    },
                });
                prev += units;
                gap -= units;
            }
        }
        out.push(TrcRecord {
            dt: s.end.saturating_sub(prev),
            op: s.op,
        });
        prev = prev.max(s.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_mints_and_retires_tokens() {
        let r = TrcRecorder::new(42, "unit", 1);
        r.record_alloc(0x1000, 64, 0, now());
        r.record_alloc(0x2000, 128, 5, now());
        r.record_free(0x1000, now());
        // Address reuse gets a fresh token.
        r.record_alloc(0x1000, 32, 0, now());
        let t = r.trace();
        assert_eq!(t.seed, 42);
        let ops: Vec<TrcOp> = t.streams.iter().flatten().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                TrcOp::Alloc { token: 0, size: 64, site: 0 },
                TrcOp::Alloc { token: 1, size: 128, site: 5 },
                TrcOp::Free { token: 0 },
                TrcOp::Alloc { token: 2, size: 32, site: 0 },
            ],
            "back-to-back ops synthesize no Work"
        );
        let s = r.stats();
        assert_eq!((s.allocs, s.frees, s.unmatched_frees), (3, 1, 0));
    }

    #[test]
    fn unmatched_free_is_counted_not_recorded() {
        let r = TrcRecorder::new(0, "unit", 1);
        r.record_free(0xDEAD, now());
        assert_eq!(r.stats().unmatched_frees, 1);
        assert!(r.trace().is_empty());
    }

    #[test]
    fn capture_charges_virtual_time() {
        let r = TrcRecorder::new(0, "unit", 1);
        let before = hoard_sim::now();
        r.record_alloc(0x10, 8, 0, before);
        let per_event = hoard_sim::CostModel::current().trace_event;
        assert_eq!(hoard_sim::now(), before + per_event);
    }

    #[test]
    fn inter_op_gaps_become_work_records() {
        hoard_sim::switch_context(0, 0); // pin to track 0, not the spill
        let r = TrcRecorder::new(0, "gaps", 1);
        hoard_sim::work(100); // app compute before the first op
        r.record_alloc(0x10, 8, 0, now());
        hoard_sim::work(40); // app compute between ops
        r.record_alloc(0x20, 8, 0, now());
        let recs: Vec<TrcRecord> = r.trace().streams.concat();
        assert_eq!(recs.len(), 4, "two ops, two synthesized gaps: {recs:?}");
        assert_eq!(recs[0].op, TrcOp::Work { units: 100 });
        assert_eq!(recs[0].dt, 100);
        assert!(matches!(recs[1].op, TrcOp::Alloc { .. }));
        assert_eq!(recs[2].op, TrcOp::Work { units: 40 });
        assert!(matches!(recs[3].op, TrcOp::Alloc { .. }));
        // Total recorded time = deltas summed = final clock.
        assert_eq!(recs.iter().map(|r| r.dt).sum::<u64>(), now());
    }

    #[test]
    fn finish_op_extends_the_span_so_gaps_exclude_op_cost() {
        hoard_sim::switch_context(0, 0); // pin to track 0, not the spill
        let r = TrcRecorder::new(0, "finish", 1);
        r.record_alloc(0x10, 8, 0, now());
        let t0 = now();
        r.record_free(0x10, t0);
        hoard_sim::work(25); // the deallocation's own cost
        r.finish_op(now());
        hoard_sim::work(10); // app compute after the free completes
        r.record_alloc(0x20, 8, 0, now());
        let recs: Vec<TrcRecord> = r.trace().streams.concat();
        let works: Vec<u32> = recs
            .iter()
            .filter_map(|r| match r.op {
                TrcOp::Work { units } => Some(units),
                _ => None,
            })
            .collect();
        assert_eq!(works, vec![10], "only the post-free app gap: {recs:?}");
    }

    #[test]
    fn spans_become_deltas() {
        let spans = vec![
            Span { start: 0, end: 100, op: TrcOp::Work { units: 1 } },
            Span { start: 100, end: 130, op: TrcOp::Work { units: 1 } },
            Span { start: 130, end: 130, op: TrcOp::Work { units: 1 } },
        ];
        let deltas: Vec<u64> = delta_encode(&spans, true).iter().map(|r| r.dt).collect();
        assert_eq!(deltas, vec![100, 30, 0]);
    }

    #[test]
    fn roundtrips_through_trc_bytes() {
        let r = TrcRecorder::new(7, "roundtrip", 2);
        r.record_alloc(0xA, 24, 3, now());
        r.record_free(0xA, now());
        let bytes = r.to_bytes();
        let t = TrcTrace::decode(&bytes).expect("decode");
        assert_eq!(t.config, "roundtrip");
        assert_eq!(t.allocs(), 1);
        let site = t.streams.iter().flatten().find_map(|rec| match rec.op {
            TrcOp::Alloc { site, .. } => Some(site),
            _ => None,
        });
        assert_eq!(site, Some(3), "site tag survives the wire");
    }
}
