//! [`TrcRecorder`] — the attachable capture device behind
//! `hoardscope record`.
//!
//! Attached to an allocator exactly like [`TraceSink`](crate::TraceSink)
//! (null-default pointer, one relaxed load when detached), but instead
//! of address-free [`Event`](crate::Event)s it captures the *replayable*
//! stream: every `allocate`/`deallocate` with its size, emitting virtual
//! processor, virtual timestamp, and a **pointer token**. Tokens are
//! dense ids minted at allocation and retired at free, so a recording of
//! a seeded run is byte-identical across processes even though the OS
//! hands out different addresses — the property the golden-fixture test
//! pins down.
//!
//! Each captured op charges [`Cost::TraceEvent`], the same honesty rule
//! as the event tracer: capture overhead shows up in virtual makespan
//! instead of being pretended away.
//!
//! Concurrency: per-processor record tracks behind per-track mutexes
//! (uncontended — a proc only writes its own track; the lock exists so
//! out-of-range procs and `finish` stay safe), plus one global token
//! map mutex. Real-time lock costs never leak into virtual time, so
//! determinism is unaffected.

use crate::trc::{TrcOp, TrcRecord, TrcTrace};
use hoard_sim::{charge_cost, current_proc, now, Cost};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capture counters, for overhead reports and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Allocations captured.
    pub allocs: u64,
    /// Frees captured (matched to a live token).
    pub frees: u64,
    /// Frees of addresses never seen by this recorder (allocated before
    /// attach, or via a path the recorder does not cover). Dropped from
    /// the trace — a replay could not resolve them.
    pub unmatched_frees: u64,
    /// Ops captured from processors outside the track range (harness
    /// threads, teardown); they land on the shared overflow stream.
    pub spilled: u64,
}

struct TokenMap {
    by_addr: HashMap<usize, u64>,
    next: u64,
}

/// One capture stream: `(absolute virtual ts, op)` pairs in program
/// order, locked independently of every other stream.
type Track = Mutex<Vec<(u64, TrcOp)>>;

/// The attachable `.trc` capture device. See the module docs.
pub struct TrcRecorder {
    seed: u64,
    config: String,
    /// Per-proc tracks of `(absolute virtual ts, op)`; deltas are
    /// computed at [`TrcRecorder::trace`] time.
    tracks: Box<[Track]>,
    /// Ops from procs outside `0..tracks.len()`, all on one overflow
    /// stream (index `tracks.len()` in the finished trace).
    spill: Track,
    tokens: Mutex<TokenMap>,
    unmatched_frees: AtomicU64,
    spilled: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl TrcRecorder {
    /// A recorder whose header will carry `seed` and `config`, with
    /// lock-free-ish tracks for procs `0..tracks`.
    pub fn new(seed: u64, config: &str, tracks: usize) -> Self {
        TrcRecorder {
            seed,
            config: config.to_string(),
            tracks: (0..tracks.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            spill: Mutex::new(Vec::new()),
            tokens: Mutex::new(TokenMap {
                by_addr: HashMap::new(),
                next: 0,
            }),
            unmatched_frees: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    fn push(&self, op: TrcOp) {
        charge_cost(Cost::TraceEvent);
        let ts = now();
        let proc = current_proc();
        match self.tracks.get(proc) {
            Some(track) => track.lock().unwrap().push((ts, op)),
            None => {
                self.spilled.fetch_add(1, Ordering::Relaxed);
                self.spill.lock().unwrap().push((ts, op));
            }
        }
    }

    /// Capture a successful allocation of `size` bytes at `addr`,
    /// minting a fresh pointer token for it.
    pub fn record_alloc(&self, addr: usize, size: usize) {
        let token = {
            let mut map = self.tokens.lock().unwrap();
            let token = map.next;
            map.next += 1;
            // Address reuse after a free re-mints: insert overwrites.
            map.by_addr.insert(addr, token);
            token
        };
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.push(TrcOp::Alloc {
            token,
            size: u32::try_from(size).unwrap_or(u32::MAX),
        });
    }

    /// Capture a free of `addr`, retiring its token. Frees of addresses
    /// this recorder never saw allocated are counted and dropped.
    pub fn record_free(&self, addr: usize) {
        let token = self.tokens.lock().unwrap().by_addr.remove(&addr);
        match token {
            Some(token) => {
                self.frees.fetch_add(1, Ordering::Relaxed);
                self.push(TrcOp::Free { token });
            }
            None => {
                self.unmatched_frees.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Capture counters so far.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            unmatched_frees: self.unmatched_frees.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
        }
    }

    /// Assemble everything captured so far into a [`TrcTrace`]
    /// (absolute timestamps become per-stream deltas). Call at a
    /// quiescent point — after `Machine::run` returns — for a complete
    /// trace. The overflow stream, if any ops spilled, is appended
    /// after the per-proc streams, ordered by timestamp.
    pub fn trace(&self) -> TrcTrace {
        let mut streams = Vec::with_capacity(self.tracks.len() + 1);
        for track in self.tracks.iter() {
            streams.push(delta_encode(&track.lock().unwrap()));
        }
        let mut spill = self.spill.lock().unwrap().clone();
        if !spill.is_empty() {
            // Spill mixes procs; timestamp order is the only defensible
            // program order for it. Sort is stable, preserving arrival
            // order between equal stamps.
            spill.sort_by_key(|&(ts, _)| ts);
            streams.push(delta_encode(&spill));
        }
        // Drop empty trailing streams so a P=1 capture is 1 stream.
        while streams.last().is_some_and(|s| s.is_empty()) {
            streams.pop();
        }
        TrcTrace {
            seed: self.seed,
            config: self.config.clone(),
            streams,
        }
    }

    /// [`TrcRecorder::trace`] encoded to `.trc` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.trace().encode()
    }
}

fn delta_encode(recs: &[(u64, TrcOp)]) -> Vec<TrcRecord> {
    let mut prev = 0u64;
    recs.iter()
        .map(|&(ts, op)| {
            let dt = ts.saturating_sub(prev);
            prev = ts.max(prev);
            TrcRecord { dt, op }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_mints_and_retires_tokens() {
        let r = TrcRecorder::new(42, "unit", 1);
        r.record_alloc(0x1000, 64);
        r.record_alloc(0x2000, 128);
        r.record_free(0x1000);
        // Address reuse gets a fresh token.
        r.record_alloc(0x1000, 32);
        let t = r.trace();
        assert_eq!(t.seed, 42);
        let ops: Vec<TrcOp> = t.streams.iter().flatten().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                TrcOp::Alloc { token: 0, size: 64 },
                TrcOp::Alloc { token: 1, size: 128 },
                TrcOp::Free { token: 0 },
                TrcOp::Alloc { token: 2, size: 32 },
            ]
        );
        let s = r.stats();
        assert_eq!((s.allocs, s.frees, s.unmatched_frees), (3, 1, 0));
    }

    #[test]
    fn unmatched_free_is_counted_not_recorded() {
        let r = TrcRecorder::new(0, "unit", 1);
        r.record_free(0xDEAD);
        assert_eq!(r.stats().unmatched_frees, 1);
        assert!(r.trace().is_empty());
    }

    #[test]
    fn capture_charges_virtual_time() {
        let r = TrcRecorder::new(0, "unit", 1);
        let before = hoard_sim::now();
        r.record_alloc(0x10, 8);
        let per_event = hoard_sim::CostModel::current().trace_event;
        assert_eq!(hoard_sim::now(), before + per_event);
    }

    #[test]
    fn timestamps_become_deltas() {
        let recs = vec![
            (100, TrcOp::Work { units: 1 }),
            (130, TrcOp::Work { units: 1 }),
            (130, TrcOp::Work { units: 1 }),
        ];
        let deltas: Vec<u64> = delta_encode(&recs).iter().map(|r| r.dt).collect();
        assert_eq!(deltas, vec![100, 30, 0]);
    }

    #[test]
    fn roundtrips_through_trc_bytes() {
        let r = TrcRecorder::new(7, "roundtrip", 2);
        r.record_alloc(0xA, 24);
        r.record_free(0xA);
        let bytes = r.to_bytes();
        let t = TrcTrace::decode(&bytes).expect("decode");
        assert_eq!(t.config, "roundtrip");
        assert_eq!(t.allocs(), 1);
    }
}
