//! Superblocks: fixed-size chunks carved into equal blocks of one size
//! class.
//!
//! A superblock occupies one `S`-byte chunk from the
//! [`ChunkSource`](hoard_mem::ChunkSource). Its header lives at the
//! start of the chunk; block slots follow, each slot being one header
//! word (pointing back at the superblock — how `free(ptr)` finds home)
//! plus the class's payload. Freed blocks form an intrusive LIFO through
//! their payload's first word; never-yet-allocated blocks are carved
//! lazily with a bump index, so creating a superblock touches only its
//! header.
//!
//! All mutable fields are guarded by the *owning heap's* lock; the only
//! field read without it is `owner`, an atomic, which `free` uses to
//! find (and then verify under the lock) the heap to lock. Access is by
//! raw pointer throughout — no `&mut` references are formed, so aliasing
//! rules are respected even with concurrent readers of `owner`.

use crate::FULLNESS_GROUPS;
use hoard_mem::{write_header, HeaderWord, Tag, HEADER_SIZE};
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};

/// Magic value marking a live superblock header (helps catch wild
/// pointers in debug assertions).
pub(crate) const SB_MAGIC: u64 = 0x5B10_C0DE_5B10_C0DE;

/// Offset of the first block slot within the chunk (past the header,
/// rounded to a cache line so block payloads of distinct superblocks
/// never share a line with header metadata).
pub(crate) const fn blocks_offset() -> usize {
    hoard_mem::align_up(std::mem::size_of::<Superblock>(), hoard_mem::CACHE_LINE)
}

/// The in-chunk superblock header. `repr(C)` so the layout is stable
/// regardless of field reordering heuristics.
#[repr(C)]
pub(crate) struct Superblock {
    pub magic: u64,
    /// Size class index this superblock currently serves.
    pub class: u32,
    /// Payload bytes per block.
    pub block_size: u32,
    /// Bytes between consecutive block payloads (header + payload).
    pub stride: u32,
    /// Total block slots in this superblock.
    pub capacity: u32,
    /// Blocks currently allocated. Guarded by the owner heap's lock.
    pub in_use: u32,
    /// Next never-used slot index (lazy carving). Guarded.
    pub bump: u32,
    /// Intrusive LIFO of freed block payloads. Guarded.
    pub free_head: *mut u8,
    /// Intrusive doubly-linked list through the owning heap's fullness
    /// group (or empty list). Guarded.
    pub next: *mut Superblock,
    pub prev: *mut Superblock,
    /// Index of the owning heap (0 = global). Written under *both* the
    /// old and new owners' locks during migration; read lock-free by
    /// `free` to decide which lock to take.
    pub owner: AtomicUsize,
    /// Deferred remote-free stack: a Treiber LIFO of block payloads
    /// freed by non-owner threads, linked through each payload's first
    /// word. Pushed lock-free ([`push_remote`](Self::push_remote)),
    /// drained by the owner under its heap lock
    /// ([`take_remote`](Self::take_remote)). Blocks parked here still
    /// count as allocated (`in_use` undecremented), so the superblock
    /// can never be reformatted or released while the stack is
    /// non-empty.
    pub remote_head: AtomicPtr<u8>,
    /// Approximate length of the remote stack (relaxed counter; used
    /// only as a drain-pressure heuristic, never for accounting).
    pub remote_count: AtomicU32,
    /// Fullness group this superblock is currently linked into.
    pub group: u8,
    /// Eviction hysteresis latch: set when the superblock fills past the
    /// `1 − f` boundary, consumed when it crosses back below. Prevents a
    /// superblock whose occupancy random-walks around the boundary from
    /// triggering invariant restoration on every oscillation.
    pub armed: bool,
}

impl Superblock {
    /// Initialize the header of a fresh chunk at `chunk` (size
    /// `superblock_size`) for blocks of `block_size` bytes (class index
    /// `class`), owned by `owner`. `extra` bytes are reserved past each
    /// block's payload (hardened allocators put their canary word
    /// there; pass 0 for the paper's layout).
    ///
    /// # Safety
    ///
    /// `chunk` must point at the start of an exclusively owned,
    /// writable chunk of `superblock_size` bytes, 8-aligned.
    pub unsafe fn init(
        chunk: *mut u8,
        superblock_size: usize,
        class: u32,
        block_size: u32,
        owner: usize,
        extra: usize,
    ) -> *mut Superblock {
        let sb = chunk as *mut Superblock;
        let stride = hoard_mem::align_up(block_size as usize, 8) + HEADER_SIZE + extra;
        let capacity = (superblock_size - blocks_offset()) / stride;
        debug_assert!(capacity >= 1, "superblock must hold at least one block");
        sb.write(Superblock {
            magic: SB_MAGIC,
            class,
            block_size,
            stride: stride as u32,
            capacity: capacity as u32,
            in_use: 0,
            bump: 0,
            free_head: std::ptr::null_mut(),
            next: std::ptr::null_mut(),
            prev: std::ptr::null_mut(),
            owner: AtomicUsize::new(owner),
            remote_head: AtomicPtr::new(std::ptr::null_mut()),
            remote_count: AtomicU32::new(0),
            group: 0,
            armed: true,
        });
        sb
    }

    /// Reformat an *empty* superblock for a different size class
    /// (cross-class recycling of empty superblocks).
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock and `(*sb).in_use == 0`;
    /// `sb` must be unlinked from all lists. `extra` as in
    /// [`init`](Self::init).
    pub unsafe fn reformat(
        sb: *mut Superblock,
        superblock_size: usize,
        class: u32,
        block_size: u32,
        extra: usize,
    ) {
        debug_assert_eq!((*sb).in_use, 0, "reformat requires an empty superblock");
        debug_assert_eq!((*sb).magic, SB_MAGIC);
        // in_use == 0 implies no block is parked in the remote stack
        // (parked blocks keep in_use raised), so the stack must be empty.
        debug_assert!(
            (*sb).remote_head.load(Ordering::Relaxed).is_null(),
            "reformat with pending remote frees"
        );
        let stride = hoard_mem::align_up(block_size as usize, 8) + HEADER_SIZE + extra;
        let capacity = (superblock_size - blocks_offset()) / stride;
        (*sb).class = class;
        (*sb).block_size = block_size;
        (*sb).stride = stride as u32;
        (*sb).capacity = capacity as u32;
        (*sb).bump = 0;
        (*sb).free_head = std::ptr::null_mut();
        (*sb).group = 0;
        (*sb).armed = true;
    }

    /// Whether this superblock has a free block.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn has_free(sb: *mut Superblock) -> bool {
        (*sb).in_use < (*sb).capacity
    }

    /// Bytes of payload currently allocated from this superblock.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn used_bytes(sb: *mut Superblock) -> u64 {
        (*sb).in_use as u64 * (*sb).block_size as u64
    }

    /// Total payload capacity of this superblock in bytes
    /// (`capacity x block_size`). Heap `a_i` accounting uses usable
    /// bytes, so a completely full superblock has `u == a` contribution
    /// exactly — matching the paper's idealized model, in which the
    /// emptiness invariant is a fullness fraction.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn usable_bytes(sb: *mut Superblock) -> u64 {
        (*sb).capacity as u64 * (*sb).block_size as u64
    }

    /// Pop one block; returns the payload pointer. The block's header
    /// word is (re)written to point at this superblock.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock and have checked
    /// [`has_free`](Self::has_free).
    pub unsafe fn alloc_block(sb: *mut Superblock) -> *mut u8 {
        debug_assert!(Self::has_free(sb));
        let payload = {
            let head = (*sb).free_head;
            if !head.is_null() {
                // Reuse a freed block: next pointer lives in its payload.
                (*sb).free_head = (head as *mut *mut u8).read();
                head
            } else {
                // Carve a never-used slot.
                let idx = (*sb).bump;
                debug_assert!(idx < (*sb).capacity);
                (*sb).bump = idx + 1;
                let base = (sb as *mut u8).add(blocks_offset());
                base.add(idx as usize * (*sb).stride as usize + HEADER_SIZE)
            }
        };
        (*sb).in_use += 1;
        write_header(payload, HeaderWord::new(Tag::Superblock, sb as usize));
        payload
    }

    /// Push a block's payload back onto the free list.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock; `payload` must be a live
    /// block of this superblock.
    pub unsafe fn free_block(sb: *mut Superblock, payload: *mut u8) {
        debug_assert!((*sb).in_use > 0, "free on an empty superblock");
        debug_assert!(Self::contains(sb, payload));
        (payload as *mut *mut u8).write((*sb).free_head);
        (*sb).free_head = payload;
        (*sb).in_use -= 1;
    }

    /// Whether `payload` lies within this superblock's block area.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn contains(sb: *mut Superblock, payload: *mut u8) -> bool {
        let base = (sb as *mut u8).add(blocks_offset());
        let off = (payload as usize).wrapping_sub(base as usize);
        off < (*sb).capacity as usize * (*sb).stride as usize
            && off % (*sb).stride as usize == HEADER_SIZE
    }

    /// Fullness group for the current occupancy: group 0 is emptiest,
    /// `FULLNESS_GROUPS - 1` is fullest-but-not-full, and
    /// [`full_group`](Self::full_group) holds completely full
    /// superblocks.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn fullness_group(sb: *mut Superblock) -> usize {
        let in_use = (*sb).in_use as usize;
        let cap = (*sb).capacity as usize;
        if in_use == cap {
            Self::full_group()
        } else {
            (in_use * FULLNESS_GROUPS / cap).min(FULLNESS_GROUPS - 1)
        }
    }

    /// Index of the group containing completely full superblocks.
    pub const fn full_group() -> usize {
        FULLNESS_GROUPS
    }

    /// Load the owner heap index (lock-free; pairs with
    /// [`set_owner`](Self::set_owner)).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn owner(sb: *mut Superblock) -> usize {
        (*sb).owner.load(Ordering::Acquire)
    }

    /// Store the owner heap index. Must be called with both the old and
    /// new owners' locks held (migration).
    ///
    /// # Safety
    ///
    /// See above; `sb` must be a live superblock.
    pub unsafe fn set_owner(sb: *mut Superblock, owner: usize) {
        (*sb).owner.store(owner, Ordering::Release);
    }

    /// Push a freed block onto the deferred remote-free stack without
    /// taking any lock (Treiber push; the chain runs through each
    /// payload's first word). The block stays accounted as allocated
    /// until the owner drains it.
    ///
    /// # Safety
    ///
    /// `payload` must be a live allocated block of this superblock that
    /// the caller relinquishes; no lock is required.
    pub unsafe fn push_remote(sb: *mut Superblock, payload: *mut u8) {
        let head = &(*sb).remote_head;
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            (payload as *mut *mut u8).write(cur);
            // Release publishes the link write (and the freeing thread's
            // poison/retag stores) to the draining owner.
            match head.compare_exchange_weak(cur, payload, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        (*sb).remote_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Detach the whole deferred remote-free chain (or null). The caller
    /// walks it via each payload's first word, freeing blocks under the
    /// owner's lock, and finishes with [`note_drained`](Self::note_drained).
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock (so drained blocks can be
    /// pushed onto the guarded free list).
    pub unsafe fn take_remote(sb: *mut Superblock) -> *mut u8 {
        // Acquire pairs with the Release push: the chain's link words and
        // the pushers' payload writes are visible.
        (*sb).remote_head.swap(std::ptr::null_mut(), Ordering::Acquire)
    }

    /// Subtract `n` drained blocks from the pressure counter.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock; `n` must not exceed the number of
    /// blocks actually detached via [`take_remote`](Self::take_remote).
    pub unsafe fn note_drained(sb: *mut Superblock, n: u32) {
        (*sb).remote_count.fetch_sub(n, Ordering::Relaxed);
    }

    /// Whether the deferred remote-free stack is non-empty (lock-free
    /// peek; a false negative only delays a drain by one round).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn remote_pending(sb: *mut Superblock) -> bool {
        !(*sb).remote_head.load(Ordering::Relaxed).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_mem::read_header;
    use std::alloc::Layout;

    const S: usize = 8192;

    struct Chunk(*mut u8, Layout);

    impl Chunk {
        fn new() -> Self {
            let layout = Layout::from_size_align(S, 4096).unwrap();
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null());
            Chunk(p, layout)
        }
    }

    impl Drop for Chunk {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.0, self.1) };
        }
    }

    #[test]
    fn init_computes_capacity() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 3, 32, 1, 0);
            let stride = 32 + HEADER_SIZE;
            assert_eq!((*sb).capacity as usize, (S - blocks_offset()) / stride);
            assert_eq!((*sb).in_use, 0);
            assert_eq!(Superblock::owner(sb), 1);
            assert_eq!((*sb).magic, SB_MAGIC);
        }
    }

    #[test]
    fn alloc_until_full_then_free_all() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let cap = (*sb).capacity;
            let mut blocks = Vec::new();
            for i in 0..cap {
                assert!(Superblock::has_free(sb));
                let p = Superblock::alloc_block(sb);
                assert_eq!(p as usize % 8, 0, "payload 8-aligned");
                // Header points home.
                let h = read_header(p);
                assert_eq!(h.tag, Tag::Superblock);
                assert_eq!(h.value, sb as usize);
                blocks.push(p);
                assert_eq!((*sb).in_use, i + 1);
            }
            assert!(!Superblock::has_free(sb));
            assert_eq!(Superblock::fullness_group(sb), Superblock::full_group());
            for p in blocks.drain(..) {
                Superblock::free_block(sb, p);
            }
            assert_eq!((*sb).in_use, 0);
            assert_eq!(Superblock::fullness_group(sb), 0);
        }
    }

    #[test]
    fn blocks_do_not_overlap_and_are_writable() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 5, 48, 1, 0);
            let cap = (*sb).capacity as usize;
            let mut ptrs = Vec::new();
            for _ in 0..cap {
                ptrs.push(Superblock::alloc_block(sb));
            }
            // Fill each block with a distinct pattern, then verify.
            for (i, &p) in ptrs.iter().enumerate() {
                std::ptr::write_bytes(p, i as u8, 48);
            }
            for (i, &p) in ptrs.iter().enumerate() {
                for off in 0..48 {
                    assert_eq!(*p.add(off), i as u8, "block {i} corrupted at {off}");
                }
            }
            // All within the chunk.
            for &p in &ptrs {
                assert!(p as usize >= c.0 as usize + blocks_offset());
                assert!((p as usize + 48) <= c.0 as usize + S);
                assert!(Superblock::contains(sb, p));
            }
        }
    }

    #[test]
    fn free_list_is_lifo() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let a = Superblock::alloc_block(sb);
            let b = Superblock::alloc_block(sb);
            Superblock::free_block(sb, a);
            Superblock::free_block(sb, b);
            assert_eq!(Superblock::alloc_block(sb), b, "LIFO reuse");
            assert_eq!(Superblock::alloc_block(sb), a);
        }
    }

    #[test]
    fn reformat_changes_class_geometry() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let p = Superblock::alloc_block(sb);
            Superblock::free_block(sb, p);
            Superblock::reformat(sb, S, 9, 256, 0);
            assert_eq!((*sb).class, 9);
            assert_eq!((*sb).block_size, 256);
            assert_eq!((*sb).bump, 0);
            assert!((*sb).free_head.is_null());
            let q = Superblock::alloc_block(sb);
            std::ptr::write_bytes(q, 0xFF, 256);
            assert!(Superblock::contains(sb, q));
        }
    }

    #[test]
    fn fullness_groups_partition_occupancy() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let cap = (*sb).capacity;
            let mut prev_group = 0;
            let mut ptrs = Vec::new();
            for _ in 0..cap {
                ptrs.push(Superblock::alloc_block(sb));
                let g = Superblock::fullness_group(sb);
                assert!(g >= prev_group, "groups grow with occupancy");
                prev_group = g;
            }
            assert_eq!(prev_group, Superblock::full_group());
        }
    }

    #[test]
    fn remote_stack_push_take_is_lifo_and_complete() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let a = Superblock::alloc_block(sb);
            let b = Superblock::alloc_block(sb);
            let d = Superblock::alloc_block(sb);
            assert!(!Superblock::remote_pending(sb));
            Superblock::push_remote(sb, a);
            Superblock::push_remote(sb, b);
            Superblock::push_remote(sb, d);
            assert!(Superblock::remote_pending(sb));
            assert_eq!((*sb).remote_count.load(Ordering::Relaxed), 3);
            // Drain: LIFO chain d -> b -> a through payload words.
            let mut cur = Superblock::take_remote(sb);
            let mut drained = Vec::new();
            while !cur.is_null() {
                let next = (cur as *mut *mut u8).read();
                drained.push(cur);
                cur = next;
            }
            assert_eq!(drained, vec![d, b, a]);
            Superblock::note_drained(sb, drained.len() as u32);
            assert_eq!((*sb).remote_count.load(Ordering::Relaxed), 0);
            assert!(!Superblock::remote_pending(sb));
            for p in drained {
                Superblock::free_block(sb, p);
            }
            assert_eq!((*sb).in_use, 0);
        }
    }

    #[test]
    fn remote_stack_survives_concurrent_pushers() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let cap = (*sb).capacity as usize;
            let n = cap.min(64);
            let ptrs: Vec<usize> = (0..n)
                .map(|_| Superblock::alloc_block(sb) as usize)
                .collect();
            let sb_addr = sb as usize;
            std::thread::scope(|scope| {
                for chunk in ptrs.chunks(n / 4 + 1) {
                    let chunk = chunk.to_vec();
                    scope.spawn(move || {
                        for p in chunk {
                            Superblock::push_remote(sb_addr as *mut Superblock, p as *mut u8);
                        }
                    });
                }
            });
            assert_eq!((*sb).remote_count.load(Ordering::Relaxed), n as u32);
            let mut cur = Superblock::take_remote(sb);
            let mut seen = std::collections::HashSet::new();
            while !cur.is_null() {
                let next = (cur as *mut *mut u8).read();
                assert!(seen.insert(cur as usize), "block pushed twice");
                Superblock::free_block(sb, cur);
                cur = next;
            }
            assert_eq!(seen.len(), n, "no pushes lost under contention");
            assert_eq!((*sb).in_use, 0);
        }
    }

    #[test]
    fn contains_rejects_foreign_pointers() {
        let c1 = Chunk::new();
        let c2 = Chunk::new();
        unsafe {
            let sb1 = Superblock::init(c1.0, S, 0, 8, 1, 0);
            let sb2 = Superblock::init(c2.0, S, 0, 8, 1, 0);
            let p2 = Superblock::alloc_block(sb2);
            assert!(!Superblock::contains(sb1, p2));
            // Misaligned interior pointer.
            let p1 = Superblock::alloc_block(sb1);
            assert!(!Superblock::contains(sb1, p1.add(1)));
        }
    }
}
