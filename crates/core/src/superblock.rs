//! Superblocks: fixed-size chunks carved into equal blocks of one size
//! class.
//!
//! A superblock occupies one `S`-byte chunk from the
//! [`ChunkSource`](hoard_mem::ChunkSource). Its header lives at the
//! start of the chunk; block slots follow, each slot being one header
//! word (pointing back at the superblock — how `free(ptr)` finds home)
//! plus the class's payload. Freed blocks form an intrusive LIFO through
//! their payload's first word; never-yet-allocated blocks are carved
//! lazily with a bump index, so creating a superblock touches only its
//! header.
//!
//! All mutable fields are guarded by the *owning heap's* lock; the only
//! field read without it is `owner`, an atomic, which `free` uses to
//! find (and then verify under the lock) the heap to lock. Access is by
//! raw pointer throughout — no `&mut` references are formed, so aliasing
//! rules are respected even with concurrent readers of `owner`.

use crate::FULLNESS_GROUPS;
use hoard_mem::{write_header, HeaderWord, Tag, HEADER_SIZE};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Magic value marking a live superblock header (helps catch wild
/// pointers in debug assertions).
pub(crate) const SB_MAGIC: u64 = 0x5B10_C0DE_5B10_C0DE;

// ---- packed remote-free word -------------------------------------------
//
// The deferred remote-free stack is one `AtomicU64`:
//
// ```text
//   63            40 39            20 19             0
//  +----------------+----------------+----------------+
//  |  ABA tag (24)  |   count (20)   | head index (20)|
//  +----------------+----------------+----------------+
// ```
//
// The head is a *block index* into the superblock's slot array
// (`NULL_IDX` = empty), and the chain runs through each parked payload's
// first word, which stores the next block's index. Because the head,
// the length, and a wrapping tag travel in one word, a push is a single
// CAS, and the owner detaches the whole chain *and* learns exactly how
// many blocks it got with a single `swap` — that count is what lets the
// emptiness-invariant accounting (`u -= count * block_size`) happen
// without a lock. The tag increments on every push so a CAS can never
// mistake a recycled (head, count) pair for an unchanged stack.
const IDX_BITS: u32 = 20;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
/// Sentinel head index meaning "stack empty". Also the hard cap on
/// block indices, asserted at `init`: a superblock would need >1M slots
/// to overflow it, which `S ≤ 2^31` cannot produce.
pub(crate) const NULL_IDX: u32 = IDX_MASK as u32;
const COUNT_SHIFT: u32 = 20;
const TAG_SHIFT: u32 = 40;
/// The empty remote word (tag 0, count 0, head NULL).
const REMOTE_EMPTY: u64 = IDX_MASK;

const fn pack_remote(head: u32, count: u32, tag: u64) -> u64 {
    (head as u64 & IDX_MASK)
        | ((count as u64 & IDX_MASK) << COUNT_SHIFT)
        | (tag << TAG_SHIFT)
}

const fn remote_head_idx(word: u64) -> u32 {
    (word & IDX_MASK) as u32
}

const fn remote_word_count(word: u64) -> u32 {
    ((word >> COUNT_SHIFT) & IDX_MASK) as u32
}

/// Offset of the first block slot within the chunk (past the header,
/// rounded to a cache line so block payloads of distinct superblocks
/// never share a line with header metadata).
pub(crate) const fn blocks_offset() -> usize {
    hoard_mem::align_up(std::mem::size_of::<Superblock>(), hoard_mem::CACHE_LINE)
}

/// The in-chunk superblock header. `repr(C)` so the layout is stable
/// regardless of field reordering heuristics.
#[repr(C)]
pub(crate) struct Superblock {
    pub magic: u64,
    /// Size class index this superblock currently serves.
    pub class: u32,
    /// Payload bytes per block.
    pub block_size: u32,
    /// Bytes between consecutive block payloads (header + payload).
    pub stride: u32,
    /// Total block slots in this superblock.
    pub capacity: u32,
    /// Blocks currently allocated. Guarded by the owner heap's lock.
    pub in_use: u32,
    /// Next never-used slot index (lazy carving). Guarded.
    pub bump: u32,
    /// Intrusive LIFO of freed block payloads. Guarded.
    pub free_head: *mut u8,
    /// Intrusive doubly-linked list through the owning heap's fullness
    /// group (or empty list). Guarded.
    pub next: *mut Superblock,
    pub prev: *mut Superblock,
    /// Index of the owning heap (0 = global). Written under *both* the
    /// old and new owners' locks during migration; read lock-free by
    /// `free` to decide which lock to take.
    pub owner: AtomicUsize,
    /// Deferred remote-free stack, packed into one word: (head block
    /// index, exact count, ABA tag) — see the module-level layout
    /// comment. Pushed lock-free ([`push_remote`](Self::push_remote)),
    /// detached whole by the owner in one exchange
    /// ([`take_remote`](Self::take_remote)), which also yields the
    /// exact count for `u` accounting. Blocks parked here still count
    /// as allocated (`in_use` undecremented), so the superblock can
    /// never be reformatted or released while the stack is non-empty.
    pub remote: AtomicU64,
    /// Fullness group this superblock is currently linked into.
    pub group: u8,
    /// Eviction hysteresis latch: set when the superblock fills past the
    /// `1 − f` boundary, consumed when it crosses back below. Prevents a
    /// superblock whose occupancy random-walks around the boundary from
    /// triggering invariant restoration on every oscillation.
    pub armed: bool,
}

impl Superblock {
    /// Initialize the header of a fresh chunk at `chunk` (size
    /// `superblock_size`) for blocks of `block_size` bytes (class index
    /// `class`), owned by `owner`. `extra` bytes are reserved past each
    /// block's payload (hardened allocators put their canary word
    /// there; pass 0 for the paper's layout).
    ///
    /// # Safety
    ///
    /// `chunk` must point at the start of an exclusively owned,
    /// writable chunk of `superblock_size` bytes, 8-aligned.
    pub unsafe fn init(
        chunk: *mut u8,
        superblock_size: usize,
        class: u32,
        block_size: u32,
        owner: usize,
        extra: usize,
    ) -> *mut Superblock {
        let sb = chunk as *mut Superblock;
        let stride = hoard_mem::align_up(block_size as usize, 8) + HEADER_SIZE + extra;
        let capacity = (superblock_size - blocks_offset()) / stride;
        debug_assert!(capacity >= 1, "superblock must hold at least one block");
        debug_assert!(
            capacity < NULL_IDX as usize,
            "block indices must fit the packed remote word"
        );
        sb.write(Superblock {
            magic: SB_MAGIC,
            class,
            block_size,
            stride: stride as u32,
            capacity: capacity as u32,
            in_use: 0,
            bump: 0,
            free_head: std::ptr::null_mut(),
            next: std::ptr::null_mut(),
            prev: std::ptr::null_mut(),
            owner: AtomicUsize::new(owner),
            remote: AtomicU64::new(REMOTE_EMPTY),
            group: 0,
            armed: true,
        });
        sb
    }

    /// Reformat an *empty* superblock for a different size class
    /// (cross-class recycling of empty superblocks).
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock and `(*sb).in_use == 0`;
    /// `sb` must be unlinked from all lists. `extra` as in
    /// [`init`](Self::init).
    pub unsafe fn reformat(
        sb: *mut Superblock,
        superblock_size: usize,
        class: u32,
        block_size: u32,
        extra: usize,
    ) {
        debug_assert_eq!((*sb).in_use, 0, "reformat requires an empty superblock");
        debug_assert_eq!((*sb).magic, SB_MAGIC);
        // in_use == 0 implies no block is parked in the remote stack
        // (parked blocks keep in_use raised), so the stack must be empty.
        debug_assert!(
            remote_head_idx((*sb).remote.load(Ordering::Relaxed)) == NULL_IDX,
            "reformat with pending remote frees"
        );
        let stride = hoard_mem::align_up(block_size as usize, 8) + HEADER_SIZE + extra;
        let capacity = (superblock_size - blocks_offset()) / stride;
        (*sb).class = class;
        (*sb).block_size = block_size;
        (*sb).stride = stride as u32;
        (*sb).capacity = capacity as u32;
        (*sb).bump = 0;
        (*sb).free_head = std::ptr::null_mut();
        (*sb).group = 0;
        (*sb).armed = true;
    }

    /// Whether this superblock has a free block.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn has_free(sb: *mut Superblock) -> bool {
        (*sb).in_use < (*sb).capacity
    }

    /// Bytes of payload currently allocated from this superblock.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn used_bytes(sb: *mut Superblock) -> u64 {
        (*sb).in_use as u64 * (*sb).block_size as u64
    }

    /// Total payload capacity of this superblock in bytes
    /// (`capacity x block_size`). Heap `a_i` accounting uses usable
    /// bytes, so a completely full superblock has `u == a` contribution
    /// exactly — matching the paper's idealized model, in which the
    /// emptiness invariant is a fullness fraction.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn usable_bytes(sb: *mut Superblock) -> u64 {
        (*sb).capacity as u64 * (*sb).block_size as u64
    }

    /// Pop one block; returns the payload pointer. The block's header
    /// word is (re)written to point at this superblock.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock and have checked
    /// [`has_free`](Self::has_free).
    pub unsafe fn alloc_block(sb: *mut Superblock) -> *mut u8 {
        debug_assert!(Self::has_free(sb));
        let payload = {
            let head = (*sb).free_head;
            if !head.is_null() {
                // Reuse a freed block: next pointer lives in its payload.
                (*sb).free_head = (head as *mut *mut u8).read();
                head
            } else {
                // Carve a never-used slot.
                let idx = (*sb).bump;
                debug_assert!(idx < (*sb).capacity);
                (*sb).bump = idx + 1;
                let base = (sb as *mut u8).add(blocks_offset());
                base.add(idx as usize * (*sb).stride as usize + HEADER_SIZE)
            }
        };
        (*sb).in_use += 1;
        write_header(payload, HeaderWord::new(Tag::Superblock, sb as usize));
        payload
    }

    /// Push a block's payload back onto the free list.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock; `payload` must be a live
    /// block of this superblock.
    pub unsafe fn free_block(sb: *mut Superblock, payload: *mut u8) {
        debug_assert!((*sb).in_use > 0, "free on an empty superblock");
        debug_assert!(Self::contains(sb, payload));
        (payload as *mut *mut u8).write((*sb).free_head);
        (*sb).free_head = payload;
        (*sb).in_use -= 1;
    }

    /// Whether `payload` lies within this superblock's block area.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn contains(sb: *mut Superblock, payload: *mut u8) -> bool {
        let base = (sb as *mut u8).add(blocks_offset());
        let off = (payload as usize).wrapping_sub(base as usize);
        off < (*sb).capacity as usize * (*sb).stride as usize
            && off % (*sb).stride as usize == HEADER_SIZE
    }

    /// Fullness group for the current occupancy: group 0 is emptiest,
    /// `FULLNESS_GROUPS - 1` is fullest-but-not-full, and
    /// [`full_group`](Self::full_group) holds completely full
    /// superblocks.
    ///
    /// # Safety
    ///
    /// Caller must hold the owning heap's lock.
    pub unsafe fn fullness_group(sb: *mut Superblock) -> usize {
        let in_use = (*sb).in_use as usize;
        let cap = (*sb).capacity as usize;
        if in_use == cap {
            Self::full_group()
        } else {
            (in_use * FULLNESS_GROUPS / cap).min(FULLNESS_GROUPS - 1)
        }
    }

    /// Index of the group containing completely full superblocks.
    pub const fn full_group() -> usize {
        FULLNESS_GROUPS
    }

    /// Load the owner heap index (lock-free; pairs with
    /// [`set_owner`](Self::set_owner)).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn owner(sb: *mut Superblock) -> usize {
        (*sb).owner.load(Ordering::Acquire)
    }

    /// Store the owner heap index. Must be called with both the old and
    /// new owners' locks held (migration).
    ///
    /// # Safety
    ///
    /// See above; `sb` must be a live superblock.
    pub unsafe fn set_owner(sb: *mut Superblock, owner: usize) {
        (*sb).owner.store(owner, Ordering::Release);
    }

    /// Payload pointer of the block at slot `idx`.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock and `idx < capacity`.
    pub unsafe fn idx_to_payload(sb: *mut Superblock, idx: u32) -> *mut u8 {
        debug_assert!(idx < (*sb).capacity);
        (sb as *mut u8)
            .add(blocks_offset())
            .add(idx as usize * (*sb).stride as usize + HEADER_SIZE)
    }

    /// Slot index of `payload` within this superblock.
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock and `payload` one of its blocks
    /// ([`contains`](Self::contains)).
    pub unsafe fn payload_to_idx(sb: *mut Superblock, payload: *mut u8) -> u32 {
        let base = (sb as *mut u8).add(blocks_offset());
        let off = (payload as usize) - (base as usize) - HEADER_SIZE;
        debug_assert_eq!(off % (*sb).stride as usize, 0);
        (off / (*sb).stride as usize) as u32
    }

    /// Push a freed block onto the deferred remote-free stack without
    /// taking any lock: write the old head's index into the payload's
    /// first word, then CAS the whole packed word (head, count+1,
    /// tag+1). The block stays accounted as allocated until the owner
    /// drains it. Returns the stack length *after* this push — the
    /// lock-free back-end's drain-pressure signal.
    ///
    /// # Safety
    ///
    /// `payload` must be a live allocated block of this superblock that
    /// the caller relinquishes; no lock is required.
    pub unsafe fn push_remote(sb: *mut Superblock, payload: *mut u8) -> u32 {
        let idx = Self::payload_to_idx(sb, payload);
        let word = &(*sb).remote;
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            (payload as *mut u64).write(remote_head_idx(cur) as u64);
            let count = remote_word_count(cur) + 1;
            let tag = (cur >> TAG_SHIFT).wrapping_add(1) & ((1u64 << (64 - TAG_SHIFT)) - 1);
            let next = pack_remote(idx, count, tag);
            // Release publishes the link write (and the freeing thread's
            // poison/retag stores) to the draining owner.
            match word.compare_exchange_weak(cur, next, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return count,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Detach the whole deferred remote-free chain in one exchange,
    /// returning `(head payload or null, exact block count)`. The
    /// caller walks the chain via [`remote_next`](Self::remote_next)
    /// and may debit `u` by `count * block_size` *before* walking —
    /// the count travels in the same word as the head, so it is exact.
    ///
    /// # Safety
    ///
    /// Caller must own the superblock (heap lock in the locked
    /// back-end; slot claim or exclusivity-after-pop in the lock-free
    /// one) so drained blocks can be pushed onto the free list.
    pub unsafe fn take_remote(sb: *mut Superblock) -> (*mut u8, u32) {
        // Acquire pairs with the Release push: the chain's link words and
        // the pushers' payload writes are visible. An unconditional swap
        // is immune to ABA — whatever chain is in the word, we own it.
        let word = (*sb).remote.swap(REMOTE_EMPTY, Ordering::Acquire);
        let head = remote_head_idx(word);
        if head == NULL_IDX {
            (std::ptr::null_mut(), 0)
        } else {
            (Self::idx_to_payload(sb, head), remote_word_count(word))
        }
    }

    /// Follow the remote chain one link: the payload's first word holds
    /// the next block's slot index (or [`NULL_IDX`]).
    ///
    /// # Safety
    ///
    /// `payload` must be a block detached via
    /// [`take_remote`](Self::take_remote) whose link word is unclobbered.
    pub unsafe fn remote_next(sb: *mut Superblock, payload: *mut u8) -> *mut u8 {
        let next = (payload as *mut u64).read() as u32;
        if next == NULL_IDX {
            std::ptr::null_mut()
        } else {
            Self::idx_to_payload(sb, next)
        }
    }

    /// Exact current length of the deferred remote-free stack
    /// (lock-free peek; may be stale by the time the caller acts).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn remote_len(sb: *mut Superblock) -> u32 {
        remote_word_count((*sb).remote.load(Ordering::Relaxed))
    }

    /// Whether the deferred remote-free stack is non-empty (lock-free
    /// peek; a false negative only delays a drain by one round).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock.
    pub unsafe fn remote_pending(sb: *mut Superblock) -> bool {
        remote_head_idx((*sb).remote.load(Ordering::Relaxed)) != NULL_IDX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_mem::read_header;
    use std::alloc::Layout;

    const S: usize = 8192;

    struct Chunk(*mut u8, Layout);

    impl Chunk {
        fn new() -> Self {
            let layout = Layout::from_size_align(S, 4096).unwrap();
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null());
            Chunk(p, layout)
        }
    }

    impl Drop for Chunk {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.0, self.1) };
        }
    }

    #[test]
    fn init_computes_capacity() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 3, 32, 1, 0);
            let stride = 32 + HEADER_SIZE;
            assert_eq!((*sb).capacity as usize, (S - blocks_offset()) / stride);
            assert_eq!((*sb).in_use, 0);
            assert_eq!(Superblock::owner(sb), 1);
            assert_eq!((*sb).magic, SB_MAGIC);
        }
    }

    #[test]
    fn alloc_until_full_then_free_all() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let cap = (*sb).capacity;
            let mut blocks = Vec::new();
            for i in 0..cap {
                assert!(Superblock::has_free(sb));
                let p = Superblock::alloc_block(sb);
                assert_eq!(p as usize % 8, 0, "payload 8-aligned");
                // Header points home.
                let h = read_header(p);
                assert_eq!(h.tag, Tag::Superblock);
                assert_eq!(h.value, sb as usize);
                blocks.push(p);
                assert_eq!((*sb).in_use, i + 1);
            }
            assert!(!Superblock::has_free(sb));
            assert_eq!(Superblock::fullness_group(sb), Superblock::full_group());
            for p in blocks.drain(..) {
                Superblock::free_block(sb, p);
            }
            assert_eq!((*sb).in_use, 0);
            assert_eq!(Superblock::fullness_group(sb), 0);
        }
    }

    #[test]
    fn blocks_do_not_overlap_and_are_writable() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 5, 48, 1, 0);
            let cap = (*sb).capacity as usize;
            let mut ptrs = Vec::new();
            for _ in 0..cap {
                ptrs.push(Superblock::alloc_block(sb));
            }
            // Fill each block with a distinct pattern, then verify.
            for (i, &p) in ptrs.iter().enumerate() {
                std::ptr::write_bytes(p, i as u8, 48);
            }
            for (i, &p) in ptrs.iter().enumerate() {
                for off in 0..48 {
                    assert_eq!(*p.add(off), i as u8, "block {i} corrupted at {off}");
                }
            }
            // All within the chunk.
            for &p in &ptrs {
                assert!(p as usize >= c.0 as usize + blocks_offset());
                assert!((p as usize + 48) <= c.0 as usize + S);
                assert!(Superblock::contains(sb, p));
            }
        }
    }

    #[test]
    fn free_list_is_lifo() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let a = Superblock::alloc_block(sb);
            let b = Superblock::alloc_block(sb);
            Superblock::free_block(sb, a);
            Superblock::free_block(sb, b);
            assert_eq!(Superblock::alloc_block(sb), b, "LIFO reuse");
            assert_eq!(Superblock::alloc_block(sb), a);
        }
    }

    #[test]
    fn reformat_changes_class_geometry() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let p = Superblock::alloc_block(sb);
            Superblock::free_block(sb, p);
            Superblock::reformat(sb, S, 9, 256, 0);
            assert_eq!((*sb).class, 9);
            assert_eq!((*sb).block_size, 256);
            assert_eq!((*sb).bump, 0);
            assert!((*sb).free_head.is_null());
            let q = Superblock::alloc_block(sb);
            std::ptr::write_bytes(q, 0xFF, 256);
            assert!(Superblock::contains(sb, q));
        }
    }

    #[test]
    fn fullness_groups_partition_occupancy() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 8, 1, 0);
            let cap = (*sb).capacity;
            let mut prev_group = 0;
            let mut ptrs = Vec::new();
            for _ in 0..cap {
                ptrs.push(Superblock::alloc_block(sb));
                let g = Superblock::fullness_group(sb);
                assert!(g >= prev_group, "groups grow with occupancy");
                prev_group = g;
            }
            assert_eq!(prev_group, Superblock::full_group());
        }
    }

    #[test]
    fn packed_remote_word_roundtrips_fields() {
        assert_eq!(remote_head_idx(REMOTE_EMPTY), NULL_IDX);
        assert_eq!(remote_word_count(REMOTE_EMPTY), 0);
        let w = pack_remote(42, 7, 0xABCDEF);
        assert_eq!(remote_head_idx(w), 42);
        assert_eq!(remote_word_count(w), 7);
        assert_eq!(w >> TAG_SHIFT, 0xABCDEF);
        // Extremes stay in their fields.
        let w = pack_remote(NULL_IDX - 1, NULL_IDX - 1, (1 << 24) - 1);
        assert_eq!(remote_head_idx(w), NULL_IDX - 1);
        assert_eq!(remote_word_count(w), NULL_IDX - 1);
        assert_eq!(w >> TAG_SHIFT, (1 << 24) - 1);
    }

    #[test]
    fn remote_stack_push_take_is_lifo_and_complete() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let a = Superblock::alloc_block(sb);
            let b = Superblock::alloc_block(sb);
            let d = Superblock::alloc_block(sb);
            assert!(!Superblock::remote_pending(sb));
            assert_eq!(Superblock::push_remote(sb, a), 1);
            assert_eq!(Superblock::push_remote(sb, b), 2);
            assert_eq!(Superblock::push_remote(sb, d), 3);
            assert!(Superblock::remote_pending(sb));
            assert_eq!(Superblock::remote_len(sb), 3);
            // Drain: one exchange yields the LIFO chain d -> b -> a and
            // the exact count.
            let (head, count) = Superblock::take_remote(sb);
            assert_eq!(count, 3);
            let mut drained = Vec::new();
            let mut cur = head;
            while !cur.is_null() {
                let next = Superblock::remote_next(sb, cur);
                drained.push(cur);
                cur = next;
            }
            assert_eq!(drained, vec![d, b, a]);
            assert_eq!(Superblock::remote_len(sb), 0);
            assert!(!Superblock::remote_pending(sb));
            for p in drained {
                Superblock::free_block(sb, p);
            }
            assert_eq!((*sb).in_use, 0);
            // A drained stack accepts new pushes.
            let e = Superblock::alloc_block(sb);
            assert_eq!(Superblock::push_remote(sb, e), 1);
            let (head, count) = Superblock::take_remote(sb);
            assert_eq!((head, count), (e, 1));
            Superblock::free_block(sb, e);
        }
    }

    #[test]
    fn remote_stack_survives_concurrent_pushers() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            let cap = (*sb).capacity as usize;
            let n = cap.min(64);
            let ptrs: Vec<usize> = (0..n)
                .map(|_| Superblock::alloc_block(sb) as usize)
                .collect();
            let sb_addr = sb as usize;
            std::thread::scope(|scope| {
                for chunk in ptrs.chunks(n / 4 + 1) {
                    let chunk = chunk.to_vec();
                    scope.spawn(move || {
                        for p in chunk {
                            Superblock::push_remote(sb_addr as *mut Superblock, p as *mut u8);
                        }
                    });
                }
            });
            assert_eq!(Superblock::remote_len(sb), n as u32);
            let (head, count) = Superblock::take_remote(sb);
            assert_eq!(count, n as u32, "packed count is exact");
            let mut cur = head;
            let mut seen = std::collections::HashSet::new();
            while !cur.is_null() {
                let next = Superblock::remote_next(sb, cur);
                assert!(seen.insert(cur as usize), "block pushed twice");
                Superblock::free_block(sb, cur);
                cur = next;
            }
            assert_eq!(seen.len(), n, "no pushes lost under contention");
            assert_eq!((*sb).in_use, 0);
        }
    }

    #[test]
    fn idx_payload_roundtrip() {
        let c = Chunk::new();
        unsafe {
            let sb = Superblock::init(c.0, S, 0, 16, 1, 0);
            for _ in 0..8 {
                let p = Superblock::alloc_block(sb);
                let idx = Superblock::payload_to_idx(sb, p);
                assert_eq!(Superblock::idx_to_payload(sb, idx), p);
            }
        }
    }

    #[test]
    fn contains_rejects_foreign_pointers() {
        let c1 = Chunk::new();
        let c2 = Chunk::new();
        unsafe {
            let sb1 = Superblock::init(c1.0, S, 0, 8, 1, 0);
            let sb2 = Superblock::init(c2.0, S, 0, 8, 1, 0);
            let p2 = Superblock::alloc_block(sb2);
            assert!(!Superblock::contains(sb1, p2));
            // Misaligned interior pointer.
            let p1 = Superblock::alloc_block(sb1);
            assert!(!Superblock::contains(sb1, p1.add(1)));
        }
    }
}
