//! Intrusive doubly-linked lists of superblocks.
//!
//! Heads are `AtomicPtr`s stored in the heap; links are the `next`/`prev`
//! fields of [`Superblock`]. All operations require the owning heap's
//! lock — the atomics are used only as shareable pointer-sized cells
//! (relaxed ordering; the heap lock provides the necessary
//! synchronization edges).

use crate::superblock::Superblock;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Push `sb` at the front of the list rooted at `head`.
///
/// # Safety
///
/// Caller holds the owning heap's lock; `sb` is live and unlinked.
pub(crate) unsafe fn push_front(head: &AtomicPtr<Superblock>, sb: *mut Superblock) {
    let old = head.load(Ordering::Relaxed);
    (*sb).next = old;
    (*sb).prev = ptr::null_mut();
    if !old.is_null() {
        (*old).prev = sb;
    }
    head.store(sb, Ordering::Relaxed);
}

/// Unlink `sb` from the list rooted at `head`.
///
/// # Safety
///
/// Caller holds the owning heap's lock; `sb` is linked in exactly this
/// list.
pub(crate) unsafe fn remove(head: &AtomicPtr<Superblock>, sb: *mut Superblock) {
    let prev = (*sb).prev;
    let next = (*sb).next;
    if prev.is_null() {
        debug_assert_eq!(head.load(Ordering::Relaxed), sb, "sb not in this list");
        head.store(next, Ordering::Relaxed);
    } else {
        (*prev).next = next;
    }
    if !next.is_null() {
        (*next).prev = prev;
    }
    (*sb).next = ptr::null_mut();
    (*sb).prev = ptr::null_mut();
}

/// Pop the front superblock, or null when empty.
///
/// # Safety
///
/// Caller holds the owning heap's lock.
pub(crate) unsafe fn pop_front(head: &AtomicPtr<Superblock>) -> *mut Superblock {
    let sb = head.load(Ordering::Relaxed);
    if !sb.is_null() {
        remove(head, sb);
    }
    sb
}

/// Count the list's elements (debug/validation only; O(n)).
///
/// # Safety
///
/// Caller holds the owning heap's lock.
#[cfg_attr(not(test), allow(dead_code))] // test & validation helper
pub(crate) unsafe fn len(head: &AtomicPtr<Superblock>) -> usize {
    let mut n = 0;
    let mut cur = head.load(Ordering::Relaxed);
    while !cur.is_null() {
        n += 1;
        cur = (*cur).next;
    }
    n
}

/// Iterate the list calling `f` on each element; stops early when `f`
/// returns `true` and returns that element (or null).
///
/// # Safety
///
/// Caller holds the owning heap's lock; `f` must not unlink elements.
#[cfg_attr(not(test), allow(dead_code))] // test & validation helper
pub(crate) unsafe fn find(
    head: &AtomicPtr<Superblock>,
    mut f: impl FnMut(*mut Superblock) -> bool,
) -> *mut Superblock {
    let mut cur = head.load(Ordering::Relaxed);
    while !cur.is_null() {
        if f(cur) {
            return cur;
        }
        cur = (*cur).next;
    }
    ptr::null_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::Layout;

    const S: usize = 4096;

    fn make_sb(class: u32) -> (*mut Superblock, Layout) {
        let layout = Layout::from_size_align(S, 4096).unwrap();
        unsafe {
            let p = std::alloc::alloc(layout);
            assert!(!p.is_null());
            (Superblock::init(p, S, class, 8, 1, 0), layout)
        }
    }

    fn free_sb(sb: *mut Superblock, layout: Layout) {
        unsafe { std::alloc::dealloc(sb as *mut u8, layout) };
    }

    #[test]
    fn push_pop_is_lifo() {
        let head = AtomicPtr::new(ptr::null_mut());
        let (a, la) = make_sb(0);
        let (b, lb) = make_sb(1);
        unsafe {
            push_front(&head, a);
            push_front(&head, b);
            assert_eq!(len(&head), 2);
            assert_eq!(pop_front(&head), b);
            assert_eq!(pop_front(&head), a);
            assert!(pop_front(&head).is_null());
            assert_eq!(len(&head), 0);
        }
        free_sb(a, la);
        free_sb(b, lb);
    }

    #[test]
    fn remove_from_middle_front_back() {
        let head = AtomicPtr::new(ptr::null_mut());
        let sbs: Vec<_> = (0..3).map(make_sb).collect();
        unsafe {
            for (sb, _) in &sbs {
                push_front(&head, *sb);
            }
            // List order: 2, 1, 0. Remove middle (1).
            remove(&head, sbs[1].0);
            assert_eq!(len(&head), 2);
            assert_eq!(head.load(Ordering::Relaxed), sbs[2].0);
            assert_eq!((*sbs[2].0).next, sbs[0].0);
            assert_eq!((*sbs[0].0).prev, sbs[2].0);
            // Remove front (2).
            remove(&head, sbs[2].0);
            assert_eq!(head.load(Ordering::Relaxed), sbs[0].0);
            assert!((*sbs[0].0).prev.is_null());
            // Remove last (0).
            remove(&head, sbs[0].0);
            assert!(head.load(Ordering::Relaxed).is_null());
        }
        for (sb, l) in sbs {
            free_sb(sb, l);
        }
    }

    #[test]
    fn find_matches_predicate() {
        let head = AtomicPtr::new(ptr::null_mut());
        let sbs: Vec<_> = (0..4).map(make_sb).collect();
        unsafe {
            for (sb, _) in &sbs {
                push_front(&head, *sb);
            }
            let hit = find(&head, |sb| (*sb).class == 2);
            assert_eq!(hit, sbs[2].0);
            let miss = find(&head, |sb| (*sb).class == 99);
            assert!(miss.is_null());
        }
        for (sb, l) in sbs {
            free_sb(sb, l);
        }
    }
}
