//! The Hoard allocator: per-processor heaps, a global heap, and the
//! emptiness invariant. This module is the paper's Figure-level `malloc`
//! / `free` pseudocode, made real.
//!
//! ## Locking protocol
//!
//! * `malloc` locks the calling thread's per-processor heap; if it must
//!   consult the global heap it locks heap 0 *while holding* its own
//!   heap's lock.
//! * `free` reads the block's superblock's `owner` index (atomic), locks
//!   that heap, re-checks ownership (the superblock may have migrated in
//!   between) and retries on mismatch. Migrations to the global heap
//!   take heap 0's lock while holding the per-processor heap's lock.
//!
//! Lock order is therefore always *per-processor heap → global heap* and
//! never two per-processor heaps at once: no deadlock is possible.
//!
//! ## The emptiness invariant
//!
//! After every `free` on per-processor heap `i`, the implementation
//! migrates `f`-empty superblocks to the global heap until either
//!
//! * `u_i ≥ a_i − K·S` or `u_i ≥ (1−f)·a_i` (the paper's invariant), or
//! * heap `i` holds no superblock that is at least `f`-empty (possible
//!   only transiently, because per-block headers make usable capacity
//!   slightly less than `S`).
//!
//! This is exactly the postcondition the property tests in
//! `tests/invariants.rs` verify.

use crate::config::HoardConfig;
use crate::heap::Heap;
use crate::superblock::Superblock;
use crate::MAX_HEAPS;
use hoard_mem::{
    large, read_header, AllocSnapshot, AllocStats, ChunkSource, HeaderWord, MtAllocator,
    SizeClassTable, SystemSource, Tag,
};
use hoard_sim::{charge_cost, current_proc, Cost};
use std::alloc::Layout;
use std::ptr::NonNull;
// Every counter update happens under the owning heap's lock, so relaxed
// ordering suffices throughout.
use std::sync::atomic::Ordering::Relaxed;

/// Alignment requested for superblock chunks.
const CHUNK_ALIGN: usize = 4096;

/// The Hoard allocator. See the [crate docs](crate) for the algorithm.
///
/// Generic over the [`ChunkSource`] "operating system"; defaults to
/// [`SystemSource`]. `const`-constructible (see
/// [`new_static`](HoardAllocator::new_static)) so it can be installed as
/// `#[global_allocator]`.
pub struct HoardAllocator<Src: ChunkSource = SystemSource> {
    config: HoardConfig,
    classes: SizeClassTable,
    /// `heaps[0]` is the global heap; `heaps[1..=P]` are per-processor.
    heaps: [Heap; MAX_HEAPS + 1],
    stats: AllocStats,
    source: Src,
}

impl HoardAllocator<SystemSource> {
    /// The paper's default configuration over the system chunk source.
    pub fn new_default() -> Self {
        Self::with_config(HoardConfig::new()).expect("default config is valid")
    }

    /// Build with a custom configuration over the system chunk source.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`](crate::ConfigError) when `config` is
    /// inconsistent.
    pub fn with_config(config: HoardConfig) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        Ok(Self::new_static(config))
    }

    /// `const` constructor for `static` use (e.g. `#[global_allocator]`).
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`/`static` context)
    /// if `config` is invalid.
    pub const fn new_static(config: HoardConfig) -> Self {
        if config.validate().is_err() {
            panic!("invalid Hoard configuration");
        }
        HoardAllocator {
            config,
            classes: SizeClassTable::for_superblock_size(config.superblock_size),
            heaps: [const { Heap::new() }; MAX_HEAPS + 1],
            stats: AllocStats::new(),
            source: SystemSource::new(),
        }
    }
}

impl<Src: ChunkSource> HoardAllocator<Src> {
    /// Build with a custom configuration and chunk source.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`](crate::ConfigError) when `config` is
    /// inconsistent.
    pub fn with_source(config: HoardConfig, source: Src) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        Ok(HoardAllocator {
            config,
            classes: SizeClassTable::for_superblock_size(config.superblock_size),
            heaps: [const { Heap::new() }; MAX_HEAPS + 1],
            stats: AllocStats::new(),
            source,
        })
    }

    /// This allocator's configuration.
    pub fn config(&self) -> &HoardConfig {
        &self.config
    }

    /// The size-class table in effect.
    pub fn size_classes(&self) -> &SizeClassTable {
        &self.classes
    }

    /// The chunk source (for its [`held`](hoard_mem::SourceStats)
    /// accounting).
    pub fn source(&self) -> &Src {
        &self.source
    }

    /// Heap index serving the calling thread: `1 + proc mod P` (heap 0
    /// is the global heap). This is the paper's thread-to-heap hash.
    pub fn heap_index_for_current_thread(&self) -> usize {
        1 + current_proc() % self.config.heap_count
    }

    /// Total superblock transfers to/from the global heap so far
    /// (`(to_global, from_global)`).
    pub fn transfer_counts(&self) -> (u64, u64) {
        let snap = self.stats.snapshot();
        (snap.transfers_to_global, snap.transfers_from_global)
    }

    // ----- malloc -----

    unsafe fn alloc_small(&self, class: usize) -> Option<NonNull<u8>> {
        let block_size = self.classes.class(class).block_size;
        let s = self.config.superblock_size;
        let hi = self.heap_index_for_current_thread();
        let heap = &self.heaps[hi];
        let _guard = heap.lock.lock();

        // 1. Fullest superblock of this class with a free block.
        let mut sb = heap.find_with_free(class);

        // 2. Recycle one of our own empty superblocks (any class).
        if sb.is_null() {
            sb = heap.pop_empty();
            if !sb.is_null() {
                if (*sb).class as usize != class {
                    // Reformatting changes payload capacity: adjust `a`.
                    let before = Superblock::usable_bytes(sb);
                    Superblock::reformat(sb, s, class as u32, block_size);
                    let after = Superblock::usable_bytes(sb);
                    heap.a.fetch_add(after, Relaxed);
                    heap.a.fetch_sub(before, Relaxed);
                }
                heap.link(sb);
            }
        }

        // 3. Ask the global heap for a superblock of this class (or an
        //    empty one to reformat).
        if sb.is_null() {
            sb = self.fetch_from_global(heap, hi, class, block_size);
        }

        // 4. Fresh superblock from the OS.
        if sb.is_null() {
            let layout = Layout::from_size_align(s, CHUNK_ALIGN).expect("superblock layout");
            let chunk = self.source.alloc_chunk(layout)?;
            sb = Superblock::init(chunk.as_ptr(), s, class as u32, block_size, hi);
            heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
            heap.link(sb);
        }

        let payload = Superblock::alloc_block(sb);
        heap.u.fetch_add(block_size as u64, Relaxed);
        heap.relink(sb);
        // Re-arm the eviction latch once the superblock fills back past
        // the f-emptiness boundary (see `free_small`).
        if !self.config.f_empty_blocks((*sb).in_use, (*sb).capacity) {
            (*sb).armed = true;
        }
        self.stats.on_alloc(block_size as u64);
        Some(NonNull::new_unchecked(payload))
    }

    /// Step 3 of `malloc`: while holding heap `hi`'s lock, lock the
    /// global heap and move one suitable superblock over. Returns the
    /// superblock linked into `heap`, or null.
    unsafe fn fetch_from_global(
        &self,
        heap: &Heap,
        hi: usize,
        class: usize,
        block_size: u32,
    ) -> *mut Superblock {
        let global = &self.heaps[0];
        let _g0 = global.lock.lock();

        let sb = {
            let found = global.find_with_free(class);
            if !found.is_null() {
                global.unlink(found);
                found
            } else {
                global.pop_empty()
            }
        };
        if sb.is_null() {
            return sb;
        }

        // Debit the global heap at the superblock's *current* geometry,
        // reformat if the class differs, then credit ours at the new one.
        global.a.fetch_sub(Superblock::usable_bytes(sb), Relaxed);
        global.u.fetch_sub(Superblock::used_bytes(sb), Relaxed);
        if (*sb).class as usize != class {
            debug_assert_eq!((*sb).in_use, 0, "only empty superblocks reformat");
            Superblock::reformat(sb, self.config.superblock_size, class as u32, block_size);
        }
        let used = Superblock::used_bytes(sb);
        Superblock::set_owner(sb, hi);
        heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
        heap.u.fetch_add(used, Relaxed);
        heap.link(sb);
        self.stats.on_transfer_from_global();
        charge_cost(Cost::SuperblockTransfer);
        sb
    }

    // ----- free -----

    unsafe fn free_small(&self, sb: *mut Superblock, payload: *mut u8) {
        loop {
            let owner = Superblock::owner(sb);
            let heap = &self.heaps[owner];
            let guard = heap.lock.lock();
            if Superblock::owner(sb) != owner {
                drop(guard);
                continue; // superblock migrated; chase it
            }

            let block_size = (*sb).block_size as u64;
            let was_f_empty =
                self.config.f_empty_blocks((*sb).in_use, (*sb).capacity);
            Superblock::free_block(sb, payload);
            heap.u.fetch_sub(block_size, Relaxed);
            heap.relink(sb);

            let remote = owner != self.heap_index_for_current_thread();
            self.stats.on_free(block_size, owner == 0 || remote);

            if owner == 0 {
                self.maybe_release_global_empties(heap);
            } else {
                // Emptiness-group hysteresis: only a free that moves its
                // *armed* superblock across the f-emptiness boundary (or
                // drains it completely) triggers invariant restoration;
                // the latch re-arms when the superblock fills back past
                // the boundary (see `alloc_small`). A heap of steadily
                // sparse superblocks — or one whose occupancy
                // random-walks at the boundary — therefore keeps its
                // superblocks local instead of ping-ponging the marginal
                // one through the global heap on every operation: the
                // role the paper assigns to its emptiness groups.
                let crossed = !was_f_empty
                    && self.config.f_empty_blocks((*sb).in_use, (*sb).capacity);
                // A completely drained superblock first parks on the
                // heap's empty list, where *any* size class can recycle
                // it; only when the heap hoards more than K empties does
                // the drain trigger restoration (K = the paper's bound on
                // a heap's free-space slack).
                let too_many_empties = (*sb).in_use == 0
                    && heap.empty_count.load(Relaxed) > self.config.slack_k;
                let trigger = ((*sb).armed && crossed) || too_many_empties;
                if crossed {
                    (*sb).armed = false;
                }
                if trigger {
                    self.restore_invariant(heap, owner);
                }
            }
            return;
        }
    }

    /// Migrate superblocks from heap `hi` to the global heap while the
    /// emptiness invariant is violated: *completely empty* superblocks
    /// may migrate freely (they hold no live blocks, so moving them can
    /// never cause remote frees or fetch-back thrash), but at most one
    /// *partially filled* f-empty superblock moves per triggering free —
    /// the paper's "transfer a superblock that is at least f empty"
    /// step. Combined with the crossing trigger this converges to the
    /// invariant at quiescence (every superblock that drains produces a
    /// triggering event) without bursts of migration in sparse steady
    /// states. Caller holds heap `hi`'s lock.
    unsafe fn restore_invariant(&self, heap: &Heap, _hi: usize) {
        let mut moved_partial = false;
        loop {
            let u = heap.u.load(Relaxed);
            let a = heap.a.load(Relaxed);
            if !self.config.invariant_violated(u, a) {
                return;
            }
            let (victim, used) = if moved_partial {
                // Only empties may continue the loop.
                (heap.pop_empty(), 0)
            } else {
                heap.take_emptiest(&self.config)
            };
            if victim.is_null() {
                return; // nothing eligible (transient; see module docs)
            }
            if (*victim).in_use != 0 {
                moved_partial = true;
            }
            heap.a.fetch_sub(Superblock::usable_bytes(victim), Relaxed);
            heap.u.fetch_sub(used, Relaxed);

            if self.config.release_empty_to_os && (*victim).in_use == 0 {
                // Ablation: drained superblocks go straight back to the OS
                // instead of parking in the global heap.
                let layout =
                    Layout::from_size_align(self.config.superblock_size, CHUNK_ALIGN)
                        .expect("superblock layout");
                self.source
                    .free_chunk(NonNull::new_unchecked(victim as *mut u8), layout);
                continue;
            }

            let global = &self.heaps[0];
            let _g0 = global.lock.lock();
            Superblock::set_owner(victim, 0);
            global.a.fetch_add(Superblock::usable_bytes(victim), Relaxed);
            global.u.fetch_add(used, Relaxed);
            global.place(victim);
            self.stats.on_transfer_to_global();
            charge_cost(Cost::SuperblockTransfer);
        }
    }

    /// Ablation hook: optionally return completely empty global-heap
    /// superblocks to the OS. Caller holds the global heap's lock.
    unsafe fn maybe_release_global_empties(&self, global: &Heap) {
        if !self.config.release_empty_to_os {
            return;
        }
        let s = self.config.superblock_size;
        loop {
            let sb = global.pop_empty();
            if sb.is_null() {
                return;
            }
            global.a.fetch_sub(Superblock::usable_bytes(sb), Relaxed);
            let layout = Layout::from_size_align(s, CHUNK_ALIGN).expect("superblock layout");
            self.source
                .free_chunk(NonNull::new_unchecked(sb as *mut u8), layout);
        }
    }

    // ----- validation plumbing (used by `debug` and tests) -----

    pub(crate) fn heaps(&self) -> &[Heap; MAX_HEAPS + 1] {
        &self.heaps
    }
}

unsafe impl<Src: ChunkSource> MtAllocator for HoardAllocator<Src> {
    fn name(&self) -> &'static str {
        "hoard"
    }

    unsafe fn allocate(&self, size: usize) -> Option<NonNull<u8>> {
        debug_assert!(size > 0, "allocate(0)");
        charge_cost(Cost::MallocFast);
        match self.classes.index_for(size) {
            Some(class) => self.alloc_small(class),
            None => {
                let p = large::alloc_large(&self.source, size)?;
                self.stats.on_alloc(size as u64);
                Some(p)
            }
        }
    }

    unsafe fn deallocate(&self, ptr: NonNull<u8>) {
        charge_cost(Cost::FreeFast);
        let header = read_header(ptr.as_ptr());
        match header.tag {
            Tag::Superblock => {
                let sb = header.value as *mut Superblock;
                debug_assert_eq!((*sb).magic, crate::superblock::SB_MAGIC, "bad free");
                self.free_small(sb, ptr.as_ptr());
            }
            Tag::Large => {
                let size = large::free_large(&self.source, header.value);
                self.stats.on_free(size as u64, false);
            }
            Tag::Baseline | Tag::Offset => {
                unreachable!("pointer was not allocated by Hoard")
            }
        }
    }

    fn stats(&self) -> AllocSnapshot {
        self.stats.snapshot().with_source(self.source.stats())
    }

    unsafe fn usable_size(&self, ptr: NonNull<u8>) -> usize {
        let header = read_header(ptr.as_ptr());
        match header.tag {
            Tag::Superblock => (*(header.value as *mut Superblock)).block_size as usize,
            Tag::Large => large::large_size(header.value),
            Tag::Baseline | Tag::Offset => unreachable!("pointer was not allocated by Hoard"),
        }
    }
}

// Safety: all superblock state is guarded by per-heap locks; the raw
// pointers in heaps refer to chunks owned by this allocator.
unsafe impl<Src: ChunkSource> Send for HoardAllocator<Src> {}
unsafe impl<Src: ChunkSource> Sync for HoardAllocator<Src> {}

impl<Src: ChunkSource> Drop for HoardAllocator<Src> {
    /// Return every owned superblock chunk to the source. Live blocks
    /// inside them become dangling — the same contract as dropping an
    /// arena; tests and the harness drop allocators only when idle.
    fn drop(&mut self) {
        let s = self.config.superblock_size;
        let layout = Layout::from_size_align(s, CHUNK_ALIGN).expect("superblock layout");
        for heap in self.heaps.iter() {
            unsafe {
                let mut chunks: Vec<*mut Superblock> = Vec::new();
                heap.for_each_superblock(|sb| chunks.push(sb));
                for sb in chunks {
                    heap.unlink(sb);
                    self.source
                        .free_chunk(NonNull::new_unchecked(sb as *mut u8), layout);
                }
            }
        }
    }
}

/// `GlobalAlloc` so a Hoard instance can be the Rust global allocator.
///
/// Alignments ≤ 8 map directly onto [`MtAllocator::allocate`]; larger
/// alignments over-allocate and leave an [`Tag::Offset`] breadcrumb
/// header just before the aligned payload.
unsafe impl<Src: ChunkSource> std::alloc::GlobalAlloc for HoardAllocator<Src> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let size = layout.size().max(1);
        if layout.align() <= hoard_mem::MIN_ALIGN {
            return self
                .allocate(size)
                .map_or(std::ptr::null_mut(), |p| p.as_ptr());
        }
        // Over-aligned: allocate `size + align` and align within it.
        let Some(base) = self.allocate(size + layout.align()) else {
            return std::ptr::null_mut();
        };
        let base = base.as_ptr();
        let aligned = hoard_mem::align_up(base as usize, layout.align()) as *mut u8;
        if aligned == base {
            return base;
        }
        debug_assert!(aligned as usize - base as usize >= hoard_mem::HEADER_SIZE);
        hoard_mem::write_header(
            aligned,
            HeaderWord::from_int(Tag::Offset, aligned as usize - base as usize),
        );
        aligned
    }

    unsafe fn dealloc(&self, ptr: *mut u8, _layout: Layout) {
        if ptr.is_null() {
            return;
        }
        let header = read_header(ptr);
        let base = if header.tag == Tag::Offset {
            ptr.sub(header.to_int())
        } else {
            ptr
        };
        self.deallocate(NonNull::new_unchecked(base));
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Over-aligned blocks carry an Offset header; keep them on the
        // slow path (alloc + copy + dealloc) to preserve alignment.
        if layout.align() <= hoard_mem::MIN_ALIGN && !ptr.is_null() && new_size > 0 {
            let p = NonNull::new_unchecked(ptr);
            if let Some(q) = self.reallocate(p, layout.size(), new_size) {
                return q.as_ptr();
            }
            return std::ptr::null_mut();
        }
        // Fallback identical to the default GlobalAlloc::realloc.
        let new_layout = Layout::from_size_align_unchecked(new_size.max(1), layout.align());
        let fresh = std::alloc::GlobalAlloc::alloc(self, new_layout);
        if !fresh.is_null() {
            std::ptr::copy_nonoverlapping(ptr, fresh, layout.size().min(new_size));
            std::alloc::GlobalAlloc::dealloc(self, ptr, layout);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hoard() -> HoardAllocator {
        HoardAllocator::new_default()
    }

    #[test]
    fn small_alloc_roundtrip() {
        let h = hoard();
        unsafe {
            let p = h.allocate(24).unwrap();
            assert_eq!(p.as_ptr() as usize % 8, 0);
            std::ptr::write_bytes(p.as_ptr(), 0x7E, 24);
            assert_eq!(h.usable_size(p), 24);
            h.deallocate(p);
        }
        let snap = h.stats();
        assert_eq!(snap.live_current, 0);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.frees, 1);
    }

    #[test]
    fn size_is_rounded_to_class() {
        let h = hoard();
        unsafe {
            let p = h.allocate(25).unwrap();
            assert_eq!(h.usable_size(p), 32, "25 rounds to the 32-byte class");
            h.deallocate(p);
        }
    }

    #[test]
    fn large_alloc_roundtrip() {
        let h = hoard();
        unsafe {
            let p = h.allocate(100_000).unwrap();
            std::ptr::write_bytes(p.as_ptr(), 0x3C, 100_000);
            assert_eq!(h.usable_size(p), 100_000);
            h.deallocate(p);
        }
        assert_eq!(h.stats().live_current, 0);
        assert_eq!(h.stats().held_current, 0, "large chunks go straight back");
    }

    #[test]
    fn threshold_boundary_routes_correctly() {
        let h = hoard();
        let t = h.config().large_threshold();
        unsafe {
            let small = h.allocate(t).unwrap(); // exactly S/2: superblock path
            let large = h.allocate(t + 1).unwrap(); // S/2+1: large path
            assert_eq!(h.usable_size(small), t);
            assert_eq!(h.usable_size(large), t + 1);
            h.deallocate(small);
            h.deallocate(large);
        }
    }

    #[test]
    fn many_allocations_get_distinct_memory() {
        let h = hoard();
        unsafe {
            let ptrs: Vec<_> = (0..1000).map(|_| h.allocate(64).unwrap()).collect();
            for (i, p) in ptrs.iter().enumerate() {
                std::ptr::write_bytes(p.as_ptr(), i as u8, 64);
            }
            for (i, p) in ptrs.iter().enumerate() {
                for off in 0..64 {
                    assert_eq!(*p.as_ptr().add(off), i as u8);
                }
            }
            for p in ptrs {
                h.deallocate(p);
            }
        }
        assert_eq!(h.stats().live_current, 0);
    }

    #[test]
    fn freed_memory_is_reused_not_leaked() {
        let h = hoard();
        unsafe {
            for _ in 0..10_000 {
                let p = h.allocate(128).unwrap();
                h.deallocate(p);
            }
        }
        let snap = h.stats();
        // Churning one block must not accumulate superblocks.
        assert!(
            snap.held_peak <= 4 * h.config().superblock_size as u64,
            "held_peak {} indicates a leak",
            snap.held_peak
        );
    }

    #[test]
    fn cross_thread_free_is_remote_and_safe() {
        let h = std::sync::Arc::new(hoard());
        let ptrs: Vec<usize> = unsafe {
            (0..100)
                .map(|_| h.allocate(40).unwrap().as_ptr() as usize)
                .collect()
        };
        let h2 = std::sync::Arc::clone(&h);
        std::thread::spawn(move || unsafe {
            for p in ptrs {
                h2.deallocate(NonNull::new_unchecked(p as *mut u8));
            }
        })
        .join()
        .unwrap();
        let snap = h.stats();
        assert_eq!(snap.live_current, 0);
        assert!(snap.remote_frees > 0, "frees from another proc are remote");
    }

    #[test]
    fn global_alloc_impl_handles_overalignment() {
        use std::alloc::GlobalAlloc;
        let h = hoard();
        unsafe {
            for align in [16usize, 64, 256, 4096] {
                let layout = Layout::from_size_align(100, align).unwrap();
                let p = h.alloc(layout);
                assert!(!p.is_null());
                assert_eq!(p as usize % align, 0, "alignment {align} violated");
                std::ptr::write_bytes(p, 0xEE, 100);
                h.dealloc(p, layout);
            }
        }
        assert_eq!(h.stats().live_current, 0);
    }

    #[test]
    fn exhausted_source_returns_none_not_panic() {
        use hoard_mem::{FailingSource, SystemSource};
        let h = HoardAllocator::with_source(
            HoardConfig::new(),
            FailingSource::new(SystemSource::new(), 1),
        )
        .unwrap();
        unsafe {
            // First superblock succeeds; fill it to force a second.
            let mut live = Vec::new();
            loop {
                match h.allocate(4096) {
                    Some(p) => live.push(p),
                    None => break,
                }
                assert!(live.len() < 100, "failure injection never triggered");
            }
            assert!(!live.is_empty(), "first superblock should have served");
            for p in live {
                h.deallocate(p);
            }
        }
    }

    #[test]
    fn static_construction_works() {
        static H: HoardAllocator = HoardAllocator::new_static(HoardConfig::new());
        unsafe {
            let p = H.allocate(16).unwrap();
            H.deallocate(p);
        }
        assert_eq!(H.stats().live_current, 0);
    }

    #[test]
    fn emptiness_invariant_triggers_transfers() {
        let h = hoard();
        unsafe {
            // Allocate enough 512-byte blocks for several superblocks,
            // then free them all: the invariant must push superblocks to
            // the global heap.
            let ptrs: Vec<_> = (0..200).map(|_| h.allocate(512).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        let (to_global, _) = h.transfer_counts();
        assert!(to_global > 0, "freeing everything must migrate superblocks");
    }

    #[test]
    fn global_heap_superblocks_are_reused_across_threads() {
        let h = std::sync::Arc::new(hoard());
        // Thread A allocates and frees a lot (pushing superblocks global).
        unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h.allocate(256).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        let held_before = h.stats().held_current;
        // Thread B allocates the same class: should reuse, not grow.
        let h2 = std::sync::Arc::clone(&h);
        std::thread::spawn(move || unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h2.allocate(256).unwrap()).collect();
            for p in ptrs {
                h2.deallocate(p);
            }
        })
        .join()
        .unwrap();
        let (_, from_global) = h.transfer_counts();
        assert!(from_global > 0, "thread B must fetch from the global heap");
        // Thread A's heap legitimately retains K superblocks of slack, so
        // thread B may need up to K+1 fresh superblocks from the OS.
        let slack = (h.config().slack_k as u64 + 1) * h.config().superblock_size as u64;
        assert!(
            h.stats().held_current <= held_before + slack,
            "reuse should prevent growth beyond the K-slack"
        );
    }

    #[test]
    fn release_empty_to_os_ablation_returns_memory() {
        let h = HoardAllocator::with_config(
            HoardConfig::new().with_release_empty_to_os(true),
        )
        .unwrap();
        unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h.allocate(256).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        // With the ablation on, most memory goes back to the OS once
        // superblocks drain into the global heap.
        assert!(
            h.stats().held_current < h.stats().held_peak,
            "some chunks must have been released"
        );
    }
}
