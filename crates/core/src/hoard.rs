//! The Hoard allocator: per-processor heaps, a global heap, and the
//! emptiness invariant. This module is the paper's Figure-level `malloc`
//! / `free` pseudocode, made real.
//!
//! ## Locking protocol
//!
//! * `malloc` locks the calling thread's per-processor heap; if it must
//!   consult the global heap it locks heap 0 *while holding* its own
//!   heap's lock.
//! * `free` reads the block's superblock's `owner` index (atomic), locks
//!   that heap, re-checks ownership (the superblock may have migrated in
//!   between) and retries on mismatch. Migrations to the global heap
//!   take heap 0's lock while holding the per-processor heap's lock.
//!
//! Lock order is therefore always *per-processor heap → global heap* and
//! never two per-processor heaps at once: no deadlock is possible.
//!
//! ## The emptiness invariant
//!
//! After every `free` on per-processor heap `i`, the implementation
//! migrates `f`-empty superblocks to the global heap until either
//!
//! * `u_i ≥ a_i − K·S` or `u_i ≥ (1−f)·a_i` (the paper's invariant), or
//! * heap `i` holds no superblock that is at least `f`-empty (possible
//!   only transiently, because per-block headers make usable capacity
//!   slightly less than `S`).
//!
//! This is exactly the postcondition the property tests in
//! `tests/invariants.rs` verify.

use crate::config::HoardConfig;
use crate::global_cache::GlobalCache;
use crate::harden::{self, CorruptionKind, CorruptionLog, SuperblockRegistry};
use crate::heap::Heap;
use crate::magazine::{Magazine, MagazineSlot, SlotClaim, SlotHeap, MAG_CLASSES, MAG_SLOTS};
use crate::superblock::Superblock;
use crate::tuning::{TuneAction, TuneState, MAX_TUNE_ACTIONS};
use crate::MAX_HEAPS;
use hoard_mem::{
    large, read_header, try_read_header, write_header, AllocSnapshot, AllocStats, ChunkSource,
    HeaderWord, MtAllocator, SizeClassTable, SystemSource, Tag,
};
use hoard_sim::{charge_cost, current_alloc_site, current_proc, now, Cost, VLockGuard};
use hoard_trace::{
    EventKind, HeapMap, HeapMapClass, HeapMapHeap, HeapProfiler, MetricsRegistry, MetricsSnapshot,
    TraceSink, TrcRecorder,
};
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::Acquire, Ordering::Release};
// Every counter update happens under the owning heap's lock, so relaxed
// ordering suffices throughout.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

/// Alignment requested for superblock chunks in the locked back-end.
/// The lock-free back-end aligns chunks to the superblock size instead,
/// which is what makes the O(1) address-mask metadata lookup sound.
const CHUNK_ALIGN: usize = 4096;

/// First pseudo-owner index naming a magazine slot's private mini-heap
/// (lock-free back-end only). `Superblock::owner` then encodes three
/// domains: `0` = global (heap 0, or the lock-free cache), `1..=MAX_HEAPS`
/// = per-processor heaps, `SLOT_OWNER_BASE + s` = magazine slot `s`.
pub(crate) const SLOT_OWNER_BASE: usize = MAX_HEAPS + 1;

/// Counters for the allocator's out-of-memory recovery path: when the
/// chunk source refuses a chunk, the allocator returns every completely
/// empty superblock it is hoarding (per-heap slack plus the global
/// heap's pool) to the source and retries once.
#[derive(Debug)]
pub(crate) struct RecoveryStats {
    chunk_reclaims: AtomicU64,
    rescued_allocations: AtomicU64,
}

impl RecoveryStats {
    const fn new() -> Self {
        RecoveryStats {
            chunk_reclaims: AtomicU64::new(0),
            rescued_allocations: AtomicU64::new(0),
        }
    }

    fn on_reclaim(&self, n: u64) {
        self.chunk_reclaims.fetch_add(n, Relaxed);
    }

    fn on_rescue(&self) {
        self.rescued_allocations.fetch_add(1, Relaxed);
    }
}

/// Point-in-time view of [`HoardAllocator::recovery_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Empty superblocks returned to the chunk source under memory
    /// pressure (outside the `release_empty_to_os` ablation).
    pub chunk_reclaims: u64,
    /// Allocations that failed on the first pass and succeeded after
    /// reclamation — requests that would have been spurious `None`s.
    pub rescued_allocations: u64,
}

/// A superblock's occupancy as a percentage of its block capacity —
/// the telemetry coordinate for transfer events ("how full were
/// superblocks when they migrated").
///
/// # Safety
///
/// `sb` must point to a live superblock; the caller holds its owning
/// heap's lock.
unsafe fn fullness_pct(sb: *mut Superblock) -> u64 {
    ((*sb).in_use as u64 * 100) / ((*sb).capacity.max(1) as u64)
}

/// A held heap lock plus the telemetry context captured at
/// acquisition. Dropping it reports the release (hold duration in
/// virtual units) *before* the lock itself is released, so hold times
/// never under-report. Constructed by `HoardAllocator::lock_heap`.
struct HeapLockToken<'a> {
    tracer: Option<&'a TraceSink>,
    metrics: Option<&'a MetricsRegistry>,
    heap_index: u32,
    acquired_at: u64,
    _guard: VLockGuard<'a>,
}

impl Drop for HeapLockToken<'_> {
    fn drop(&mut self) {
        if self.tracer.is_none() && self.metrics.is_none() {
            return;
        }
        let held = now().saturating_sub(self.acquired_at);
        if let Some(m) = self.metrics {
            m.on_unlock(self.heap_index as usize, held);
        }
        if let Some(t) = self.tracer {
            t.emit(EventKind::LockRelease, self.heap_index, held);
        }
    }
}

/// The Hoard allocator. See the [crate docs](crate) for the algorithm.
///
/// Generic over the [`ChunkSource`] "operating system"; defaults to
/// [`SystemSource`]. `const`-constructible (see
/// [`new_static`](HoardAllocator::new_static)) so it can be installed as
/// `#[global_allocator]`.
pub struct HoardAllocator<Src: ChunkSource = SystemSource> {
    config: HoardConfig,
    classes: SizeClassTable,
    /// `heaps[0]` is the global heap; `heaps[1..=P]` are per-processor.
    heaps: [Heap; MAX_HEAPS + 1],
    stats: AllocStats,
    source: Src,
    /// Corruption events detected by the hardened paths (always
    /// present; empty when `hardening` is `Off`).
    log: CorruptionLog,
    /// Chunk addresses of live large objects, kept when hardening is
    /// on. Large chunks return to the OS on free, so — unlike small
    /// blocks, whose headers are retagged [`Tag::Freed`] in place —
    /// double frees can only be caught against this registry.
    large_live: Mutex<Vec<usize>>,
    recovery: RecoveryStats,
    /// Thread-local front-end: per-virtual-processor magazines of
    /// detached free blocks (slot = `proc % MAG_SLOTS`). Inert when
    /// `config.magazine_capacity == 0`.
    frontend: [MagazineSlot; MAG_SLOTS],
    /// Lock-free global superblock cache (Treiber stacks); replaces the
    /// global heap's lock entirely when `config.lockfree_backend`.
    /// Inert otherwise.
    cache: GlobalCache,
    /// Live superblock base addresses, maintained when
    /// `config.lockfree_backend`: lets `free` derive the superblock
    /// from `ptr & !(S-1)` (one mask + one probe) and lets the hardened
    /// path reject forged headers without trusting their contents.
    registry: SuperblockRegistry,
    /// Attachable event tracer (null = tracing off). Holds a raw
    /// `Arc<TraceSink>` installed by [`attach_tracer`]; released on
    /// drop or replacement. When null, every hot path pays exactly one
    /// atomic load and a branch — and zero *virtual* time, so traces of
    /// an untraced run are bit-identical to a build without telemetry
    /// (enforced by `tests/telemetry.rs`).
    ///
    /// [`attach_tracer`]: HoardAllocator::attach_tracer
    tracer: AtomicPtr<TraceSink>,
    /// Attachable metrics registry (null = metering off); same
    /// lifecycle and gating contract as `tracer`.
    metrics: AtomicPtr<MetricsRegistry>,
    /// Attachable `.trc` capture device (null = recording off); same
    /// lifecycle and gating contract as `tracer`. Unlike the
    /// address-free event tracer, the recorder captures the replayable
    /// stream — sizes, pointer tokens, per-proc program order — that
    /// `hoardscope record` writes to disk.
    recorder: AtomicPtr<TrcRecorder>,
    /// Attachable live-heap profiler (null = profiling off); same
    /// lifecycle and gating contract as `tracer`. When attached, every
    /// successful `allocate`/`deallocate` feeds the site books (charged
    /// [`Cost::ProfileSample`]), and CAS-claimed virtual-clock ticks
    /// append `A`/`U` fragmentation-timeline points (DESIGN.md §14).
    profiler: AtomicPtr<HeapProfiler>,
    /// Online feedback controller (DESIGN.md §13): per-class magazine
    /// capacities/batches and tuned emptiness thresholds, stepped on
    /// the virtual clock from metrics deltas when
    /// `config.adaptive_tuning`. Inert (holding the static values)
    /// otherwise.
    tuning: TuneState,
}

impl HoardAllocator<SystemSource> {
    /// The paper's default configuration over the system chunk source.
    pub fn new_default() -> Self {
        Self::with_config(HoardConfig::new()).expect("default config is valid")
    }

    /// Build with a custom configuration over the system chunk source.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`](crate::ConfigError) when `config` is
    /// inconsistent.
    pub fn with_config(config: HoardConfig) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        Ok(Self::new_static(config))
    }

    /// `const` constructor for `static` use (e.g. `#[global_allocator]`).
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`/`static` context)
    /// if `config` is invalid.
    pub const fn new_static(config: HoardConfig) -> Self {
        if config.validate().is_err() {
            panic!("invalid Hoard configuration");
        }
        HoardAllocator {
            config,
            classes: SizeClassTable::for_superblock_size(config.superblock_size),
            heaps: [const { Heap::new() }; MAX_HEAPS + 1],
            stats: AllocStats::new(),
            source: SystemSource::new(),
            log: CorruptionLog::new(),
            large_live: Mutex::new(Vec::new()),
            recovery: RecoveryStats::new(),
            frontend: [const { MagazineSlot::new() }; MAG_SLOTS],
            cache: GlobalCache::new(),
            registry: SuperblockRegistry::new(),
            tracer: AtomicPtr::new(std::ptr::null_mut()),
            metrics: AtomicPtr::new(std::ptr::null_mut()),
            recorder: AtomicPtr::new(std::ptr::null_mut()),
            profiler: AtomicPtr::new(std::ptr::null_mut()),
            tuning: TuneState::for_config(&config),
        }
    }
}

impl<Src: ChunkSource> HoardAllocator<Src> {
    /// Build with a custom configuration and chunk source.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`](crate::ConfigError) when `config` is
    /// inconsistent.
    pub fn with_source(config: HoardConfig, source: Src) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        Ok(HoardAllocator {
            config,
            classes: SizeClassTable::for_superblock_size(config.superblock_size),
            heaps: [const { Heap::new() }; MAX_HEAPS + 1],
            stats: AllocStats::new(),
            source,
            log: CorruptionLog::new(),
            large_live: Mutex::new(Vec::new()),
            recovery: RecoveryStats::new(),
            frontend: [const { MagazineSlot::new() }; MAG_SLOTS],
            cache: GlobalCache::new(),
            registry: SuperblockRegistry::new(),
            tracer: AtomicPtr::new(std::ptr::null_mut()),
            metrics: AtomicPtr::new(std::ptr::null_mut()),
            recorder: AtomicPtr::new(std::ptr::null_mut()),
            profiler: AtomicPtr::new(std::ptr::null_mut()),
            tuning: TuneState::for_config(&config),
        })
    }

    /// This allocator's configuration.
    pub fn config(&self) -> &HoardConfig {
        &self.config
    }

    /// The size-class table in effect.
    pub fn size_classes(&self) -> &SizeClassTable {
        &self.classes
    }

    /// The chunk source (for its [`held`](hoard_mem::SourceStats)
    /// accounting).
    pub fn source(&self) -> &Src {
        &self.source
    }

    /// Heap index serving the calling thread: `1 + proc mod P` (heap 0
    /// is the global heap). This is the paper's thread-to-heap hash.
    pub fn heap_index_for_current_thread(&self) -> usize {
        1 + current_proc() % self.config.heap_count
    }

    /// Total superblock transfers to/from the global heap so far
    /// (`(to_global, from_global)`).
    pub fn transfer_counts(&self) -> (u64, u64) {
        let snap = self.stats.snapshot();
        (snap.transfers_to_global, snap.transfers_from_global)
    }

    /// Corruption events detected by the hardened deallocation paths
    /// (always empty when `config.hardening` is
    /// [`Off`](crate::HardeningLevel::Off)).
    pub fn corruption_log(&self) -> &CorruptionLog {
        &self.log
    }

    /// Out-of-memory recovery counters.
    pub fn recovery_stats(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            chunk_reclaims: self.recovery.chunk_reclaims.load(Relaxed),
            rescued_allocations: self.recovery.rescued_allocations.load(Relaxed),
        }
    }

    // ----- telemetry (attachable; off and virtually free by default) -----

    /// Install an event tracer; subsequent operations record typed
    /// events stamped with the emitting thread's virtual clock (each
    /// charged [`Cost::TraceEvent`]). Replaces (and releases) any
    /// previously attached sink — attach at a quiescent point, not
    /// while other threads are inside the allocator.
    pub fn attach_tracer(&self, sink: Arc<TraceSink>) {
        let old = self.tracer.swap(Arc::into_raw(sink).cast_mut(), Release);
        if !old.is_null() {
            unsafe { drop(Arc::from_raw(old)) };
        }
    }

    /// Install a metrics registry (see [`new_metrics_registry`] for one
    /// matched to this allocator's geometry). Same lifecycle contract
    /// as [`attach_tracer`].
    ///
    /// [`new_metrics_registry`]: HoardAllocator::new_metrics_registry
    /// [`attach_tracer`]: HoardAllocator::attach_tracer
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let old = self.metrics.swap(Arc::into_raw(registry).cast_mut(), Release);
        if !old.is_null() {
            unsafe { drop(Arc::from_raw(old)) };
        }
    }

    /// A [`MetricsRegistry`] sized to this allocator: `heap_count + 1`
    /// heaps (index 0 = global) × the size-class table's length.
    pub fn new_metrics_registry(&self) -> MetricsRegistry {
        MetricsRegistry::new(self.config.heap_count + 1, self.classes.len())
    }

    /// Install a `.trc` capture device; every subsequent successful
    /// `allocate` and every `deallocate` is recorded (size, pointer
    /// token, emitting proc, virtual timestamp), each charged
    /// [`Cost::TraceEvent`] like the event tracer. Same lifecycle
    /// contract as [`attach_tracer`] — attach and detach only at
    /// quiescent points.
    ///
    /// [`attach_tracer`]: HoardAllocator::attach_tracer
    pub fn attach_recorder(&self, rec: Arc<TrcRecorder>) {
        let old = self.recorder.swap(Arc::into_raw(rec).cast_mut(), Release);
        if !old.is_null() {
            unsafe { drop(Arc::from_raw(old)) };
        }
    }

    /// Install a live-heap profiler; every subsequent successful
    /// `allocate` and `deallocate` feeds its site/live books (each
    /// charged [`Cost::ProfileSample`]), and whichever thread claims a
    /// timeline tick appends an `A`/`U` fragmentation sample. Same
    /// lifecycle contract as [`attach_tracer`] — attach and detach only
    /// at quiescent points.
    ///
    /// [`attach_tracer`]: HoardAllocator::attach_tracer
    pub fn attach_profiler(&self, prof: Arc<HeapProfiler>) {
        let old = self.profiler.swap(Arc::into_raw(prof).cast_mut(), Release);
        if !old.is_null() {
            unsafe { drop(Arc::from_raw(old)) };
        }
    }

    /// Snapshot the attached metrics registry, first refreshing its
    /// hardening gauges from the corruption log and OOM-recovery
    /// counters. `None` when no registry is attached.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let m = self.metrics_ref()?;
        let rec = self.recovery_stats();
        m.set_hardening(
            self.log.total(),
            self.log.quarantined(),
            rec.chunk_reclaims,
            rec.rescued_allocations,
        );
        m.set_registry(
            self.registry.occupancy() as u64,
            self.registry.capacity() as u64,
            self.registry.overflowed(),
        );
        Some(m.snapshot())
    }

    #[inline]
    fn tracer_ref(&self) -> Option<&TraceSink> {
        let p = self.tracer.load(Acquire);
        // Safety: `p` came from `Arc::into_raw` and is only released by
        // `Drop` (`&mut self`) or `attach_tracer` (documented not to
        // race operations), so it outlives this `&self` borrow.
        if p.is_null() {
            None
        } else {
            Some(unsafe { &*p })
        }
    }

    #[inline]
    fn metrics_ref(&self) -> Option<&MetricsRegistry> {
        let p = self.metrics.load(Acquire);
        // Safety: as for `tracer_ref`.
        if p.is_null() {
            None
        } else {
            Some(unsafe { &*p })
        }
    }

    #[inline]
    fn recorder_ref(&self) -> Option<&TrcRecorder> {
        let p = self.recorder.load(Acquire);
        // Safety: as for `tracer_ref`.
        if p.is_null() {
            None
        } else {
            Some(unsafe { &*p })
        }
    }

    #[inline]
    fn profiler_ref(&self) -> Option<&HeapProfiler> {
        let p = self.profiler.load(Acquire);
        // Safety: as for `tracer_ref`.
        if p.is_null() {
            None
        } else {
            Some(unsafe { &*p })
        }
    }

    /// Claim and record a fragmentation-timeline sample when one is
    /// due. The CAS in `maybe_tick` lets exactly one thread win each
    /// interval, so a sequential replay claims ticks at the same
    /// virtual instants every run.
    #[inline]
    fn profile_tick(&self, prof: &HeapProfiler) {
        if prof.maybe_tick(now()) {
            charge_cost(Cost::ProfileSample);
            prof.record_sample(now(), self.source.stats().held_current, self.stats.live_now());
        }
    }

    /// A structural photograph of every heap: per-class superblock
    /// occupancy histograms plus the `u`/`a` gauges, stamped with the
    /// current virtual time. Walks each heap's superblock lists under
    /// that heap's lock, so call at a quiescent point (or accept the
    /// lock traffic); superblocks parked on the empty list are counted
    /// under the class they last served.
    pub fn heap_map_snapshot(&self) -> HeapMap {
        let mut heaps = Vec::with_capacity(self.config.heap_count + 1);
        for hi in 0..=self.config.heap_count {
            let heap = &self.heaps[hi];
            let _token = self.lock_heap(heap, hi);
            let mut classes: Vec<HeapMapClass> = Vec::new();
            // Safety: heap lock held; the closure only reads.
            unsafe {
                heap.for_each_superblock(|sb| {
                    let class = (*sb).class;
                    let row = match classes.iter_mut().find(|c| c.class == class) {
                        Some(row) => row,
                        None => {
                            classes.push(HeapMapClass {
                                class,
                                block_size: (*sb).block_size,
                                ..HeapMapClass::default()
                            });
                            classes.last_mut().unwrap()
                        }
                    };
                    row.superblocks += 1;
                    row.blocks_in_use += (*sb).in_use as u64;
                    row.capacity += (*sb).capacity as u64;
                    row.occupancy
                        [HeapMapClass::bucket((*sb).in_use as u64, (*sb).capacity as u64)] += 1;
                });
            }
            classes.sort_by_key(|c| c.class);
            heaps.push(HeapMapHeap {
                index: hi,
                live_bytes: heap.u.load(Relaxed),
                held_bytes: heap.a.load(Relaxed),
                empty_superblocks: heap.empty_count.load(Relaxed),
                classes,
            });
        }
        HeapMap { ts: now(), heaps }
    }

    /// Record one trace event when a tracer is attached; a single
    /// atomic load + branch (and no virtual time) when not.
    #[inline]
    fn emit(&self, kind: EventKind, arg0: u32, arg1: u64) {
        if let Some(t) = self.tracer_ref() {
            t.emit(kind, arg0, arg1);
        }
    }

    /// Lock `heap` (index `hi`), reporting the acquisition — and, when
    /// the returned token drops, the release and hold time — to the
    /// attached tracer/registry. With neither attached this is exactly
    /// `heap.lock.lock()` plus two atomic loads.
    #[inline]
    fn lock_heap<'a>(&'a self, heap: &'a Heap, hi: usize) -> HeapLockToken<'a> {
        let guard = heap.lock.lock();
        let tracer = self.tracer_ref();
        let metrics = self.metrics_ref();
        if tracer.is_none() && metrics.is_none() {
            return HeapLockToken {
                tracer: None,
                metrics: None,
                heap_index: hi as u32,
                acquired_at: 0,
                _guard: guard,
            };
        }
        let waited = guard.waited();
        if let Some(m) = metrics {
            m.on_lock(hi, waited);
        }
        if let Some(t) = tracer {
            t.emit(EventKind::LockAcquire, hi as u32, waited);
        }
        // Stamped after the acquire event so the hold slice excludes
        // the cost of recording it.
        HeapLockToken {
            tracer,
            metrics,
            heap_index: hi as u32,
            acquired_at: now(),
            _guard: guard,
        }
    }

    /// Report a corruption event to the log and, when attached, the
    /// tracer (`arg0` = [`CorruptionKind`] ordinal).
    fn report_corruption(&self, kind: CorruptionKind, addr: usize, note: &'static str) {
        self.log.report(kind, addr, note);
        self.emit(EventKind::Corruption, kind as u32, 0);
    }

    /// Bytes reserved past each block payload (the `Full`-mode canary).
    const fn block_extra(&self) -> usize {
        if self.config.hardening.poisons() {
            harden::CANARY_SIZE
        } else {
            0
        }
    }

    /// Whether the thread-local magazine front-end is enabled.
    fn magazines_on(&self) -> bool {
        self.config.magazine_capacity != 0
    }

    /// The *effective* configuration for emptiness-invariant decisions:
    /// the static config with the feedback controller's tuned `K`/`f`
    /// substituted. Returns `config` verbatim when tuning is off, so
    /// every invariant check below behaves exactly as before the
    /// controller existed.
    #[inline]
    fn policy(&self) -> HoardConfig {
        self.tuning.policy(&self.config)
    }

    /// Public view of [`policy`](Self::policy): the configuration the
    /// allocator is *currently* running (tuned thresholds included) —
    /// what external invariant checks (`debug::validate`) and the
    /// tuning tests should validate against.
    pub fn effective_config(&self) -> HoardConfig {
        self.policy()
    }

    /// The magazine capacity currently in force for `class` — the
    /// controller's per-class actuator (equals
    /// `config.magazine_capacity` for every class when tuning is off).
    pub fn magazine_capacity_for(&self, class: usize) -> usize {
        if class < MAG_CLASSES {
            self.tuning.capacity(class)
        } else {
            0
        }
    }

    /// One step of the online feedback controller (DESIGN.md §13),
    /// called from the magazine refill/flush slow paths *before* any
    /// lock is taken. At most one thread claims a tick per
    /// `TUNE_INTERVAL` of virtual time (CAS on the last-tick stamp),
    /// pays `Cost::TuneTick`, reads the metrics registry, and steps the
    /// actuators — so the tick sequence, and with it every tuned trace,
    /// is deterministic under `.trc` replay. With no registry attached
    /// there are no sensors and the controller holds its seed policy.
    fn maybe_tune(&self) {
        if !self.tuning.enabled() {
            return;
        }
        let Some(m) = self.metrics_ref() else {
            return;
        };
        if !self.tuning.maybe_tick(now()) {
            return;
        }
        charge_cost(Cost::TuneTick);
        let snap = m.snapshot();
        let mut actions: [Option<TuneAction>; MAX_TUNE_ACTIONS] =
            [const { None }; MAX_TUNE_ACTIONS];
        let n = self.tuning.tick(&self.config, &snap, &mut actions);
        for a in actions.iter().take(n).flatten() {
            let (kind, arg0, arg1) = a.as_event();
            self.emit(kind, arg0, arg1);
        }
    }

    /// Whether the lock-free back-end is enabled (implies magazines;
    /// enforced by `HoardConfig::validate`).
    fn lockfree(&self) -> bool {
        self.config.lockfree_backend
    }

    /// Chunk alignment in effect: the lock-free back-end aligns chunks
    /// to the superblock size so `ptr & !(S-1)` recovers the superblock
    /// base — O(1) metadata lookup by address masking.
    fn chunk_align(&self) -> usize {
        if self.lockfree() {
            self.config.superblock_size.max(CHUNK_ALIGN)
        } else {
            CHUNK_ALIGN
        }
    }

    /// Layout of one superblock chunk under the back-end in effect.
    fn superblock_layout(&self) -> Layout {
        Layout::from_size_align(self.config.superblock_size, self.chunk_align())
            .expect("superblock layout")
    }

    /// Pull one superblock chunk from the source, registering its base
    /// for mask-lookup when the lock-free back-end is on.
    ///
    /// # Safety
    ///
    /// As for [`ChunkSource::alloc_chunk`].
    unsafe fn alloc_sb_chunk(&self) -> Option<NonNull<u8>> {
        let chunk = self.source.alloc_chunk(self.superblock_layout())?;
        if self.lockfree() {
            self.registry.insert(chunk.as_ptr() as usize);
        }
        Some(chunk)
    }

    /// Return a superblock chunk to the source (the inverse of
    /// [`alloc_sb_chunk`](Self::alloc_sb_chunk)).
    ///
    /// # Safety
    ///
    /// `sb` must be a live superblock chunk the caller exclusively owns.
    unsafe fn free_sb_chunk(&self, sb: *mut Superblock) {
        if self.lockfree() {
            self.registry.remove(sb as usize);
        }
        self.source
            .free_chunk(NonNull::new_unchecked(sb as *mut u8), self.superblock_layout());
    }

    /// Total (acquisitions, virtually contended acquisitions) across all
    /// heap locks — the counters behind the "fast path bypasses the
    /// lock" measurements in `results/`.
    pub fn heap_lock_stats(&self) -> (u64, u64) {
        let mut acq = 0;
        let mut con = 0;
        for heap in self.heaps.iter().take(self.config.heap_count + 1) {
            acq += heap.lock.acquisitions();
            con += heap.lock.contentions();
        }
        (acq, con)
    }

    // ----- the thread-local front-end (magazines + deferred frees) -----

    /// Deferred remote frees tolerated on one superblock before foreign
    /// `free`s fall back to the locked path (which drains): half the
    /// superblock's blocks, so a producer can never park more than half
    /// a superblock per superblock.
    fn remote_limit(capacity: u32) -> u32 {
        (capacity / 2).max(1)
    }

    /// Fast-path `malloc`: pop from this processor's magazine, refilling
    /// a half-capacity batch under one lock acquisition when dry.
    /// `None` (slot collision or refill OOM) falls back to the locked
    /// path.
    unsafe fn magazine_alloc(&self, class: usize) -> Option<NonNull<u8>> {
        let slot = &self.frontend[current_proc() % MAG_SLOTS];
        let claim = slot.try_claim()?;
        let mag = claim.magazine(class);
        let (p, hit) = match mag.pop() {
            Some(p) => {
                charge_cost(Cost::MagazineOp);
                self.stats.on_magazine_alloc_hit();
                (p, true)
            }
            None => {
                charge_cost(Cost::MallocFast);
                let got = if self.lockfree() {
                    self.refill_lockfree(claim.heap(), current_proc() % MAG_SLOTS, class, mag)
                } else {
                    self.refill_magazine(class, mag)
                };
                if got == 0 {
                    return None;
                }
                self.stats.on_magazine_refill();
                self.emit(EventKind::MagazineRefill, class as u32, got as u64);
                if let Some(m) = self.metrics_ref() {
                    m.on_magazine_refill(self.heap_index_for_current_thread(), class);
                }
                (mag.pop()?, false)
            }
        };
        let block_size = self.classes.class(class).block_size;
        self.prepare_block_for_handout(p, block_size);
        self.stats.on_alloc(block_size as u64);
        self.emit(EventKind::AllocMagazine, class as u32, block_size as u64);
        if let Some(m) = self.metrics_ref() {
            // A refill-then-pop took the heap lock, so only a pop hit
            // counts as a lock bypass (mirrors on_magazine_alloc_hit).
            m.on_alloc(self.heap_index_for_current_thread(), class, hit);
        }
        Some(NonNull::new_unchecked(p))
    }

    /// Hardening transforms a block needs on its way out of a magazine;
    /// mirrors what `alloc_small` does after `alloc_block`.
    unsafe fn prepare_block_for_handout(&self, p: *mut u8, block_size: u32) {
        if self.config.hardening.detects() {
            let h = read_header(p);
            if h.tag == Tag::Freed {
                // Stashed by a front-end free: its poison sat unguarded
                // in the magazine; check before reuse.
                if self.config.hardening.poisons() && !harden::poison_intact(p, block_size) {
                    self.report_corruption(
                        CorruptionKind::PoisonOverwrite,
                        p as usize,
                        "freed block modified before reuse",
                    );
                }
                write_header(p, HeaderWord::new(Tag::Superblock, h.value));
            }
        }
        if self.config.hardening.poisons() {
            harden::write_canary(p, block_size);
        }
    }

    /// Pull a half-capacity batch of blocks for `class` into `mag` under
    /// one acquisition of the caller's heap lock, draining deferred
    /// remote frees first (the producer–consumer return path). Returns
    /// the number of blocks obtained (0 = heap and source exhausted).
    unsafe fn refill_magazine(&self, class: usize, mag: &mut Magazine) -> usize {
        self.maybe_tune();
        let block_size = self.classes.class(class).block_size;
        let s = self.config.superblock_size;
        let hi = self.heap_index_for_current_thread();
        let heap = &self.heaps[hi];
        let _guard = self.lock_heap(heap, hi);
        if let Some(m) = self.metrics_ref() {
            // A refill only runs on a dry magazine; record the boundary.
            m.on_magazine_level(0);
        }

        // Full superblocks are exactly where deferred remote frees pool
        // up (the consumer's heap looks exhausted while its blocks sit
        // parked); recover them before pulling fresh memory.
        let mut trigger = self.drain_full_group_remotes(heap, class);

        let want = self.tuning.batch(class);
        let mut got = 0usize;
        let mut escalated = false;
        while got < want {
            // The same four-step waterfall as `alloc_small_attempt`.
            let mut sb = heap.find_with_free(class);
            if sb.is_null() {
                sb = heap.pop_empty();
                if !sb.is_null() {
                    if (*sb).class as usize != class {
                        let before = Superblock::usable_bytes(sb);
                        Superblock::reformat(sb, s, class as u32, block_size, self.block_extra());
                        let after = Superblock::usable_bytes(sb);
                        heap.a.fetch_add(after, Relaxed);
                        heap.a.fetch_sub(before, Relaxed);
                    }
                    heap.link(sb);
                }
            }
            if sb.is_null() && !escalated {
                // Cross-thread churn parks blocks on partially-full
                // superblocks' deferred stacks too; a whole-class drain
                // beats transferring or mapping fresh memory. Once per
                // refill: a second pass would find the stacks empty.
                escalated = true;
                trigger |= self.drain_class_remotes(heap, class);
                continue;
            }
            if sb.is_null() {
                sb = self.fetch_from_global(heap, hi, class, block_size);
            }
            if sb.is_null() {
                let Some(chunk) = self.alloc_sb_chunk() else {
                    break;
                };
                sb = Superblock::init(
                    chunk.as_ptr(),
                    s,
                    class as u32,
                    block_size,
                    hi,
                    self.block_extra(),
                );
                heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
                heap.link(sb);
            }
            if Superblock::remote_pending(sb) {
                // Draining can re-home `sb` — onto the empty list when
                // every live block was sitting parked — so reselect
                // instead of allocating from a possibly-moved superblock.
                trigger |= self.drain_remote_locked(heap, sb);
                continue;
            }
            let mut taken = 0u64;
            while got < want && Superblock::has_free(sb) {
                let reused = self.config.hardening.poisons() && !(*sb).free_head.is_null();
                let p = Superblock::alloc_block(sb);
                if reused && !harden::poison_intact(p, block_size) {
                    self.report_corruption(
                        CorruptionKind::PoisonOverwrite,
                        p as usize,
                        "freed block modified before reuse",
                    );
                }
                mag.push(p);
                taken += 1;
                got += 1;
            }
            heap.u.fetch_add(taken * block_size as u64, Relaxed);
            heap.relink(sb);
            if !self.policy().f_empty_blocks((*sb).in_use, (*sb).capacity) {
                (*sb).armed = true;
            }
        }
        // Restore only when a drain fired the armed-latch trigger (the
        // same hysteresis as `free_small`): refills run every few dozen
        // allocations, and restoring unconditionally here ping-pongs
        // marginal superblocks through the global heap.
        if trigger {
            self.restore_invariant(heap, hi);
        }
        got
    }

    /// Fast-path `free`. Returns `true` when handled: same-heap blocks
    /// stash into the magazine (flushing half when full), foreign blocks
    /// push onto their superblock's deferred stack. `false` (slot
    /// collision, global-owned block, or drain pressure) sends the
    /// caller to the locked path.
    unsafe fn frontend_free(&self, sb: *mut Superblock, payload: *mut u8) -> bool {
        let block_size = (*sb).block_size;
        let owner = Superblock::owner(sb);
        if owner == self.heap_index_for_current_thread() {
            let slot = &self.frontend[current_proc() % MAG_SLOTS];
            let Some(claim) = slot.try_claim() else {
                return false;
            };
            let class = (*sb).class as usize;
            let mag = claim.magazine(class);
            if mag.len() >= self.tuning.capacity(class) {
                self.flush_magazine(class, mag);
                self.stats.on_magazine_flush();
                if let Some(m) = self.metrics_ref() {
                    m.on_magazine_flush(owner, class);
                }
            }
            if !self.harden_on_stash(sb, payload, block_size) {
                return true; // quarantined: handled, nothing stashed
            }
            mag.push(payload);
            charge_cost(Cost::MagazineOp);
            self.stats.on_magazine_free_hit();
            self.stats.on_free(block_size as u64, false);
            self.emit(EventKind::FreeMagazine, class as u32, 0);
            if let Some(m) = self.metrics_ref() {
                m.on_free(owner, class, true);
            }
            true
        } else if owner != 0 {
            // Foreign per-processor heap: defer instead of bouncing its
            // lock — until the stack is deep enough that someone should
            // take the lock and drain it.
            if Superblock::remote_len(sb) >= Self::remote_limit((*sb).capacity) {
                return false;
            }
            if !self.harden_on_stash(sb, payload, block_size) {
                return true;
            }
            let _ = Superblock::push_remote(sb, payload);
            charge_cost(Cost::RemoteFreePush);
            self.stats.on_remote_push();
            self.stats.on_free(block_size as u64, true);
            self.emit(EventKind::RemoteFreePush, (*sb).class, owner as u64);
            if let Some(m) = self.metrics_ref() {
                m.on_remote_free(owner, (*sb).class as usize);
            }
            true
        } else {
            // Global-owned: the locked path may also release empties.
            false
        }
    }

    /// Hardening transforms for a block entering a magazine or deferred
    /// stack — the same checks the locked `free_small` runs, so
    /// detection fires no later than it would without the front-end.
    /// Returns `false` when the block was quarantined (caller must not
    /// stash it).
    unsafe fn harden_on_stash(&self, sb: *mut Superblock, payload: *mut u8, block_size: u32) -> bool {
        if self.config.hardening.poisons() && !harden::canary_intact(payload, block_size) {
            self.report_corruption(
                CorruptionKind::CanarySmashed,
                payload as usize,
                "block quarantined",
            );
            self.log.on_quarantine();
            return false;
        }
        if self.config.hardening.detects() {
            // A second free of this pointer now hits Tag::Freed in
            // `deallocate_hardened`, exactly as on the locked path.
            write_header(payload, HeaderWord::new(Tag::Freed, sb as usize));
        }
        if self.config.hardening.poisons() {
            harden::poison_payload(payload, block_size);
        }
        true
    }

    /// Return the oldest half of `mag` to the heaps under one
    /// acquisition of the caller's own heap lock; blocks whose
    /// superblock migrated away since they were stashed go through the
    /// lock-free deferred stacks (never a second heap lock — the lock
    /// order stays per-processor → global).
    unsafe fn flush_magazine(&self, class: usize, mag: &mut Magazine) {
        self.maybe_tune();
        if let Some(m) = self.metrics_ref() {
            // Flushes only run on a full magazine; record the boundary.
            m.on_magazine_level(mag.len() as u64);
        }
        let mut batch = [std::ptr::null_mut(); crate::magazine::MAX_MAGAZINE_CAPACITY];
        let n = mag.take_oldest(self.tuning.batch(class), &mut batch);
        let hi = self.heap_index_for_current_thread();
        let heap = &self.heaps[hi];
        let _guard = self.lock_heap(heap, hi);
        self.emit(EventKind::MagazineFlush, class as u32, n as u64);
        let mut trigger = false;
        for &p in &batch[..n] {
            let h = read_header(p);
            let sb = h.value as *mut Superblock;
            // The batch mixes stashed blocks (already `Freed`-tagged and
            // poisoned by `harden_on_stash`) with refill-loaded ones
            // (still `Superblock`-tagged, never poisoned). Both are
            // about to rejoin a free list, whose hardening invariant is
            // `Freed` + intact poison; give the refill-loaded ones the
            // stash transforms now, exactly as `park_claimed_slot` does,
            // or the next reuse check misreads them as corruption.
            if self.config.hardening.detects() && h.tag != Tag::Freed {
                write_header(p, HeaderWord::new(Tag::Freed, sb as usize));
                if self.config.hardening.poisons() {
                    harden::poison_payload(p, (*sb).block_size);
                }
            }
            if Superblock::owner(sb) == hi {
                let pol = self.policy();
                let was_f_empty = pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
                Superblock::free_block(sb, p);
                heap.u.fetch_sub((*sb).block_size as u64, Relaxed);
                heap.relink(sb);
                let crossed = !was_f_empty && pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
                let too_many_empties =
                    (*sb).in_use == 0 && heap.empty_count.load(Relaxed) > pol.slack_k;
                trigger |= ((*sb).armed && crossed) || too_many_empties;
                if crossed {
                    (*sb).armed = false;
                    self.emit(EventKind::EmptinessCross, hi as u32, 0);
                }
            } else {
                let _ = Superblock::push_remote(sb, p);
            }
        }
        // Same armed-latch hysteresis as `free_small`: a batch of frees
        // only restores the invariant when it moved an armed superblock
        // across the f-emptiness boundary (or hoarded > K empties).
        if trigger {
            self.restore_invariant(heap, hi);
        }
    }

    /// Drain one superblock's deferred remote-free stack into its free
    /// list. Caller holds the owning heap's lock; `sb` is linked there.
    ///
    /// Returns whether the drain should trigger invariant restoration —
    /// the same armed-latch hysteresis as `free_small`, evaluated once
    /// for the whole batch. An unconditional restore here would migrate
    /// a superblock to the global heap on nearly every drain (batched
    /// frees routinely dip `u` below the boundary) only for the next
    /// refill to fetch it straight back: transfer ping-pong that costs
    /// more than the locks the front-end saves.
    unsafe fn drain_remote_locked(&self, heap: &Heap, sb: *mut Superblock) -> bool {
        let (mut p, n) = Superblock::take_remote(sb);
        if p.is_null() {
            return false;
        }
        let pol = self.policy();
        let was_f_empty = pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
        let block_size = (*sb).block_size as u64;
        while !p.is_null() {
            let next = Superblock::remote_next(sb, p);
            Superblock::free_block(sb, p);
            p = next;
        }
        heap.u.fetch_sub(block_size * n as u64, Relaxed);
        heap.relink(sb);
        self.stats.on_remote_drain();
        self.emit(EventKind::RemoteFreeDrain, (*sb).class, n as u64);
        let crossed = !was_f_empty && pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
        let too_many_empties =
            (*sb).in_use == 0 && heap.empty_count.load(Relaxed) > pol.slack_k;
        let trigger = ((*sb).armed && crossed) || too_many_empties;
        if crossed {
            (*sb).armed = false;
            self.emit(EventKind::EmptinessCross, Superblock::owner(sb) as u32, 0);
        }
        trigger
    }

    /// Drain deferred stacks parked on `class`'s *full* superblocks —
    /// where producer–consumer traffic pools, since a superblock whose
    /// blocks all sit with the consumer looks full to its owner.
    unsafe fn drain_full_group_remotes(&self, heap: &Heap, class: usize) -> bool {
        self.drain_group_remotes(heap, class, Superblock::full_group())
    }

    /// Escalation before paying for a fresh superblock: drain deferred
    /// stacks across *every* fullness group of `class`. Cross-thread
    /// churn (larson-style bleeding) parks blocks on partially-full
    /// superblocks too, and recovering them beats an `OsChunk` by orders
    /// of magnitude.
    unsafe fn drain_class_remotes(&self, heap: &Heap, class: usize) -> bool {
        let mut trigger = false;
        for group in 0..=Superblock::full_group() {
            trigger |= self.drain_group_remotes(heap, class, group);
        }
        trigger
    }

    unsafe fn drain_group_remotes(&self, heap: &Heap, class: usize, group: usize) -> bool {
        let mut trigger = false;
        let mut sb = heap.group_head(class, group);
        while !sb.is_null() {
            let next = (*sb).next; // drain relinks; step first
            if Superblock::remote_pending(sb) {
                trigger |= self.drain_remote_locked(heap, sb);
            }
            sb = next;
        }
        trigger
    }

    /// Park every block of an already-claimed slot on its superblock's
    /// deferred stack (lock-free; the stacks are drained under the
    /// proper heap locks afterwards).
    unsafe fn park_claimed_slot(&self, claim: &SlotClaim<'_>) {
        for class in 0..MAG_CLASSES {
            let mag = claim.magazine(class);
            while let Some(p) = mag.pop() {
                let h = read_header(p);
                let sb = h.value as *mut Superblock;
                // A magazine holds blocks in two states: stashed by a
                // front-end free (already retagged `Freed` and poisoned
                // by `harden_on_stash`) and loaded by a refill (still
                // tagged `Superblock`, never poisoned — hardening is
                // deferred to handout). Parking sends both to the free
                // list, whose invariant under hardening is
                // `Freed`-tagged and poison-intact; give refill-loaded
                // blocks the stash transforms now or the next reuse
                // check misreads them as corruption. (No canary check:
                // refill-loaded blocks only get a canary at handout.)
                if self.config.hardening.detects() && h.tag != Tag::Freed {
                    write_header(p, HeaderWord::new(Tag::Freed, sb as usize));
                    if self.config.hardening.poisons() {
                        harden::poison_payload(p, (*sb).block_size);
                    }
                }
                let _ = Superblock::push_remote(sb, p);
            }
        }
    }

    /// Drain every superblock of `heap` with a pending deferred stack.
    /// Allocation-free (rescans instead of collecting), so it is safe
    /// inside a `#[global_allocator]`. Caller holds `heap`'s lock.
    unsafe fn drain_all_remotes_locked(&self, heap: &Heap) {
        loop {
            let sb = heap.find_remote_pending();
            if sb.is_null() {
                return;
            }
            self.drain_remote_locked(heap, sb);
        }
    }

    /// Flush every magazine and drain every deferred remote-free stack,
    /// then re-establish the emptiness invariant on every heap.
    ///
    /// Intended for quiescent moments — between benchmark phases, or
    /// before asserting `live == 0` / heap-emptiness postconditions in
    /// tests. Spins briefly when an in-flight operation holds a slot
    /// claim. No-op when the front-end is disabled.
    pub fn flush_frontend(&self) {
        if !self.magazines_on() {
            return;
        }
        unsafe {
            for slot in &self.frontend {
                let claim = loop {
                    match slot.try_claim() {
                        Some(c) => break c,
                        None => std::thread::yield_now(),
                    }
                };
                self.park_claimed_slot(&claim);
            }
            if self.lockfree() {
                // Slot heaps drain only after *every* slot is parked (a
                // later slot's magazine may hold an earlier slot's
                // blocks), then settle their invariants.
                for (i, slot) in self.frontend.iter().enumerate() {
                    let claim = loop {
                        match slot.try_claim() {
                            Some(c) => break c,
                            None => std::thread::yield_now(),
                        }
                    };
                    let sh = claim.heap();
                    for class in 0..MAG_CLASSES {
                        self.drain_slot_class(sh, class);
                    }
                    self.restore_slot_invariant(sh, i);
                }
            }
            // Per-processor heaps first: their restorations migrate
            // superblocks *to* the global heap, which is settled last.
            for hi in (0..=self.config.heap_count).rev() {
                let heap = &self.heaps[hi];
                let _guard = self.lock_heap(heap, hi);
                self.drain_all_remotes_locked(heap);
                if hi == 0 {
                    self.maybe_release_global_empties(heap);
                } else {
                    self.restore_invariant(heap, hi);
                }
            }
            if self.lockfree() {
                self.settle_cache();
            }
        }
    }

    // ----- the lock-free back-end -----
    //
    // With `config.lockfree_backend` the three lock rendezvous of the
    // magazine design disappear:
    //
    // * metadata lookup: chunks are aligned to `S`, so `free` recovers
    //   the superblock as `ptr & !(S-1)` plus one probe of the live-base
    //   registry (no header dependency on the unhardened path);
    // * remote frees: each superblock's deferred stack is one packed
    //   64-bit word (head index | count | ABA tag), so pushes are one
    //   CAS and the owner drains with one swap;
    // * the global heap: whole superblocks park on Treiber stacks
    //   (`GlobalCache`) instead of heap 0's locked lists.
    //
    // Small-class superblocks are owned by *magazine slots* (pseudo-
    // owner `SLOT_OWNER_BASE + slot`), each a claim-guarded mini-heap
    // (`SlotHeap`) obeying the same emptiness invariant as a heap, so
    // the paper's O(U + P·S) blowup bound survives with `P` counted as
    // heaps + slots. Heap locks remain only on the rare fallback paths
    // (slot collisions and classes too big for magazines).

    /// Lock-free refill: pull a half-capacity batch for `class` from
    /// the slot's own mini-heap, falling back to the cache and then the
    /// OS. The slot-claim counterpart of `refill_magazine`; never takes
    /// a heap lock. Returns the number of blocks obtained.
    unsafe fn refill_lockfree(
        &self,
        sh: &mut SlotHeap,
        slot_idx: usize,
        class: usize,
        mag: &mut Magazine,
    ) -> usize {
        self.maybe_tune();
        let block_size = self.classes.class(class).block_size;
        let s = self.config.superblock_size;
        let me = SLOT_OWNER_BASE + slot_idx;
        if let Some(m) = self.metrics_ref() {
            // A refill only runs on a dry magazine; record the boundary.
            m.on_magazine_level(0);
        }
        // Parked remote frees are where this class's blocks pool up;
        // recover them before pulling fresh memory. Slot bins are short
        // (the invariant bounds them), so one whole-class sweep covers
        // what the locked path does in two.
        let mut trigger = self.drain_slot_class(sh, class);
        let want = self.tuning.batch(class);
        let mut got = 0usize;
        while got < want {
            // The same waterfall as `refill_magazine`, against the
            // slot's structures: bin → own empty → cache → OS.
            let mut sb = sh.find_with_free(class);
            if sb.is_null() {
                sb = sh.pop_empty();
                if !sb.is_null() {
                    if (*sb).class as usize != class {
                        let before = Superblock::usable_bytes(sb);
                        Superblock::reformat(sb, s, class as u32, block_size, self.block_extra());
                        sh.a += Superblock::usable_bytes(sb);
                        sh.a -= before;
                    }
                    sh.link(sb);
                }
            }
            if sb.is_null() {
                sb = self.adopt_from_cache(sh, me, class, block_size);
            }
            if sb.is_null() {
                let Some(chunk) = self.alloc_sb_chunk() else {
                    break;
                };
                sb = Superblock::init(
                    chunk.as_ptr(),
                    s,
                    class as u32,
                    block_size,
                    me,
                    self.block_extra(),
                );
                sh.a += Superblock::usable_bytes(sb);
                sh.link(sb);
            }
            if Superblock::remote_pending(sb) {
                // Draining can re-home `sb` onto the empty list;
                // reselect instead of allocating from a moved superblock.
                trigger |= self.drain_slot_sb(sh, sb);
                continue;
            }
            let mut taken = 0u64;
            while got < want && Superblock::has_free(sb) {
                let reused = self.config.hardening.poisons() && !(*sb).free_head.is_null();
                let p = Superblock::alloc_block(sb);
                if reused && !harden::poison_intact(p, block_size) {
                    self.report_corruption(
                        CorruptionKind::PoisonOverwrite,
                        p as usize,
                        "freed block modified before reuse",
                    );
                }
                mag.push(p);
                taken += 1;
                got += 1;
            }
            sh.u += taken * block_size as u64;
            if !self.policy().f_empty_blocks((*sb).in_use, (*sb).capacity) {
                (*sb).armed = true;
            }
        }
        // Same armed-latch hysteresis as `refill_magazine`.
        if trigger {
            self.restore_slot_invariant(sh, slot_idx);
        }
        got
    }

    /// Adopt one superblock from the lock-free cache into a slot heap:
    /// partials of `class` first, then an empty to reformat. One CAS
    /// per stack attempted; accounting is pure post-adoption arithmetic
    /// on the claim-guarded slot counters.
    unsafe fn adopt_from_cache(
        &self,
        sh: &mut SlotHeap,
        me: usize,
        class: usize,
        block_size: u32,
    ) -> *mut Superblock {
        let mut sb = self.cache.pop_partial(class);
        if sb.is_null() {
            sb = self.cache.pop_empty();
            if !sb.is_null() && (*sb).class as usize != class {
                Superblock::reformat(
                    sb,
                    self.config.superblock_size,
                    class as u32,
                    block_size,
                    self.block_extra(),
                );
            }
        }
        if sb.is_null() {
            return sb;
        }
        charge_cost(Cost::AtomicRmw);
        Superblock::set_owner(sb, me);
        sh.a += Superblock::usable_bytes(sb);
        sh.u += Superblock::used_bytes(sb);
        sh.link(sb);
        self.stats.on_transfer_from_global();
        charge_cost(Cost::SuperblockTransfer);
        let pct = fullness_pct(sb);
        self.emit(EventKind::TransferFromGlobal, 0, pct);
        if let Some(m) = self.metrics_ref() {
            m.on_transfer_from_global(0, pct);
        }
        sb
    }

    /// `free` for the lock-free back-end (small classes). Same-slot
    /// blocks stash into the magazine under the claim; everything else
    /// rides the superblock's packed remote word. Never takes a heap
    /// lock.
    unsafe fn lockfree_free(&self, sb: *mut Superblock, payload: *mut u8) {
        let block_size = (*sb).block_size;
        let class = (*sb).class as usize;
        let slot_idx = current_proc() % MAG_SLOTS;
        let me = SLOT_OWNER_BASE + slot_idx;
        if Superblock::owner(sb) == me {
            if let Some(claim) = self.frontend[slot_idx].try_claim() {
                // Owner can only change under this slot's claim, so the
                // re-check below makes the read stable for the stash.
                if Superblock::owner(sb) == me {
                    let mag = claim.magazine(class);
                    if mag.len() >= self.tuning.capacity(class) {
                        self.flush_magazine_lockfree(claim.heap(), slot_idx, class, mag);
                        self.stats.on_magazine_flush();
                        if let Some(m) = self.metrics_ref() {
                            m.on_magazine_flush(self.heap_index_for_current_thread(), class);
                        }
                    }
                    if !self.harden_on_stash(sb, payload, block_size) {
                        return; // quarantined: handled, nothing stashed
                    }
                    mag.push(payload);
                    charge_cost(Cost::MagazineOp);
                    self.stats.on_magazine_free_hit();
                    self.stats.on_free(block_size as u64, false);
                    self.emit(EventKind::FreeMagazine, class as u32, 0);
                    if let Some(m) = self.metrics_ref() {
                        m.on_free(self.heap_index_for_current_thread(), class, true);
                    }
                    return;
                }
            }
        }
        // Foreign (another slot, a heap, the cache) or claim collision.
        self.lockfree_remote_free(sb, payload);
    }

    /// Account and defer one free onto `sb`'s packed remote word
    /// (hardening transforms included; quarantine swallows the push).
    unsafe fn lockfree_remote_free(&self, sb: *mut Superblock, payload: *mut u8) {
        if !self.harden_on_stash(sb, payload, (*sb).block_size) {
            return;
        }
        let owner = Superblock::owner(sb);
        self.stats.on_remote_push();
        self.stats.on_free((*sb).block_size as u64, true);
        self.emit(EventKind::RemoteFreePush, (*sb).class, owner as u64);
        if let Some(m) = self.metrics_ref() {
            let hi = if owner <= MAX_HEAPS { owner } else { 0 };
            m.on_remote_free(hi, (*sb).class as usize);
        }
        self.push_remote_lockfree(sb, payload);
    }

    /// Push one block onto `sb`'s packed remote word; when the stack
    /// crosses `remote_limit`, try to steal the owner's structure and
    /// drain in place (the lock-free analogue of the forced-drain
    /// fallback in `frontend_free`).
    unsafe fn push_remote_lockfree(&self, sb: *mut Superblock, payload: *mut u8) {
        let count = Superblock::push_remote(sb, payload);
        charge_cost(Cost::AtomicRmw);
        if count >= Self::remote_limit((*sb).capacity) {
            self.steal_drain(sb);
        }
    }

    /// Drain a superblock whose remote stack crossed the threshold,
    /// wherever it lives: a slot heap (claim it), a per-processor heap
    /// (lock it), or the cache (nothing to do — adoption drains). Best
    /// effort: a busy owner keeps the stack until its next operation.
    unsafe fn steal_drain(&self, sb: *mut Superblock) {
        let owner = Superblock::owner(sb);
        if owner == 0 {
            return;
        }
        if owner >= SLOT_OWNER_BASE {
            let slot_idx = owner - SLOT_OWNER_BASE;
            if let Some(claim) = self.frontend[slot_idx].try_claim() {
                // Stable once re-checked under the claim (see
                // `lockfree_free`).
                if Superblock::owner(sb) == owner {
                    let sh = claim.heap();
                    if self.drain_slot_sb(sh, sb) {
                        self.restore_slot_invariant(sh, slot_idx);
                    }
                }
            }
            return;
        }
        let heap = &self.heaps[owner];
        let guard = self.lock_heap(heap, owner);
        if Superblock::owner(sb) != owner {
            return; // migrated while we were locking; its new owner drains
        }
        if self.drain_remote_locked(heap, sb) {
            self.restore_invariant(heap, owner);
        }
        drop(guard);
    }

    /// Drain `sb`'s packed remote word into its free list with one
    /// atomic swap. Caller holds the owning slot's claim; `sb` is
    /// linked in `sh`. Returns whether to trigger invariant restoration
    /// (the armed-latch hysteresis of `drain_remote_locked`).
    unsafe fn drain_slot_sb(&self, sh: &mut SlotHeap, sb: *mut Superblock) -> bool {
        let (mut p, n) = Superblock::take_remote(sb);
        charge_cost(Cost::AtomicRmw);
        if p.is_null() {
            return false;
        }
        let pol = self.policy();
        let was_f_empty = pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
        let block_size = (*sb).block_size as u64;
        while !p.is_null() {
            let next = Superblock::remote_next(sb, p);
            Superblock::free_block(sb, p);
            p = next;
        }
        sh.u -= block_size * n as u64;
        sh.relink(sb);
        self.stats.on_remote_drain();
        self.emit(EventKind::RemoteFreeDrain, (*sb).class, n as u64);
        let crossed = !was_f_empty && pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
        let too_many_empties = (*sb).in_use == 0 && sh.empty_count > pol.slack_k;
        let trigger = ((*sb).armed && crossed) || too_many_empties;
        if crossed {
            (*sb).armed = false;
            self.emit(EventKind::EmptinessCross, 0, 0);
        }
        trigger
    }

    /// Drain every pending remote stack on `class`'s superblocks in a
    /// slot heap. Returns the accumulated restoration trigger.
    unsafe fn drain_slot_class(&self, sh: &mut SlotHeap, class: usize) -> bool {
        let mut trigger = false;
        let mut sb = sh.class_head(class);
        while !sb.is_null() {
            let next = (*sb).next; // drain may relink; step first
            if Superblock::remote_pending(sb) {
                trigger |= self.drain_slot_sb(sh, sb);
            }
            sb = next;
        }
        trigger
    }

    /// Lock-free flush: return the oldest half of the `class` magazine.
    /// Slot-owned blocks free directly under the claim; blocks whose
    /// superblock migrated away ride its remote word. The slot-claim
    /// counterpart of `flush_magazine`.
    unsafe fn flush_magazine_lockfree(
        &self,
        sh: &mut SlotHeap,
        slot_idx: usize,
        class: usize,
        mag: &mut Magazine,
    ) {
        self.maybe_tune();
        if let Some(m) = self.metrics_ref() {
            // Flushes only run on a full magazine; record the boundary.
            m.on_magazine_level(mag.len() as u64);
        }
        let mut batch = [std::ptr::null_mut(); crate::magazine::MAX_MAGAZINE_CAPACITY];
        let n = mag.take_oldest(self.tuning.batch(class), &mut batch);
        let me = SLOT_OWNER_BASE + slot_idx;
        self.emit(EventKind::MagazineFlush, class as u32, n as u64);
        let mut trigger = false;
        for &p in &batch[..n] {
            let h = read_header(p);
            let sb = h.value as *mut Superblock;
            // Same two-population normalization as `flush_magazine`:
            // refill-loaded blocks get the stash transforms on their way
            // to a free list.
            if self.config.hardening.detects() && h.tag != Tag::Freed {
                write_header(p, HeaderWord::new(Tag::Freed, sb as usize));
                if self.config.hardening.poisons() {
                    harden::poison_payload(p, (*sb).block_size);
                }
            }
            if Superblock::owner(sb) == me {
                let pol = self.policy();
                let was_f_empty = pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
                Superblock::free_block(sb, p);
                sh.u -= (*sb).block_size as u64;
                sh.relink(sb);
                let crossed = !was_f_empty && pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
                let too_many_empties = (*sb).in_use == 0 && sh.empty_count > pol.slack_k;
                trigger |= ((*sb).armed && crossed) || too_many_empties;
                if crossed {
                    (*sb).armed = false;
                    self.emit(EventKind::EmptinessCross, 0, 0);
                }
            } else {
                let _ = Superblock::push_remote(sb, p);
                charge_cost(Cost::AtomicRmw);
            }
        }
        if trigger {
            self.restore_slot_invariant(sh, slot_idx);
        }
    }

    /// Re-establish the emptiness invariant on a slot heap by retiring
    /// superblocks to the lock-free cache (or the OS under the
    /// `release_empty_to_os` ablation): the same policy and hysteresis
    /// as `restore_invariant`, with CAS pushes in place of heap 0's
    /// lock. Caller holds the slot's claim.
    unsafe fn restore_slot_invariant(&self, sh: &mut SlotHeap, _slot_idx: usize) {
        let mut moved_partial = false;
        let pol = self.policy();
        loop {
            if !pol.invariant_violated(sh.u, sh.a) {
                return;
            }
            let (victim, used) = if moved_partial {
                // Only empties may continue the loop.
                (sh.pop_empty(), 0)
            } else {
                sh.take_emptiest(&pol)
            };
            if victim.is_null() {
                return; // nothing eligible (transient; see module docs)
            }
            if (*victim).in_use != 0 {
                moved_partial = true;
            }
            sh.a -= Superblock::usable_bytes(victim);
            sh.u -= used;
            if self.config.release_empty_to_os && (*victim).in_use == 0 {
                self.free_sb_chunk(victim);
                continue;
            }
            self.retire_to_cache(victim, 0);
        }
    }

    /// Push an unlinked superblock the caller exclusively owns onto the
    /// cache (empty stack, or its class's partial stack) and hand it to
    /// the global domain. One CAS; no lock. `from` is the heap index
    /// reported to telemetry (0 for slot retirements).
    unsafe fn retire_to_cache(&self, victim: *mut Superblock, from: usize) {
        // Ownership must transfer *before* the push publishes the
        // superblock: the popper adopts it immediately, and concurrent
        // frees routed by a stale slot/heap owner would chase a
        // structure that no longer tracks it. Frees that see owner 0
        // defer onto the remote word, which survives the transfer.
        Superblock::set_owner(victim, 0);
        charge_cost(Cost::AtomicRmw);
        let pct = fullness_pct(victim);
        if (*victim).in_use == 0 {
            self.cache.push_empty(victim);
        } else {
            self.cache.push_partial((*victim).class as usize, victim);
        }
        self.stats.on_transfer_to_global();
        charge_cost(Cost::SuperblockTransfer);
        self.emit(EventKind::TransferToGlobal, from as u32, pct);
        if let Some(m) = self.metrics_ref() {
            m.on_transfer_to_global(from, pct);
        }
    }

    /// Quiescent sweep of the cache: drain deferred frees parked on
    /// cached partials (pop → drain → re-push through an intrusive
    /// local chain; allocation-free), re-home drained ones onto the
    /// empty stack, and apply the `release_empty_to_os` ablation.
    unsafe fn settle_cache(&self) {
        for class in 0..self.classes.len() {
            let mut kept: *mut Superblock = std::ptr::null_mut();
            loop {
                let sb = self.cache.pop_partial(class);
                if sb.is_null() {
                    break;
                }
                if Superblock::remote_pending(sb) {
                    let (mut p, n) = Superblock::take_remote(sb);
                    while !p.is_null() {
                        let next = Superblock::remote_next(sb, p);
                        Superblock::free_block(sb, p);
                        p = next;
                    }
                    self.stats.on_remote_drain();
                    self.emit(EventKind::RemoteFreeDrain, (*sb).class, n as u64);
                }
                if (*sb).in_use == 0 {
                    self.cache.push_empty(sb);
                } else {
                    (*sb).next = kept;
                    kept = sb;
                }
            }
            while !kept.is_null() {
                let next = (*kept).next;
                self.cache.push_partial(class, kept);
                kept = next;
            }
        }
        if self.config.release_empty_to_os {
            loop {
                let sb = self.cache.pop_empty();
                if sb.is_null() {
                    return;
                }
                self.free_sb_chunk(sb);
            }
        }
    }

    // ----- malloc -----

    unsafe fn alloc_small(&self, class: usize) -> Option<NonNull<u8>> {
        if let Some(p) = self.alloc_small_attempt(class) {
            return Some(p);
        }
        // OOM recovery: the source refused a chunk. Flush the empty
        // superblocks hoarded as per-heap slack (and the global pool)
        // back to the source and retry once — the request may fit in
        // the memory we were keeping for locality.
        if self.reclaim_empty_superblocks() == 0 {
            return None;
        }
        let p = self.alloc_small_attempt(class)?;
        self.recovery.on_rescue();
        Some(p)
    }

    unsafe fn alloc_small_attempt(&self, class: usize) -> Option<NonNull<u8>> {
        let block_size = self.classes.class(class).block_size;
        let s = self.config.superblock_size;
        let hi = self.heap_index_for_current_thread();
        let heap = &self.heaps[hi];
        let _guard = self.lock_heap(heap, hi);

        // 1. Fullest superblock of this class with a free block.
        let mut sb = heap.find_with_free(class);

        // 1b. (Front-end only) An exhausted class may just mean its
        //     blocks sit parked on full superblocks' deferred stacks;
        //     recover those before pulling fresh memory.
        if sb.is_null() && self.magazines_on() {
            self.drain_full_group_remotes(heap, class);
            sb = heap.find_with_free(class);
        }

        // 1c. (Front-end only) Still nothing: cross-thread churn also
        //     parks blocks on *partially-full* superblocks. A whole-class
        //     drain is pricier but beats transferring or mapping fresh
        //     memory; superblocks drained to empty fall through to 2.
        if sb.is_null() && self.magazines_on() {
            self.drain_class_remotes(heap, class);
            sb = heap.find_with_free(class);
        }

        // 2. Recycle one of our own empty superblocks (any class).
        if sb.is_null() {
            sb = heap.pop_empty();
            if !sb.is_null() {
                if (*sb).class as usize != class {
                    // Reformatting changes payload capacity: adjust `a`.
                    let before = Superblock::usable_bytes(sb);
                    Superblock::reformat(sb, s, class as u32, block_size, self.block_extra());
                    let after = Superblock::usable_bytes(sb);
                    heap.a.fetch_add(after, Relaxed);
                    heap.a.fetch_sub(before, Relaxed);
                }
                heap.link(sb);
            }
        }

        // 3. Ask the global heap for a superblock of this class (or an
        //    empty one to reformat).
        if sb.is_null() {
            sb = self.fetch_from_global(heap, hi, class, block_size);
        }

        // 4. Fresh superblock from the OS.
        if sb.is_null() {
            let chunk = self.alloc_sb_chunk()?;
            sb = Superblock::init(
                chunk.as_ptr(),
                s,
                class as u32,
                block_size,
                hi,
                self.block_extra(),
            );
            heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
            heap.link(sb);
        }

        // In Full mode a block coming off the free list still carries
        // its poison; peek before alloc_block consumes the list head.
        let reused = self.config.hardening.poisons() && !(*sb).free_head.is_null();
        let payload = Superblock::alloc_block(sb);
        if reused && !harden::poison_intact(payload, block_size) {
            // Something wrote through a dangling pointer while the
            // block sat freed. The block itself is fine to hand out;
            // report and continue.
            self.report_corruption(
                CorruptionKind::PoisonOverwrite,
                payload as usize,
                "freed block modified before reuse",
            );
        }
        if self.config.hardening.poisons() {
            harden::write_canary(payload, block_size);
        }
        heap.u.fetch_add(block_size as u64, Relaxed);
        heap.relink(sb);
        // Re-arm the eviction latch once the superblock fills back past
        // the f-emptiness boundary (see `free_small`).
        if !self.policy().f_empty_blocks((*sb).in_use, (*sb).capacity) {
            (*sb).armed = true;
        }
        self.stats.on_alloc(block_size as u64);
        self.emit(EventKind::Alloc, class as u32, block_size as u64);
        if let Some(m) = self.metrics_ref() {
            m.on_alloc(hi, class, false);
        }
        Some(NonNull::new_unchecked(payload))
    }

    /// Step 3 of `malloc`: while holding heap `hi`'s lock, move one
    /// suitable superblock over from the global domain — the locked
    /// global heap, or the lock-free cache. Returns the superblock
    /// linked into `heap`, or null.
    unsafe fn fetch_from_global(
        &self,
        heap: &Heap,
        hi: usize,
        class: usize,
        block_size: u32,
    ) -> *mut Superblock {
        if self.lockfree() {
            let mut sb = self.cache.pop_partial(class);
            if sb.is_null() {
                sb = self.cache.pop_empty();
                if !sb.is_null() && (*sb).class as usize != class {
                    Superblock::reformat(
                        sb,
                        self.config.superblock_size,
                        class as u32,
                        block_size,
                        self.block_extra(),
                    );
                }
            }
            if sb.is_null() {
                return sb;
            }
            charge_cost(Cost::AtomicRmw);
            Superblock::set_owner(sb, hi);
            let used = Superblock::used_bytes(sb);
            heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
            heap.u.fetch_add(used, Relaxed);
            heap.link(sb);
            self.stats.on_transfer_from_global();
            charge_cost(Cost::SuperblockTransfer);
            let pct = fullness_pct(sb);
            self.emit(EventKind::TransferFromGlobal, hi as u32, pct);
            if let Some(m) = self.metrics_ref() {
                m.on_transfer_from_global(hi, pct);
            }
            return sb;
        }
        let global = &self.heaps[0];
        // The global lock covers only list surgery, accounting, and the
        // ownership handoff; the (comparatively expensive) reformat
        // runs after it drops. Ownership *must* transfer under the
        // lock: a concurrent free still reading owner 0 would lock heap
        // 0 and relink the already-unlinked superblock there. Once the
        // owner reads `hi`, such frees serialize on heap `hi`'s lock —
        // which the caller holds for the duration of the reformat.
        let sb = {
            let _g0 = self.lock_heap(global, 0);
            let found = global.find_with_free(class);
            let sb = if !found.is_null() {
                global.unlink(found);
                found
            } else {
                global.pop_empty()
            };
            if sb.is_null() {
                return sb;
            }
            // Debit the global heap at the superblock's *current*
            // geometry; ours is credited at the new one below.
            global.a.fetch_sub(Superblock::usable_bytes(sb), Relaxed);
            global.u.fetch_sub(Superblock::used_bytes(sb), Relaxed);
            Superblock::set_owner(sb, hi);
            sb
        };
        if (*sb).class as usize != class {
            debug_assert_eq!((*sb).in_use, 0, "only empty superblocks reformat");
            Superblock::reformat(
                sb,
                self.config.superblock_size,
                class as u32,
                block_size,
                self.block_extra(),
            );
        }
        let used = Superblock::used_bytes(sb);
        heap.a.fetch_add(Superblock::usable_bytes(sb), Relaxed);
        heap.u.fetch_add(used, Relaxed);
        heap.link(sb);
        self.stats.on_transfer_from_global();
        charge_cost(Cost::SuperblockTransfer);
        let pct = fullness_pct(sb);
        self.emit(EventKind::TransferFromGlobal, hi as u32, pct);
        if let Some(m) = self.metrics_ref() {
            m.on_transfer_from_global(hi, pct);
        }
        sb
    }

    // ----- free -----

    /// Route a validated small-block free: through the front-end when
    /// magazines are on and the class qualifies, else (or on fallback)
    /// through the locked path.
    unsafe fn free_dispatch(&self, sb: *mut Superblock, payload: *mut u8) {
        if self.lockfree() {
            if ((*sb).class as usize) < MAG_CLASSES {
                self.lockfree_free(sb, payload);
                return;
            }
            let owner = Superblock::owner(sb);
            if owner == 0 || owner >= SLOT_OWNER_BASE {
                // A big-class superblock in a CAS-guarded domain (the
                // cache, or transiently a slot): its lists must never be
                // mutated under heap 0's lock, so defer onto the remote
                // word — the next adopter drains.
                self.lockfree_remote_free(sb, payload);
                return;
            }
            self.free_small(sb, payload);
            return;
        }
        if self.magazines_on()
            && ((*sb).class as usize) < MAG_CLASSES
            && self.frontend_free(sb, payload)
        {
            return;
        }
        self.free_small(sb, payload);
    }

    unsafe fn free_small(&self, sb: *mut Superblock, payload: *mut u8) {
        loop {
            let owner = Superblock::owner(sb);
            if self.lockfree() && (owner == 0 || owner >= SLOT_OWNER_BASE) {
                // Migrated into a CAS-guarded domain between dispatch
                // and lock: defer instead (heap 0 is never locked for
                // superblock traffic in this mode).
                self.lockfree_remote_free(sb, payload);
                return;
            }
            let heap = &self.heaps[owner];
            let guard = self.lock_heap(heap, owner);
            if Superblock::owner(sb) != owner {
                drop(guard);
                // Superblock migrated between the owner read and the
                // lock; chase it. Counted so the targeted stress test
                // (and production telemetry) can see the race fire.
                self.stats.on_free_owner_retry();
                continue;
            }
            let mut drain_trigger = false;
            if self.magazines_on() && Superblock::remote_pending(sb) {
                // Deferred foreign frees are drained by whoever next
                // holds the owner's lock over this superblock — this is
                // the forced-drain path once a stack hits remote_limit.
                drain_trigger = self.drain_remote_locked(heap, sb);
            }

            let block_size = (*sb).block_size as u64;
            if self.config.hardening.poisons()
                && !harden::canary_intact(payload, (*sb).block_size)
            {
                // The program wrote past the end of this block. Freeing
                // it would let the smashed region recirculate; instead
                // quarantine it — leave it allocated (accounting
                // unchanged, so the heap invariants stay intact) and
                // keep going.
                drop(guard);
                self.report_corruption(
                    CorruptionKind::CanarySmashed,
                    payload as usize,
                    "block quarantined",
                );
                self.log.on_quarantine();
                return;
            }
            let pol = self.policy();
            let was_f_empty = pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
            Superblock::free_block(sb, payload);
            if self.config.hardening.detects() {
                // Retag the header so a second free of this pointer is
                // caught in O(1); alloc_block retags on reuse.
                write_header(payload, HeaderWord::new(Tag::Freed, sb as usize));
            }
            if self.config.hardening.poisons() {
                harden::poison_payload(payload, (*sb).block_size);
            }
            heap.u.fetch_sub(block_size, Relaxed);
            heap.relink(sb);

            let remote = owner != self.heap_index_for_current_thread();
            self.stats.on_free(block_size, owner == 0 || remote);
            self.emit(EventKind::Free, (*sb).class, owner as u64);
            if let Some(m) = self.metrics_ref() {
                m.on_free(owner, (*sb).class as usize, false);
            }

            if owner == 0 {
                self.maybe_release_global_empties(heap);
            } else {
                // Emptiness-group hysteresis: only a free that moves its
                // *armed* superblock across the f-emptiness boundary (or
                // drains it completely) triggers invariant restoration;
                // the latch re-arms when the superblock fills back past
                // the boundary (see `alloc_small`). A heap of steadily
                // sparse superblocks — or one whose occupancy
                // random-walks at the boundary — therefore keeps its
                // superblocks local instead of ping-ponging the marginal
                // one through the global heap on every operation: the
                // role the paper assigns to its emptiness groups.
                let crossed = !was_f_empty
                    && pol.f_empty_blocks((*sb).in_use, (*sb).capacity);
                // A completely drained superblock first parks on the
                // heap's empty list, where *any* size class can recycle
                // it; only when the heap hoards more than K empties does
                // the drain trigger restoration (K = the paper's bound on
                // a heap's free-space slack).
                let too_many_empties = (*sb).in_use == 0
                    && heap.empty_count.load(Relaxed) > pol.slack_k;
                let trigger = ((*sb).armed && crossed) || too_many_empties || drain_trigger;
                if crossed {
                    (*sb).armed = false;
                    self.emit(EventKind::EmptinessCross, owner as u32, 0);
                }
                if trigger {
                    self.restore_invariant(heap, owner);
                }
            }
            return;
        }
    }

    /// Migrate superblocks from heap `hi` to the global heap while the
    /// emptiness invariant is violated: *completely empty* superblocks
    /// may migrate freely (they hold no live blocks, so moving them can
    /// never cause remote frees or fetch-back thrash), but at most one
    /// *partially filled* f-empty superblock moves per triggering free —
    /// the paper's "transfer a superblock that is at least f empty"
    /// step. Combined with the crossing trigger this converges to the
    /// invariant at quiescence (every superblock that drains produces a
    /// triggering event) without bursts of migration in sparse steady
    /// states. Caller holds heap `hi`'s lock.
    unsafe fn restore_invariant(&self, heap: &Heap, hi: usize) {
        let mut moved_partial = false;
        let pol = self.policy();
        loop {
            let u = heap.u.load(Relaxed);
            let a = heap.a.load(Relaxed);
            if !pol.invariant_violated(u, a) {
                return;
            }
            let (victim, used) = if moved_partial {
                // Only empties may continue the loop.
                (heap.pop_empty(), 0)
            } else {
                heap.take_emptiest(&pol)
            };
            if victim.is_null() {
                return; // nothing eligible (transient; see module docs)
            }
            if (*victim).in_use != 0 {
                moved_partial = true;
            }
            heap.a.fetch_sub(Superblock::usable_bytes(victim), Relaxed);
            heap.u.fetch_sub(used, Relaxed);

            if self.config.release_empty_to_os && (*victim).in_use == 0 {
                // Ablation: drained superblocks go straight back to the OS
                // instead of parking in the global heap.
                self.free_sb_chunk(victim);
                continue;
            }

            if self.lockfree() {
                self.retire_to_cache(victim, hi);
                continue;
            }

            let global = &self.heaps[0];
            let _g0 = self.lock_heap(global, 0);
            Superblock::set_owner(victim, 0);
            global.a.fetch_add(Superblock::usable_bytes(victim), Relaxed);
            global.u.fetch_add(used, Relaxed);
            global.place(victim);
            self.stats.on_transfer_to_global();
            charge_cost(Cost::SuperblockTransfer);
            let pct = fullness_pct(victim);
            self.emit(EventKind::TransferToGlobal, hi as u32, pct);
            if let Some(m) = self.metrics_ref() {
                m.on_transfer_to_global(hi, pct);
            }
        }
    }

    /// Ablation hook: optionally return completely empty global-heap
    /// superblocks to the OS. Caller holds the global heap's lock.
    unsafe fn maybe_release_global_empties(&self, global: &Heap) {
        if !self.config.release_empty_to_os {
            return;
        }
        loop {
            let sb = global.pop_empty();
            if sb.is_null() {
                return;
            }
            global.a.fetch_sub(Superblock::usable_bytes(sb), Relaxed);
            self.free_sb_chunk(sb);
        }
    }

    /// Out-of-memory recovery: return every completely empty superblock
    /// — the global heap's pool plus each per-processor heap's K-slack —
    /// to the chunk source. Returns the number of chunks reclaimed.
    ///
    /// Locks one heap at a time and never nests, so it may only be
    /// called with **no** heap lock held (the allocation paths call it
    /// after their first attempt has fully unwound).
    unsafe fn reclaim_empty_superblocks(&self) -> u64 {
        if self.magazines_on() {
            // Best effort: park the blocks of any uncontended magazine
            // (lock-free, so no heap lock is held here) — they may be
            // all that keeps otherwise-empty superblocks allocated.
            for slot in &self.frontend {
                if let Some(claim) = slot.try_claim() {
                    self.park_claimed_slot(&claim);
                }
            }
        }
        let mut reclaimed = 0u64;
        for (hi, heap) in self
            .heaps
            .iter()
            .take(self.config.heap_count + 1)
            .enumerate()
        {
            let _guard = self.lock_heap(heap, hi);
            if self.magazines_on() {
                self.drain_all_remotes_locked(heap);
            }
            let mut here = 0u64;
            loop {
                let sb = heap.pop_empty();
                if sb.is_null() {
                    break;
                }
                heap.a.fetch_sub(Superblock::usable_bytes(sb), Relaxed);
                self.free_sb_chunk(sb);
                here += 1;
            }
            if here > 0 {
                self.emit(EventKind::OomReclaim, hi as u32, here);
            }
            reclaimed += here;
        }
        if self.lockfree() {
            // Slot-owned and cached empties live outside the heaps.
            let mut extra = 0u64;
            for slot in &self.frontend {
                if let Some(claim) = slot.try_claim() {
                    let sh = claim.heap();
                    for class in 0..MAG_CLASSES {
                        self.drain_slot_class(sh, class);
                    }
                    loop {
                        let sb = sh.pop_empty();
                        if sb.is_null() {
                            break;
                        }
                        sh.a -= Superblock::usable_bytes(sb);
                        self.free_sb_chunk(sb);
                        extra += 1;
                    }
                }
            }
            loop {
                let sb = self.cache.pop_empty();
                if sb.is_null() {
                    break;
                }
                self.free_sb_chunk(sb);
                extra += 1;
            }
            if extra > 0 {
                self.emit(EventKind::OomReclaim, 0, extra);
            }
            reclaimed += extra;
        }
        if reclaimed > 0 {
            self.recovery.on_reclaim(reclaimed);
        }
        reclaimed
    }

    // ----- hardened deallocation -----

    /// `deallocate` with `Basic`/`Full` hardening: every way a pointer
    /// can be wrong is turned into a [`CorruptionReport`] and a clean
    /// return instead of undefined behavior. Classification of wild
    /// pointers is best-effort — it requires reading the word before
    /// the pointer, which for a pointer into unmapped memory can still
    /// fault — but every pointer this allocator ever returned, plus any
    /// pointer into memory it owns, is classified safely.
    ///
    /// [`CorruptionReport`]: crate::CorruptionReport
    unsafe fn deallocate_hardened(&self, ptr: NonNull<u8>) {
        let p = ptr.as_ptr();
        if !(p as usize).is_multiple_of(hoard_mem::MIN_ALIGN) {
            self.report_corruption(
                CorruptionKind::MisalignedPointer,
                p as usize,
                "free of a misaligned pointer",
            );
            return;
        }
        let Some(header) = try_read_header(p) else {
            self.report_corruption(
                CorruptionKind::ForeignPointer,
                p as usize,
                "header tag is not one this allocator writes",
            );
            return;
        };
        match header.tag {
            Tag::Freed => {
                self.report_corruption(CorruptionKind::DoubleFree, p as usize, "small block");
            }
            Tag::Superblock => {
                let sb = header.value as *mut Superblock;
                if sb.is_null() || !(sb as usize).is_multiple_of(self.chunk_align()) {
                    self.report_corruption(
                        CorruptionKind::ForeignPointer,
                        p as usize,
                        "header names a misaligned superblock",
                    );
                    return;
                }
                if self.lockfree() && !self.registry.overflowed() {
                    // Mask-derived forgery check: the header must name
                    // exactly the base the address maps to, and that
                    // base must be a live registered superblock. A
                    // forged header can satisfy neither without the
                    // pointer actually lying inside one of our chunks.
                    charge_cost(Cost::MaskLookup);
                    let masked = p as usize & !(self.config.superblock_size - 1);
                    if masked != sb as usize || !self.registry.contains(masked) {
                        self.report_corruption(
                            CorruptionKind::ForeignPointer,
                            p as usize,
                            "header disagrees with the address mask",
                        );
                        return;
                    }
                }
                if (*sb).magic != crate::superblock::SB_MAGIC {
                    self.report_corruption(
                        CorruptionKind::BadSuperblockMagic,
                        p as usize,
                        "free of a block of a dead or forged superblock",
                    );
                    return;
                }
                let owner = Superblock::owner(sb);
                let owner_ok = owner <= MAX_HEAPS
                    || (self.lockfree() && owner < SLOT_OWNER_BASE + MAG_SLOTS);
                if !owner_ok {
                    self.report_corruption(
                        CorruptionKind::ForeignPointer,
                        p as usize,
                        "superblock owner out of range",
                    );
                    return;
                }
                if !Superblock::contains(sb, p) {
                    self.report_corruption(
                        CorruptionKind::OutOfRangePointer,
                        p as usize,
                        "pointer is not on a block boundary of its superblock",
                    );
                    return;
                }
                self.free_dispatch(sb, p);
            }
            Tag::Large => {
                if !self.large_forget(header.value) {
                    self.report_corruption(CorruptionKind::DoubleFree, p as usize, "large object");
                    return;
                }
                match large::free_large(&self.source, header.value) {
                    Some(size) => {
                        self.stats.on_free(size as u64, false);
                        self.emit(EventKind::FreeLarge, 0, size as u64);
                    }
                    None => {
                        // Header magic failed after the registry said the
                        // object was live: an overflow reached the chunk
                        // header. Quarantine the chunk (leak it) rather
                        // than hand free_chunk a forged layout.
                        self.report_corruption(
                            CorruptionKind::BadLargeMagic,
                            p as usize,
                            "chunk quarantined",
                        );
                        self.log.on_quarantine();
                    }
                }
            }
            Tag::Baseline | Tag::Offset => {
                self.report_corruption(
                    CorruptionKind::ForeignPointer,
                    p as usize,
                    "block belongs to a different allocator or is interior",
                );
            }
        }
    }

    /// Lock the large-object registry, tolerating poisoning: a thread
    /// that panicked mid-push leaves the `Vec` in a sane state (at
    /// worst one address over- or under-recorded), so recovery is
    /// strictly better than wedging every later large free. The one
    /// place this policy lives; recoveries surface as a hardening trace
    /// event so they are observable rather than silent.
    fn large_live_locked(&self) -> std::sync::MutexGuard<'_, Vec<usize>> {
        self.large_live.lock().unwrap_or_else(|poisoned| {
            self.emit(EventKind::LockPoisoned, 0, 0);
            poisoned.into_inner()
        })
    }

    /// Record a live large object's chunk address (hardened modes only).
    fn large_remember(&self, chunk_addr: usize) {
        if self.config.hardening.detects() {
            self.large_live_locked().push(chunk_addr);
        }
    }

    /// Remove a large object from the live registry; `false` means it
    /// was not live (double free).
    fn large_forget(&self, chunk_addr: usize) -> bool {
        let mut live = self.large_live_locked();
        match live.iter().position(|&a| a == chunk_addr) {
            Some(i) => {
                live.swap_remove(i);
                true
            }
            None => false,
        }
    }

    // ----- validation plumbing (used by `debug` and tests) -----

    pub(crate) fn heaps(&self) -> &[Heap; MAX_HEAPS + 1] {
        &self.heaps
    }

    pub(crate) fn frontend(&self) -> &[MagazineSlot; MAG_SLOTS] {
        &self.frontend
    }

    pub(crate) fn cache(&self) -> &GlobalCache {
        &self.cache
    }
}

unsafe impl<Src: ChunkSource> MtAllocator for HoardAllocator<Src> {
    fn name(&self) -> &'static str {
        "hoard"
    }

    unsafe fn allocate(&self, size: usize) -> Option<NonNull<u8>> {
        let recorder = self.recorder_ref();
        let profiler = self.profiler_ref();
        // Only stamped when a device is attached: `now()` is free of
        // virtual time but the off-path must stay branch-minimal.
        let start = if recorder.is_some() { now() } else { 0 };
        let p = self.allocate_impl(size);
        if let Some(p) = p {
            let addr = p.as_ptr() as usize;
            // Recorded after the allocation so the token maps a pointer
            // no other thread can race on (the caller owns it
            // exclusively).
            if let Some(r) = recorder {
                r.record_alloc(addr, size, current_alloc_site(), start);
            }
            if let Some(prof) = profiler {
                charge_cost(Cost::ProfileSample);
                prof.record_alloc(addr, size as u32, current_alloc_site(), now());
                self.profile_tick(prof);
            }
        }
        p
    }

    unsafe fn deallocate(&self, ptr: NonNull<u8>) {
        let recorder = self.recorder_ref();
        // Recorded before the free: once the block is back on a free
        // list another proc may re-allocate the same address, and the
        // token map must retire this token first (likewise the
        // profiler's live-block map).
        if let Some(r) = recorder {
            r.record_free(ptr.as_ptr() as usize, now());
        }
        if let Some(prof) = self.profiler_ref() {
            charge_cost(Cost::ProfileSample);
            prof.record_free(ptr.as_ptr() as usize);
            self.profile_tick(prof);
        }
        self.deallocate_impl(ptr);
        if let Some(r) = recorder {
            // Extend the span over the free's own cost so replay gaps
            // only cover genuine think time.
            r.finish_op(now());
        }
    }

    fn stats(&self) -> AllocSnapshot {
        self.stats.snapshot().with_source(self.source.stats())
    }

    unsafe fn usable_size(&self, ptr: NonNull<u8>) -> usize {
        let header = read_header(ptr.as_ptr());
        match header.tag {
            Tag::Superblock => (*(header.value as *mut Superblock)).block_size as usize,
            Tag::Large => large::large_size(header.value),
            Tag::Freed => unreachable!("usable_size of a freed pointer"),
            Tag::Baseline | Tag::Offset => unreachable!("pointer was not allocated by Hoard"),
        }
    }
}

impl<Src: ChunkSource> HoardAllocator<Src> {
    /// The allocation path behind [`MtAllocator::allocate`]; the trait
    /// method wraps it with the (usually detached) `.trc` recorder.
    ///
    /// # Safety
    ///
    /// As for [`MtAllocator::allocate`].
    unsafe fn allocate_impl(&self, size: usize) -> Option<NonNull<u8>> {
        debug_assert!(size > 0, "allocate(0)");
        let class_for_size = self.classes.index_for(size);
        if let Some(class) = class_for_size {
            if self.magazines_on() && class < MAG_CLASSES {
                if let Some(p) = self.magazine_alloc(class) {
                    return Some(p);
                }
            }
        }
        charge_cost(Cost::MallocFast);
        match class_for_size {
            Some(class) => self.alloc_small(class),
            None => {
                let p = match large::alloc_large(&self.source, size) {
                    Some(p) => p,
                    None => {
                        // OOM recovery, mirroring alloc_small: hand the
                        // hoarded empty superblocks back and retry once.
                        if self.reclaim_empty_superblocks() == 0 {
                            return None;
                        }
                        let p = large::alloc_large(&self.source, size)?;
                        self.recovery.on_rescue();
                        p
                    }
                };
                self.large_remember(read_header(p.as_ptr()).value);
                self.stats.on_alloc(size as u64);
                self.emit(EventKind::AllocLarge, 0, size as u64);
                Some(p)
            }
        }
    }

    /// The deallocation path behind [`MtAllocator::deallocate`]; the
    /// trait method wraps it with the recorder.
    ///
    /// # Safety
    ///
    /// As for [`MtAllocator::deallocate`].
    unsafe fn deallocate_impl(&self, ptr: NonNull<u8>) {
        charge_cost(Cost::FreeFast);
        if self.config.hardening.detects() {
            self.deallocate_hardened(ptr);
            return;
        }
        if self.lockfree() && !self.registry.overflowed() {
            // O(1) metadata lookup by address masking: chunks are
            // aligned to `S`, so the pointer's superblock base is one
            // AND away, and the live-base registry tells small from
            // large without touching the block header. A masked base
            // inside a large chunk can never alias a registered one —
            // any address within `S` above a superblock base is inside
            // that superblock's own chunk.
            let masked = ptr.as_ptr() as usize & !(self.config.superblock_size - 1);
            if self.registry.contains(masked) {
                charge_cost(Cost::MaskLookup);
                let sb = masked as *mut Superblock;
                debug_assert_eq!((*sb).magic, crate::superblock::SB_MAGIC, "bad free");
                debug_assert_eq!(
                    read_header(ptr.as_ptr()).value,
                    masked,
                    "mask and header disagree on the superblock base"
                );
                self.free_dispatch(sb, ptr.as_ptr());
                return;
            }
        }
        let header = read_header(ptr.as_ptr());
        match header.tag {
            Tag::Superblock => {
                let sb = header.value as *mut Superblock;
                debug_assert_eq!((*sb).magic, crate::superblock::SB_MAGIC, "bad free");
                self.free_dispatch(sb, ptr.as_ptr());
            }
            Tag::Large => {
                let size = large::free_large(&self.source, header.value)
                    .expect("corrupt large-object header");
                self.stats.on_free(size as u64, false);
                self.emit(EventKind::FreeLarge, 0, size as u64);
            }
            Tag::Freed | Tag::Baseline | Tag::Offset => {
                unreachable!("pointer was not allocated by Hoard")
            }
        }
    }
}

// Safety: all superblock state is guarded by per-heap locks; the raw
// pointers in heaps refer to chunks owned by this allocator.
unsafe impl<Src: ChunkSource> Send for HoardAllocator<Src> {}
unsafe impl<Src: ChunkSource> Sync for HoardAllocator<Src> {}

impl<Src: ChunkSource> Drop for HoardAllocator<Src> {
    /// Return every owned superblock chunk to the source. Live blocks
    /// inside them become dangling — the same contract as dropping an
    /// arena; tests and the harness drop allocators only when idle.
    fn drop(&mut self) {
        // Release the attached telemetry Arcs (their other owners — the
        // harness, tests — keep the sink/registry alive independently).
        let t = self.tracer.swap(std::ptr::null_mut(), Relaxed);
        if !t.is_null() {
            unsafe { drop(Arc::from_raw(t)) };
        }
        let m = self.metrics.swap(std::ptr::null_mut(), Relaxed);
        if !m.is_null() {
            unsafe { drop(Arc::from_raw(m)) };
        }
        let r = self.recorder.swap(std::ptr::null_mut(), Relaxed);
        if !r.is_null() {
            unsafe { drop(Arc::from_raw(r)) };
        }
        let p = self.profiler.swap(std::ptr::null_mut(), Relaxed);
        if !p.is_null() {
            unsafe { drop(Arc::from_raw(p)) };
        }
        for heap in self.heaps.iter() {
            unsafe {
                let mut chunks: Vec<*mut Superblock> = Vec::new();
                heap.for_each_superblock(|sb| chunks.push(sb));
                for sb in chunks {
                    heap.unlink(sb);
                    self.free_sb_chunk(sb);
                }
            }
        }
        if self.lockfree() {
            // Slot-owned and cached superblocks live outside the heaps.
            unsafe {
                for slot in &self.frontend {
                    let claim = slot.try_claim().expect("drop requires quiescence");
                    let sh = claim.heap();
                    let mut chunks: Vec<*mut Superblock> = Vec::new();
                    sh.for_each(|sb| chunks.push(sb));
                    for sb in chunks {
                        sh.unlink(sb);
                        self.free_sb_chunk(sb);
                    }
                }
                loop {
                    let sb = self.cache.pop_empty();
                    if sb.is_null() {
                        break;
                    }
                    self.free_sb_chunk(sb);
                }
                for class in 0..self.classes.len() {
                    loop {
                        let sb = self.cache.pop_partial(class);
                        if sb.is_null() {
                            break;
                        }
                        self.free_sb_chunk(sb);
                    }
                }
            }
        }
    }
}

/// `GlobalAlloc` so a Hoard instance can be the Rust global allocator.
///
/// Alignments ≤ 8 map directly onto [`MtAllocator::allocate`]; larger
/// alignments over-allocate and leave an [`Tag::Offset`] breadcrumb
/// header just before the aligned payload.
unsafe impl<Src: ChunkSource> std::alloc::GlobalAlloc for HoardAllocator<Src> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let size = layout.size().max(1);
        if layout.align() <= hoard_mem::MIN_ALIGN {
            return self
                .allocate(size)
                .map_or(std::ptr::null_mut(), |p| p.as_ptr());
        }
        // Over-aligned: allocate `size + align` and align within it.
        let Some(base) = self.allocate(size + layout.align()) else {
            return std::ptr::null_mut();
        };
        let base = base.as_ptr();
        let aligned = hoard_mem::align_up(base as usize, layout.align()) as *mut u8;
        if aligned == base {
            return base;
        }
        debug_assert!(aligned as usize - base as usize >= hoard_mem::HEADER_SIZE);
        hoard_mem::write_header(
            aligned,
            HeaderWord::from_int(Tag::Offset, aligned as usize - base as usize),
        );
        aligned
    }

    unsafe fn dealloc(&self, ptr: *mut u8, _layout: Layout) {
        if ptr.is_null() {
            return;
        }
        // Hardened modes must survive a wild pointer even here, where
        // the Offset breadcrumb is resolved before `deallocate` runs.
        let base = if self.config.hardening.detects() {
            match try_read_header(ptr) {
                Some(h) if h.tag == Tag::Offset => ptr.sub(h.to_int()),
                Some(_) => ptr,
                None => {
                    self.report_corruption(
                        CorruptionKind::ForeignPointer,
                        ptr as usize,
                        "dealloc of an unrecognized pointer",
                    );
                    return;
                }
            }
        } else {
            let header = read_header(ptr);
            if header.tag == Tag::Offset {
                ptr.sub(header.to_int())
            } else {
                ptr
            }
        };
        self.deallocate(NonNull::new_unchecked(base));
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Over-aligned blocks carry an Offset header; keep them on the
        // slow path (alloc + copy + dealloc) to preserve alignment.
        if layout.align() <= hoard_mem::MIN_ALIGN && !ptr.is_null() && new_size > 0 {
            let p = NonNull::new_unchecked(ptr);
            if let Some(q) = self.reallocate(p, layout.size(), new_size) {
                return q.as_ptr();
            }
            return std::ptr::null_mut();
        }
        // Fallback identical to the default GlobalAlloc::realloc.
        let new_layout = Layout::from_size_align_unchecked(new_size.max(1), layout.align());
        let fresh = std::alloc::GlobalAlloc::alloc(self, new_layout);
        if !fresh.is_null() {
            std::ptr::copy_nonoverlapping(ptr, fresh, layout.size().min(new_size));
            std::alloc::GlobalAlloc::dealloc(self, ptr, layout);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hoard() -> HoardAllocator {
        HoardAllocator::new_default()
    }

    #[test]
    fn small_alloc_roundtrip() {
        let h = hoard();
        unsafe {
            let p = h.allocate(24).unwrap();
            assert_eq!(p.as_ptr() as usize % 8, 0);
            std::ptr::write_bytes(p.as_ptr(), 0x7E, 24);
            assert_eq!(h.usable_size(p), 24);
            h.deallocate(p);
        }
        let snap = h.stats();
        assert_eq!(snap.live_current, 0);
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.frees, 1);
    }

    #[test]
    fn size_is_rounded_to_class() {
        let h = hoard();
        unsafe {
            let p = h.allocate(25).unwrap();
            assert_eq!(h.usable_size(p), 32, "25 rounds to the 32-byte class");
            h.deallocate(p);
        }
    }

    #[test]
    fn large_alloc_roundtrip() {
        let h = hoard();
        unsafe {
            let p = h.allocate(100_000).unwrap();
            std::ptr::write_bytes(p.as_ptr(), 0x3C, 100_000);
            assert_eq!(h.usable_size(p), 100_000);
            h.deallocate(p);
        }
        assert_eq!(h.stats().live_current, 0);
        assert_eq!(h.stats().held_current, 0, "large chunks go straight back");
    }

    #[test]
    fn threshold_boundary_routes_correctly() {
        let h = hoard();
        let t = h.config().large_threshold();
        unsafe {
            let small = h.allocate(t).unwrap(); // exactly S/2: superblock path
            let large = h.allocate(t + 1).unwrap(); // S/2+1: large path
            assert_eq!(h.usable_size(small), t);
            assert_eq!(h.usable_size(large), t + 1);
            h.deallocate(small);
            h.deallocate(large);
        }
    }

    #[test]
    fn many_allocations_get_distinct_memory() {
        let h = hoard();
        unsafe {
            let ptrs: Vec<_> = (0..1000).map(|_| h.allocate(64).unwrap()).collect();
            for (i, p) in ptrs.iter().enumerate() {
                std::ptr::write_bytes(p.as_ptr(), i as u8, 64);
            }
            for (i, p) in ptrs.iter().enumerate() {
                for off in 0..64 {
                    assert_eq!(*p.as_ptr().add(off), i as u8);
                }
            }
            for p in ptrs {
                h.deallocate(p);
            }
        }
        assert_eq!(h.stats().live_current, 0);
    }

    #[test]
    fn freed_memory_is_reused_not_leaked() {
        let h = hoard();
        unsafe {
            for _ in 0..10_000 {
                let p = h.allocate(128).unwrap();
                h.deallocate(p);
            }
        }
        let snap = h.stats();
        // Churning one block must not accumulate superblocks.
        assert!(
            snap.held_peak <= 4 * h.config().superblock_size as u64,
            "held_peak {} indicates a leak",
            snap.held_peak
        );
    }

    #[test]
    fn cross_thread_free_is_remote_and_safe() {
        let h = std::sync::Arc::new(hoard());
        let ptrs: Vec<usize> = unsafe {
            (0..100)
                .map(|_| h.allocate(40).unwrap().as_ptr() as usize)
                .collect()
        };
        let h2 = std::sync::Arc::clone(&h);
        std::thread::spawn(move || unsafe {
            for p in ptrs {
                h2.deallocate(NonNull::new_unchecked(p as *mut u8));
            }
        })
        .join()
        .unwrap();
        let snap = h.stats();
        assert_eq!(snap.live_current, 0);
        assert!(snap.remote_frees > 0, "frees from another proc are remote");
    }

    #[test]
    fn global_alloc_impl_handles_overalignment() {
        use std::alloc::GlobalAlloc;
        let h = hoard();
        unsafe {
            for align in [16usize, 64, 256, 4096] {
                let layout = Layout::from_size_align(100, align).unwrap();
                let p = h.alloc(layout);
                assert!(!p.is_null());
                assert_eq!(p as usize % align, 0, "alignment {align} violated");
                std::ptr::write_bytes(p, 0xEE, 100);
                h.dealloc(p, layout);
            }
        }
        assert_eq!(h.stats().live_current, 0);
    }

    #[test]
    fn exhausted_source_returns_none_not_panic() {
        use hoard_mem::{FailingSource, SystemSource};
        let h = HoardAllocator::with_source(
            HoardConfig::new(),
            FailingSource::new(SystemSource::new(), 1),
        )
        .unwrap();
        unsafe {
            // First superblock succeeds; fill it to force a second.
            let mut live = Vec::new();
            while let Some(p) = h.allocate(4096) {
                live.push(p);
                assert!(live.len() < 100, "failure injection never triggered");
            }
            assert!(!live.is_empty(), "first superblock should have served");
            for p in live {
                h.deallocate(p);
            }
        }
    }

    #[test]
    fn static_construction_works() {
        static H: HoardAllocator = HoardAllocator::new_static(HoardConfig::new());
        unsafe {
            let p = H.allocate(16).unwrap();
            H.deallocate(p);
        }
        assert_eq!(H.stats().live_current, 0);
    }

    #[test]
    fn emptiness_invariant_triggers_transfers() {
        let h = hoard();
        unsafe {
            // Allocate enough 512-byte blocks for several superblocks,
            // then free them all: the invariant must push superblocks to
            // the global heap.
            let ptrs: Vec<_> = (0..200).map(|_| h.allocate(512).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        let (to_global, _) = h.transfer_counts();
        assert!(to_global > 0, "freeing everything must migrate superblocks");
    }

    #[test]
    fn global_heap_superblocks_are_reused_across_threads() {
        let h = std::sync::Arc::new(hoard());
        // Thread A allocates and frees a lot (pushing superblocks global).
        unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h.allocate(256).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        let held_before = h.stats().held_current;
        // Thread B allocates the same class: should reuse, not grow.
        let h2 = std::sync::Arc::clone(&h);
        std::thread::spawn(move || unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h2.allocate(256).unwrap()).collect();
            for p in ptrs {
                h2.deallocate(p);
            }
        })
        .join()
        .unwrap();
        let (_, from_global) = h.transfer_counts();
        assert!(from_global > 0, "thread B must fetch from the global heap");
        // Thread A's heap legitimately retains K superblocks of slack, so
        // thread B may need up to K+1 fresh superblocks from the OS.
        let slack = (h.config().slack_k as u64 + 1) * h.config().superblock_size as u64;
        assert!(
            h.stats().held_current <= held_before + slack,
            "reuse should prevent growth beyond the K-slack"
        );
    }

    #[test]
    fn release_empty_to_os_ablation_returns_memory() {
        let h = HoardAllocator::with_config(
            HoardConfig::new().with_release_empty_to_os(true),
        )
        .unwrap();
        unsafe {
            let ptrs: Vec<_> = (0..500).map(|_| h.allocate(256).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
        // With the ablation on, most memory goes back to the OS once
        // superblocks drain into the global heap.
        assert!(
            h.stats().held_current < h.stats().held_peak,
            "some chunks must have been released"
        );
    }
}
