//! Per-processor heaps (and the global heap, which is the same struct at
//! index 0).
//!
//! A heap owns superblocks, organized per size class into **fullness
//! groups** — the paper's policy of allocating from the *fullest*
//! non-full superblock first, which densifies memory and lets empty
//! superblocks surface for reuse or migration. Completely empty
//! superblocks live on a separate per-heap list where any size class can
//! recycle them (with a reformat).
//!
//! All fields except the lock and the `u`/`a` counters are touched only
//! under [`Heap::lock`]; the atomics exist to make the struct `Sync` and
//! cheaply snapshotable, not for lock-free algorithms.

use crate::list;
use crate::superblock::Superblock;
use crate::FULLNESS_GROUPS;
use hoard_mem::MAX_CLASSES;
use hoard_sim::VLock;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Sentinel `group` value for superblocks on the empty list.
const EMPTY_LIST: u8 = u8::MAX;

/// One heap: lock, `u`/`a` accounting, per-class fullness groups and the
/// empty-superblock recycle list. Cache-line aligned so neighboring
/// heaps' locks do not false-share.
#[repr(align(64))]
pub(crate) struct Heap {
    pub lock: VLock,
    /// Bytes in use (`u_i`), in block-size units. Guarded by `lock`.
    pub u: AtomicU64,
    /// Bytes held (`a_i`): superblock_size × owned superblocks. Guarded.
    pub a: AtomicU64,
    /// `bins[class][group]`: list heads; group [`FULLNESS_GROUPS`] holds
    /// completely full superblocks.
    bins: [[AtomicPtr<Superblock>; FULLNESS_GROUPS + 1]; MAX_CLASSES],
    /// Completely empty superblocks, recyclable by any class.
    empty: AtomicPtr<Superblock>,
    /// Length of `empty` (telemetry and eviction fast path).
    pub empty_count: AtomicUsize,
}

impl Heap {
    /// A fresh heap with no superblocks. `const` for static embedding.
    pub const fn new() -> Self {
        Heap {
            lock: VLock::new(),
            u: AtomicU64::new(0),
            a: AtomicU64::new(0),
            bins: [const { [const { AtomicPtr::new(ptr::null_mut()) }; FULLNESS_GROUPS + 1] };
                MAX_CLASSES],
            empty: AtomicPtr::new(ptr::null_mut()),
            empty_count: AtomicUsize::new(0),
        }
    }

    /// Link `sb` into the fullness group matching its occupancy.
    ///
    /// # Safety
    ///
    /// Lock held; `sb` live, unlinked, and its `class` within range.
    pub unsafe fn link(&self, sb: *mut Superblock) {
        let group = Superblock::fullness_group(sb);
        (*sb).group = group as u8;
        list::push_front(&self.bins[(*sb).class as usize][group], sb);
    }

    /// Unlink `sb` from whichever list it is on (fullness bin or empty
    /// list).
    ///
    /// # Safety
    ///
    /// Lock held; `sb` live and linked in this heap.
    pub unsafe fn unlink(&self, sb: *mut Superblock) {
        if (*sb).group == EMPTY_LIST {
            list::remove(&self.empty, sb);
            self.empty_count.fetch_sub(1, Ordering::Relaxed);
        } else {
            list::remove(&self.bins[(*sb).class as usize][(*sb).group as usize], sb);
        }
    }

    /// Re-home `sb` after its occupancy changed: move it between fullness
    /// groups, or onto the empty list when it drained completely.
    ///
    /// # Safety
    ///
    /// Lock held; `sb` live and linked in one of this heap's bins.
    pub unsafe fn relink(&self, sb: *mut Superblock) {
        debug_assert_ne!((*sb).group, EMPTY_LIST, "relink of an empty-list superblock");
        if (*sb).in_use == 0 {
            self.unlink(sb);
            self.push_empty(sb);
            return;
        }
        let new_group = Superblock::fullness_group(sb);
        if new_group != (*sb).group as usize {
            list::remove(&self.bins[(*sb).class as usize][(*sb).group as usize], sb);
            (*sb).group = new_group as u8;
            list::push_front(&self.bins[(*sb).class as usize][new_group], sb);
        }
    }

    /// Place a superblock arriving from elsewhere (migration, fresh from
    /// the OS): empty list if drained, fullness bin otherwise.
    ///
    /// # Safety
    ///
    /// Lock held; `sb` live and unlinked.
    pub unsafe fn place(&self, sb: *mut Superblock) {
        if (*sb).in_use == 0 {
            self.push_empty(sb);
        } else {
            self.link(sb);
        }
    }

    /// Push a drained superblock onto the empty list.
    ///
    /// # Safety
    ///
    /// Lock held; `sb` live, unlinked, `in_use == 0`.
    pub unsafe fn push_empty(&self, sb: *mut Superblock) {
        debug_assert_eq!((*sb).in_use, 0);
        (*sb).group = EMPTY_LIST;
        list::push_front(&self.empty, sb);
        self.empty_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop a superblock from the empty list (caller reformats if the
    /// class differs), or null.
    ///
    /// # Safety
    ///
    /// Lock held.
    pub unsafe fn pop_empty(&self) -> *mut Superblock {
        let sb = list::pop_front(&self.empty);
        if !sb.is_null() {
            self.empty_count.fetch_sub(1, Ordering::Relaxed);
            (*sb).group = 0;
        }
        sb
    }

    /// Find a superblock of `class` with at least one free block,
    /// preferring the fullest (the paper's allocation policy). Returns a
    /// superblock still linked in its bin, or null.
    ///
    /// # Safety
    ///
    /// Lock held; `class < MAX_CLASSES`.
    pub unsafe fn find_with_free(&self, class: usize) -> *mut Superblock {
        for group in (0..FULLNESS_GROUPS).rev() {
            let head = self.bins[class][group].load(Ordering::Relaxed);
            if !head.is_null() {
                debug_assert!(Superblock::has_free(head));
                return head;
            }
        }
        ptr::null_mut()
    }

    /// Remove and return the emptiest superblock that is at least
    /// `f`-empty (per `cfg`), for migration to the global heap; null when
    /// none qualifies. Also returns its used bytes.
    ///
    /// # Safety
    ///
    /// Lock held.
    pub unsafe fn take_emptiest(&self, cfg: &crate::HoardConfig) -> (*mut Superblock, u64) {
        // Completely empty superblocks first: cheapest to migrate.
        let sb = self.pop_empty();
        if !sb.is_null() {
            return (sb, 0);
        }
        // Then scan fullness groups from emptiest upward.
        for group in 0..FULLNESS_GROUPS {
            for class_bins in self.bins.iter() {
                let head = class_bins[group].load(Ordering::Relaxed);
                if head.is_null() {
                    continue;
                }
                if cfg.f_empty_blocks((*head).in_use, (*head).capacity) {
                    list::remove(&class_bins[group], head);
                    return (head, Superblock::used_bytes(head));
                }
            }
        }
        (ptr::null_mut(), 0)
    }

    /// Head of the `bins[class][group]` list (null when empty). The
    /// front-end's remote-drain scan walks the full group with this.
    ///
    /// # Safety
    ///
    /// Lock held; `class < MAX_CLASSES`, `group <= FULLNESS_GROUPS`.
    pub unsafe fn group_head(&self, class: usize, group: usize) -> *mut Superblock {
        self.bins[class][group].load(Ordering::Relaxed)
    }

    /// First linked superblock with a pending deferred remote-free
    /// stack, or null. The quiescent flush rescans after every drain —
    /// O(n²) worst case but allocation-free, which matters inside a
    /// `#[global_allocator]`. (Empty-list superblocks can't have
    /// pending frees: parked blocks keep `in_use > 0`.)
    ///
    /// # Safety
    ///
    /// Lock held.
    pub unsafe fn find_remote_pending(&self) -> *mut Superblock {
        for class_bins in self.bins.iter() {
            for head in class_bins.iter() {
                let mut cur = head.load(Ordering::Relaxed);
                while !cur.is_null() {
                    if Superblock::remote_pending(cur) {
                        return cur;
                    }
                    cur = (*cur).next;
                }
            }
        }
        ptr::null_mut()
    }

    /// Telemetry/validation: total superblocks linked (O(n), lock held).
    ///
    /// # Safety
    ///
    /// Lock held.
    #[cfg_attr(not(test), allow(dead_code))] // test & validation helper
    pub unsafe fn superblock_count(&self) -> usize {
        let mut n = self.empty_count.load(Ordering::Relaxed);
        for class_bins in self.bins.iter() {
            for head in class_bins.iter() {
                n += list::len(head);
            }
        }
        n
    }

    /// Validation: walk every linked superblock, calling `f`.
    ///
    /// # Safety
    ///
    /// Lock held; `f` must not mutate lists.
    pub unsafe fn for_each_superblock(&self, mut f: impl FnMut(*mut Superblock)) {
        let mut cur = self.empty.load(Ordering::Relaxed);
        while !cur.is_null() {
            f(cur);
            cur = (*cur).next;
        }
        for class_bins in self.bins.iter() {
            for head in class_bins.iter() {
                let mut cur = head.load(Ordering::Relaxed);
                while !cur.is_null() {
                    f(cur);
                    cur = (*cur).next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HoardConfig;
    use std::alloc::Layout;

    const S: usize = 8192;

    fn make_sb(class: u32, block_size: u32) -> *mut Superblock {
        let layout = Layout::from_size_align(S, 4096).unwrap();
        unsafe {
            let p = std::alloc::alloc(layout);
            assert!(!p.is_null());
            Superblock::init(p, S, class, block_size, 1, 0)
        }
    }

    unsafe fn drop_sb(sb: *mut Superblock) {
        let layout = Layout::from_size_align(S, 4096).unwrap();
        std::alloc::dealloc(sb as *mut u8, layout);
    }

    #[test]
    fn link_find_prefers_fullest() {
        let heap = Heap::new();
        unsafe {
            let a = make_sb(2, 24);
            let b = make_sb(2, 24);
            // Make b fuller than a.
            for _ in 0..10 {
                Superblock::alloc_block(b);
            }
            Superblock::alloc_block(a);
            heap.link(a);
            heap.link(b);
            // find should return b (higher fullness group) — unless both
            // land in the same group, in which case either is fine.
            let found = heap.find_with_free(2);
            if Superblock::fullness_group(b) > Superblock::fullness_group(a) {
                assert_eq!(found, b);
            } else {
                assert!(!found.is_null());
            }
            heap.unlink(a);
            heap.unlink(b);
            drop_sb(a);
            drop_sb(b);
        }
    }

    #[test]
    fn full_superblocks_are_not_found() {
        let heap = Heap::new();
        unsafe {
            let sb = make_sb(0, 8);
            heap.link(sb);
            while Superblock::has_free(sb) {
                Superblock::alloc_block(sb);
                heap.relink(sb);
            }
            assert!(heap.find_with_free(0).is_null(), "full sb must be hidden");
            assert_eq!(heap.superblock_count(), 1, "but still owned");
            heap.unlink(sb);
            drop_sb(sb);
        }
    }

    #[test]
    fn drained_superblock_moves_to_empty_list() {
        let heap = Heap::new();
        unsafe {
            let sb = make_sb(0, 8);
            heap.link(sb);
            let p = Superblock::alloc_block(sb);
            heap.relink(sb);
            Superblock::free_block(sb, p);
            heap.relink(sb);
            assert_eq!(heap.empty_count.load(Ordering::Relaxed), 1);
            assert!(heap.find_with_free(0).is_null(), "empties are recycled, not found");
            let popped = heap.pop_empty();
            assert_eq!(popped, sb);
            assert_eq!(heap.empty_count.load(Ordering::Relaxed), 0);
            drop_sb(sb);
        }
    }

    #[test]
    fn take_emptiest_prefers_empty_then_f_empty() {
        let cfg = HoardConfig::new().with_empty_fraction(1, 4);
        let heap = Heap::new();
        unsafe {
            let empty = make_sb(0, 8);
            let nearly_full = make_sb(0, 8);
            let sparse = make_sb(1, 16);
            // nearly_full: fill above 1-f occupancy.
            let cap = (*nearly_full).capacity;
            for _ in 0..(cap as usize * 9 / 10) {
                Superblock::alloc_block(nearly_full);
            }
            // sparse: a couple of blocks.
            Superblock::alloc_block(sparse);
            Superblock::alloc_block(sparse);
            heap.place(empty);
            heap.place(nearly_full);
            heap.place(sparse);

            let (first, used) = heap.take_emptiest(&cfg);
            assert_eq!(first, empty);
            assert_eq!(used, 0);
            let (second, used2) = heap.take_emptiest(&cfg);
            assert_eq!(second, sparse, "sparse is f-empty, nearly_full is not");
            assert_eq!(used2, 32);
            let (third, _) = heap.take_emptiest(&cfg);
            assert!(third.is_null(), "nearly_full must not be evicted");
            heap.unlink(nearly_full);
            drop_sb(empty);
            drop_sb(nearly_full);
            drop_sb(sparse);
        }
    }

    #[test]
    fn superblock_count_spans_all_lists() {
        let heap = Heap::new();
        unsafe {
            let sbs: Vec<_> = (0..4).map(|_| make_sb(0, 8)).collect();
            Superblock::alloc_block(sbs[1]);
            for &sb in &sbs {
                heap.place(sb);
            }
            assert_eq!(heap.superblock_count(), 4);
            let mut seen = 0;
            heap.for_each_superblock(|_| seen += 1);
            assert_eq!(seen, 4);
            for &sb in &sbs {
                heap.unlink(sb);
                drop_sb(sb);
            }
        }
    }
}
