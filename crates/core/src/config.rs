//! Hoard configuration: the paper's tunables `S`, `f`, `K` and the heap
//! count, with a builder-style API and `const` construction for
//! `static` (global-allocator) use.

use crate::harden::HardeningLevel;
use crate::MAX_HEAPS;
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::HoardAllocator`].
///
/// Defaults: 8 KiB superblocks (the paper's `S`), empty fraction
/// `f = 1/2`, slack `K = 2`.
///
/// Two calibration choices deviate from a literal reading of the paper
/// and are measured in experiment E12:
///
/// * **`f = 1/2`** (not 1/4). Under random-replacement workloads a
///   non-compacting allocator's steady-state heap fullness is ~60%; an
///   emptiness threshold of `1 − f = 3/4` declares such heaps
///   *permanently* too empty and churns superblocks through the global
///   heap on every fullness-boundary crossing, without reducing
///   system-wide memory (the sparseness is inherent to the live-block
///   spread, not to heap imbalance). `f = 1/2` sits below the natural
///   operating point; the paper's blowup theorem holds for any constant
///   `f` (`A ≤ U/(1−f) + K·P·S = 2U + K·P·S`).
/// * **`K = 2`** (hysteresis). With `K = 0` a heap whose live set
///   hovers near the threshold ping-pongs its active superblock through
///   the global heap on every free — visible as inflated transfer
///   counts in E12.
///
/// ```
/// use hoard_core::HoardConfig;
///
/// let cfg = HoardConfig::new()
///     .with_superblock_size(16 * 1024)
///     .with_empty_fraction(1, 8)
///     .with_slack(2)
///     .with_heap_count(14);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoardConfig {
    /// Superblock size `S` in bytes (power of two, ≥ 1 KiB).
    pub superblock_size: usize,
    /// Numerator of the empty fraction `f`.
    pub empty_fraction_num: usize,
    /// Denominator of the empty fraction `f`.
    pub empty_fraction_den: usize,
    /// Slack `K`: a heap may keep up to `K` superblocks' worth of free
    /// space before the invariant forces a migration.
    pub slack_k: usize,
    /// Number of per-processor heaps (the paper's `P`); threads are
    /// mapped to heaps by processor id modulo this count.
    pub heap_count: usize,
    /// Whether completely empty superblocks in the *global* heap are
    /// released back to the OS (off in the paper's allocator; exposed
    /// for the ablation experiments).
    pub release_empty_to_os: bool,
    /// How hard the allocator defends its deallocation paths against
    /// heap misuse (double free, foreign pointers, overruns). See
    /// [`HardeningLevel`]; `Off` reproduces the paper's allocator.
    #[serde(default)]
    pub hardening: HardeningLevel,
    /// Capacity (in blocks, per thread slot and size class) of the
    /// thread-local magazine front-end. `0` disables the front-end
    /// entirely — every `malloc`/`free` takes the owning heap's lock,
    /// reproducing the paper's allocator bit for bit. Non-zero values
    /// are clamped to [`crate::magazine::MAX_MAGAZINE_CAPACITY`];
    /// magazine-held blocks stay counted in the owning heap's `u`/`a`,
    /// so the emptiness invariant and the blowup bound gain only the
    /// bounded additive term derived in DESIGN.md §9.
    #[serde(default)]
    pub magazine_capacity: usize,
    /// Route the slow paths through the lock-free back-end: superblock
    /// chunks aligned to `S` so metadata lookup is an address mask,
    /// remote frees packed into one 64-bit CAS word, and a Treiber-stack
    /// global superblock cache instead of the locked global heap. Off
    /// (the default) reproduces the locked back-end bit for bit, the
    /// same way `magazine_capacity = 0` disables the front-end. Requires
    /// the magazine front-end: the lock-free back-end hangs superblock
    /// ownership off the per-thread slots, so `magazine_capacity` must
    /// be non-zero when this is on.
    #[serde(default)]
    pub lockfree_backend: bool,
    /// Let the online feedback controller retune the allocator while it
    /// runs: per-size-class magazine capacities and refill/flush batch
    /// sizes (seeded `∝ S / block_size` instead of the flat
    /// `magazine_capacity` scalar), and — under transfer storms — the
    /// emptiness thresholds `K`/`f`, within the clamps derived in
    /// DESIGN.md §13 so the paper's blowup bound survives. Ticks on the
    /// *virtual* clock from `MetricsSnapshot` deltas, so tuned runs stay
    /// replay-deterministic. Off (the default) reproduces the static
    /// configuration bit for bit; on requires the magazine front-end,
    /// whose refill/flush paths drive the controller.
    #[serde(default)]
    pub adaptive_tuning: bool,
}

impl HoardConfig {
    /// The paper's default configuration.
    pub const fn new() -> Self {
        HoardConfig {
            superblock_size: 8 * 1024,
            empty_fraction_num: 1,
            empty_fraction_den: 2,
            slack_k: 2,
            heap_count: 16,
            release_empty_to_os: false,
            hardening: HardeningLevel::Off,
            magazine_capacity: 0,
            lockfree_backend: false,
            adaptive_tuning: false,
        }
    }

    /// The paper's configuration plus the magazine front-end *and* the
    /// lock-free back-end — the full rpmalloc-style stack.
    pub const fn with_lockfree() -> Self {
        Self::with_default_magazines().with_lockfree_backend(true)
    }

    /// The paper's configuration plus the magazine front-end with the
    /// online feedback controller steering it (size-class-proportional
    /// capacities, adaptive batches, storm-damped thresholds).
    pub const fn with_adaptive() -> Self {
        Self::with_default_magazines().with_adaptive_tuning(true)
    }

    /// The paper's configuration plus the thread-local magazine
    /// front-end at its default capacity
    /// ([`DEFAULT_MAGAZINE_CAPACITY`](crate::magazine::DEFAULT_MAGAZINE_CAPACITY)).
    pub const fn with_default_magazines() -> Self {
        Self::new().with_magazine_capacity(crate::magazine::DEFAULT_MAGAZINE_CAPACITY)
    }

    /// Set the superblock size `S` (bytes; power of two, ≥ 1 KiB).
    pub const fn with_superblock_size(mut self, s: usize) -> Self {
        self.superblock_size = s;
        self
    }

    /// Set the empty fraction `f = num/den` (e.g. `(1, 4)` for the
    /// paper's `f = 1/4`).
    pub const fn with_empty_fraction(mut self, num: usize, den: usize) -> Self {
        self.empty_fraction_num = num;
        self.empty_fraction_den = den;
        self
    }

    /// Set the slack `K` in superblocks.
    pub const fn with_slack(mut self, k: usize) -> Self {
        self.slack_k = k;
        self
    }

    /// Set the number of per-processor heaps.
    pub const fn with_heap_count(mut self, p: usize) -> Self {
        self.heap_count = p;
        self
    }

    /// Enable or disable releasing empty global-heap superblocks to the
    /// OS (ablation).
    pub const fn with_release_empty_to_os(mut self, yes: bool) -> Self {
        self.release_empty_to_os = yes;
        self
    }

    /// Set the hardening level for the allocation paths.
    pub const fn with_hardening(mut self, level: HardeningLevel) -> Self {
        self.hardening = level;
        self
    }

    /// Set the per-thread, per-class magazine capacity (0 = front-end
    /// off).
    pub const fn with_magazine_capacity(mut self, blocks: usize) -> Self {
        self.magazine_capacity = blocks;
        self
    }

    /// Enable or disable the lock-free back-end (requires a non-zero
    /// magazine capacity; see the field docs).
    pub const fn with_lockfree_backend(mut self, yes: bool) -> Self {
        self.lockfree_backend = yes;
        self
    }

    /// Enable or disable the online feedback controller (requires a
    /// non-zero magazine capacity; see the field docs).
    pub const fn with_adaptive_tuning(mut self, yes: bool) -> Self {
        self.adaptive_tuning = yes;
        self
    }

    /// Largest request served from superblocks; larger allocations go
    /// straight to the chunk source (the paper's `S/2` rule).
    pub const fn large_threshold(&self) -> usize {
        self.superblock_size / 2
    }

    /// Check the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated
    /// constraint.
    pub const fn validate(&self) -> Result<(), ConfigError> {
        if !self.superblock_size.is_power_of_two() || self.superblock_size < 1024 {
            return Err(ConfigError::BadSuperblockSize);
        }
        if self.empty_fraction_num == 0
            || self.empty_fraction_den == 0
            || self.empty_fraction_num >= self.empty_fraction_den
        {
            return Err(ConfigError::BadEmptyFraction);
        }
        if self.heap_count == 0 || self.heap_count > MAX_HEAPS {
            return Err(ConfigError::BadHeapCount);
        }
        if self.magazine_capacity > crate::magazine::MAX_MAGAZINE_CAPACITY {
            return Err(ConfigError::BadMagazineCapacity);
        }
        if self.lockfree_backend && self.magazine_capacity == 0 {
            return Err(ConfigError::LockfreeNeedsMagazines);
        }
        if self.adaptive_tuning && self.magazine_capacity == 0 {
            return Err(ConfigError::AdaptiveNeedsMagazines);
        }
        Ok(())
    }

    /// `true` when `u` (bytes in use) and `a` (bytes held) violate the
    /// emptiness invariant for this configuration — i.e. when a `free`
    /// must migrate a superblock to the global heap.
    ///
    /// The invariant is `u ≥ a − K·S  ∨  u ≥ (1−f)·a`; this returns its
    /// negation, evaluated in integer arithmetic.
    pub fn invariant_violated(&self, u: u64, a: u64) -> bool {
        let s = self.superblock_size as u64;
        let k = self.slack_k as u64;
        let num = self.empty_fraction_num as u64;
        let den = self.empty_fraction_den as u64;
        // u < a − K·S  ∧  u·den < (den − num)·a
        u + k * s < a && u * den < (den - num) * a
    }

    /// `true` when a superblock with `in_use` of `capacity` blocks
    /// allocated is *at least `f`-empty* (eligible for migration to the
    /// global heap).
    ///
    /// Emptiness is a fraction of the superblock's *block capacity*, as
    /// in the original implementation — judging it against raw bytes of
    /// `S` would mis-classify small-block superblocks, which lose part
    /// of `S` to per-block headers.
    pub fn f_empty_blocks(&self, in_use: u32, capacity: u32) -> bool {
        let num = self.empty_fraction_num as u64;
        let den = self.empty_fraction_den as u64;
        // free fraction ≥ f ⟺ (cap − in_use)·den ≥ num·cap
        //                   ⟺ in_use·den ≤ (den − num)·cap
        (in_use as u64) * den <= (den - num) * capacity as u64
    }
}

impl Default for HoardConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Error returned by [`HoardConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Superblock size is not a power of two ≥ 1 KiB.
    BadSuperblockSize,
    /// Empty fraction is not a proper fraction in `(0, 1)`.
    BadEmptyFraction,
    /// Heap count is zero or exceeds [`MAX_HEAPS`].
    BadHeapCount,
    /// Magazine capacity exceeds
    /// [`MAX_MAGAZINE_CAPACITY`](crate::magazine::MAX_MAGAZINE_CAPACITY).
    BadMagazineCapacity,
    /// `lockfree_backend` is on but the magazine front-end is off; the
    /// lock-free back-end hangs superblock ownership off the per-thread
    /// magazine slots, so it cannot run without them.
    LockfreeNeedsMagazines,
    /// `adaptive_tuning` is on but the magazine front-end is off; the
    /// controller's sensors and actuators both live on the magazine
    /// refill/flush paths, so it has nothing to steer without them.
    AdaptiveNeedsMagazines,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadSuperblockSize => {
                write!(f, "superblock size must be a power of two of at least 1 KiB")
            }
            ConfigError::BadEmptyFraction => {
                write!(f, "empty fraction must satisfy 0 < num/den < 1")
            }
            ConfigError::BadHeapCount => {
                write!(f, "heap count must be in 1..={MAX_HEAPS}")
            }
            ConfigError::BadMagazineCapacity => {
                write!(
                    f,
                    "magazine capacity must be at most {}",
                    crate::magazine::MAX_MAGAZINE_CAPACITY
                )
            }
            ConfigError::LockfreeNeedsMagazines => {
                write!(
                    f,
                    "the lock-free back-end requires a non-zero magazine capacity"
                )
            }
            ConfigError::AdaptiveNeedsMagazines => {
                write!(
                    f,
                    "adaptive tuning requires a non-zero magazine capacity"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_calibrated_paper_setup() {
        let c = HoardConfig::new();
        assert_eq!(c.superblock_size, 8192);
        assert_eq!(
            (c.empty_fraction_num, c.empty_fraction_den),
            (1, 2),
            "f = 1/2 (see the HoardConfig docs for the calibration note)"
        );
        assert_eq!(c.slack_k, 2, "K = 2 (anti-thrash hysteresis)");
        assert_eq!(c.large_threshold(), 4096, "S/2 rule");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert_eq!(
            HoardConfig::new().with_superblock_size(5000).validate(),
            Err(ConfigError::BadSuperblockSize)
        );
        assert_eq!(
            HoardConfig::new().with_superblock_size(512).validate(),
            Err(ConfigError::BadSuperblockSize)
        );
        assert_eq!(
            HoardConfig::new().with_empty_fraction(0, 4).validate(),
            Err(ConfigError::BadEmptyFraction)
        );
        assert_eq!(
            HoardConfig::new().with_empty_fraction(4, 4).validate(),
            Err(ConfigError::BadEmptyFraction)
        );
        assert_eq!(
            HoardConfig::new().with_heap_count(0).validate(),
            Err(ConfigError::BadHeapCount)
        );
        assert_eq!(
            HoardConfig::new().with_heap_count(MAX_HEAPS + 1).validate(),
            Err(ConfigError::BadHeapCount)
        );
    }

    #[test]
    fn invariant_violation_matches_definition() {
        let c = HoardConfig::new().with_empty_fraction(1, 4).with_slack(0); // S=8192, f=1/4, K=0
        // u = a: never violated.
        assert!(!c.invariant_violated(8192, 8192));
        // u = 0, a = S: violated (0 < S and 0 < 3/4·S).
        assert!(c.invariant_violated(0, 8192));
        // u just above (1-f)a: not violated.
        let a = 4 * 8192u64;
        assert!(!c.invariant_violated(3 * a / 4, a));
        assert!(c.invariant_violated(3 * a / 4 - 1, a));
        // Slack branch: the default K=2 tolerates two superblocks of
        // emptiness (the anti-thrash hysteresis).
        let c2 = HoardConfig::new();
        assert!(!c2.invariant_violated(0, 2 * 8192), "within K slack");
        assert!(c2.invariant_violated(0, 3 * 8192));
    }

    #[test]
    fn f_empty_boundary() {
        let c = HoardConfig::new().with_empty_fraction(1, 4); // f = 1/4
        assert!(c.f_empty_blocks(0, 100));
        assert!(c.f_empty_blocks(75, 100), "exactly 3/4 full is f-empty");
        assert!(!c.f_empty_blocks(76, 100));
        assert!(!c.f_empty_blocks(100, 100));
        // Tiny capacities round conservatively.
        assert!(c.f_empty_blocks(1, 2), "1/2 full leaves >= 1/4 free");
        assert!(!c.f_empty_blocks(2, 2));
    }

    #[test]
    fn config_is_const_constructible() {
        const C: HoardConfig = HoardConfig::new()
            .with_superblock_size(4096)
            .with_empty_fraction(1, 8)
            .with_slack(1)
            .with_heap_count(8);
        assert_eq!(C.superblock_size, 4096);
        assert_eq!(C.heap_count, 8);
    }

    #[test]
    fn hardening_defaults_off_and_builds_const() {
        assert_eq!(HoardConfig::new().hardening, HardeningLevel::Off);
        const C: HoardConfig = HoardConfig::new().with_hardening(HardeningLevel::Full);
        assert_eq!(C.hardening, HardeningLevel::Full);
        assert!(C.validate().is_ok(), "hardening never invalidates a config");
    }

    #[test]
    fn magazine_capacity_defaults_off_and_validates() {
        assert_eq!(HoardConfig::new().magazine_capacity, 0, "front-end off");
        const C: HoardConfig = HoardConfig::with_default_magazines();
        assert_eq!(
            C.magazine_capacity,
            crate::magazine::DEFAULT_MAGAZINE_CAPACITY
        );
        assert!(C.validate().is_ok());
        assert_eq!(
            HoardConfig::new()
                .with_magazine_capacity(crate::magazine::MAX_MAGAZINE_CAPACITY + 1)
                .validate(),
            Err(ConfigError::BadMagazineCapacity)
        );
    }

    #[test]
    fn lockfree_backend_defaults_off_and_requires_magazines() {
        assert!(!HoardConfig::new().lockfree_backend, "back-end off by default");
        const C: HoardConfig = HoardConfig::with_lockfree();
        const { assert!(C.lockfree_backend && C.magazine_capacity > 0) };
        assert!(C.validate().is_ok());
        assert_eq!(
            HoardConfig::new().with_lockfree_backend(true).validate(),
            Err(ConfigError::LockfreeNeedsMagazines)
        );
    }

    #[test]
    fn adaptive_tuning_defaults_off_and_requires_magazines() {
        assert!(!HoardConfig::new().adaptive_tuning, "controller off by default");
        const C: HoardConfig = HoardConfig::with_adaptive();
        const { assert!(C.adaptive_tuning && C.magazine_capacity > 0) };
        assert!(C.validate().is_ok());
        assert_eq!(
            HoardConfig::new().with_adaptive_tuning(true).validate(),
            Err(ConfigError::AdaptiveNeedsMagazines)
        );
        // Configs serialized before the controller existed still parse,
        // with tuning off.
        let old = "{\"superblock_size\":8192,\"empty_fraction_num\":1,\
                   \"empty_fraction_den\":2,\"slack_k\":2,\"heap_count\":16,\
                   \"release_empty_to_os\":false}";
        let parsed: HoardConfig = serde_json::from_str(old).unwrap();
        assert!(!parsed.adaptive_tuning);
    }

    #[test]
    fn serde_roundtrip() {
        let c = HoardConfig::new().with_slack(3);
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<HoardConfig>(&s).unwrap(), c);
    }
}
