//! The thread-local allocation front-end: bounded per-class magazines.
//!
//! A **magazine** is a small fixed array of detached free-block payload
//! pointers for one size class. The hot `malloc` pops from it and the
//! hot `free` pushes onto it — no heap lock, no shared cache line. When
//! a magazine runs dry it *refills* (a batch of blocks pulled from the
//! owning heap under **one** lock acquisition); when it overflows it
//! *flushes* (a batch returned under one acquisition, running the
//! existing emptiness-invariant machinery). This is the design lineage
//! of mimalloc's thread-free lists, rpmalloc's thread caches, and the
//! magazine layer of Bonwick's vmem — grafted onto Hoard's heaps
//! without breaking the paper's bounds, because capacity is strictly
//! bounded and magazine-held blocks remain counted in the owning heap's
//! `u`/`a` (see DESIGN.md §9).
//!
//! Magazines are keyed by *virtual processor* (`hoard_sim::current_proc`),
//! not by OS thread: the allocator owns a fixed array of
//! [`MagazineSlot`]s and a thread uses slot `proc % MAG_SLOTS`. Slots
//! are claimed per *operation* with one atomic swap — if two procs
//! hash to the same slot and collide, the loser simply falls back to
//! the locked path, so sharing degrades throughput but never
//! correctness. Keeping the storage inside the allocator (instead of
//! `thread_local!`) preserves `const` construction for
//! `#[global_allocator]` use and lets tests flush every magazine
//! deterministically.

use crate::list;
use crate::superblock::Superblock;
use crate::HoardConfig;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// Number of magazine slots per allocator. A power of two above the
/// simulated processor counts (P ≤ 14 in the experiment grid), so live
/// procs rarely collide; a collision costs a locked-path fallback, not
/// correctness. Kept modest because the slots are embedded in the
/// (`const`-constructible, hence stack-transiting) allocator struct.
pub(crate) const MAG_SLOTS: usize = 16;

/// Size classes served by the front-end: the 8-byte-step classes
/// (≤ 128 B) plus the first ×1.2 classes, up to ~550 B — where
/// allocation rates are highest and superblocks hold many blocks.
/// Larger classes hold only a handful of blocks per superblock, so
/// even a small magazine would hoard a superblock's worth — they stay
/// on the locked path.
pub(crate) const MAG_CLASSES: usize = 24;

/// Hard upper bound on [`HoardConfig::magazine_capacity`]
/// (`crate::HoardConfig::magazine_capacity`) and on any per-class
/// capacity the feedback controller installs; also the static size of
/// each magazine's pointer array. Twice the default so the controller
/// has headroom to grow small-block magazines under batchy workloads.
pub const MAX_MAGAZINE_CAPACITY: usize = 64;

/// Capacity installed by
/// [`HoardConfig::with_default_magazines`](crate::HoardConfig::with_default_magazines).
/// With half-capacity batching this bounds the locked share of a pure
/// allocation burst to 1 in 16 operations.
pub const DEFAULT_MAGAZINE_CAPACITY: usize = 32;

/// One size class's stash of detached free blocks. All access happens
/// under the owning [`MagazineSlot`]'s claim.
pub(crate) struct Magazine {
    len: u32,
    blocks: [*mut u8; MAX_MAGAZINE_CAPACITY],
}

impl Magazine {
    const fn new() -> Self {
        Magazine {
            len: 0,
            blocks: [std::ptr::null_mut(); MAX_MAGAZINE_CAPACITY],
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[cfg_attr(not(test), allow(dead_code))] // test helper
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pop the most recently stashed block (LIFO keeps payloads warm).
    pub fn pop(&mut self) -> Option<*mut u8> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.blocks[self.len as usize])
    }

    /// Stash a block. Caller keeps `len < capacity ≤ MAX_MAGAZINE_CAPACITY`.
    pub fn push(&mut self, p: *mut u8) {
        debug_assert!((self.len as usize) < MAX_MAGAZINE_CAPACITY);
        self.blocks[self.len as usize] = p;
        self.len += 1;
    }

    /// Remove the `n` oldest blocks (the magazine's bottom) into `out`,
    /// keeping the warm recently-freed top in place. Returns how many
    /// were taken.
    pub fn take_oldest(&mut self, n: usize, out: &mut [*mut u8]) -> usize {
        let n = n.min(self.len as usize);
        out[..n].copy_from_slice(&self.blocks[..n]);
        self.blocks.copy_within(n..self.len as usize, 0);
        self.len -= n as u32;
        n
    }
}

/// Sentinel for `Superblock::group` marking membership of a slot's
/// empty list (mirrors `heap::EMPTY_LIST`; slots keep no fullness
/// groups, so binned slot superblocks carry group `0`).
const SLOT_EMPTY_LIST: u8 = u8::MAX;

/// A magazine slot's private mini-heap, used only by the lock-free
/// back-end: the superblocks this slot *owns* (their `owner` is
/// `SLOT_OWNER_BASE + slot`) plus the slot's own emptiness-invariant
/// coordinates. Every field is guarded by the slot's claim — plain
/// integers, list heads touched single-threadedly — which is what lets
/// refills, flushes, and same-slot frees run without any heap lock.
///
/// Unlike a [`Heap`](crate::heap::Heap) there are no fullness groups:
/// the emptiness invariant bounds a slot's slack to `K·S`, so these
/// lists stay a handful of superblocks long and a fullest-first linear
/// scan costs less than group bookkeeping.
pub(crate) struct SlotHeap {
    /// Bytes in use across slot-owned superblocks (deferred remote
    /// frees still count until drained, exactly as on the heaps).
    pub u: u64,
    /// Usable bytes held across slot-owned superblocks.
    pub a: u64,
    /// One intrusive superblock list per front-end size class.
    bins: [AtomicPtr<Superblock>; MAG_CLASSES],
    /// Completely empty slot-owned superblocks (any class).
    empty: AtomicPtr<Superblock>,
    pub empty_count: usize,
}

impl SlotHeap {
    const fn new() -> Self {
        SlotHeap {
            u: 0,
            a: 0,
            bins: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAG_CLASSES],
            empty: AtomicPtr::new(std::ptr::null_mut()),
            empty_count: 0,
        }
    }

    /// Link an unlinked superblock into its class bin (even when empty
    /// — the refill path links before allocating from it, exactly as
    /// `Heap::link` does).
    ///
    /// # Safety
    ///
    /// Claim held; `sb` live, unlinked, owned by this slot, and its
    /// class within `MAG_CLASSES`.
    pub unsafe fn link(&mut self, sb: *mut Superblock) {
        (*sb).group = 0;
        list::push_front(&self.bins[(*sb).class as usize], sb);
    }

    /// Unlink `sb` from whichever list it is on.
    ///
    /// # Safety
    ///
    /// Claim held; `sb` linked in this slot heap.
    pub unsafe fn unlink(&mut self, sb: *mut Superblock) {
        if (*sb).group == SLOT_EMPTY_LIST {
            list::remove(&self.empty, sb);
            self.empty_count -= 1;
        } else {
            list::remove(&self.bins[(*sb).class as usize], sb);
        }
    }

    /// Re-home `sb` after its occupancy changed: a drained superblock
    /// moves to the empty list; others stay put (one bin per class).
    ///
    /// # Safety
    ///
    /// Claim held; `sb` linked in one of this slot's class bins.
    pub unsafe fn relink(&mut self, sb: *mut Superblock) {
        debug_assert_ne!((*sb).group, SLOT_EMPTY_LIST);
        if (*sb).in_use == 0 {
            list::remove(&self.bins[(*sb).class as usize], sb);
            self.push_empty(sb);
        }
    }

    /// Push a drained superblock onto the empty list.
    ///
    /// # Safety
    ///
    /// Claim held; `sb` live, unlinked, `in_use == 0`.
    pub unsafe fn push_empty(&mut self, sb: *mut Superblock) {
        debug_assert_eq!((*sb).in_use, 0);
        (*sb).group = SLOT_EMPTY_LIST;
        list::push_front(&self.empty, sb);
        self.empty_count += 1;
    }

    /// Pop a superblock from the empty list (caller reformats if the
    /// class differs), or null.
    ///
    /// # Safety
    ///
    /// Claim held.
    pub unsafe fn pop_empty(&mut self) -> *mut Superblock {
        let sb = list::pop_front(&self.empty);
        if !sb.is_null() {
            self.empty_count -= 1;
            (*sb).group = 0;
        }
        sb
    }

    /// Fullest superblock of `class` with a free block (the paper's
    /// allocation policy, by linear scan), still linked; null when none.
    ///
    /// # Safety
    ///
    /// Claim held; `class < MAG_CLASSES`.
    pub unsafe fn find_with_free(&self, class: usize) -> *mut Superblock {
        let mut best: *mut Superblock = std::ptr::null_mut();
        let mut cur = self.bins[class].load(Ordering::Relaxed);
        while !cur.is_null() {
            if Superblock::has_free(cur) && (best.is_null() || (*cur).in_use > (*best).in_use) {
                best = cur;
            }
            cur = (*cur).next;
        }
        best
    }

    /// Head of the class bin (for drain scans).
    ///
    /// # Safety
    ///
    /// Claim held; `class < MAG_CLASSES`.
    pub unsafe fn class_head(&self, class: usize) -> *mut Superblock {
        self.bins[class].load(Ordering::Relaxed)
    }

    /// Remove and return the emptiest superblock that is at least
    /// `f`-empty, plus its used bytes — empties first, then the
    /// emptiest qualifying partial across all bins. Null when none
    /// qualifies.
    ///
    /// # Safety
    ///
    /// Claim held.
    pub unsafe fn take_emptiest(&mut self, cfg: &HoardConfig) -> (*mut Superblock, u64) {
        let sb = self.pop_empty();
        if !sb.is_null() {
            return (sb, 0);
        }
        let mut best: *mut Superblock = std::ptr::null_mut();
        for bin in &self.bins {
            let mut cur = bin.load(Ordering::Relaxed);
            while !cur.is_null() {
                if cfg.f_empty_blocks((*cur).in_use, (*cur).capacity)
                    && (best.is_null()
                        || ((*cur).in_use as u64 * (*best).capacity as u64)
                            < ((*best).in_use as u64 * (*cur).capacity as u64))
                {
                    best = cur;
                }
                cur = (*cur).next;
            }
        }
        if best.is_null() {
            return (std::ptr::null_mut(), 0);
        }
        list::remove(&self.bins[(*best).class as usize], best);
        (best, Superblock::used_bytes(best))
    }

    /// Visit every slot-owned superblock (bins first, then empties).
    ///
    /// # Safety
    ///
    /// Claim held; `f` must not unlink elements.
    pub unsafe fn for_each(&self, mut f: impl FnMut(*mut Superblock)) {
        for bin in &self.bins {
            let mut cur = bin.load(Ordering::Relaxed);
            while !cur.is_null() {
                let next = (*cur).next;
                f(cur);
                cur = next;
            }
        }
        let mut cur = self.empty.load(Ordering::Relaxed);
        while !cur.is_null() {
            let next = (*cur).next;
            f(cur);
            cur = next;
        }
    }
}

/// One virtual processor's set of magazines, guarded by a per-operation
/// claim flag instead of a lock: the owner is the only live claimant in
/// the common case, so the claim is one uncontended atomic swap, and a
/// collision (two procs hashing to one slot, or a quiescent flusher)
/// makes the loser fall back to the locked allocation path.
pub(crate) struct MagazineSlot {
    claimed: AtomicBool,
    mags: UnsafeCell<[Magazine; MAG_CLASSES]>,
    /// Lock-free back-end state (inert unless `lockfree_backend`).
    /// A separate cell so `&mut SlotHeap` and `&mut Magazine` borrows
    /// never derive from the same place.
    backend: UnsafeCell<SlotHeap>,
}

// Safety: `mags` is only touched through a `SlotClaim`, and `claimed`
// admits exactly one claimant at a time.
unsafe impl Sync for MagazineSlot {}
unsafe impl Send for MagazineSlot {}

impl MagazineSlot {
    pub const fn new() -> Self {
        MagazineSlot {
            claimed: AtomicBool::new(false),
            mags: UnsafeCell::new([const { Magazine::new() }; MAG_CLASSES]),
            backend: UnsafeCell::new(SlotHeap::new()),
        }
    }

    /// Claim exclusive access for one operation; `None` when another
    /// claimant holds the slot (caller falls back to the locked path).
    pub fn try_claim(&self) -> Option<SlotClaim<'_>> {
        if self.claimed.swap(true, Ordering::Acquire) {
            return None;
        }
        Some(SlotClaim { slot: self })
    }
}

/// RAII claim on a [`MagazineSlot`]; releases on drop.
pub(crate) struct SlotClaim<'a> {
    slot: &'a MagazineSlot,
}

impl SlotClaim<'_> {
    /// The magazine for `class`. Exclusive by virtue of the claim.
    #[allow(clippy::mut_from_ref)] // exclusivity is the claim's contract
    pub fn magazine(&self, class: usize) -> &mut Magazine {
        debug_assert!(class < MAG_CLASSES);
        unsafe { &mut (*self.slot.mags.get())[class] }
    }

    /// The slot's lock-free back-end heap. Exclusive by virtue of the
    /// claim; a distinct cell from the magazines, so this may be held
    /// alongside a `magazine()` borrow.
    #[allow(clippy::mut_from_ref)] // exclusivity is the claim's contract
    pub fn heap(&self) -> &mut SlotHeap {
        unsafe { &mut *self.slot.backend.get() }
    }
}

impl Drop for SlotClaim<'_> {
    fn drop(&mut self) {
        self.slot.claimed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magazine_is_lifo_and_bounded() {
        let mut m = Magazine::new();
        assert!(m.is_empty());
        assert_eq!(m.pop(), None);
        for i in 1..=MAX_MAGAZINE_CAPACITY {
            m.push(i as *mut u8);
        }
        assert_eq!(m.len(), MAX_MAGAZINE_CAPACITY);
        for i in (1..=MAX_MAGAZINE_CAPACITY).rev() {
            assert_eq!(m.pop(), Some(i as *mut u8));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn take_oldest_keeps_the_warm_top() {
        let mut m = Magazine::new();
        for i in 1..=8usize {
            m.push(i as *mut u8);
        }
        let mut out = [std::ptr::null_mut(); MAX_MAGAZINE_CAPACITY];
        assert_eq!(m.take_oldest(3, &mut out), 3);
        let oldest: Vec<usize> = out[..3].iter().map(|p| *p as usize).collect();
        assert_eq!(oldest, [1, 2, 3]);
        assert_eq!(m.len(), 5);
        // Remaining pops still come newest-first: 8, 7, ...
        assert_eq!(m.pop(), Some(8 as *mut u8));
        assert_eq!(m.pop(), Some(7 as *mut u8));
        // Asking for more than present takes what's there.
        assert_eq!(m.take_oldest(99, &mut out), 3);
        assert!(m.is_empty());
    }

    #[test]
    fn slot_claim_is_exclusive_and_reentrant_after_release() {
        let slot = MagazineSlot::new();
        let c = slot.try_claim().expect("fresh slot claimable");
        assert!(slot.try_claim().is_none(), "second claim must fail");
        c.magazine(0).push(8 as *mut u8);
        drop(c);
        let c2 = slot.try_claim().expect("released slot reclaimable");
        assert_eq!(c2.magazine(0).pop(), Some(8 as *mut u8));
    }

    #[test]
    fn slot_contents_survive_across_claims_per_class() {
        let slot = MagazineSlot::new();
        {
            let c = slot.try_claim().unwrap();
            c.magazine(3).push(0x30 as *mut u8);
            c.magazine(7).push(0x70 as *mut u8);
        }
        let c = slot.try_claim().unwrap();
        assert_eq!(c.magazine(3).pop(), Some(0x30 as *mut u8));
        assert_eq!(c.magazine(7).pop(), Some(0x70 as *mut u8));
        assert!(c.magazine(0).is_empty());
    }

    const S: usize = 8192;

    struct Chunk(*mut u8, std::alloc::Layout);

    impl Chunk {
        fn new() -> Self {
            let layout = std::alloc::Layout::from_size_align(S, S).unwrap();
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null());
            Chunk(p, layout)
        }
        fn sb(&self, class: u32, block_size: u32) -> *mut Superblock {
            unsafe { Superblock::init(self.0, S, class, block_size, 0, 0) }
        }
    }

    impl Drop for Chunk {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.0, self.1) };
        }
    }

    #[test]
    fn slot_heap_places_empties_and_partials_separately() {
        let (c1, c2) = (Chunk::new(), Chunk::new());
        let mut sh = SlotHeap::new();
        unsafe {
            let empty = c1.sb(2, 64);
            let partial = c2.sb(2, 64);
            let _ = Superblock::alloc_block(partial);
            sh.push_empty(empty);
            sh.link(partial);
            assert_eq!(sh.empty_count, 1);
            assert_eq!(sh.find_with_free(2), partial, "partial is binned by class");
            assert!(sh.find_with_free(3).is_null());
            let popped = sh.pop_empty();
            assert_eq!(popped, empty);
            assert_eq!(sh.empty_count, 0);
        }
    }

    #[test]
    fn slot_heap_find_prefers_fullest() {
        let (c1, c2) = (Chunk::new(), Chunk::new());
        let mut sh = SlotHeap::new();
        unsafe {
            let half = c1.sb(0, 64);
            for _ in 0..((*half).capacity / 2) {
                let _ = Superblock::alloc_block(half);
            }
            let light = c2.sb(0, 64);
            let _ = Superblock::alloc_block(light);
            sh.link(light);
            sh.link(half);
            assert_eq!(sh.find_with_free(0), half, "fullest superblock wins");
        }
    }

    #[test]
    fn slot_heap_relink_moves_drained_to_empty_list() {
        let c = Chunk::new();
        let mut sh = SlotHeap::new();
        unsafe {
            let sb = c.sb(1, 32);
            let p = Superblock::alloc_block(sb);
            sh.link(sb);
            Superblock::free_block(sb, p);
            sh.relink(sb);
            assert_eq!(sh.empty_count, 1);
            assert!(sh.find_with_free(1).is_null(), "bin no longer holds it");
            assert_eq!(sh.pop_empty(), sb);
        }
    }

    #[test]
    fn slot_heap_take_emptiest_prefers_empties_then_f_empty() {
        let cfg = HoardConfig::default();
        let (c1, c2, c3) = (Chunk::new(), Chunk::new(), Chunk::new());
        let mut sh = SlotHeap::new();
        unsafe {
            let empty = c1.sb(0, 64);
            let sparse = c2.sb(0, 64);
            let _ = Superblock::alloc_block(sparse);
            let dense = c3.sb(0, 64);
            for _ in 0..(*dense).capacity {
                let _ = Superblock::alloc_block(dense);
            }
            sh.push_empty(empty);
            sh.link(sparse);
            sh.link(dense);
            let (v1, used1) = sh.take_emptiest(&cfg);
            assert_eq!(v1, empty);
            assert_eq!(used1, 0);
            let (v2, used2) = sh.take_emptiest(&cfg);
            assert_eq!(v2, sparse, "sparse is f-empty, dense is not");
            assert_eq!(used2, 64);
            let (v3, _) = sh.take_emptiest(&cfg);
            assert!(v3.is_null(), "dense superblock is not f-empty");
            assert_eq!(sh.class_head(0), dense, "dense stays linked");
        }
    }

    #[test]
    fn slot_heap_for_each_visits_everything_once() {
        let (c1, c2, c3) = (Chunk::new(), Chunk::new(), Chunk::new());
        let mut sh = SlotHeap::new();
        unsafe {
            let a = c1.sb(0, 64);
            let b = c2.sb(5, 128);
            let _ = Superblock::alloc_block(b);
            let d = c3.sb(0, 64);
            let _ = Superblock::alloc_block(d);
            sh.push_empty(a);
            sh.link(b);
            sh.link(d);
            let mut seen = std::collections::HashSet::new();
            sh.for_each(|sb| {
                assert!(seen.insert(sb as usize));
            });
            assert_eq!(seen.len(), 3);
        }
    }
}
