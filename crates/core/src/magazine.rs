//! The thread-local allocation front-end: bounded per-class magazines.
//!
//! A **magazine** is a small fixed array of detached free-block payload
//! pointers for one size class. The hot `malloc` pops from it and the
//! hot `free` pushes onto it — no heap lock, no shared cache line. When
//! a magazine runs dry it *refills* (a batch of blocks pulled from the
//! owning heap under **one** lock acquisition); when it overflows it
//! *flushes* (a batch returned under one acquisition, running the
//! existing emptiness-invariant machinery). This is the design lineage
//! of mimalloc's thread-free lists, rpmalloc's thread caches, and the
//! magazine layer of Bonwick's vmem — grafted onto Hoard's heaps
//! without breaking the paper's bounds, because capacity is strictly
//! bounded and magazine-held blocks remain counted in the owning heap's
//! `u`/`a` (see DESIGN.md §9).
//!
//! Magazines are keyed by *virtual processor* (`hoard_sim::current_proc`),
//! not by OS thread: the allocator owns a fixed array of
//! [`MagazineSlot`]s and a thread uses slot `proc % MAG_SLOTS`. Slots
//! are claimed per *operation* with one atomic swap — if two procs
//! hash to the same slot and collide, the loser simply falls back to
//! the locked path, so sharing degrades throughput but never
//! correctness. Keeping the storage inside the allocator (instead of
//! `thread_local!`) preserves `const` construction for
//! `#[global_allocator]` use and lets tests flush every magazine
//! deterministically.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Number of magazine slots per allocator. A power of two above the
/// simulated processor counts (P ≤ 14 in the experiment grid), so live
/// procs rarely collide; a collision costs a locked-path fallback, not
/// correctness. Kept modest because the slots are embedded in the
/// (`const`-constructible, hence stack-transiting) allocator struct.
pub(crate) const MAG_SLOTS: usize = 16;

/// Size classes served by the front-end: the 8-byte-step classes
/// (≤ 128 B) plus the first ×1.2 classes, up to ~550 B — where
/// allocation rates are highest and superblocks hold many blocks.
/// Larger classes hold only a handful of blocks per superblock, so
/// even a small magazine would hoard a superblock's worth — they stay
/// on the locked path.
pub(crate) const MAG_CLASSES: usize = 24;

/// Hard upper bound on [`HoardConfig::magazine_capacity`]
/// (`crate::HoardConfig::magazine_capacity`); also the static size of
/// each magazine's pointer array.
pub const MAX_MAGAZINE_CAPACITY: usize = 32;

/// Capacity installed by
/// [`HoardConfig::with_default_magazines`](crate::HoardConfig::with_default_magazines).
/// With half-capacity batching this bounds the locked share of a pure
/// allocation burst to 1 in 16 operations.
pub const DEFAULT_MAGAZINE_CAPACITY: usize = 32;

/// One size class's stash of detached free blocks. All access happens
/// under the owning [`MagazineSlot`]'s claim.
pub(crate) struct Magazine {
    len: u32,
    blocks: [*mut u8; MAX_MAGAZINE_CAPACITY],
}

impl Magazine {
    const fn new() -> Self {
        Magazine {
            len: 0,
            blocks: [std::ptr::null_mut(); MAX_MAGAZINE_CAPACITY],
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[cfg_attr(not(test), allow(dead_code))] // test helper
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pop the most recently stashed block (LIFO keeps payloads warm).
    pub fn pop(&mut self) -> Option<*mut u8> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.blocks[self.len as usize])
    }

    /// Stash a block. Caller keeps `len < capacity ≤ MAX_MAGAZINE_CAPACITY`.
    pub fn push(&mut self, p: *mut u8) {
        debug_assert!((self.len as usize) < MAX_MAGAZINE_CAPACITY);
        self.blocks[self.len as usize] = p;
        self.len += 1;
    }

    /// Remove the `n` oldest blocks (the magazine's bottom) into `out`,
    /// keeping the warm recently-freed top in place. Returns how many
    /// were taken.
    pub fn take_oldest(&mut self, n: usize, out: &mut [*mut u8]) -> usize {
        let n = n.min(self.len as usize);
        out[..n].copy_from_slice(&self.blocks[..n]);
        self.blocks.copy_within(n..self.len as usize, 0);
        self.len -= n as u32;
        n
    }
}

/// One virtual processor's set of magazines, guarded by a per-operation
/// claim flag instead of a lock: the owner is the only live claimant in
/// the common case, so the claim is one uncontended atomic swap, and a
/// collision (two procs hashing to one slot, or a quiescent flusher)
/// makes the loser fall back to the locked allocation path.
pub(crate) struct MagazineSlot {
    claimed: AtomicBool,
    mags: UnsafeCell<[Magazine; MAG_CLASSES]>,
}

// Safety: `mags` is only touched through a `SlotClaim`, and `claimed`
// admits exactly one claimant at a time.
unsafe impl Sync for MagazineSlot {}
unsafe impl Send for MagazineSlot {}

impl MagazineSlot {
    pub const fn new() -> Self {
        MagazineSlot {
            claimed: AtomicBool::new(false),
            mags: UnsafeCell::new([const { Magazine::new() }; MAG_CLASSES]),
        }
    }

    /// Claim exclusive access for one operation; `None` when another
    /// claimant holds the slot (caller falls back to the locked path).
    pub fn try_claim(&self) -> Option<SlotClaim<'_>> {
        if self.claimed.swap(true, Ordering::Acquire) {
            return None;
        }
        Some(SlotClaim { slot: self })
    }
}

/// RAII claim on a [`MagazineSlot`]; releases on drop.
pub(crate) struct SlotClaim<'a> {
    slot: &'a MagazineSlot,
}

impl SlotClaim<'_> {
    /// The magazine for `class`. Exclusive by virtue of the claim.
    #[allow(clippy::mut_from_ref)] // exclusivity is the claim's contract
    pub fn magazine(&self, class: usize) -> &mut Magazine {
        debug_assert!(class < MAG_CLASSES);
        unsafe { &mut (*self.slot.mags.get())[class] }
    }
}

impl Drop for SlotClaim<'_> {
    fn drop(&mut self) {
        self.slot.claimed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magazine_is_lifo_and_bounded() {
        let mut m = Magazine::new();
        assert!(m.is_empty());
        assert_eq!(m.pop(), None);
        for i in 1..=MAX_MAGAZINE_CAPACITY {
            m.push(i as *mut u8);
        }
        assert_eq!(m.len(), MAX_MAGAZINE_CAPACITY);
        for i in (1..=MAX_MAGAZINE_CAPACITY).rev() {
            assert_eq!(m.pop(), Some(i as *mut u8));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn take_oldest_keeps_the_warm_top() {
        let mut m = Magazine::new();
        for i in 1..=8usize {
            m.push(i as *mut u8);
        }
        let mut out = [std::ptr::null_mut(); MAX_MAGAZINE_CAPACITY];
        assert_eq!(m.take_oldest(3, &mut out), 3);
        let oldest: Vec<usize> = out[..3].iter().map(|p| *p as usize).collect();
        assert_eq!(oldest, [1, 2, 3]);
        assert_eq!(m.len(), 5);
        // Remaining pops still come newest-first: 8, 7, ...
        assert_eq!(m.pop(), Some(8 as *mut u8));
        assert_eq!(m.pop(), Some(7 as *mut u8));
        // Asking for more than present takes what's there.
        assert_eq!(m.take_oldest(99, &mut out), 3);
        assert!(m.is_empty());
    }

    #[test]
    fn slot_claim_is_exclusive_and_reentrant_after_release() {
        let slot = MagazineSlot::new();
        let c = slot.try_claim().expect("fresh slot claimable");
        assert!(slot.try_claim().is_none(), "second claim must fail");
        c.magazine(0).push(8 as *mut u8);
        drop(c);
        let c2 = slot.try_claim().expect("released slot reclaimable");
        assert_eq!(c2.magazine(0).pop(), Some(8 as *mut u8));
    }

    #[test]
    fn slot_contents_survive_across_claims_per_class() {
        let slot = MagazineSlot::new();
        {
            let c = slot.try_claim().unwrap();
            c.magazine(3).push(0x30 as *mut u8);
            c.magazine(7).push(0x70 as *mut u8);
        }
        let c = slot.try_claim().unwrap();
        assert_eq!(c.magazine(3).pop(), Some(0x30 as *mut u8));
        assert_eq!(c.magazine(7).pop(), Some(0x70 as *mut u8));
        assert!(c.magazine(0).is_empty());
    }
}
