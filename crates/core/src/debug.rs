//! Validation and introspection for tests and the property suite.
//!
//! [`validate`] takes every heap lock (global last, matching the
//! allocator's lock order) and performs a full consistency scan:
//! accounting (`u`/`a` versus the superblocks actually linked), list
//! placement (each superblock in the fullness group matching its
//! occupancy), and the emptiness-invariant postcondition. It is O(heap
//! contents) and meant for tests, not production paths.

use crate::hoard::HoardAllocator;
use crate::superblock::Superblock;
use hoard_mem::ChunkSource;
use std::sync::atomic::Ordering::Relaxed;

/// Observation of one heap during [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapObservation {
    /// Heap index (0 = global).
    pub index: usize,
    /// Bytes in use per the heap's counter.
    pub u: u64,
    /// Bytes held per the heap's counter.
    pub a: u64,
    /// Superblocks linked in the heap.
    pub superblocks: usize,
    /// Whether the paper's emptiness invariant `u ≥ a − K·S ∨ u ≥ (1−f)·a`
    /// holds (always reported; only *meaningful* for per-processor heaps).
    pub invariant_holds: bool,
    /// Whether the heap still owns a superblock that is at least
    /// `f`-empty (if the invariant is violated, this must be false — the
    /// implementation's postcondition).
    pub has_f_empty_superblock: bool,
}

/// Result of a full-allocator consistency scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// Per-heap observations (index 0 = global heap), only heaps in use.
    pub heaps: Vec<HeapObservation>,
    /// Human-readable consistency violations (empty = consistent).
    pub errors: Vec<String>,
}

impl Validation {
    /// Whether the scan found no internal inconsistency. (The emptiness
    /// invariant is reported per heap in [`HeapObservation`] but is not a
    /// consistency requirement between f-emptiness crossings — see the
    /// hysteresis discussion in `hoard.rs`.)
    pub fn is_consistent(&self) -> bool {
        self.errors.is_empty()
    }

    /// Sum of `u` over all heaps (block-size bytes in use).
    pub fn total_u(&self) -> u64 {
        self.heaps.iter().map(|h| h.u).sum()
    }

    /// Sum of `a` over all heaps (bytes held in superblocks).
    pub fn total_a(&self) -> u64 {
        self.heaps.iter().map(|h| h.a).sum()
    }
}

/// Aggregated per-size-class usage across all heaps (including the
/// global heap): how many superblocks serve each class and how full they
/// are. The view behind fragmentation diagnostics — a class with many
/// superblocks and few live blocks is where the held-vs-live gap lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassUsage {
    /// Size class index.
    pub class: usize,
    /// Payload bytes per block.
    pub block_size: u32,
    /// Superblocks currently formatted for this class.
    pub superblocks: usize,
    /// Live blocks across those superblocks.
    pub blocks_in_use: u64,
    /// Total block capacity across those superblocks.
    pub capacity: u64,
}

impl ClassUsage {
    /// Occupancy fraction (`0.0..=1.0`); 0 for an unused class.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.blocks_in_use as f64 / self.capacity as f64
        }
    }
}

/// Scan per-class usage. Takes all heap locks (quiescent points only,
/// like [`validate`]).
pub fn class_usage<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Vec<ClassUsage> {
    let cfg = *alloc.config();
    let table = alloc.size_classes();
    let mut usage: Vec<ClassUsage> = (0..table.len())
        .map(|i| ClassUsage {
            class: i,
            block_size: table.class(i).block_size,
            superblocks: 0,
            blocks_in_use: 0,
            capacity: 0,
        })
        .collect();
    for (index, heap) in alloc.heaps().iter().enumerate() {
        if index > cfg.heap_count {
            break;
        }
        let _guard = heap.lock.lock();
        unsafe {
            heap.for_each_superblock(|sb| {
                let entry = &mut usage[(*sb).class as usize];
                entry.superblocks += 1;
                entry.blocks_in_use += (*sb).in_use as u64;
                entry.capacity += (*sb).capacity as u64;
            });
        }
    }
    usage.retain(|u| u.superblocks > 0);
    usage
}

/// Owning heap index of a live small block (`None` for large objects).
///
/// Reads the superblock's `owner` without a lock; meaningful only at
/// quiescent points or in single-threaded tests (ownership may change
/// concurrently otherwise).
///
/// # Safety
///
/// `ptr` must be a live block previously returned by `alloc`.
pub unsafe fn block_owner<Src: ChunkSource>(
    _alloc: &HoardAllocator<Src>,
    ptr: std::ptr::NonNull<u8>,
) -> Option<usize> {
    let header = hoard_mem::read_header(ptr.as_ptr());
    match header.tag {
        hoard_mem::Tag::Superblock => {
            Some(Superblock::owner(header.value as *mut Superblock))
        }
        _ => None,
    }
}

/// Scan `alloc` for internal consistency. Takes all heap locks; do not
/// call concurrently with a thread that holds one (it would deadlock on
/// the global heap only if that thread also waits on a scanned heap —
/// tests call this at quiescent points).
pub fn validate<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Validation {
    let cfg = *alloc.config();
    let mut heaps = Vec::new();
    let mut errors = Vec::new();

    for (index, heap) in alloc.heaps().iter().enumerate() {
        if index > cfg.heap_count {
            break;
        }
        let _guard = heap.lock.lock();
        let u = heap.u.load(Relaxed);
        let a = heap.a.load(Relaxed);

        let mut scanned_used = 0u64;
        let mut scanned_usable = 0u64;
        let mut scanned_count = 0usize;
        let mut has_f_empty = false;
        unsafe {
            heap.for_each_superblock(|sb| {
                scanned_count += 1;
                scanned_used += Superblock::used_bytes(sb);
                scanned_usable += Superblock::usable_bytes(sb);
                if (*sb).magic != crate::superblock::SB_MAGIC {
                    errors.push(format!("heap {index}: superblock with bad magic"));
                }
                if Superblock::owner(sb) != index {
                    errors.push(format!(
                        "heap {index}: linked superblock owned by {}",
                        Superblock::owner(sb)
                    ));
                }
                if cfg.f_empty_blocks((*sb).in_use, (*sb).capacity) {
                    has_f_empty = true;
                }
                if (*sb).in_use > (*sb).capacity {
                    errors.push(format!("heap {index}: in_use exceeds capacity"));
                }
                // Group placement: superblocks on bins must match their
                // occupancy group; empty-list ones carry the sentinel.
                let group = (*sb).group;
                if group != u8::MAX {
                    let expect = Superblock::fullness_group(sb);
                    if group as usize != expect {
                        errors.push(format!(
                            "heap {index}: superblock in group {group}, expected {expect}"
                        ));
                    }
                    if (*sb).in_use == 0 {
                        errors.push(format!(
                            "heap {index}: drained superblock still in a fullness bin"
                        ));
                    }
                } else if (*sb).in_use != 0 {
                    errors.push(format!(
                        "heap {index}: non-empty superblock on the empty list"
                    ));
                }
            });
        }

        if scanned_used != u {
            errors.push(format!(
                "heap {index}: u counter {u} != scanned used bytes {scanned_used}"
            ));
        }
        if scanned_usable != a {
            errors.push(format!(
                "heap {index}: a counter {a} != scanned usable bytes {scanned_usable}"
            ));
        }

        heaps.push(HeapObservation {
            index,
            u,
            a,
            superblocks: scanned_count,
            invariant_holds: !cfg.invariant_violated(u, a),
            has_f_empty_superblock: has_f_empty,
        });
    }

    Validation { heaps, errors }
}

/// [`validate`] as a pass/fail check: `Ok(())` when the allocator is
/// internally consistent, `Err` with the violation descriptions
/// otherwise. The shape the fault-injection campaign asserts after
/// every storm of injected failures.
///
/// # Errors
///
/// Returns every consistency violation [`validate`] found.
pub fn check_invariants<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Result<(), Vec<String>> {
    let v = validate(alloc);
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_mem::MtAllocator;

    #[test]
    fn fresh_allocator_is_consistent() {
        let h = HoardAllocator::new_default();
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert_eq!(v.total_u(), 0);
        assert_eq!(v.total_a(), 0);
    }

    #[test]
    fn consistency_after_mixed_traffic() {
        let h = HoardAllocator::new_default();
        let mut live = Vec::new();
        unsafe {
            for i in 0..2000usize {
                let size = 8 + (i * 37) % 2048;
                live.push(h.allocate(size).unwrap());
                if i % 3 == 0 {
                    let victim = live.swap_remove((i * 31) % live.len());
                    h.deallocate(victim);
                }
            }
        }
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert!(v.total_u() > 0);
        unsafe {
            for p in live {
                h.deallocate(p);
            }
        }
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert_eq!(v.total_u(), 0, "all blocks returned");
    }

    #[test]
    fn class_usage_reflects_live_blocks() {
        let h = HoardAllocator::new_default();
        unsafe {
            let a = h.allocate(24).unwrap(); // 24-byte class
            let b = h.allocate(24).unwrap();
            let c = h.allocate(1000).unwrap(); // ~1040-byte class
            let usage = class_usage(&h);
            let small = usage.iter().find(|u| u.block_size == 24).expect("24B class");
            assert_eq!(small.blocks_in_use, 2);
            assert_eq!(small.superblocks, 1);
            assert!(small.occupancy() > 0.0 && small.occupancy() < 1.0);
            let big = usage
                .iter()
                .find(|u| u.block_size as usize >= 1000)
                .expect("1000B class");
            assert_eq!(big.blocks_in_use, 1);
            h.deallocate(a);
            h.deallocate(b);
            h.deallocate(c);
        }
        // After frees the blocks are gone but (empty) superblocks may
        // remain formatted for their classes.
        let usage = class_usage(&h);
        assert!(usage.iter().all(|u| u.blocks_in_use == 0));
    }

    #[test]
    fn validation_reports_totals_matching_stats() {
        let h = HoardAllocator::new_default();
        unsafe {
            let _p = h.allocate(100).unwrap();
            let v = validate(&h);
            assert_eq!(v.total_u(), h.stats().live_current);
        }
    }
}
