//! Validation and introspection for tests and the property suite.
//!
//! [`validate`] takes every heap lock (global last, matching the
//! allocator's lock order) and performs a full consistency scan:
//! accounting (`u`/`a` versus the superblocks actually linked), list
//! placement (each superblock in the fullness group matching its
//! occupancy), and the emptiness-invariant postcondition. It is O(heap
//! contents) and meant for tests, not production paths.
//!
//! Under the lock-free back-end the scan widens to the other two owner
//! domains: each magazine slot's private mini-heap (claimed like any
//! slot operation, then scanned against its own `u`/`a`) reports as a
//! [`HeapObservation`] with index `SLOT_OWNER_BASE + slot`, and the
//! global Treiber-stack cache is walked quiescently in place of the
//! (then inert) global heap's lists, reporting as index 0.

use crate::hoard::{HoardAllocator, SLOT_OWNER_BASE};
use crate::magazine::{MagazineSlot, SlotClaim};
use crate::superblock::Superblock;
use hoard_mem::ChunkSource;
use std::sync::atomic::Ordering::Relaxed;

/// Claim a magazine slot for scanning, spinning out any in-flight
/// allocator operation (claims are held per-operation, never across
/// blocking calls, so this terminates quickly at the quiescent points
/// validation is meant for).
fn claim_slot(slot: &MagazineSlot) -> SlotClaim<'_> {
    loop {
        if let Some(c) = slot.try_claim() {
            return c;
        }
        std::hint::spin_loop();
    }
}

/// Observation of one heap during [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapObservation {
    /// Heap index (0 = global).
    pub index: usize,
    /// Bytes in use per the heap's counter.
    pub u: u64,
    /// Bytes held per the heap's counter.
    pub a: u64,
    /// Superblocks linked in the heap.
    pub superblocks: usize,
    /// Whether the paper's emptiness invariant `u ≥ a − K·S ∨ u ≥ (1−f)·a`
    /// holds (always reported; only *meaningful* for per-processor heaps).
    pub invariant_holds: bool,
    /// Whether the heap still owns a superblock that is at least
    /// `f`-empty (if the invariant is violated, this must be false — the
    /// implementation's postcondition).
    pub has_f_empty_superblock: bool,
}

/// Result of a full-allocator consistency scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// Per-heap observations (index 0 = global heap), only heaps in use.
    pub heaps: Vec<HeapObservation>,
    /// Human-readable consistency violations (empty = consistent).
    pub errors: Vec<String>,
}

impl Validation {
    /// Whether the scan found no internal inconsistency. (The emptiness
    /// invariant is reported per heap in [`HeapObservation`] but is not a
    /// consistency requirement between f-emptiness crossings — see the
    /// hysteresis discussion in `hoard.rs`.)
    pub fn is_consistent(&self) -> bool {
        self.errors.is_empty()
    }

    /// Sum of `u` over all heaps (block-size bytes in use).
    pub fn total_u(&self) -> u64 {
        self.heaps.iter().map(|h| h.u).sum()
    }

    /// Sum of `a` over all heaps (bytes held in superblocks).
    pub fn total_a(&self) -> u64 {
        self.heaps.iter().map(|h| h.a).sum()
    }
}

/// Aggregated per-size-class usage across all heaps (including the
/// global heap): how many superblocks serve each class and how full they
/// are. The view behind fragmentation diagnostics — a class with many
/// superblocks and few live blocks is where the held-vs-live gap lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassUsage {
    /// Size class index.
    pub class: usize,
    /// Payload bytes per block.
    pub block_size: u32,
    /// Superblocks currently formatted for this class.
    pub superblocks: usize,
    /// Live blocks across those superblocks.
    pub blocks_in_use: u64,
    /// Total block capacity across those superblocks.
    pub capacity: u64,
}

impl ClassUsage {
    /// Occupancy fraction (`0.0..=1.0`); 0 for an unused class.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.blocks_in_use as f64 / self.capacity as f64
        }
    }
}

/// Scan per-class usage. Takes all heap locks (quiescent points only,
/// like [`validate`]).
pub fn class_usage<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Vec<ClassUsage> {
    let cfg = *alloc.config();
    let table = alloc.size_classes();
    let mut usage: Vec<ClassUsage> = (0..table.len())
        .map(|i| ClassUsage {
            class: i,
            block_size: table.class(i).block_size,
            superblocks: 0,
            blocks_in_use: 0,
            capacity: 0,
        })
        .collect();
    let mut tally = |sb: *mut Superblock| unsafe {
        let entry = &mut usage[(*sb).class as usize];
        entry.superblocks += 1;
        entry.blocks_in_use += (*sb).in_use as u64;
        entry.capacity += (*sb).capacity as u64;
    };
    for (index, heap) in alloc.heaps().iter().enumerate() {
        if index > cfg.heap_count {
            break;
        }
        let _guard = heap.lock.lock();
        unsafe {
            heap.for_each_superblock(&mut tally);
        }
    }
    if cfg.lockfree_backend {
        // The other two owner domains: slot heaps and the cache.
        for slot in alloc.frontend() {
            let claim = claim_slot(slot);
            unsafe { claim.heap().for_each(&mut tally) };
        }
        unsafe { alloc.cache().for_each(&mut tally) };
    }
    usage.retain(|u| u.superblocks > 0);
    usage
}

/// Owning heap index of a live small block (`None` for large objects).
///
/// Reads the superblock's `owner` without a lock; meaningful only at
/// quiescent points or in single-threaded tests (ownership may change
/// concurrently otherwise).
///
/// # Safety
///
/// `ptr` must be a live block previously returned by `alloc`.
pub unsafe fn block_owner<Src: ChunkSource>(
    _alloc: &HoardAllocator<Src>,
    ptr: std::ptr::NonNull<u8>,
) -> Option<usize> {
    let header = hoard_mem::read_header(ptr.as_ptr());
    match header.tag {
        hoard_mem::Tag::Superblock => {
            Some(Superblock::owner(header.value as *mut Superblock))
        }
        _ => None,
    }
}

/// Scan `alloc` for internal consistency. Takes all heap locks; do not
/// call concurrently with a thread that holds one (it would deadlock on
/// the global heap only if that thread also waits on a scanned heap —
/// tests call this at quiescent points).
pub fn validate<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Validation {
    // The *effective* config: with adaptive tuning the controller may
    // have loosened K/f, and the invariant/f-emptiness observations
    // must be judged against the thresholds the allocator actually ran.
    let cfg = alloc.effective_config();
    let mut heaps = Vec::new();
    let mut errors = Vec::new();

    for (index, heap) in alloc.heaps().iter().enumerate() {
        if index > cfg.heap_count {
            break;
        }
        let _guard = heap.lock.lock();
        let u = heap.u.load(Relaxed);
        let a = heap.a.load(Relaxed);

        let mut scanned_used = 0u64;
        let mut scanned_usable = 0u64;
        let mut scanned_count = 0usize;
        let mut has_f_empty = false;
        unsafe {
            heap.for_each_superblock(|sb| {
                scanned_count += 1;
                scanned_used += Superblock::used_bytes(sb);
                scanned_usable += Superblock::usable_bytes(sb);
                if (*sb).magic != crate::superblock::SB_MAGIC {
                    errors.push(format!("heap {index}: superblock with bad magic"));
                }
                if Superblock::owner(sb) != index {
                    errors.push(format!(
                        "heap {index}: linked superblock owned by {}",
                        Superblock::owner(sb)
                    ));
                }
                if cfg.f_empty_blocks((*sb).in_use, (*sb).capacity) {
                    has_f_empty = true;
                }
                if (*sb).in_use > (*sb).capacity {
                    errors.push(format!("heap {index}: in_use exceeds capacity"));
                }
                // Group placement: superblocks on bins must match their
                // occupancy group; empty-list ones carry the sentinel.
                let group = (*sb).group;
                if group != u8::MAX {
                    let expect = Superblock::fullness_group(sb);
                    if group as usize != expect {
                        errors.push(format!(
                            "heap {index}: superblock in group {group}, expected {expect}"
                        ));
                    }
                    if (*sb).in_use == 0 {
                        errors.push(format!(
                            "heap {index}: drained superblock still in a fullness bin"
                        ));
                    }
                } else if (*sb).in_use != 0 {
                    errors.push(format!(
                        "heap {index}: non-empty superblock on the empty list"
                    ));
                }
            });
        }

        if scanned_used != u {
            errors.push(format!(
                "heap {index}: u counter {u} != scanned used bytes {scanned_used}"
            ));
        }
        if scanned_usable != a {
            errors.push(format!(
                "heap {index}: a counter {a} != scanned usable bytes {scanned_usable}"
            ));
        }

        heaps.push(HeapObservation {
            index,
            u,
            a,
            superblocks: scanned_count,
            invariant_holds: !cfg.invariant_violated(u, a),
            has_f_empty_superblock: has_f_empty,
        });
    }

    if cfg.lockfree_backend {
        // The global heap is inert in this mode: every transfer rides
        // the cache. Anything linked or counted there is a leak from
        // the locked paths.
        if let Some(g) = heaps.first() {
            if g.u != 0 || g.a != 0 || g.superblocks != 0 {
                errors.push("lockfree: global heap holds state (cache should)".into());
            }
        }

        // Replace the inert global-heap observation with a quiescent
        // walk of the cache — the lock-free owner domain 0. Cached
        // superblocks have no live counters (accounting is debited on
        // retirement and credited on adoption), so the observation is
        // purely scan-derived.
        let mut used = 0u64;
        let mut usable = 0u64;
        let mut count = 0usize;
        let mut drained = 0usize;
        let mut has_f_empty = false;
        unsafe {
            alloc.cache().for_each(|sb| {
                count += 1;
                used += Superblock::used_bytes(sb);
                usable += Superblock::usable_bytes(sb);
                if (*sb).in_use == 0 {
                    drained += 1;
                }
                if (*sb).magic != crate::superblock::SB_MAGIC {
                    errors.push("cache: superblock with bad magic".into());
                }
                if Superblock::owner(sb) != 0 {
                    errors.push(format!(
                        "cache: cached superblock owned by {}",
                        Superblock::owner(sb)
                    ));
                }
                if (*sb).in_use > (*sb).capacity {
                    errors.push("cache: in_use exceeds capacity".into());
                }
                if cfg.f_empty_blocks((*sb).in_use, (*sb).capacity) {
                    has_f_empty = true;
                }
            });
        }
        if alloc.cache().is_empty() != (count == 0) {
            errors.push("cache: is_empty disagrees with walk".into());
        }
        // Quiescently, a cached superblock is drained iff it sits on
        // the empty stack (partials are pushed with live blocks and
        // only settle/adoption touch them), so the approximate counter
        // must be exact here.
        if alloc.cache().empty_count() != drained {
            errors.push(format!(
                "cache: empty_count {} != walked drained superblocks {drained}",
                alloc.cache().empty_count()
            ));
        }
        heaps[0] = HeapObservation {
            index: 0,
            u: used,
            a: usable,
            superblocks: count,
            invariant_holds: true, // not meaningful for the cache
            has_f_empty_superblock: has_f_empty,
        };

        for (i, slot) in alloc.frontend().iter().enumerate() {
            let claim = claim_slot(slot);
            let sh = claim.heap();
            let index = SLOT_OWNER_BASE + i;
            let mut scanned_used = 0u64;
            let mut scanned_usable = 0u64;
            let mut scanned_count = 0usize;
            let mut empties = 0usize;
            let mut has_f_empty = false;
            unsafe {
                sh.for_each(|sb| {
                    scanned_count += 1;
                    scanned_used += Superblock::used_bytes(sb);
                    scanned_usable += Superblock::usable_bytes(sb);
                    if (*sb).magic != crate::superblock::SB_MAGIC {
                        errors.push(format!("slot {i}: superblock with bad magic"));
                    }
                    if Superblock::owner(sb) != index {
                        errors.push(format!(
                            "slot {i}: linked superblock owned by {}",
                            Superblock::owner(sb)
                        ));
                    }
                    if (*sb).in_use > (*sb).capacity {
                        errors.push(format!("slot {i}: in_use exceeds capacity"));
                    }
                    if cfg.f_empty_blocks((*sb).in_use, (*sb).capacity) {
                        has_f_empty = true;
                    }
                    // Slots keep no fullness groups: binned superblocks
                    // carry group 0, empty-list ones the sentinel.
                    match (*sb).group {
                        u8::MAX => {
                            empties += 1;
                            if (*sb).in_use != 0 {
                                errors.push(format!(
                                    "slot {i}: non-empty superblock on the empty list"
                                ));
                            }
                        }
                        0 => {
                            if (*sb).class as usize >= crate::magazine::MAG_CLASSES {
                                errors.push(format!(
                                    "slot {i}: binned superblock of non-front-end class {}",
                                    (*sb).class
                                ));
                            }
                            if (*sb).in_use == 0 {
                                errors.push(format!(
                                    "slot {i}: drained superblock still in a class bin"
                                ));
                            }
                        }
                        g => errors.push(format!("slot {i}: unexpected group {g}")),
                    }
                });
            }
            if empties != sh.empty_count {
                errors.push(format!(
                    "slot {i}: empty_count {} != walked empties {empties}",
                    sh.empty_count
                ));
            }
            if scanned_used != sh.u {
                errors.push(format!(
                    "slot {i}: u counter {} != scanned used bytes {scanned_used}",
                    sh.u
                ));
            }
            if scanned_usable != sh.a {
                errors.push(format!(
                    "slot {i}: a counter {} != scanned usable bytes {scanned_usable}",
                    sh.a
                ));
            }
            if scanned_count > 0 || sh.u != 0 || sh.a != 0 {
                heaps.push(HeapObservation {
                    index,
                    u: sh.u,
                    a: sh.a,
                    superblocks: scanned_count,
                    invariant_holds: !cfg.invariant_violated(sh.u, sh.a),
                    has_f_empty_superblock: has_f_empty,
                });
            }
        }
    }

    Validation { heaps, errors }
}

/// [`validate`] as a pass/fail check: `Ok(())` when the allocator is
/// internally consistent, `Err` with the violation descriptions
/// otherwise. The shape the fault-injection campaign asserts after
/// every storm of injected failures.
///
/// # Errors
///
/// Returns every consistency violation [`validate`] found.
pub fn check_invariants<Src: ChunkSource>(alloc: &HoardAllocator<Src>) -> Result<(), Vec<String>> {
    let v = validate(alloc);
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_mem::MtAllocator;

    #[test]
    fn fresh_allocator_is_consistent() {
        let h = HoardAllocator::new_default();
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert_eq!(v.total_u(), 0);
        assert_eq!(v.total_a(), 0);
    }

    #[test]
    fn consistency_after_mixed_traffic() {
        let h = HoardAllocator::new_default();
        let mut live = Vec::new();
        unsafe {
            for i in 0..2000usize {
                let size = 8 + (i * 37) % 2048;
                live.push(h.allocate(size).unwrap());
                if i % 3 == 0 {
                    let victim = live.swap_remove((i * 31) % live.len());
                    h.deallocate(victim);
                }
            }
        }
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert!(v.total_u() > 0);
        unsafe {
            for p in live {
                h.deallocate(p);
            }
        }
        let v = validate(&h);
        assert!(v.is_consistent(), "{:?}", v.errors);
        assert_eq!(v.total_u(), 0, "all blocks returned");
    }

    #[test]
    fn class_usage_reflects_live_blocks() {
        let h = HoardAllocator::new_default();
        unsafe {
            let a = h.allocate(24).unwrap(); // 24-byte class
            let b = h.allocate(24).unwrap();
            let c = h.allocate(1000).unwrap(); // ~1040-byte class
            let usage = class_usage(&h);
            let small = usage.iter().find(|u| u.block_size == 24).expect("24B class");
            assert_eq!(small.blocks_in_use, 2);
            assert_eq!(small.superblocks, 1);
            assert!(small.occupancy() > 0.0 && small.occupancy() < 1.0);
            let big = usage
                .iter()
                .find(|u| u.block_size as usize >= 1000)
                .expect("1000B class");
            assert_eq!(big.blocks_in_use, 1);
            h.deallocate(a);
            h.deallocate(b);
            h.deallocate(c);
        }
        // After frees the blocks are gone but (empty) superblocks may
        // remain formatted for their classes.
        let usage = class_usage(&h);
        assert!(usage.iter().all(|u| u.blocks_in_use == 0));
    }

    #[test]
    fn validation_reports_totals_matching_stats() {
        let h = HoardAllocator::new_default();
        unsafe {
            let _p = h.allocate(100).unwrap();
            let v = validate(&h);
            assert_eq!(v.total_u(), h.stats().live_current);
        }
    }
}
