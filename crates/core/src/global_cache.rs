//! The lock-free global superblock cache.
//!
//! In the locked back-end the global heap (`heaps[0]`) is an ordinary
//! [`Heap`](crate::heap::Heap): every transfer takes its lock, and
//! `fetch_from_global` scans `find_with_free` under it. This module
//! replaces that rendezvous for the lock-free back-end with Treiber
//! stacks of *whole superblocks*:
//!
//! * one **empty stack** of reformat-ready superblocks (any class), and
//! * one **partial stack per size class**, holding `f`-empty
//!   superblocks retired by invariant restoration.
//!
//! A transfer is then one CAS instead of a lock acquire, list surgery,
//! and lock release, and the global `u`/`a` accounting moves to atomic
//! post-accounting on the (unused) global heap's counters. Stack heads
//! pack the superblock pointer with a wrapping ABA tag in the low bits
//! that chunk alignment guarantees are zero: a pop CAS can therefore
//! never mistake a recycled head for an unchanged stack.
//!
//! ## Memory reclamation
//!
//! A popping thread reads `(*head).next` before its CAS; a concurrent
//! pop may take that superblock first, so the read can land on a
//! superblock the reader no longer owns. This is benign — the failed
//! CAS discards the value — *provided the memory stays mapped*. The
//! back-end therefore treats superblock chunks as **type-stable while
//! cached**: chunks reachable from these stacks are returned to the
//! chunk source only after being popped (exclusive ownership), and the
//! source recycles through the process heap, so the transient read
//! targets allocator-owned memory. See DESIGN.md §11.

use crate::superblock::Superblock;
use hoard_mem::MAX_CLASSES;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tag bits available in a packed stack head: superblock chunks are
/// aligned to at least 4 KiB (and to `S` in the lock-free back-end),
/// so the low 12 bits of a base address are always zero.
const TAG_BITS: u32 = 12;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

/// A Treiber stack of superblocks, linked through `(*sb).next`, with
/// the head packed as `superblock_base | aba_tag`.
pub(crate) struct SbStack {
    head: AtomicU64,
}

impl SbStack {
    pub(crate) const fn new() -> Self {
        SbStack {
            head: AtomicU64::new(0),
        }
    }

    /// Push a superblock the caller exclusively owns. Lock-free.
    ///
    /// # Safety
    ///
    /// `sb` must be a live, chunk-aligned superblock that no other
    /// thread can reach; the caller relinquishes it.
    pub(crate) unsafe fn push(&self, sb: *mut Superblock) {
        debug_assert_eq!(sb as u64 & TAG_MASK, 0, "superblock base must be chunk-aligned");
        let mut cur = self.head.load(Ordering::Relaxed);
        loop {
            (*sb).next = (cur & !TAG_MASK) as *mut Superblock;
            let next = sb as u64 | (cur.wrapping_add(1) & TAG_MASK);
            // Release publishes the link write and every prior write to
            // the superblock's contents to the next popper.
            match self
                .head
                .compare_exchange_weak(cur, next, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Pop the top superblock, or null. The winner owns it exclusively.
    ///
    /// # Safety
    ///
    /// Superblocks reachable from the stack must stay mapped (see the
    /// module-level reclamation note).
    pub(crate) unsafe fn pop(&self) -> *mut Superblock {
        let mut cur = self.head.load(Ordering::Acquire);
        loop {
            let sb = (cur & !TAG_MASK) as *mut Superblock;
            if sb.is_null() {
                return std::ptr::null_mut();
            }
            // May read a superblock another popper just took (benign:
            // the CAS below fails and discards it — type-stability).
            let next_sb = (*sb).next;
            let next = next_sb as u64 | (cur.wrapping_add(1) & TAG_MASK);
            match self
                .head
                .compare_exchange_weak(cur, next, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => return sb,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whether the stack is currently empty (racy peek).
    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) & !TAG_MASK == 0
    }

    /// Walk the stack without detaching it.
    ///
    /// # Safety
    ///
    /// Quiescent use only (debug validation, drop): no concurrent
    /// pushes or pops.
    pub(crate) unsafe fn for_each(&self, mut f: impl FnMut(*mut Superblock)) {
        let mut cur = (self.head.load(Ordering::Acquire) & !TAG_MASK) as *mut Superblock;
        while !cur.is_null() {
            let next = (*cur).next;
            f(cur);
            cur = next;
        }
    }
}

/// The global cache: an empty stack plus per-class partial stacks.
/// `const`-constructible so a `static` allocator can embed it.
pub(crate) struct GlobalCache {
    empty: SbStack,
    empty_count: AtomicUsize,
    partial: [SbStack; MAX_CLASSES],
}

impl GlobalCache {
    pub(crate) const fn new() -> Self {
        GlobalCache {
            empty: SbStack::new(),
            empty_count: AtomicUsize::new(0),
            partial: [const { SbStack::new() }; MAX_CLASSES],
        }
    }

    /// Park a completely empty superblock (any class; it will be
    /// reformatted on reuse).
    ///
    /// # Safety
    ///
    /// As for [`SbStack::push`]; additionally `(*sb).in_use == 0`.
    pub(crate) unsafe fn push_empty(&self, sb: *mut Superblock) {
        debug_assert_eq!((*sb).in_use, 0);
        self.empty.push(sb);
        self.empty_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Take an empty superblock, or null.
    ///
    /// # Safety
    ///
    /// As for [`SbStack::pop`].
    pub(crate) unsafe fn pop_empty(&self) -> *mut Superblock {
        let sb = self.empty.pop();
        if !sb.is_null() {
            self.empty_count.fetch_sub(1, Ordering::Relaxed);
        }
        sb
    }

    /// Approximate number of cached empty superblocks.
    pub(crate) fn empty_count(&self) -> usize {
        self.empty_count.load(Ordering::Relaxed)
    }

    /// Park an `f`-empty partial superblock of `class`.
    ///
    /// # Safety
    ///
    /// As for [`SbStack::push`]; `(*sb).class` must equal `class`.
    pub(crate) unsafe fn push_partial(&self, class: usize, sb: *mut Superblock) {
        debug_assert_eq!((*sb).class as usize, class);
        self.partial[class].push(sb);
    }

    /// Take a partial superblock of `class`, or null.
    ///
    /// # Safety
    ///
    /// As for [`SbStack::pop`].
    pub(crate) unsafe fn pop_partial(&self, class: usize) -> *mut Superblock {
        self.partial[class].pop()
    }

    /// Whether any stack holds a superblock (racy peek; for stats and
    /// quiescent sweeps).
    pub(crate) fn is_empty(&self) -> bool {
        self.empty.is_empty() && self.partial.iter().all(SbStack::is_empty)
    }

    /// Visit every cached superblock (empty stack first, then partials).
    ///
    /// # Safety
    ///
    /// Quiescent use only; see [`SbStack::for_each`].
    pub(crate) unsafe fn for_each(&self, mut f: impl FnMut(*mut Superblock)) {
        self.empty.for_each(&mut f);
        for stack in &self.partial {
            stack.for_each(&mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::Layout;

    const S: usize = 8192;

    struct Chunk(*mut u8, Layout);

    impl Chunk {
        fn new() -> Self {
            let layout = Layout::from_size_align(S, S).unwrap();
            let p = unsafe { std::alloc::alloc(layout) };
            assert!(!p.is_null());
            Chunk(p, layout)
        }
        fn sb(&self) -> *mut Superblock {
            unsafe { Superblock::init(self.0, S, 0, 16, 0, 0) }
        }
    }

    impl Drop for Chunk {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.0, self.1) };
        }
    }

    #[test]
    fn stack_is_lifo_and_drains_to_null() {
        let (c1, c2, c3) = (Chunk::new(), Chunk::new(), Chunk::new());
        let (a, b, d) = (c1.sb(), c2.sb(), c3.sb());
        let stack = SbStack::new();
        unsafe {
            assert!(stack.is_empty());
            stack.push(a);
            stack.push(b);
            stack.push(d);
            assert!(!stack.is_empty());
            assert_eq!(stack.pop(), d);
            assert_eq!(stack.pop(), b);
            assert_eq!(stack.pop(), a);
            assert!(stack.pop().is_null());
            assert!(stack.is_empty());
        }
    }

    #[test]
    fn for_each_walks_without_detaching() {
        let (c1, c2) = (Chunk::new(), Chunk::new());
        let (a, b) = (c1.sb(), c2.sb());
        let stack = SbStack::new();
        unsafe {
            stack.push(a);
            stack.push(b);
            let mut seen = Vec::new();
            stack.for_each(|sb| seen.push(sb));
            assert_eq!(seen, vec![b, a]);
            assert_eq!(stack.pop(), b, "walk left the stack intact");
            assert_eq!(stack.pop(), a);
        }
    }

    #[test]
    fn cache_tracks_empty_count_and_routes_partials_by_class() {
        let (c1, c2) = (Chunk::new(), Chunk::new());
        let (a, b) = (c1.sb(), c2.sb());
        let cache = GlobalCache::new();
        unsafe {
            assert!(cache.is_empty());
            cache.push_empty(a);
            assert_eq!(cache.empty_count(), 1);
            cache.push_partial(0, b);
            assert!(!cache.is_empty());
            assert!(cache.pop_partial(1).is_null(), "class 1 stack untouched");
            assert_eq!(cache.pop_partial(0), b);
            assert_eq!(cache.pop_empty(), a);
            assert_eq!(cache.empty_count(), 0);
            assert!(cache.is_empty());
        }
    }

    #[test]
    fn concurrent_push_pop_loses_nothing() {
        // N superblocks circulate among threads that pop one and push
        // it back; afterwards every superblock is still present exactly
        // once — the packed-tag CAS lost or duplicated nothing.
        const N: usize = 8;
        let chunks: Vec<Chunk> = (0..N).map(|_| Chunk::new()).collect();
        let stack = SbStack::new();
        for c in &chunks {
            unsafe { stack.push(c.sb()) };
        }
        let stack_ref = &stack;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..500 {
                        unsafe {
                            let sb = stack_ref.pop();
                            if !sb.is_null() {
                                stack_ref.push(sb);
                            }
                        }
                    }
                });
            }
        });
        let mut seen = std::collections::HashSet::new();
        unsafe {
            loop {
                let sb = stack.pop();
                if sb.is_null() {
                    break;
                }
                assert!(seen.insert(sb as usize), "superblock duplicated");
            }
        }
        assert_eq!(seen.len(), N, "no superblock lost under contention");
    }
}
