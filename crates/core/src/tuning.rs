//! The online feedback controller: telemetry-driven self-tuning.
//!
//! When [`HoardConfig::adaptive_tuning`] is on, the allocator stops
//! treating `magazine_capacity` as one scalar and instead runs a small
//! control loop over the metrics registry (DESIGN.md §13):
//!
//! * **Sensors** — per-size-class deltas of allocations, frees,
//!   magazine hits, refills and flushes ([`ClassTotals`]) plus the
//!   superblock transfer rate, read from the attached
//!   [`MetricsRegistry`](hoard_trace::MetricsRegistry) once per tick.
//!   No registry attached ⇒ no sensors ⇒ the controller idles at its
//!   seed policy.
//! * **Actuators** — per-class magazine capacity and refill/flush batch
//!   size (relaxed `AtomicU32`s read on every refill/flush), and the
//!   emptiness thresholds `K`/`f` (read through [`TuneState::policy`]).
//! * **Clock** — the sim's *virtual* clock. A tick is claimed by CAS on
//!   the last-tick timestamp, so exactly one thread pays
//!   `Cost::TuneTick` per interval and a `.trc` replay reproduces the
//!   identical tick sequence: the controller keeps traces
//!   byte-deterministic (`hoardscope trc replay --twice`).
//!
//! Tuning never widens the paper's bounds past a constant: capacities
//! stay ≤ [`MAX_MAGAZINE_CAPACITY`], `K` is clamped to the configured
//! slack + [`MAX_SLACK_BOOST`], and `f` to ≤ 3/4, so the blowup bound
//! `A ≤ U/(1−f) + K·P·S` survives with `f = 3/4`, `K = K₀ + 4` in the
//! worst case. With `adaptive_tuning` off every actuator holds its
//! static value and the allocator is bit-identical to the untuned
//! build (enforced by `crates/core/tests/magazine.rs`).

use crate::config::HoardConfig;
use crate::magazine::{MAG_CLASSES, MAX_MAGAZINE_CAPACITY};
use hoard_mem::SizeClassTable;
use hoard_trace::{ClassTotals, EventKind, MetricsSnapshot};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Virtual units between controller ticks. Long enough that a tick's
/// `Cost::TuneTick` (150 units) is noise, short enough that a policy
/// converges within the first few percent of a benchmark run.
pub(crate) const TUNE_INTERVAL: u64 = 50_000;

/// Smallest capacity the controller will seed or shrink to. Below this
/// the refill batch (`cap/2`) stops amortising the lock acquisition.
const MIN_ADAPTIVE_CAPACITY: usize = 8;

/// Most the controller may raise `K` above the configured slack.
const MAX_SLACK_BOOST: u64 = 4;

/// The tuned empty fraction is kept at `base denominator × 4`
/// resolution so `f` can move in quarter-of-`f₀` steps (with the
/// paper-default `f = 1/2`, base resolution allows no step at all).
const F_SCALE: u64 = 4;

/// Per-tick per-class op count below which the controller considers
/// the class idle and leaves it alone (too little signal to act on).
const MIN_OPS_PER_TICK: u64 = 64;

/// Grow a class's magazine when its lock-bypass rate sits below this.
const GROW_BELOW_BYPASS_PCT: u64 = 97;

/// A class whose remote frees reach this share of its allocations is a
/// foreign-free stream: the frees arrive on other threads, so local
/// magazine depth cannot absorb them. The threshold sits above storm's
/// ~50 % ring-bleed (where depth still pays) and below prod-cons's
/// ~100 %. Remote-heaviness alone is not enough, though: a *pure
/// producer* (refills with no flush traffic) still wants depth — each
/// refill amortises a heap-lock acquisition — so only remote-heavy
/// classes whose magazines also churn flushes count as streaming.
/// Streaming classes never grow and actively shrink.
const STREAMING_REMOTE_PCT: u64 = 75;

/// Shrink-eligible when bypass is at/above this *and* the class sees
/// almost no refill/flush traffic (capacity is pure overhang).
const SHRINK_ABOVE_BYPASS_PCT: u64 = 99;

/// Consecutive shrink-eligible ticks before a shrink is applied —
/// hysteresis so one quiet interval cannot discard a warmed-up policy.
const SHRINK_PATIENCE: u8 = 3;

/// Superblock transfers per tick that count as a ping-pong storm and
/// trigger the threshold actuator (`K` up, `f` up).
const STORM_TRANSFERS_PER_TICK: u64 = 24;

/// Consecutive quiet ticks before a raised threshold decays one step
/// back toward the configured baseline.
const QUIET_PATIENCE: u8 = 4;

/// Cold-start state shared by the accounting below.
const ZERO_TOTALS: ClassTotals = ClassTotals {
    allocs: 0,
    frees: 0,
    remote_frees: 0,
    magazine_ops: 0,
    refills: 0,
    flushes: 0,
};

/// The controller's shared state, embedded in the allocator (one per
/// allocator, `const`-constructible for `#[global_allocator]` use).
///
/// Actuator fields are plain relaxed atomics: the hot paths read them
/// without synchronisation, and any torn ordering across classes is
/// harmless because every stored value is independently valid (clamped
/// capacity, batch ≤ capacity).
pub(crate) struct TuneState {
    enabled: bool,
    /// Per-class magazine capacity (blocks). With tuning off this is
    /// `magazine_capacity` for every class, and never changes.
    caps: [AtomicU32; MAG_CLASSES],
    /// Per-class refill/flush batch size, kept in `1..=cap`.
    batches: [AtomicU32; MAG_CLASSES],
    /// Tuned slack `K` (superblocks).
    slack_k: AtomicU64,
    /// Tuned empty-fraction numerator at denominator
    /// `empty_fraction_den × F_SCALE` (see [`TuneState::policy`]).
    f_num: AtomicU64,
    /// Virtual timestamp of the last claimed tick (CAS-claimed).
    last_tick: AtomicU64,
    inner: Mutex<ControllerInner>,
}

/// Tick-to-tick memory, only touched by the thread that claimed the
/// tick (the mutex is uncontended by construction; `lock` rather than
/// `try_lock` keeps the tick sequence deterministic regardless).
struct ControllerInner {
    /// Cumulative per-class totals at the previous tick.
    prev: [ClassTotals; MAG_CLASSES],
    /// Cumulative transfer count at the previous tick.
    prev_transfers: u64,
    /// Consecutive shrink-eligible ticks per class (hysteresis).
    shrink_streak: [u8; MAG_CLASSES],
    /// Consecutive storm-free ticks (threshold decay hysteresis).
    quiet_ticks: u8,
}

/// One actuator change, returned to the caller for event emission
/// (the controller itself stays free of tracer plumbing).
pub(crate) enum TuneAction {
    /// `class` now runs capacity `cap`, batch `batch`.
    Capacity { class: u32, cap: u32, batch: u32 },
    /// The invariant now runs with slack `k` and empty-fraction
    /// numerator `f_num` (at the ×[`F_SCALE`] denominator).
    Threshold { k: u64, f_num: u64 },
}

impl TuneAction {
    /// The action as a trace event (kind, arg0, arg1) per the
    /// [`EventKind::TuneCapacity`]/[`EventKind::TuneThreshold`] schema.
    pub(crate) fn as_event(&self) -> (EventKind, u32, u64) {
        match *self {
            TuneAction::Capacity { class, cap, batch } => (
                EventKind::TuneCapacity,
                class,
                ((cap as u64) << 32) | batch as u64,
            ),
            TuneAction::Threshold { k, f_num } => (EventKind::TuneThreshold, k as u32, f_num),
        }
    }
}

const fn clamp_cap(c: usize) -> usize {
    if c < MIN_ADAPTIVE_CAPACITY {
        MIN_ADAPTIVE_CAPACITY
    } else if c > MAX_MAGAZINE_CAPACITY {
        MAX_MAGAZINE_CAPACITY
    } else {
        c
    }
}

/// Seed clamp: capacities start no deeper than the static default.
/// Deep magazines are a liability on foreign-free streams (the shrink
/// path must claw them back tick by tick), so the seed stays
/// conservative and only *measured* low bypass earns the extra depth
/// up to [`MAX_MAGAZINE_CAPACITY`].
const fn seed_cap(c: usize) -> usize {
    let c = clamp_cap(c);
    if c > crate::magazine::DEFAULT_MAGAZINE_CAPACITY {
        crate::magazine::DEFAULT_MAGAZINE_CAPACITY
    } else {
        c
    }
}

const fn batch_for(cap: usize) -> u32 {
    let b = cap / 2;
    (if b == 0 { 1 } else { b }) as u32
}

impl TuneState {
    /// Build the controller for `config`. With tuning off, every
    /// actuator holds the static configuration's value (and
    /// [`maybe_tick`](Self::maybe_tick) never fires), so the compiled-in
    /// controller is behaviourally invisible. With tuning on, per-class
    /// capacities are seeded proportional to blocks-per-superblock:
    /// `clamp(S / block_size, 8..=32)` — small classes start at the
    /// static default (their superblocks hold hundreds of blocks),
    /// ~512 B classes near 16 — and only *measured* low bypass grows a
    /// class toward [`MAX_MAGAZINE_CAPACITY`].
    pub(crate) const fn for_config(config: &HoardConfig) -> TuneState {
        let enabled = config.adaptive_tuning && config.magazine_capacity != 0;
        let table = SizeClassTable::for_superblock_size(config.superblock_size);
        let mut caps = [const { AtomicU32::new(0) }; MAG_CLASSES];
        let mut batches = [const { AtomicU32::new(0) }; MAG_CLASSES];
        let mut i = 0;
        while i < MAG_CLASSES {
            let cap = if !enabled {
                config.magazine_capacity
            } else if i < table.len() {
                seed_cap(config.superblock_size / table.class(i).block_size as usize)
            } else {
                seed_cap(config.magazine_capacity)
            };
            caps[i] = AtomicU32::new(cap as u32);
            batches[i] = AtomicU32::new(batch_for(cap));
            i += 1;
        }
        TuneState {
            enabled,
            caps,
            batches,
            slack_k: AtomicU64::new(config.slack_k as u64),
            f_num: AtomicU64::new(config.empty_fraction_num as u64 * F_SCALE),
            last_tick: AtomicU64::new(0),
            inner: Mutex::new(ControllerInner {
                prev: [ZERO_TOTALS; MAG_CLASSES],
                prev_transfers: 0,
                shrink_streak: [0; MAG_CLASSES],
                quiet_ticks: 0,
            }),
        }
    }

    /// Whether the feedback loop is live (config said so *and* the
    /// magazine front-end exists to steer).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current magazine capacity for `class` (blocks).
    #[inline]
    pub(crate) fn capacity(&self, class: usize) -> usize {
        self.caps[class].load(Relaxed) as usize
    }

    /// Current refill/flush batch size for `class` (blocks, ≥ 1).
    #[inline]
    pub(crate) fn batch(&self, class: usize) -> usize {
        self.batches[class].load(Relaxed) as usize
    }

    /// The *effective* configuration: `base` with the tuned emptiness
    /// thresholds substituted. With tuning off this is `base`,
    /// verbatim. The tuned empty fraction is expressed at denominator
    /// `base_den × F_SCALE`, which leaves `invariant_violated` /
    /// `f_empty_blocks` arithmetic exactly equivalent while the
    /// controller is at its seed point (`num·4 / den·4`).
    #[inline]
    pub(crate) fn policy(&self, base: &HoardConfig) -> HoardConfig {
        if !self.enabled {
            return *base;
        }
        let mut c = *base;
        c.slack_k = self.slack_k.load(Relaxed) as usize;
        c.empty_fraction_num = self.f_num.load(Relaxed) as usize;
        c.empty_fraction_den = base.empty_fraction_den * F_SCALE as usize;
        c
    }

    /// Try to claim a controller tick at virtual time `now`. Returns
    /// `false` when tuning is off, the interval has not elapsed, or
    /// another thread claimed this interval first. The caller that gets
    /// `true` charges `Cost::TuneTick` and calls [`tick`](Self::tick).
    #[inline]
    pub(crate) fn maybe_tick(&self, now: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let last = self.last_tick.load(Relaxed);
        if now.wrapping_sub(last) < TUNE_INTERVAL {
            return false;
        }
        self.last_tick
            .compare_exchange(last, now, Relaxed, Relaxed)
            .is_ok()
    }

    /// Run one control step against a fresh metrics snapshot, updating
    /// the actuators. Fills `out` with the applied changes (for event
    /// emission) and returns how many were applied. `out` is a fixed
    /// buffer so the controller allocates nothing — it may run inside
    /// a `#[global_allocator]`'s own call stack.
    pub(crate) fn tick(
        &self,
        base: &HoardConfig,
        snap: &MetricsSnapshot,
        out: &mut [Option<TuneAction>],
    ) -> usize {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let inner = &mut *inner;
        let mut applied = 0;
        let mut push = |a: TuneAction, applied: &mut usize| {
            if *applied < out.len() {
                out[*applied] = Some(a);
                *applied += 1;
            }
        };

        // Per-class capacity/batch control.
        for class in 0..MAG_CLASSES {
            let cur = snap.class_totals(class);
            let prev = inner.prev[class];
            inner.prev[class] = cur;
            let d = ClassTotals {
                allocs: cur.allocs - prev.allocs,
                frees: cur.frees - prev.frees,
                remote_frees: cur.remote_frees - prev.remote_frees,
                magazine_ops: cur.magazine_ops - prev.magazine_ops,
                refills: cur.refills - prev.refills,
                flushes: cur.flushes - prev.flushes,
            };
            if d.ops() < MIN_OPS_PER_TICK {
                // Idle class: no signal, no change, no streak growth.
                continue;
            }
            let cap = self.caps[class].load(Relaxed) as usize;
            let bypass = d.bypass_pct();
            let churn = d.refills + d.flushes;
            let streaming = d.remote_frees > 0
                && d.remote_frees * 100 >= d.allocs * STREAMING_REMOTE_PCT
                && d.flushes * 2 >= d.refills;
            let mut new_cap = cap;
            if bypass < GROW_BELOW_BYPASS_PCT
                && churn > 0
                && !streaming
                && cap < MAX_MAGAZINE_CAPACITY
            {
                // Lock traffic the magazine should be absorbing: grow
                // aggressively (×4 reaches the clamp from any seed in
                // ≤ 2 ticks — growth is cheap to undo, and the shrink
                // hysteresis catches overshoot).
                new_cap = clamp_cap(cap * 4);
                inner.shrink_streak[class] = 0;
            } else if (streaming || (bypass >= SHRINK_ABOVE_BYPASS_PCT && churn <= 1))
                && cap > MIN_ADAPTIVE_CAPACITY
            {
                // Either the magazine never turns over (near-perfect
                // bypass, no refill/flush churn) or the class streams
                // its frees to other threads — both mean the capacity
                // is not absorbing lock traffic: give it back, but
                // only after SHRINK_PATIENCE consecutive such ticks
                // (hysteresis — growth is cheap to redo, but a shrink
                // flushes warm blocks).
                inner.shrink_streak[class] += 1;
                if inner.shrink_streak[class] >= SHRINK_PATIENCE {
                    new_cap = clamp_cap(cap / 2);
                    inner.shrink_streak[class] = 0;
                }
            } else {
                inner.shrink_streak[class] = 0;
            }
            // Batch control: refill-heavy classes (alloc bursts) pull
            // deeper batches per lock acquisition; symmetric or
            // flush-heavy traffic keeps the half-capacity default.
            let mut new_batch = (new_cap / 2).max(1);
            if d.refills > 2 * d.flushes.max(1) {
                new_batch = (3 * new_cap / 4).clamp(1, new_cap);
            }
            if new_cap != cap || new_batch != self.batches[class].load(Relaxed) as usize {
                self.caps[class].store(new_cap as u32, Relaxed);
                self.batches[class].store(new_batch as u32, Relaxed);
                push(
                    TuneAction::Capacity {
                        class: class as u32,
                        cap: new_cap as u32,
                        batch: new_batch as u32,
                    },
                    &mut applied,
                );
            }
        }

        // Threshold control: superblock ping-pong storms raise K and f
        // (both make migration rarer), clamped so the blowup bound
        // keeps a constant factor; quiet intervals decay one step back
        // toward the configured baseline.
        let transfers = snap.total_transfers();
        let d_transfers = transfers - inner.prev_transfers;
        inner.prev_transfers = transfers;
        let base_k = base.slack_k as u64;
        let base_f = base.empty_fraction_num as u64 * F_SCALE;
        let max_f = 3 * (base.empty_fraction_den as u64 * F_SCALE) / 4;
        let k = self.slack_k.load(Relaxed);
        let f = self.f_num.load(Relaxed);
        let (new_k, new_f) = if d_transfers >= STORM_TRANSFERS_PER_TICK {
            inner.quiet_ticks = 0;
            ((k + 1).min(base_k + MAX_SLACK_BOOST), (f + 1).min(max_f))
        } else if k > base_k || f > base_f {
            inner.quiet_ticks += 1;
            if inner.quiet_ticks >= QUIET_PATIENCE {
                inner.quiet_ticks = 0;
                (k.saturating_sub(1).max(base_k), f.saturating_sub(1).max(base_f))
            } else {
                (k, f)
            }
        } else {
            (k, f)
        };
        if new_k != k || new_f != f {
            self.slack_k.store(new_k, Relaxed);
            self.f_num.store(new_f, Relaxed);
            push(
                TuneAction::Threshold {
                    k: new_k,
                    f_num: new_f,
                },
                &mut applied,
            );
        }
        applied
    }
}

/// Upper bound on actions one tick can apply: one per magazine class
/// plus one threshold change — the caller's event buffer size.
pub(crate) const MAX_TUNE_ACTIONS: usize = MAG_CLASSES + 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(classes: &[(usize, ClassTotals)]) -> MetricsSnapshot {
        // Drive a real registry rather than hand-building a snapshot:
        // keeps this test honest about the sensor path.
        let r = hoard_trace::MetricsRegistry::new(2, MAG_CLASSES);
        for &(class, t) in classes {
            // `t.allocs` is the *total*; magazine hits count in both.
            for _ in 0..t.allocs - t.magazine_ops {
                r.on_alloc(1, class, false);
            }
            for _ in 0..t.magazine_ops {
                r.on_alloc(1, class, true);
            }
            for _ in 0..t.remote_frees {
                r.on_remote_free(1, class);
            }
            for _ in 0..t.refills {
                r.on_magazine_refill(1, class);
            }
            for _ in 0..t.flushes {
                r.on_magazine_flush(1, class);
            }
        }
        r.snapshot()
    }

    fn totals(allocs: u64, magazine_ops: u64, refills: u64, flushes: u64) -> ClassTotals {
        ClassTotals {
            allocs,
            frees: 0,
            remote_frees: 0,
            magazine_ops,
            refills,
            flushes,
        }
    }

    #[test]
    fn disabled_controller_mirrors_the_static_config() {
        let cfg = HoardConfig::with_default_magazines();
        let t = TuneState::for_config(&cfg);
        assert!(!t.enabled());
        for class in 0..MAG_CLASSES {
            assert_eq!(t.capacity(class), cfg.magazine_capacity);
            assert_eq!(t.batch(class), (cfg.magazine_capacity / 2).max(1));
        }
        assert_eq!(t.policy(&cfg), cfg, "policy passes the config through");
        assert!(!t.maybe_tick(u64::MAX), "no ticks while disabled");
    }

    #[test]
    fn seed_capacities_are_proportional_to_blocks_per_superblock() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        assert!(t.enabled());
        // 8-byte blocks: S/8 = 1024, seed-clamped to the static default
        // (growth beyond it must be earned from measured bypass).
        assert_eq!(t.capacity(0), crate::magazine::DEFAULT_MAGAZINE_CAPACITY);
        // 128-byte blocks (class 15): 8192/128 = 64, same clamp.
        assert_eq!(t.capacity(15), crate::magazine::DEFAULT_MAGAZINE_CAPACITY);
        // Largest front-end class (~500 B): a shallow magazine.
        let table = SizeClassTable::for_superblock_size(cfg.superblock_size);
        let last = table.class(MAG_CLASSES - 1).block_size as usize;
        assert_eq!(
            t.capacity(MAG_CLASSES - 1),
            (cfg.superblock_size / last).clamp(8, crate::magazine::DEFAULT_MAGAZINE_CAPACITY)
        );
        // Batches track capacity at the half-capacity default.
        for class in 0..MAG_CLASSES {
            assert_eq!(t.batch(class), t.capacity(class) / 2);
        }
    }

    #[test]
    fn tick_claim_is_exclusive_and_interval_gated() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        assert!(!t.maybe_tick(TUNE_INTERVAL - 1), "interval not elapsed");
        assert!(t.maybe_tick(TUNE_INTERVAL));
        assert!(!t.maybe_tick(TUNE_INTERVAL), "same instant: already claimed");
        assert!(t.maybe_tick(2 * TUNE_INTERVAL));
    }

    #[test]
    fn low_bypass_grows_capacity_until_clamped() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let class = 20; // a geometric class seeded shallow
        let seed = t.capacity(class);
        assert!(seed < MAX_MAGAZINE_CAPACITY);
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        // 1000 ops, 80% bypass, heavy refill churn → grow every tick.
        let mut cum = totals(0, 0, 0, 0);
        let mut cap = seed;
        for _ in 0..4 {
            cum = totals(
                cum.allocs + 1000,
                cum.magazine_ops + 800,
                cum.refills + 40,
                cum.flushes + 10,
            );
            let n = t.tick(&cfg, &snap_with(&[(class, cum)]), &mut out);
            if cap < MAX_MAGAZINE_CAPACITY {
                assert!(n >= 1, "a growth action fires");
                cap = (cap * 4).min(MAX_MAGAZINE_CAPACITY);
            }
            assert_eq!(t.capacity(class), cap);
            assert!(t.batch(class) >= 1 && t.batch(class) <= cap);
        }
        assert_eq!(t.capacity(class), MAX_MAGAZINE_CAPACITY);
        // Refill-heavy traffic selected the deep 3/4 batch.
        assert_eq!(t.batch(class), 3 * MAX_MAGAZINE_CAPACITY / 4);
    }

    #[test]
    fn shrink_requires_patience() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let class = 0;
        let seed = t.capacity(class);
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        let mut cum = totals(0, 0, 0, 0);
        for round in 1..=SHRINK_PATIENCE {
            // Perfect bypass, zero churn: shrink-eligible.
            cum = totals(cum.allocs + 1000, cum.magazine_ops + 1000, 0, 0);
            t.tick(&cfg, &snap_with(&[(class, cum)]), &mut out);
            if round < SHRINK_PATIENCE {
                assert_eq!(t.capacity(class), seed, "hysteresis holds at round {round}");
            }
        }
        assert_eq!(t.capacity(class), seed / 2, "shrink lands after patience");
    }

    #[test]
    fn foreign_free_streams_shrink_instead_of_growing() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let class = 3; // 32-B blocks: seeded at the default clamp
        let seed = t.capacity(class);
        assert_eq!(seed, crate::magazine::DEFAULT_MAGAZINE_CAPACITY);
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        // Foreign-free stream: low bypass with churn (the grow
        // signature) but nearly every free arrives remotely and the
        // magazine is flush-churning — the streaming override must
        // shrink, not grow.
        let mut cum = totals(0, 0, 0, 0);
        for round in 1..=SHRINK_PATIENCE {
            cum.allocs += 1000;
            cum.magazine_ops += 400;
            cum.refills += 40;
            cum.flushes += 35;
            cum.remote_frees += 950;
            t.tick(&cfg, &snap_with(&[(class, cum)]), &mut out);
            if round < SHRINK_PATIENCE {
                assert_eq!(t.capacity(class), seed, "hysteresis holds at round {round}");
            }
        }
        assert_eq!(t.capacity(class), seed / 2, "streaming class gives capacity back");
    }

    #[test]
    fn pure_producers_still_grow_for_refill_amortisation() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let class = 3;
        let seed = t.capacity(class);
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        // Producer side of prod-cons: every free is remote but the
        // magazine never flushes (blocks leave through allocation) —
        // depth still amortises refill lock traffic, so this is a grow.
        let cum = ClassTotals {
            allocs: 1000,
            frees: 0,
            remote_frees: 1000,
            magazine_ops: 450,
            refills: 60,
            flushes: 0,
        };
        t.tick(&cfg, &snap_with(&[(class, cum)]), &mut out);
        assert!(t.capacity(class) > seed, "refill-dominated stream grows");
    }

    #[test]
    fn idle_classes_are_left_alone() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let before: Vec<usize> = (0..MAG_CLASSES).map(|c| t.capacity(c)).collect();
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        let n = t.tick(&cfg, &snap_with(&[]), &mut out);
        assert_eq!(n, 0, "no signal, no actions");
        for (c, &cap) in before.iter().enumerate() {
            assert_eq!(t.capacity(c), cap);
        }
    }

    #[test]
    fn transfer_storms_raise_thresholds_and_quiet_decays_them() {
        let cfg = HoardConfig::with_adaptive();
        let t = TuneState::for_config(&cfg);
        let base_f = cfg.empty_fraction_num as u64 * F_SCALE;
        let max_f = 3 * (cfg.empty_fraction_den as u64 * F_SCALE) / 4;
        let mut out: [Option<TuneAction>; MAX_TUNE_ACTIONS] = [const { None }; MAX_TUNE_ACTIONS];
        let r = hoard_trace::MetricsRegistry::new(2, MAG_CLASSES);
        // Storm ticks: K and f ratchet up to their clamps.
        for _ in 0..10 {
            for _ in 0..STORM_TRANSFERS_PER_TICK {
                r.on_transfer_to_global(1, 50);
            }
            t.tick(&cfg, &r.snapshot(), &mut out);
        }
        let p = t.policy(&cfg);
        assert_eq!(p.slack_k as u64, cfg.slack_k as u64 + MAX_SLACK_BOOST);
        assert_eq!(p.empty_fraction_num as u64, max_f, "f clamped at 3/4");
        assert_eq!(
            p.empty_fraction_den,
            cfg.empty_fraction_den * F_SCALE as usize
        );
        assert!(p.validate().is_ok(), "tuned policy is always a valid config");
        // Quiet ticks: decay one step per QUIET_PATIENCE window, all the
        // way back to the baseline.
        let mut steps = 0;
        while t.policy(&cfg).slack_k != cfg.slack_k
            || t.policy(&cfg).empty_fraction_num as u64 != base_f
        {
            t.tick(&cfg, &r.snapshot(), &mut out);
            steps += 1;
            assert!(steps < 200, "decay must terminate");
        }
        // At the seed point the scaled fraction is arithmetically
        // identical to the configured one.
        let p = t.policy(&cfg);
        assert!(!p.invariant_violated(8192, 2 * 8192));
        assert_eq!(
            p.invariant_violated(0, 3 * 8192),
            cfg.invariant_violated(0, 3 * 8192)
        );
    }

    #[test]
    fn capacity_event_packs_cap_and_batch() {
        let a = TuneAction::Capacity {
            class: 7,
            cap: 64,
            batch: 48,
        };
        let (kind, a0, a1) = a.as_event();
        assert_eq!(kind, EventKind::TuneCapacity);
        assert_eq!(a0, 7);
        assert_eq!(a1 >> 32, 64);
        assert_eq!(a1 & 0xffff_ffff, 48);
    }
}
