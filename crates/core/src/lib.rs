//! # hoard-core — the Hoard scalable memory allocator
//!
//! A from-scratch Rust implementation of the allocator described in
//! Berger, McKinley, Blumofe & Wilson, *"Hoard: A Scalable Memory
//! Allocator for Multithreaded Applications"*, ASPLOS 2000.
//!
//! ## The algorithm in one paragraph
//!
//! Memory is carved into **superblocks** of `S` bytes (default 8 KiB),
//! each holding blocks of one **size class** (classes ≈ a factor 1.2
//! apart). Threads hash to one of `P` **per-processor heaps**; a heap
//! owns superblocks and serves `malloc` from the fullest superblock of
//! the right class. `free` returns a block to its superblock's *owning*
//! heap (not the freeing thread's), which prevents allocator-induced
//! false sharing from spreading. Each per-processor heap `i` maintains
//! the **emptiness invariant** `u_i ≥ a_i − K·S ∨ u_i ≥ (1−f)·a_i`
//! (`u` = bytes in use, `a` = bytes held): when a `free` leaves the heap
//! too empty, a superblock that is at least `f`-empty migrates to the
//! **global heap** (heap 0), where any processor may reclaim it. This
//! bounds per-heap slack — and therefore blowup — by a constant factor
//! plus `O(P·S)`, while keeping nearly every operation local to one
//! heap's lock.
//!
//! ## Quickstart
//!
//! ```
//! use hoard_core::HoardAllocator;
//! use hoard_mem::MtAllocator;
//!
//! let hoard = HoardAllocator::new_default();
//! let ptr = unsafe { hoard.allocate(100) }.expect("oom");
//! unsafe {
//!     std::ptr::write_bytes(ptr.as_ptr(), 0xAB, 100);
//!     hoard.deallocate(ptr);
//! }
//! assert_eq!(hoard.stats().live_current, 0);
//! ```
//!
//! The allocator also implements [`core::alloc::GlobalAlloc`] and is
//! usable as `#[global_allocator]` (see `examples/global_allocator.rs`):
//! it is `const`-constructible and allocation-free on its own paths.

mod config;
mod global_cache;
mod harden;
mod heap;
mod hoard;
mod list;
mod magazine;
mod superblock;
mod tuning;

pub mod debug;

pub use config::{ConfigError, HoardConfig};
pub use harden::{CorruptionHook, CorruptionKind, CorruptionLog, CorruptionReport, HardeningLevel};
pub use hoard::{HoardAllocator, RecoverySnapshot};
pub use magazine::{DEFAULT_MAGAZINE_CAPACITY, MAX_MAGAZINE_CAPACITY};
pub use hoard_mem::{SizeClass, SizeClassTable, MAX_CLASSES};
// The observability layer (see DESIGN.md §10): re-exported so harness
// and tests attach tracers/registries without naming hoard-trace.
pub use hoard_trace::{
    chrome_trace_json, jsonio, ClassTotals, Event, EventKind, HeapMap, HeapMapClass, HeapMapHeap,
    HeapProfiler, HistogramSnapshot, LeakRecord, MetricsRegistry, MetricsSnapshot, ProfileConfig,
    ProfileSnapshot, RecorderStats, RegistryMetrics, SiteStats, TimelinePoint, TraceConfig,
    TraceLog, TraceSink, TrackLog, TrcError, TrcOp, TrcReader, TrcRecord, TrcRecorder, TrcTrace,
    TrcWriter, CHROME_PID, HEAP_PROFILE_SCHEMA, OCCUPANCY_BUCKETS,
};

/// Maximum number of per-processor heaps supported (compile-time bound
/// on the `static`-friendly heap array; the global heap is extra).
pub const MAX_HEAPS: usize = 64;

/// Number of fullness groups per size class (the paper's "groups of
/// superblocks sorted by fullness"). Group `0` is emptiest; an extra
/// internal group holds completely full superblocks.
pub const FULLNESS_GROUPS: usize = 8;
