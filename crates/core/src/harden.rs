//! Hardened allocation paths: corruption detection and reporting.
//!
//! A memory allocator sits under every bug in the program above it, and
//! the classic failure modes — double free, free of a foreign or
//! interior pointer, use-after-free writes, heap overruns into block
//! metadata — all reach it through `deallocate`. The paper's allocator
//! (like its contemporaries) answers them with undefined behavior. This
//! module gives Hoard a configurable defense:
//!
//! * [`HardeningLevel::Basic`] adds O(1) validation to every
//!   `deallocate`: pointer alignment, header-tag sanity, superblock
//!   magic/ownership/range checks, and double-free detection via the
//!   [`Tag::Freed`](hoard_mem::Tag) header rewrite (small blocks) and a
//!   live registry (large objects).
//! * [`HardeningLevel::Full`] additionally poisons freed payloads
//!   (verifying the poison on reuse, which catches use-after-free
//!   writes) and plants a per-block canary past the payload (verifying
//!   it on free, which catches overruns). Canary-smashed blocks are
//!   **quarantined**: withheld from the free list but still counted
//!   in use, so the heap's accounting invariants keep holding and the
//!   process degrades gracefully instead of corrupting itself.
//!
//! Violations never panic the allocator. Each one produces a
//! [`CorruptionReport`] recorded in the allocator's [`CorruptionLog`]
//! (a fixed-capacity ring — reporting allocates nothing, so it is safe
//! even when the corrupted allocator *is* the global allocator) and
//! forwarded to an optional hook for the embedding application.
//!
//! Detection is best-effort by nature: classifying a wild pointer
//! requires reading the word before it, and a racing double free from
//! two threads can slip past the header check. Sequential misuse — by
//! far the common case — is detected deterministically.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering, Ordering::Relaxed};
use std::sync::Mutex;

/// How much checking the allocator performs on its hot paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HardeningLevel {
    /// No checks beyond debug assertions — the paper's allocator.
    #[default]
    Off,
    /// O(1) per-operation validation: double-free and invalid-pointer
    /// detection on `deallocate`.
    Basic,
    /// `Basic` plus freed-payload poisoning (verified on reuse) and
    /// per-block canaries (verified on free, smashed blocks
    /// quarantined). Costs one extra word per block and a payload-sized
    /// memset per free.
    Full,
}

impl HardeningLevel {
    /// Whether `deallocate` validates pointers and headers.
    pub const fn detects(self) -> bool {
        !matches!(self, HardeningLevel::Off)
    }

    /// Whether freed payloads are poisoned and blocks carry canaries.
    pub const fn poisons(self) -> bool {
        matches!(self, HardeningLevel::Full)
    }
}

/// What kind of heap corruption a check caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The same pointer was freed twice ([`Tag::Freed`](hoard_mem::Tag)
    /// header on a small block, or a large object absent from the live
    /// registry).
    DoubleFree,
    /// The pointer's header does not decode to anything this allocator
    /// ever wrote (wild or foreign pointer).
    ForeignPointer,
    /// The pointer is not [`MIN_ALIGN`](hoard_mem::MIN_ALIGN)-aligned,
    /// so it cannot be a block payload.
    MisalignedPointer,
    /// The header named a superblock, but the pointer does not lie on a
    /// block boundary inside it (interior or out-of-range pointer).
    OutOfRangePointer,
    /// The named superblock's magic word does not verify — the header
    /// or the superblock itself was overwritten.
    BadSuperblockMagic,
    /// A large object's chunk header failed its magic check.
    BadLargeMagic,
    /// A freed block's poison pattern was overwritten while the block
    /// was on the free list: a use-after-free write.
    PoisonOverwrite,
    /// A block's trailing canary was overwritten while the block was
    /// live: a heap overrun. The block is quarantined.
    CanarySmashed,
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CorruptionKind::DoubleFree => "double free",
            CorruptionKind::ForeignPointer => "foreign pointer",
            CorruptionKind::MisalignedPointer => "misaligned pointer",
            CorruptionKind::OutOfRangePointer => "out-of-range pointer",
            CorruptionKind::BadSuperblockMagic => "bad superblock magic",
            CorruptionKind::BadLargeMagic => "bad large-object magic",
            CorruptionKind::PoisonOverwrite => "use-after-free write",
            CorruptionKind::CanarySmashed => "canary smashed (overrun)",
        };
        f.write_str(s)
    }
}

/// One detected corruption event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionReport {
    /// What check failed.
    pub kind: CorruptionKind,
    /// The offending pointer (block payload address).
    pub address: usize,
    /// Short fixed description of the context.
    pub note: &'static str,
}

impl CorruptionReport {
    const EMPTY: CorruptionReport = CorruptionReport {
        kind: CorruptionKind::ForeignPointer,
        address: 0,
        note: "",
    };
}

impl std::fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {:#x} ({})", self.kind, self.address, self.note)
    }
}

/// Callback invoked synchronously on every report (e.g. to log or
/// abort). Runs on the thread that called `deallocate`, outside all
/// heap locks; it must not re-enter the reporting allocator's
/// `deallocate` with the offending pointer.
pub type CorruptionHook = fn(&CorruptionReport);

/// Reports kept in the in-allocator ring. Older reports are evicted
/// first; counters never lose events.
const RECENT_CAP: usize = 32;

struct RecentRing {
    slots: [CorruptionReport; RECENT_CAP],
    len: usize,
    next: usize,
}

/// Fixed-capacity corruption-event sink owned by each allocator.
///
/// `const`-constructible and allocation-free on the reporting path, so
/// a `static` Hoard installed as `#[global_allocator]` can report its
/// own corruption without recursing into itself.
pub struct CorruptionLog {
    total: AtomicU64,
    quarantined: AtomicU64,
    recent: Mutex<RecentRing>,
    hook: Mutex<Option<CorruptionHook>>,
}

impl CorruptionLog {
    pub(crate) const fn new() -> Self {
        CorruptionLog {
            total: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            recent: Mutex::new(RecentRing {
                slots: [CorruptionReport::EMPTY; RECENT_CAP],
                len: 0,
                next: 0,
            }),
            hook: Mutex::new(None),
        }
    }

    /// Total corruption events detected over the allocator's lifetime.
    pub fn total(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Blocks currently quarantined (withheld from reuse after a
    /// canary smash; each stays accounted as in-use).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Relaxed)
    }

    /// The most recent reports, oldest first (bounded ring; see
    /// [`total`](Self::total) for the lossless count).
    pub fn recent(&self) -> Vec<CorruptionReport> {
        let ring = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.len);
        for i in 0..ring.len {
            let idx = (ring.next + RECENT_CAP - ring.len + i) % RECENT_CAP;
            out.push(ring.slots[idx]);
        }
        out
    }

    /// Install (or clear) the report hook.
    pub fn set_hook(&self, hook: Option<CorruptionHook>) {
        *self.hook.lock().unwrap_or_else(|e| e.into_inner()) = hook;
    }

    /// Record one event. Called outside all heap locks.
    pub(crate) fn report(&self, kind: CorruptionKind, address: usize, note: &'static str) {
        let report = CorruptionReport {
            kind,
            address,
            note,
        };
        self.total.fetch_add(1, Relaxed);
        {
            let mut ring = self.recent.lock().unwrap_or_else(|e| e.into_inner());
            let next = ring.next;
            ring.slots[next] = report;
            ring.next = (next + 1) % RECENT_CAP;
            ring.len = (ring.len + 1).min(RECENT_CAP);
        }
        let hook = *self.hook.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hook) = hook {
            hook(&report);
        }
    }

    pub(crate) fn on_quarantine(&self) {
        self.quarantined.fetch_add(1, Relaxed);
    }
}

// ----- live-superblock registry (lock-free back-end) -----

/// Slots in the live-superblock registry. 4096 superblocks at the
/// default `S` = 8 KiB is 32 MiB of small-object heap — far past any
/// simulated workload; overflow degrades gracefully (see
/// [`SuperblockRegistry::overflowed`]).
pub(crate) const REGISTRY_CAP: usize = 4096;

const SLOT_EMPTY: usize = 0;
const SLOT_TOMB: usize = 1;

/// A `const`-constructible, allocation-free set of live superblock base
/// addresses: open-addressed linear probing over atomic slots, with
/// tombstones for removal.
///
/// The lock-free back-end derives a block's superblock by masking the
/// pointer's low bits instead of reading the per-block header — which
/// means a forged or foreign pointer masks to an address the allocator
/// may never have owned. Dereferencing it to check `SB_MAGIC` would be
/// the vulnerability, not the defense. This registry is the ground
/// truth the hardened free path consults *before* touching the masked
/// address: chunks register on allocation (before any block is handed
/// out) and unregister before release, and chunks are disjoint and
/// `S`-aligned, so a hit proves the pointer lies inside a live
/// superblock.
///
/// Addresses are chunk-aligned (≥ 4 KiB), so `0` and `1` are free to
/// serve as the empty and tombstone sentinels.
pub(crate) struct SuperblockRegistry {
    slots: [AtomicUsize; REGISTRY_CAP],
    overflowed: AtomicBool,
    /// Live entries (inserts minus removes of present addresses) — the
    /// occupancy gauge surfaced through `MetricsSnapshot::registry`.
    occupancy: AtomicUsize,
}

impl SuperblockRegistry {
    pub(crate) const fn new() -> Self {
        SuperblockRegistry {
            slots: [const { AtomicUsize::new(SLOT_EMPTY) }; REGISTRY_CAP],
            overflowed: AtomicBool::new(false),
            occupancy: AtomicUsize::new(0),
        }
    }

    /// Fibonacci-hash the aligned address into a starting slot.
    fn home(addr: usize) -> usize {
        // Low 12 bits are always zero (chunk alignment); mix the rest.
        ((addr >> 12).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % REGISTRY_CAP
    }

    /// Register a live superblock base address. Must be called before
    /// any block of the chunk is handed out. Returns `false` (and
    /// latches the overflow flag) if the table is full.
    pub(crate) fn insert(&self, addr: usize) -> bool {
        debug_assert!(addr > SLOT_TOMB);
        let home = Self::home(addr);
        for i in 0..REGISTRY_CAP {
            let slot = &self.slots[(home + i) % REGISTRY_CAP];
            let cur = slot.load(Relaxed);
            if cur == SLOT_EMPTY || cur == SLOT_TOMB {
                // Release pairs with the Acquire in `contains`: a hit
                // proves the chunk's registration (and everything the
                // registering thread published before it) is visible.
                if slot
                    .compare_exchange(cur, addr, Ordering::Release, Relaxed)
                    .is_ok()
                {
                    self.occupancy.fetch_add(1, Relaxed);
                    return true;
                }
                // Lost the slot to a concurrent insert; keep probing.
            }
        }
        self.overflowed.store(true, Ordering::Release);
        false
    }

    /// Unregister a superblock about to be released. Returns whether it
    /// was present.
    pub(crate) fn remove(&self, addr: usize) -> bool {
        let home = Self::home(addr);
        for i in 0..REGISTRY_CAP {
            let slot = &self.slots[(home + i) % REGISTRY_CAP];
            match slot.load(Relaxed) {
                a if a == addr => {
                    slot.store(SLOT_TOMB, Relaxed);
                    self.occupancy.fetch_sub(1, Relaxed);
                    return true;
                }
                SLOT_EMPTY => return false,
                _ => {}
            }
        }
        false
    }

    /// Whether `addr` is a registered live superblock base.
    pub(crate) fn contains(&self, addr: usize) -> bool {
        if addr <= SLOT_TOMB {
            // A forged pointer can mask to anything, including the
            // sentinels; never let it match an empty slot.
            return false;
        }
        let home = Self::home(addr);
        for i in 0..REGISTRY_CAP {
            let slot = &self.slots[(home + i) % REGISTRY_CAP];
            match slot.load(Ordering::Acquire) {
                a if a == addr => return true,
                SLOT_EMPTY => return false,
                _ => {}
            }
        }
        false
    }

    /// Whether an insert ever failed for lack of space. Once latched,
    /// the mask-based free path must fall back to header dispatch —
    /// absence from the registry no longer proves a pointer foreign.
    pub(crate) fn overflowed(&self) -> bool {
        self.overflowed.load(Ordering::Acquire)
    }

    /// Live entries right now (exact only at quiescent points, like
    /// every other gauge).
    pub(crate) fn occupancy(&self) -> usize {
        self.occupancy.load(Relaxed)
    }

    /// Slot capacity of the fixed table.
    pub(crate) const fn capacity(&self) -> usize {
        REGISTRY_CAP
    }
}

// ----- poisoning and canaries (Full mode) -----

/// Byte pattern written over freed payloads.
pub(crate) const POISON_BYTE: u8 = 0xF5;

/// Extra bytes appended to each block's stride for the canary word.
pub(crate) const CANARY_SIZE: usize = 8;

/// Seed mixed with the payload address, so canaries differ per block
/// and a bulk overwrite cannot accidentally restore one.
const CANARY_SEED: u64 = 0xC0DE_CAFE_5AFE_F00D;

/// First payload word holds the free-list link while a block is freed;
/// poison covers everything after it.
const LINK_BYTES: usize = std::mem::size_of::<*mut u8>();

unsafe fn canary_slot(payload: *mut u8, block_size: u32) -> *mut u64 {
    // The slot sits right past the 8-aligned payload end; strides are
    // extended by CANARY_SIZE when hardening is Full, so it is always
    // inside the block's slot.
    payload.add(hoard_mem::align_up(block_size as usize, 8)) as *mut u64
}

pub(crate) unsafe fn canary_value(payload: *mut u8) -> u64 {
    CANARY_SEED ^ payload as u64
}

/// Plant the canary for a block being handed out.
///
/// # Safety
///
/// `payload` must be a live block of a canary-strided superblock with
/// payload size `block_size`.
pub(crate) unsafe fn write_canary(payload: *mut u8, block_size: u32) {
    canary_slot(payload, block_size).write(canary_value(payload));
}

/// Whether a block's canary is intact.
///
/// # Safety
///
/// As for [`write_canary`].
pub(crate) unsafe fn canary_intact(payload: *mut u8, block_size: u32) -> bool {
    canary_slot(payload, block_size).read() == canary_value(payload)
}

/// Poison a freed payload (sparing the free-list link word).
///
/// # Safety
///
/// `payload` must be a freed block with `block_size` payload bytes.
pub(crate) unsafe fn poison_payload(payload: *mut u8, block_size: u32) {
    let size = block_size as usize;
    if size > LINK_BYTES {
        std::ptr::write_bytes(payload.add(LINK_BYTES), POISON_BYTE, size - LINK_BYTES);
    }
}

/// Whether a freed block's poison survived its stay on the free list.
///
/// # Safety
///
/// As for [`poison_payload`]; the free-list link must not yet have been
/// overwritten by reuse.
pub(crate) unsafe fn poison_intact(payload: *mut u8, block_size: u32) -> bool {
    let size = block_size as usize;
    (LINK_BYTES..size).all(|i| payload.add(i).read() == POISON_BYTE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_classify_checks() {
        assert!(!HardeningLevel::Off.detects());
        assert!(!HardeningLevel::Off.poisons());
        assert!(HardeningLevel::Basic.detects());
        assert!(!HardeningLevel::Basic.poisons());
        assert!(HardeningLevel::Full.detects());
        assert!(HardeningLevel::Full.poisons());
        assert_eq!(HardeningLevel::default(), HardeningLevel::Off);
    }

    #[test]
    fn log_ring_keeps_the_latest_reports() {
        let log = CorruptionLog::new();
        for i in 0..(RECENT_CAP + 5) {
            log.report(CorruptionKind::DoubleFree, 0x1000 + i * 8, "test");
        }
        assert_eq!(log.total(), (RECENT_CAP + 5) as u64);
        let recent = log.recent();
        assert_eq!(recent.len(), RECENT_CAP);
        assert_eq!(recent[0].address, 0x1000 + 5 * 8, "oldest surviving");
        assert_eq!(
            recent[RECENT_CAP - 1].address,
            0x1000 + (RECENT_CAP + 4) * 8,
            "newest last"
        );
    }

    #[test]
    fn hook_fires_per_report() {
        use std::sync::atomic::AtomicUsize;
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        fn hook(r: &CorruptionReport) {
            assert_eq!(r.kind, CorruptionKind::CanarySmashed);
            FIRED.fetch_add(1, Relaxed);
        }
        let log = CorruptionLog::new();
        log.set_hook(Some(hook));
        log.report(CorruptionKind::CanarySmashed, 0xABC0, "test");
        log.report(CorruptionKind::CanarySmashed, 0xABC8, "test");
        assert_eq!(FIRED.load(Relaxed), 2);
        log.set_hook(None);
        log.report(CorruptionKind::CanarySmashed, 0xABD0, "test");
        assert_eq!(FIRED.load(Relaxed), 2, "cleared hook stays silent");
    }

    #[test]
    fn poison_and_canary_roundtrip() {
        let mut buf = [0u8; 64];
        let payload = unsafe { buf.as_mut_ptr().add(8) };
        unsafe {
            poison_payload(payload, 24);
            assert!(poison_intact(payload, 24));
            payload.add(16).write(0x00);
            assert!(!poison_intact(payload, 24));

            write_canary(payload, 24);
            assert!(canary_intact(payload, 24));
            payload.add(hoard_mem::align_up(24, 8)).write(0xFF);
            assert!(!canary_intact(payload, 24));
        }
    }

    #[test]
    fn registry_insert_contains_remove() {
        let reg = SuperblockRegistry::new();
        let a = 0x10_0000usize;
        let b = 0x20_0000usize;
        assert!(!reg.contains(a));
        assert!(reg.insert(a));
        assert!(reg.insert(b));
        assert!(reg.contains(a));
        assert!(reg.contains(b));
        assert!(!reg.contains(0x30_0000));
        assert!(!reg.contains(0), "sentinel addresses never match");
        assert!(!reg.contains(1));
        assert!(reg.remove(a));
        assert!(!reg.contains(a));
        assert!(reg.contains(b), "tombstone does not break b's probe chain");
        assert!(!reg.remove(a), "double remove reports absence");
        assert!(!reg.overflowed());
    }

    #[test]
    fn registry_survives_collisions_and_reuses_tombstones() {
        let reg = SuperblockRegistry::new();
        // Many aligned addresses; some will collide in a 4096-slot table.
        let addrs: Vec<usize> = (1..=512).map(|i| i * 0x2000).collect();
        for &a in &addrs {
            assert!(reg.insert(a));
        }
        for &a in &addrs {
            assert!(reg.contains(a));
        }
        for &a in &addrs {
            assert!(reg.remove(a));
        }
        for &a in &addrs {
            assert!(!reg.contains(a));
        }
        // The table is now all tombstones in those chains; reinsert must
        // reclaim them rather than overflow.
        for &a in &addrs {
            assert!(reg.insert(a));
            assert!(reg.contains(a));
        }
        assert!(!reg.overflowed());
    }

    #[test]
    fn registry_occupancy_tracks_live_entries() {
        let reg = SuperblockRegistry::new();
        assert_eq!(reg.occupancy(), 0);
        assert_eq!(reg.capacity(), REGISTRY_CAP);
        reg.insert(0x10_0000);
        reg.insert(0x20_0000);
        assert_eq!(reg.occupancy(), 2);
        reg.remove(0x10_0000);
        assert_eq!(reg.occupancy(), 1);
        reg.remove(0x10_0000); // absent: no change
        assert_eq!(reg.occupancy(), 1);
    }

    #[test]
    fn registry_overflow_latches() {
        let reg = SuperblockRegistry::new();
        for i in 1..=REGISTRY_CAP {
            assert!(reg.insert(i * 0x1000), "fits exactly");
        }
        assert!(!reg.overflowed());
        assert!(!reg.insert((REGISTRY_CAP + 1) * 0x1000));
        assert!(reg.overflowed(), "overflow latched for fallback dispatch");
    }

    #[test]
    fn reports_format_readably() {
        let r = CorruptionReport {
            kind: CorruptionKind::DoubleFree,
            address: 0x1000,
            note: "small block",
        };
        let s = format!("{r}");
        assert!(s.contains("double free"));
        assert!(s.contains("0x1000"));
    }
}
