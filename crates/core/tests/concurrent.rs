//! Concurrency stress tests: real threads hammering one allocator with
//! local and remote (cross-thread) traffic, then full validation at
//! quiescence.

use hoard_core::{debug, HoardAllocator, HoardConfig};
use hoard_mem::MtAllocator;
use std::ptr::NonNull;
use std::sync::Arc;

/// Wrapper making raw payload addresses sendable between threads.
#[derive(Clone, Copy)]
struct Payload(usize, usize); // (addr, size)
unsafe impl Send for Payload {}

fn fill(p: &Payload, value: u8) {
    unsafe { std::ptr::write_bytes(p.0 as *mut u8, value, p.1) };
}

fn check(p: &Payload, value: u8) {
    for off in 0..p.1 {
        let got = unsafe { *(p.0 as *const u8).add(off) };
        assert_eq!(got, value, "corruption at {off} of block {:#x}", p.0);
    }
}

#[test]
fn local_churn_from_many_threads() {
    let h = Arc::new(HoardAllocator::new_default());
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut rng = (t as u64 + 1) * 0x9E37_79B9;
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                let mut live: Vec<Payload> = Vec::new();
                for i in 0..5_000usize {
                    if live.len() < 64 && next() % 3 != 0 {
                        let size = 1 + (next() % 1024) as usize;
                        let p = unsafe { h.allocate(size) }.unwrap();
                        let pl = Payload(p.as_ptr() as usize, size);
                        fill(&pl, (t * 31 + i) as u8);
                        check(&pl, (t * 31 + i) as u8);
                        live.push(pl);
                    } else if !live.is_empty() {
                        let idx = (next() as usize) % live.len();
                        let pl = live.swap_remove(idx);
                        unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                    }
                }
                for pl in live {
                    unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = h.stats();
    assert_eq!(snap.live_current, 0);
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}

#[test]
fn producer_consumer_remote_frees() {
    // The blowup-inducing pattern of the paper's Section 2: producer
    // allocates, consumer frees. Hoard's ownership-based frees plus the
    // global heap must keep memory bounded and state consistent.
    let h = Arc::new(HoardAllocator::new_default());
    let (tx, rx) = crossbeam::channel::bounded::<Payload>(128);

    let producer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            for i in 0..20_000usize {
                let size = 8 + (i % 200);
                let p = unsafe { h.allocate(size) }.unwrap();
                let pl = Payload(p.as_ptr() as usize, size);
                fill(&pl, i as u8);
                tx.send(pl).unwrap();
            }
        })
    };
    let consumer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            let mut n = 0usize;
            while let Ok(pl) = rx.recv() {
                check(&pl, n as u8);
                unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                n += 1;
            }
            n
        })
    };
    producer.join().unwrap();
    let consumed = consumer.join().unwrap();
    assert_eq!(consumed, 20_000);

    let snap = h.stats();
    assert_eq!(snap.live_current, 0);
    assert!(snap.remote_frees > 0, "consumer frees are remote");
    // Bounded footprint: live memory never exceeded ~200B x 128 queue
    // slots; held memory must stay within a few superblocks of that.
    assert!(
        snap.held_peak <= 64 * h.config().superblock_size as u64,
        "producer-consumer blowup: held_peak = {}",
        snap.held_peak
    );
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}

#[test]
fn superblocks_migrate_under_imbalanced_load() {
    // One thread allocates a burst and frees it (pushing superblocks to
    // the global heap); others then allocate the same class and must be
    // served from the global heap rather than fresh OS chunks.
    let h = Arc::new(HoardAllocator::new_default());
    {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            let ptrs: Vec<Payload> = (0..2000)
                .map(|_| {
                    let p = unsafe { h.allocate(128) }.unwrap();
                    Payload(p.as_ptr() as usize, 128)
                })
                .collect();
            for pl in ptrs {
                unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
            }
        })
        .join()
        .unwrap();
    }
    let held_after_burst = h.stats().held_current;
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let ptrs: Vec<Payload> = (0..400)
                    .map(|_| {
                        let p = unsafe { h.allocate(128) }.unwrap();
                        Payload(p.as_ptr() as usize, 128)
                    })
                    .collect();
                for pl in ptrs {
                    unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (to_global, from_global) = h.transfer_counts();
    assert!(to_global > 0);
    assert!(from_global > 0, "later threads must reuse global superblocks");
    assert!(
        h.stats().held_current <= held_after_burst + 4 * h.config().superblock_size as u64,
        "reuse should prevent significant growth"
    );
}

#[test]
fn mixed_small_and_large_concurrent() {
    let h = Arc::new(HoardAllocator::new_default());
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..500usize {
                    let size = if i % 17 == 0 { 10_000 + t * 1000 } else { 8 + i % 512 };
                    let p = unsafe { h.allocate(size) }.unwrap();
                    let pl = Payload(p.as_ptr() as usize, size);
                    fill(&pl, (i ^ t) as u8);
                    check(&pl, (i ^ t) as u8);
                    unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(h.stats().live_current, 0);
    // Only superblocks parked in heaps remain; all large chunks gone.
    let v = debug::validate(&h);
    let superblocks: usize = v.heaps.iter().map(|o| o.superblocks).sum();
    assert_eq!(
        h.stats().held_current,
        (superblocks * h.config().superblock_size) as u64
    );
}

#[test]
fn many_heap_configs_under_concurrency() {
    for p in [1usize, 2, 5, 16] {
        let h = Arc::new(
            HoardAllocator::with_config(HoardConfig::new().with_heap_count(p)).unwrap(),
        );
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        let p = unsafe { h.allocate(8 + (i + t) % 300) }.unwrap();
                        unsafe { h.deallocate(p) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.stats().live_current, 0, "heap_count={p}");
        let v = debug::validate(&h);
        assert!(v.is_consistent(), "heap_count={p}: {:?}", v.errors);
    }
}
