use hoard_core::{debug, HoardAllocator, HoardConfig, HardeningLevel};
use hoard_mem::MtAllocator;

#[test]
fn flush_of_refill_loaded_blocks_no_false_positives() {
    let h = HoardAllocator::with_config(
        HoardConfig::with_default_magazines().with_hardening(HardeningLevel::Full),
    )
    .unwrap();
    unsafe {
        // 65 allocs: after the 5th refill the magazine holds 15
        // refill-loaded (unpoisoned, Superblock-tagged) blocks.
        let live: Vec<_> = (0..65).map(|_| h.allocate(24).unwrap()).collect();
        // 18 frees: len 15 -> 32, the 18th triggers a flush whose oldest
        // 16 include the refill-loaded blocks.
        for p in live.iter().take(18) {
            h.deallocate(*p);
        }
        // Re-allocate: refill pulls the flushed (unpoisoned) blocks off
        // the superblock free list and checks poison.
        let more: Vec<_> = (0..40).map(|_| h.allocate(24).unwrap()).collect();
        for p in more {
            h.deallocate(p);
        }
        for p in live.iter().skip(18) {
            h.deallocate(*p);
        }
    }
    assert_eq!(
        h.corruption_log().total(),
        0,
        "clean traffic must produce no corruption reports"
    );
    h.flush_frontend();
    debug::check_invariants(&h).expect("consistent");
}
