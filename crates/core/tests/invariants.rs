// The stub ProptestConfig used offline has only the fields we set, which
// makes `..default()` a needless_update under clippy; keep it for real proptest.
#![allow(clippy::needless_update)]

//! Property-based verification of the paper's formal claims.
//!
//! * **Emptiness invariant postcondition** — after every `free`, each
//!   per-processor heap either satisfies `u ≥ a − K·S ∨ u ≥ (1−f)·a` or
//!   holds no `f`-empty superblock left to migrate.
//! * **Relaxed invariant after any op** — one superblock of slack covers
//!   in-flight `malloc` acquisitions.
//! * **Bounded blowup** — held memory never exceeds a constant factor of
//!   peak live memory plus an `O(P·S)` additive term.
//! * **Memory safety model check** — live blocks never overlap, survive
//!   fill patterns, and are all returned.

use hoard_core::{debug, HoardAllocator, HoardConfig};
use hoard_mem::MtAllocator;
use proptest::prelude::*;

/// A single step in a generated allocation trace.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes.
    Alloc(usize),
    /// Free the live block at (index % live-count).
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Mostly small sizes, some medium, occasional large.
        4 => (1usize..=256).prop_map(Op::Alloc),
        2 => (257usize..=4096).prop_map(Op::Alloc),
        1 => (4097usize..=20_000).prop_map(Op::Alloc),
        5 => any::<usize>().prop_map(Op::Free),
    ]
}

fn config_strategy() -> impl Strategy<Value = HoardConfig> {
    (
        prop_oneof![Just(4096usize), Just(8192), Just(16384)],
        prop_oneof![Just((1usize, 8usize)), Just((1, 4)), Just((1, 2))],
        0usize..=4,
        1usize..=8,
        // Front-end off, small magazines, and the default capacity: the
        // emptiness invariant must stay provable with blocks parked.
        prop_oneof![Just(0usize), Just(4), Just(32)],
    )
        .prop_map(|(s, (num, den), k, p, mag)| {
            HoardConfig::new()
                .with_superblock_size(s)
                .with_empty_fraction(num, den)
                .with_slack(k)
                .with_heap_count(p)
                .with_magazine_capacity(mag)
        })
}

/// Run a trace, checking consistency and the invariant postcondition
/// after every free, and accounting at the end.
fn run_trace(cfg: HoardConfig, ops: &[Op]) {
    let h = HoardAllocator::with_config(cfg).expect("valid config");
    let mut live: Vec<(std::ptr::NonNull<u8>, usize, u8)> = Vec::new();
    let mut stamp = 0u8;

    for op in ops {
        match op {
            Op::Alloc(size) => {
                stamp = stamp.wrapping_add(1);
                let p = unsafe { h.allocate(*size) }.expect("host memory available");
                unsafe { std::ptr::write_bytes(p.as_ptr(), stamp, *size) };
                // No overlap with any live block.
                let start = p.as_ptr() as usize;
                let end = start + *size;
                for (q, qsize, _) in &live {
                    let qs = q.as_ptr() as usize;
                    let qe = qs + qsize;
                    assert!(end <= qs || qe <= start, "overlapping blocks handed out");
                }
                assert!(unsafe { h.usable_size(p) } >= *size);
                live.push((p, *size, stamp));
            }
            Op::Free(raw) => {
                if live.is_empty() {
                    continue;
                }
                let idx = raw % live.len();
                let (p, size, fill) = live.swap_remove(idx);
                // Pattern must have survived neighbors' traffic.
                for off in 0..size {
                    assert_eq!(
                        unsafe { *p.as_ptr().add(off) },
                        fill,
                        "block corrupted at offset {off}"
                    );
                }
                unsafe { h.deallocate(p) };
                // Structural accounting must scan clean after every free.
                // (The emptiness invariant itself is restored at
                // f-emptiness *crossings*, not on every free — the
                // emptiness-group hysteresis; it is asserted in full at
                // the end of the trace, when every superblock has
                // drained and therefore crossed.)
                let v = debug::validate(&h);
                assert!(v.errors.is_empty(), "{:?}", v.errors);
            }
        }
        // After *any* op the structural accounting must scan clean.
        // (The emptiness invariant itself is a postcondition of `free`
        // only — a `malloc` that just acquired a superblock may leave the
        // heap temporarily violated, exactly as in the paper's
        // pseudocode, until the next free migrates an f-empty
        // superblock.)
        let v = debug::validate(&h);
        assert!(v.errors.is_empty(), "{:?}", v.errors);
    }

    // Drain and check final accounting. With the magazine front-end on,
    // the last frees sit parked in thread-local magazines (still counted
    // in u — they are allocated as far as the heaps are concerned);
    // quiescence asserts require flushing them home first. A no-op when
    // the front-end is disabled.
    for (p, ..) in live.drain(..) {
        unsafe { h.deallocate(p) };
    }
    h.flush_frontend();
    let snap = h.stats();
    assert_eq!(snap.live_current, 0, "all blocks returned");
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
    assert_eq!(v.total_u(), 0);
    // With u = 0 everywhere, the emptiness invariant demands that every
    // per-processor heap retain at most K superblocks' worth of usable
    // bytes — the rest must have migrated to the global heap.
    let k_slack = (cfg.slack_k * cfg.superblock_size) as u64;
    for obs in v.heaps.iter().skip(1) {
        assert!(
            obs.a <= k_slack,
            "heap {} retains a={} > K*S={k_slack} at quiescence",
            obs.index,
            obs.a
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    #[test]
    fn trace_preserves_invariants_default_config(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        run_trace(HoardConfig::new(), &ops);
    }

    #[test]
    fn trace_preserves_invariants_random_config(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        run_trace(cfg, &ops);
    }

    #[test]
    fn trace_preserves_invariants_with_magazines(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        run_trace(HoardConfig::with_default_magazines(), &ops);
    }

    #[test]
    fn blowup_is_bounded_with_magazines(
        ops in proptest::collection::vec(op_strategy(), 50..400)
    ) {
        // Same theorem as `blowup_is_bounded` plus the front-end's
        // additive term: each magazine slot can park at most
        // capacity blocks per size class (DESIGN.md §9's O(U + P)
        // argument). One thread here, so one slot's worth is enough
        // slack: 24 classes x 32 blocks x the largest magazine-served
        // class (~553 B).
        let cfg = HoardConfig::with_default_magazines();
        let h = HoardAllocator::with_config(cfg).unwrap();
        let mut live: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc(size) if *size <= cfg.large_threshold() => {
                    let p = unsafe { h.allocate(*size) }.unwrap();
                    live.push((p, *size));
                }
                Op::Free(raw) if !live.is_empty() => {
                    let (p, _) = live.swap_remove(raw % live.len());
                    unsafe { h.deallocate(p) };
                }
                _ => {}
            }
        }
        let snap = h.stats();
        let p_heaps = (cfg.heap_count + 1) as u64;
        let s = cfg.superblock_size as u64;
        let magazine_slack = 24 * 32 * 560u64;
        let bound =
            3 * snap.live_peak + (cfg.slack_k as u64 + 2) * p_heaps * s + magazine_slack;
        prop_assert!(
            snap.held_peak <= bound,
            "blowup with magazines: held_peak={} live_peak={} bound={}",
            snap.held_peak, snap.live_peak, bound
        );
        for (p, _) in live {
            unsafe { h.deallocate(p) };
        }
        h.flush_frontend();
        prop_assert_eq!(h.stats().live_current, 0);
    }

    #[test]
    fn blowup_is_bounded(
        ops in proptest::collection::vec(op_strategy(), 50..400)
    ) {
        let cfg = HoardConfig::new();
        let h = HoardAllocator::with_config(cfg).unwrap();
        let mut live: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc(size) if *size <= cfg.large_threshold() => {
                    let p = unsafe { h.allocate(*size) }.unwrap();
                    live.push((p, *size));
                }
                Op::Free(raw) if !live.is_empty() => {
                    let (p, _) = live.swap_remove(raw % live.len());
                    unsafe { h.deallocate(p) };
                }
                _ => {}
            }
        }
        let snap = h.stats();
        // Paper Theorem: A(t) = O(U(t) + P·S). Constants: the size-class
        // factor (1.2) times the inverse emptiness bound (1/(1-f)) covers
        // the multiplicative part generously with 3x; each heap (incl.
        // global) may hold K+1 superblocks of slack, plus per-superblock
        // header overhead absorbed by the additive term.
        let p_heaps = (cfg.heap_count + 1) as u64;
        let s = cfg.superblock_size as u64;
        let bound = 3 * snap.live_peak + (cfg.slack_k as u64 + 2) * p_heaps * s;
        prop_assert!(
            snap.held_peak <= bound,
            "blowup: held_peak={} live_peak={} bound={}",
            snap.held_peak, snap.live_peak, bound
        );
        for (p, _) in live {
            unsafe { h.deallocate(p) };
        }
    }

    #[test]
    fn usable_size_covers_request(size in 1usize..=50_000) {
        let h = HoardAllocator::new_default();
        unsafe {
            let p = h.allocate(size).unwrap();
            prop_assert!(h.usable_size(p) >= size);
            // Rounding is bounded: at most the 1.2 class factor + 8,
            // except in the sub-128 linear region (absolute +8).
            let usable = h.usable_size(p);
            if size > h.config().large_threshold() {
                prop_assert_eq!(usable, size);
            } else {
                prop_assert!(usable <= size * 6 / 5 + 8);
            }
            h.deallocate(p);
        }
    }
}

#[test]
fn worst_case_producer_consumer_pattern_stays_bounded() {
    // The paper's motivating blowup scenario: repeatedly allocate a
    // batch and free it. Hoard must reuse superblocks via the global
    // heap instead of growing.
    let h = HoardAllocator::new_default();
    let mut peak_after_first_round = 0;
    for round in 0..50 {
        let ptrs: Vec<_> = (0..256)
            .map(|_| unsafe { h.allocate(100) }.unwrap())
            .collect();
        for p in ptrs {
            unsafe { h.deallocate(p) };
        }
        if round == 0 {
            peak_after_first_round = h.stats().held_peak;
        }
    }
    assert_eq!(
        h.stats().held_peak,
        peak_after_first_round,
        "steady-state churn must not grow the footprint"
    );
}
