//! Golden-fixture test for the recorder: a fixed-seed, single-proc
//! allocation sequence captured through [`TrcRecorder`] must encode to
//! the exact bytes checked in at `crates/trace/tests/fixtures/golden.trc`.
//!
//! This pins three things at once: the `.trc` wire format (any codec
//! change shows up as a byte diff), the recorder's token assignment
//! (first-touch dense numbering, independent of ASLR), and the virtual
//! timestamps (the deterministic cost model, including the cache-line
//! renaming that hides host address recycling).
//!
//! To bless a new fixture after an *intentional* format or cost-model
//! change:
//!
//! ```text
//! TRC_BLESS=1 cargo test -p hoard-core --test trc_record
//! ```
//!
//! and describe the migration in DESIGN.md §12.

use hoard_core::{HoardAllocator, HoardConfig, TrcRecorder};
use hoard_mem::MtAllocator;
use std::sync::Arc;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../trace/tests/fixtures/golden.trc"
);

/// The fixed workload: small classes across the size table, staggered
/// frees to force magazine flushes and superblock churn, and one large
/// (>4 KiB) allocation that takes the chunk-source path.
fn golden_capture() -> Vec<u8> {
    hoard_sim::sequential_scope(1, || {
        hoard_sim::switch_context(0, 0);
        let h = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
        let rec = Arc::new(TrcRecorder::new(42, "golden single-proc", 1));
        h.attach_recorder(rec.clone());
        unsafe {
            let mut live = Vec::new();
            for i in 0..64usize {
                let size = [8, 24, 64, 200, 1024, 3000][i % 6];
                live.push(h.allocate(size).expect("golden workload oom"));
                if i % 3 == 2 {
                    let p = live.remove(0);
                    h.deallocate(p);
                }
            }
            let big = h.allocate(16 * 1024).expect("large path oom");
            h.deallocate(big);
            for p in live {
                h.deallocate(p);
            }
        }
        rec.trace().encode()
    })
}

#[test]
fn recorder_output_matches_golden_fixture() {
    let bytes = golden_capture();
    if std::env::var_os("TRC_BLESS").is_some() {
        std::fs::write(FIXTURE, &bytes).expect("write fixture");
        eprintln!("blessed {} ({} bytes)", FIXTURE, bytes.len());
        return;
    }
    let golden =
        std::fs::read(FIXTURE).expect("fixture missing — bless with TRC_BLESS=1 (see module doc)");
    assert_eq!(
        bytes, golden,
        "recorder output diverged from the golden fixture; if the format \
         or cost model changed intentionally, re-bless with TRC_BLESS=1"
    );
}

#[test]
fn golden_capture_is_reproducible_in_process() {
    assert_eq!(golden_capture(), golden_capture());
}
