//! Deterministic fault-injection campaign.
//!
//! Every allocation path — the small fast path, superblock acquisition,
//! global-heap transfer, and large objects — is driven under seeded
//! [`FaultPlan`]s that fail chunk allocations every-Nth, with seeded
//! probability, in burst windows, and transiently at startup. After
//! each storm the campaign asserts the robustness contract:
//!
//! * every injected failure surfaces as a clean `None` from `allocate`
//!   (a panic anywhere fails the test);
//! * the allocator stays internally consistent
//!   ([`debug::check_invariants`]) with zero corruption reports;
//! * nothing leaks: all live blocks drain to `live_current == 0`, and
//!   after the allocator drops, the source holds zero chunks.
//!
//! Plans are pure functions of (seed, call index), so a failing run
//! replays exactly.

use hoard_core::{debug, HardeningLevel, HoardAllocator, HoardConfig};
use hoard_mem::{ChunkSource, FaultPlan, InjectingSource, MtAllocator, SystemSource};

/// Sizes covering all paths: repeated small sizes (fast path + free-list
/// reuse), a spread of classes (superblock acquisition + reformat),
/// boundary sizes, and large objects (direct chunk path).
const SIZES: [usize; 14] = [
    16, 16, 24, 48, 48, 96, 200, 512, 1024, 2048, 4096, 4097, 10_000, 70_000,
];

/// Operations per campaign run. Enough to drain and refill superblocks
/// repeatedly (driving global-heap transfers) while staying fast.
const OPS: usize = 4000;

fn lcg(state: &mut u64) -> u64 {
    // Numerical Recipes LCG: deterministic free-victim selection.
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Run one allocate/free storm under `plan`; returns
/// `(successes, clean_failures)`.
fn run_campaign(plan: FaultPlan, hardening: HardeningLevel) -> (u64, u64) {
    run_campaign_cfg(plan, HoardConfig::new().with_hardening(hardening))
}

fn run_campaign_cfg(plan: FaultPlan, cfg: HoardConfig) -> (u64, u64) {
    let source = InjectingSource::new(SystemSource::new(), plan);
    let mut successes = 0u64;
    let mut failures = 0u64;
    {
        // `&source` is itself a ChunkSource, so the original stays
        // inspectable after the allocator (and its Drop) are gone.
        let alloc = HoardAllocator::with_source(cfg, &source).unwrap();
        let mut rng = 0x5EED_u64;
        let mut live: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
        for round in 0..OPS {
            let size = SIZES[round % SIZES.len()];
            match unsafe { alloc.allocate(size) } {
                Some(p) => {
                    // The memory must be real: write it end to end.
                    unsafe { std::ptr::write_bytes(p.as_ptr(), round as u8, size) };
                    live.push((p, size));
                    successes += 1;
                }
                None => failures += 1,
            }
            // Free roughly half the time so superblocks drain, migrate
            // to the global heap, and get fetched back.
            if !live.is_empty() && lcg(&mut rng).is_multiple_of(2) {
                let victim = live.swap_remove(lcg(&mut rng) as usize % live.len());
                unsafe { alloc.deallocate(victim.0) };
            }
        }
        for (p, _) in live.drain(..) {
            unsafe { alloc.deallocate(p) };
        }
        // With the magazine front-end on, the final frees sit parked in
        // thread-local magazines; return them before the quiescence
        // asserts. A no-op when the front-end is disabled.
        alloc.flush_frontend();
        debug::check_invariants(&alloc)
            .unwrap_or_else(|e| panic!("invariants broken under {plan:?}: {e:?}"));
        assert_eq!(
            alloc.stats().live_current,
            0,
            "all blocks drained under {plan:?}"
        );
        assert_eq!(
            alloc.corruption_log().total(),
            0,
            "injected OOM must never read as corruption ({plan:?})"
        );
    }
    assert_eq!(
        source.stats().held_current,
        0,
        "leaked chunks under {plan:?}"
    );
    assert!(
        source.injected_failures() > 0 || matches!(plan, FaultPlan::Burst { len: 0, .. }),
        "plan {plan:?} never fired; campaign not exercising the OOM paths"
    );
    (successes, failures)
}

#[test]
fn every_nth_failures_are_clean() {
    for n in [1, 2, 3, 7] {
        let plan = FaultPlan::EveryNth { n };
        for level in [HardeningLevel::Off, HardeningLevel::Full] {
            let (successes, failures) = run_campaign(plan, level);
            assert!(failures > 0, "n={n} must produce visible failures");
            if n > 1 {
                assert!(successes > 0, "n={n} must still serve most requests");
            }
        }
    }
}

#[test]
fn probabilistic_failures_are_clean_across_rates_and_seeds() {
    for p_permille in [10, 100, 500] {
        for seed in [1, 0xDEAD_BEEF] {
            let plan = FaultPlan::Probability { p_permille, seed };
            let (successes, _) = run_campaign(plan, HardeningLevel::Full);
            assert!(successes > 0);
        }
    }
}

#[test]
fn burst_outage_recovers() {
    // An outage window mid-run: everything before and after succeeds.
    let plan = FaultPlan::Burst { start: 20, len: 40 };
    let (successes, failures) = run_campaign(plan, HardeningLevel::Full);
    assert!(successes > 0);
    // OOM recovery reclaims hoarded empties, so some calls inside the
    // window may still be served; the plan itself must have fired.
    assert!(failures <= 40, "at most the window can fail");
}

#[test]
fn transient_startup_pressure_recovers() {
    let plan = FaultPlan::TransientThenRecover { fail_first: 10 };
    let (successes, failures) = run_campaign(plan, HardeningLevel::Basic);
    assert!(successes > 0, "post-recovery traffic must succeed");
    assert!(failures <= 10);
}

#[test]
fn fault_storms_with_magazines_enabled() {
    // The front-end adds two OOM-sensitive paths: a refill whose
    // waterfall ends at a failing chunk source (must return 0, fall
    // back cleanly, and leave the heap invariant-clean) and the
    // reclaim pass that parks magazine contents to recover empties.
    // Same contract as the seed campaign: clean Nones, no corruption,
    // no leaks.
    for plan in [
        FaultPlan::EveryNth { n: 2 },
        FaultPlan::EveryNth { n: 7 },
        FaultPlan::Probability {
            p_permille: 100,
            seed: 0xBEEF,
        },
        FaultPlan::Burst { start: 20, len: 40 },
    ] {
        for level in [HardeningLevel::Off, HardeningLevel::Full] {
            let cfg = HoardConfig::with_default_magazines().with_hardening(level);
            let (successes, _) = run_campaign_cfg(plan, cfg);
            assert!(successes > 0, "magazines + {plan:?} must serve requests");
        }
    }
}

#[test]
fn oom_recovery_rescues_allocations_from_hoarded_empties() {
    // Build up empty-superblock slack under a byte budget, then ask for
    // more than the remaining budget: the allocator must rescue the
    // request by returning its hoarded empties to the source first.
    let source = hoard_mem::LimitedSource::new(SystemSource::new(), 200_000);
    let alloc = HoardAllocator::with_source(HoardConfig::new(), &source).unwrap();
    unsafe {
        // Many 2048-byte blocks: a stack of superblocks, all within
        // budget.
        let ptrs: Vec<_> = (0..60).map(|_| alloc.allocate(2048).unwrap()).collect();
        for p in ptrs {
            alloc.deallocate(p);
        }
        // Everything is free again, but the drained superblocks are
        // still *held* — per-heap slack plus the global pool — so a
        // ~100 KiB large object blows the budget unless they go back.
        assert!(source.stats().held_current > 100_000);
        let p = alloc.allocate(100_000).expect("rescued by reclamation");
        alloc.deallocate(p);
    }
    let rec = alloc.recovery_stats();
    assert!(rec.chunk_reclaims > 0, "empties were returned to the source");
    assert!(rec.rescued_allocations > 0, "the large request was rescued");
    debug::check_invariants(&alloc).expect("consistent after recovery");
    drop(alloc);
    assert_eq!(source.stats().held_current, 0);
}

#[test]
fn concurrent_storm_under_probabilistic_faults() {
    // Four threads hammering a shared allocator while the source fails
    // 10% of chunk calls: no panics, no leaks, invariants hold. The
    // interleaving is nondeterministic; the assertions are not.
    let source = InjectingSource::new(
        SystemSource::new(),
        FaultPlan::Probability {
            p_permille: 100,
            seed: 7,
        },
    );
    {
        let alloc = HoardAllocator::with_source(
            HoardConfig::new().with_hardening(HardeningLevel::Full),
            &source,
        )
        .unwrap();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let alloc = &alloc;
                s.spawn(move || {
                    let mut rng = 0xACE0 + t as u64;
                    let mut live = Vec::new();
                    for round in 0..2000usize {
                        let size = SIZES[(round + t) % SIZES.len()];
                        if let Some(p) = unsafe { alloc.allocate(size) } {
                            unsafe { std::ptr::write_bytes(p.as_ptr(), t as u8, size) };
                            live.push(p.as_ptr() as usize);
                        }
                        if !live.is_empty() && lcg(&mut rng).is_multiple_of(2) {
                            let v = live.swap_remove(lcg(&mut rng) as usize % live.len());
                            unsafe {
                                alloc.deallocate(std::ptr::NonNull::new_unchecked(v as *mut u8))
                            };
                        }
                    }
                    for v in live {
                        unsafe {
                            alloc.deallocate(std::ptr::NonNull::new_unchecked(v as *mut u8))
                        };
                    }
                });
            }
        });
        assert_eq!(alloc.stats().live_current, 0);
        assert_eq!(alloc.corruption_log().total(), 0);
        debug::check_invariants(&alloc).expect("consistent after concurrent storm");
    }
    assert_eq!(source.stats().held_current, 0, "no leaked chunks");
}
