//! The lock-free back-end's contracts (DESIGN.md §11):
//!
//! * **off = seed**: with `lockfree_backend` off the allocator is the
//!   locked back-end, bit for bit — layout, lock traffic, and virtual
//!   time are deterministic and unchanged by the feature's existence;
//! * **on = lock-free**: front-end-class traffic takes zero heap-lock
//!   acquisitions; remote frees ride the packed 64-bit CAS word;
//!   superblock transfers ride the Treiber-stack cache;
//! * **races**: owner migration (slot → cache → slot/heap) racing
//!   remote pushes, packed drains, and steal-drains never corrupts the
//!   structures — every schedule ends consistent under full validation;
//! * the emptiness-invariant postcondition and the blowup bound survive
//!   lock-free transfers in both configurations.

use hoard_core::{debug, HoardAllocator, HoardConfig, TraceConfig, TraceLog, TraceSink};
use hoard_mem::MtAllocator;
use std::ptr::NonNull;
use std::sync::Arc;

fn lockfree() -> HoardConfig {
    HoardConfig::with_lockfree()
}

/// Mixed-size single-threaded churn over front-end classes, returning
/// the allocation addresses in order.
fn churn(h: &HoardAllocator, rounds: usize) -> Vec<usize> {
    let mut addrs = Vec::new();
    let mut live: Vec<NonNull<u8>> = Vec::new();
    for i in 0..rounds {
        let size = 8 + (i * 37) % 500;
        let p = unsafe { h.allocate(size) }.unwrap();
        addrs.push(p.as_ptr() as usize);
        live.push(p);
        if i % 3 == 0 {
            let victim = live.swap_remove((i * 31) % live.len());
            unsafe { h.deallocate(victim) };
        }
    }
    for p in live {
        unsafe { h.deallocate(p) };
    }
    addrs
}

/// Address normalization from `tests/telemetry.rs`: (page index in
/// order of first appearance, offset) — stable across instances whose
/// layout decisions agree.
fn normalize(addrs: &[usize]) -> Vec<(usize, usize)> {
    const S: usize = 4096;
    let mut bases: Vec<usize> = Vec::new();
    addrs
        .iter()
        .map(|&a| {
            let base = a & !(S - 1);
            let idx = bases.iter().position(|&b| b == base).unwrap_or_else(|| {
                bases.push(base);
                bases.len() - 1
            });
            (idx, a - base)
        })
        .collect()
}

/// Per-track events rebased to the run's first timestamp: the virtual
/// clock is global and monotonic across runs, so absolute stamps always
/// differ — the event *sequence and spacing* is what must not drift.
fn rebase(log: &TraceLog) -> Vec<Vec<(u64, String, u32, u64)>> {
    let t0 = log
        .tracks
        .iter()
        .filter_map(|t| t.events.first().map(|e| e.ts))
        .min()
        .unwrap_or(0);
    log.tracks
        .iter()
        .map(|t| {
            t.events
                .iter()
                .map(|e| (e.ts - t0, e.kind.label().to_string(), e.arg0, e.arg1))
                .collect()
        })
        .collect()
}

/// The ablation contract: `lockfree_backend = false` (the default) IS
/// the seed allocator. Two spellings of the off configuration produce
/// identical traces (event-for-event, with identical virtual spacing),
/// identical layout decisions, identical lock traffic, and identical
/// virtual time — the back-end's existence is invisible until on.
#[test]
fn lockfree_off_is_bit_identical_to_the_locked_backend() {
    let run = |cfg: HoardConfig| {
        let h = HoardAllocator::with_config(cfg).unwrap();
        let sink = Arc::new(TraceSink::with_config(TraceConfig {
            tracks: 2,
            capacity: 1 << 16,
        }));
        h.attach_tracer(Arc::clone(&sink));
        let t0 = hoard_sim::now();
        let addrs = churn(&h, 4_000);
        let dt = hoard_sim::now() - t0;
        let log = sink.collect();
        assert_eq!(log.dropped, 0);
        (normalize(&addrs), dt, h.heap_lock_stats(), rebase(&log))
    };
    let seed = run(HoardConfig::with_default_magazines());
    let off = run(HoardConfig::with_default_magazines().with_lockfree_backend(false));
    assert_eq!(seed.0, off.0, "layout decisions must not drift");
    assert_eq!(seed.1, off.1, "virtual time must not drift");
    assert_eq!(seed.2, off.2, "lock traffic must not drift");
    assert_eq!(seed.3, off.3, "traces must not drift");
}

/// With the back-end on, single-threaded front-end-class traffic never
/// touches a heap lock: refills come from slot heaps and the cache,
/// flushes and invariant restoration push back over CAS.
#[test]
fn lockfree_front_end_traffic_takes_zero_heap_locks() {
    let h = HoardAllocator::with_config(lockfree()).unwrap();
    churn(&h, 6_000);
    let (acqs, _) = h.heap_lock_stats();
    assert_eq!(acqs, 0, "lock-free churn acquired {acqs} heap locks");
    assert_eq!(h.stats().live_current, 0);
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
    let (to_global, _) = h.transfer_counts();
    assert!(to_global > 0, "churn must retire superblocks to the cache");
    // Flushing the front-end parks everything in the cache; the next
    // churn must adopt it back — still without a single heap lock
    // (flushing itself may sweep the locked heaps, so sample after it).
    h.flush_frontend();
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
    assert_eq!(v.total_u(), 0);
    let (acqs_after_flush, _) = h.heap_lock_stats();
    churn(&h, 2_000);
    let (_, from_global) = h.transfer_counts();
    assert!(from_global > 0, "refills must adopt from the cache");
    let (acqs, _) = h.heap_lock_stats();
    assert_eq!(
        acqs, acqs_after_flush,
        "adopting from the cache must not lock"
    );
}

/// Satellite regression for the `fetch_from_global` fix: the global
/// heap's lock now covers only list surgery + accounting + the
/// ownership handoff — the superblock reformat and the transfer charge
/// run after it drops. Asserted through the metrics registry's lock
/// telemetry: during a fetch-heavy phase, the *mean* virtual hold of
/// heap 0's lock must be below one `Cost::SuperblockTransfer`, which
/// the pre-fix code paid inside the critical section.
#[test]
fn global_fetch_holds_exclude_reformat_and_transfer_costs() {
    let h = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let registry = Arc::new(h.new_metrics_registry());
    h.attach_metrics(Arc::clone(&registry));
    unsafe {
        // Phase 1: park superblocks on the global heap (allocate a
        // burst of one class, free it all, flush).
        let burst: Vec<_> = (0..2_000).map(|_| h.allocate(128).unwrap()).collect();
        for p in burst {
            h.deallocate(p);
        }
        h.flush_frontend();
        let before = h.metrics_snapshot().unwrap();
        assert!(
            h.transfer_counts().0 > 0,
            "phase 1 must push superblocks to the global heap"
        );
        // Phase 2: allocate a *different* class — every refill that
        // reaches the global heap pops an empty superblock and
        // reformats it (the expensive step the lock no longer covers).
        let burst: Vec<_> = (0..2_000).map(|_| h.allocate(256).unwrap()).collect();
        let after = h.metrics_snapshot().unwrap();
        let d = after.delta(&before);
        let g0 = d
            .heaps
            .iter()
            .find(|m| m.heap == 0)
            .expect("phase 2 fetched from the global heap");
        assert!(g0.lock_acquires > 0);
        let mean_hold = g0.lock_hold_units as f64 / g0.lock_acquires as f64;
        let transfer = hoard_sim::CostModel::current().superblock_transfer as f64;
        assert!(
            mean_hold < transfer,
            "global-heap lock held for {mean_hold} units on average; \
             the reformat/transfer work (>= {transfer}) is back under the lock"
        );
        for p in burst {
            h.deallocate(p);
        }
    }
}

/// Producer–consumer across the packed remote word: every consumer
/// free is foreign, so it rides the 64-bit CAS stack; the producer's
/// refills drain them in one exchange. The paper's blowup pattern must
/// stay bounded with no heap locks on either side.
#[test]
fn packed_remote_word_carries_producer_consumer_traffic() {
    #[derive(Clone, Copy)]
    struct Payload(usize);
    unsafe impl Send for Payload {}

    let h = Arc::new(HoardAllocator::with_config(lockfree()).unwrap());
    let (tx, rx) = crossbeam::channel::bounded::<Payload>(128);
    let producer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            for i in 0..20_000usize {
                let p = unsafe { h.allocate(8 + (i % 200)) }.unwrap();
                tx.send(Payload(p.as_ptr() as usize)).unwrap();
            }
        })
    };
    let consumer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            let mut n = 0usize;
            while let Ok(pl) = rx.recv() {
                unsafe { h.deallocate(NonNull::new_unchecked(pl.0 as *mut u8)) };
                n += 1;
            }
            n
        })
    };
    producer.join().unwrap();
    assert_eq!(consumer.join().unwrap(), 20_000);

    let snap = h.stats();
    assert_eq!(snap.live_current, 0);
    assert!(snap.remote_frees > 0, "consumer frees are remote");
    assert!(
        snap.magazines.remote_pushes > 0,
        "remote frees must ride the packed CAS word"
    );
    assert!(
        snap.magazines.remote_drains > 0,
        "owners must drain the packed word"
    );
    assert!(
        snap.held_peak <= 64 * h.config().superblock_size as u64,
        "producer-consumer blowup: held_peak = {}",
        snap.held_peak
    );
    h.flush_frontend();
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}

/// A remote word crossing its threshold while the owning slot is idle:
/// the freeing thread steals the slot's claim and drains in place —
/// no owner intervention, no heap lock.
#[test]
fn overflowing_remote_word_is_stolen_and_drained() {
    let h = Arc::new(HoardAllocator::with_config(lockfree()).unwrap());
    // Owner thread allocates a superblock's worth of one class and
    // parks the blocks; its magazine slot then sits idle.
    let blocks: Vec<usize> = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            (0..512)
                .map(|_| unsafe { h.allocate(64) }.unwrap().as_ptr() as usize)
                .collect()
        })
        .join()
        .unwrap()
    };
    let drains_before = h.stats().magazines.remote_drains;
    // This thread frees them all: every free is foreign, and the
    // packed word repeatedly crosses `remote_limit`, forcing the
    // steal-drain path against the idle owner slot.
    for addr in blocks {
        unsafe { h.deallocate(NonNull::new_unchecked(addr as *mut u8)) };
    }
    assert!(
        h.stats().magazines.remote_drains > drains_before,
        "crossing the remote threshold must force a steal-drain"
    );
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}

/// Schedule exploration: several seeds' worth of threads interleaving
/// remote pushes, packed drains, slot-steals, retirements to the cache
/// (owner → 0) and adoptions out of it (0 → owner) — the full
/// owner-migration surface — with validation at each quiescent point.
#[test]
fn migration_races_end_consistent_across_schedules() {
    for seed in [0x1u64, 0x5EED, 0xDEAD_BEEF] {
        let h = Arc::new(HoardAllocator::with_config(lockfree()).unwrap());
        std::thread::scope(|s| {
            for t in 0..6 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    let mut rng = seed ^ ((t as u64 + 1) * 0x9E37_79B9);
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let mut live: Vec<usize> = Vec::new();
                    for _ in 0..4_000usize {
                        match next() % 4 {
                            // Burst-allocate: refills, adoptions, fresh chunks.
                            0 => {
                                for _ in 0..(next() % 48) {
                                    let size = 8 + (next() % 500) as usize;
                                    let p = unsafe { h.allocate(size) }.unwrap();
                                    live.push(p.as_ptr() as usize);
                                }
                            }
                            // Burst-free: flushes, drains, retirements.
                            1 => {
                                let n = (next() as usize % 64).min(live.len());
                                for _ in 0..n {
                                    let idx = next() as usize % live.len();
                                    let a = live.swap_remove(idx);
                                    unsafe {
                                        h.deallocate(NonNull::new_unchecked(a as *mut u8))
                                    };
                                }
                            }
                            // Steady churn.
                            _ => {
                                let size = 8 + (next() % 500) as usize;
                                let p = unsafe { h.allocate(size) }.unwrap();
                                if next() % 2 == 0 {
                                    unsafe { h.deallocate(p) };
                                } else {
                                    live.push(p.as_ptr() as usize);
                                }
                            }
                        }
                        if live.len() > 512 {
                            // Cap the working set so retirements happen.
                            while live.len() > 256 {
                                let a = live.pop().unwrap();
                                unsafe {
                                    h.deallocate(NonNull::new_unchecked(a as *mut u8))
                                };
                            }
                        }
                    }
                    for a in live {
                        unsafe { h.deallocate(NonNull::new_unchecked(a as *mut u8)) };
                    }
                });
            }
        });
        assert_eq!(h.stats().live_current, 0, "seed {seed:#x}");
        let (to_global, from_global) = h.transfer_counts();
        assert!(to_global > 0, "seed {seed:#x}: no retirements raced");
        assert!(from_global > 0, "seed {seed:#x}: no adoptions raced");
        h.flush_frontend();
        let v = debug::validate(&h);
        assert!(v.is_consistent(), "seed {seed:#x}: {:?}", v.errors);
        assert_eq!(v.total_u(), 0, "seed {seed:#x}");
    }
}

/// The paper's emptiness-invariant postcondition — a heap (or slot
/// heap) violating `u ≥ a − K·S ∨ u ≥ (1−f)·a` holds no f-empty
/// superblock — must hold at quiescence in BOTH back-ends, on the same
/// workload.
#[test]
fn emptiness_postcondition_holds_in_both_backends() {
    for cfg in [
        HoardConfig::with_default_magazines(),
        HoardConfig::with_lockfree(),
    ] {
        let on = cfg.lockfree_backend;
        let h = HoardAllocator::with_config(cfg).unwrap();
        unsafe {
            let mut live = Vec::new();
            for i in 0..3_000usize {
                live.push(h.allocate(8 + (i * 29) % 400).unwrap());
                if i % 2 == 0 {
                    let victim = live.swap_remove((i * 13) % live.len());
                    h.deallocate(victim);
                }
            }
            for p in live {
                h.deallocate(p);
            }
        }
        h.flush_frontend();
        let v = debug::validate(&h);
        assert!(v.is_consistent(), "lockfree={on}: {:?}", v.errors);
        for obs in &v.heaps {
            // Index 0 is the global heap (or the cache): exempt, like
            // the paper's global heap.
            if obs.index == 0 {
                continue;
            }
            assert!(
                obs.invariant_holds || !obs.has_f_empty_superblock,
                "lockfree={on}: domain {} violates the invariant while \
                 holding an f-empty superblock (u={} a={})",
                obs.index,
                obs.u,
                obs.a
            );
        }
        // Blowup stays bounded: everything is freed, so held memory is
        // pure slack — superblocks parked across heaps, slots, and the
        // global domain, each domain bounded by the invariant.
        assert_eq!(h.stats().live_current, 0);
        let superblocks: usize = v.heaps.iter().map(|o| o.superblocks).sum();
        assert_eq!(
            h.stats().held_current,
            (superblocks * h.config().superblock_size) as u64,
            "lockfree={on}: held memory beyond scanned superblocks"
        );
    }
}

/// Hardened lock-free mode: the mask-derived foreign-pointer check and
/// the registry round-trip — forged interior pointers are rejected,
/// honest traffic is clean, double frees are caught.
#[test]
fn hardened_lockfree_rejects_forged_and_double_frees() {
    let h = HoardAllocator::with_config(
        lockfree().with_hardening(hoard_core::HardeningLevel::Basic),
    )
    .unwrap();
    unsafe {
        let p = h.allocate(64).unwrap();
        // Interior pointer: rejected by the header/mask checks, not fatal.
        let forged = NonNull::new_unchecked(p.as_ptr().add(8));
        h.deallocate(forged);
        assert_eq!(h.corruption_log().total(), 1, "forged pointer rejected");
        h.deallocate(p);
        h.deallocate(p); // double free
        assert_eq!(h.corruption_log().total(), 2, "double free rejected");
        // Honest traffic stays clean.
        let live: Vec<_> = (0..500).map(|i| h.allocate(8 + i % 300).unwrap()).collect();
        for q in live {
            h.deallocate(q);
        }
        assert_eq!(h.corruption_log().total(), 2);
    }
    h.flush_frontend();
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}
