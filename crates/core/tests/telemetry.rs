//! The observability layer's contracts (DESIGN.md §10):
//!
//! * **off = free**: with no tracer/registry attached, the telemetry
//!   hooks charge zero virtual time and perturb nothing — layout, lock
//!   counts, and the virtual clock advance are bit-identical to an
//!   allocator that never heard of telemetry;
//! * **on = honest**: tracing changes virtual time by *exactly* one
//!   `Cost::TraceEvent` per recorded event and never changes layout;
//! * **golden traces**: a fixed-seed single-processor workload yields a
//!   byte-identical trace JSON on every run;
//! * the metrics registry agrees with `AllocStats` at quiescence and
//!   surfaces corruption/OOM-recovery gauges;
//! * the live-heap profiler follows the same off-free/on-honest
//!   contract: unattached it perturbs nothing, attached it charges
//!   exactly one `Cost::ProfileSample` per profiled operation and per
//!   timeline tick, and its books cross-check `AllocStats` and the
//!   heap-map snapshot.

use hoard_core::{
    HardeningLevel, HeapProfiler, HoardAllocator, HoardConfig, MetricsRegistry, TraceConfig,
    TraceLog, TraceSink,
};
use hoard_mem::MtAllocator;
use hoard_workloads::threadtest;
use std::ptr::NonNull;
use std::sync::Arc;

/// Same normalization as `tests/magazine.rs`: addresses become (page
/// index in order of first appearance, offset), which is stable across
/// allocator instances whose *layout decisions* agree.
fn normalize(addrs: &[usize]) -> Vec<(usize, usize)> {
    const S: usize = 4096;
    let mut bases: Vec<usize> = Vec::new();
    addrs
        .iter()
        .map(|&a| {
            let base = a & !(S - 1);
            let idx = bases.iter().position(|&b| b == base).unwrap_or_else(|| {
                bases.push(base);
                bases.len() - 1
            });
            (idx, a - base)
        })
        .collect()
}

/// The fixed mixed-size trace from `tests/magazine.rs`.
fn churn(h: &HoardAllocator) -> Vec<usize> {
    let mut addrs = Vec::new();
    let mut live: Vec<NonNull<u8>> = Vec::new();
    for i in 0..4_000usize {
        let size = 8 + (i * 37) % 500;
        let p = unsafe { h.allocate(size) }.unwrap();
        addrs.push(p.as_ptr() as usize);
        live.push(p);
        if i % 3 == 0 {
            let victim = live.swap_remove((i * 31) % live.len());
            unsafe { h.deallocate(victim) };
        }
    }
    for p in live {
        unsafe { h.deallocate(p) };
    }
    addrs
}

#[test]
fn tracing_off_is_bit_identical_and_tracing_on_costs_exactly_the_events() {
    // Untraced run: the baseline this build must not move from.
    let plain = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let t0 = hoard_sim::now();
    let plain_addrs = churn(&plain);
    let plain_dt = hoard_sim::now() - t0;

    // Second untraced run: telemetry-off is deterministic.
    let plain2 = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let t1 = hoard_sim::now();
    let plain2_addrs = churn(&plain2);
    let plain2_dt = hoard_sim::now() - t1;
    assert_eq!(normalize(&plain_addrs), normalize(&plain2_addrs));
    assert_eq!(plain_dt, plain2_dt, "telemetry-off runs are bit-identical");

    // Traced run: identical layout and lock traffic; virtual time
    // differs by exactly one TraceEvent charge per recorded event —
    // tracing is modelled honestly, and nothing else moved.
    let traced = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let sink = Arc::new(TraceSink::with_config(TraceConfig {
        tracks: 4,
        capacity: 1 << 16,
    }));
    let registry = Arc::new(traced.new_metrics_registry());
    traced.attach_tracer(Arc::clone(&sink));
    traced.attach_metrics(Arc::clone(&registry));
    let t2 = hoard_sim::now();
    let traced_addrs = churn(&traced);
    let traced_dt = hoard_sim::now() - t2;

    assert_eq!(
        normalize(&plain_addrs),
        normalize(&traced_addrs),
        "tracing must never change layout decisions"
    );
    assert_eq!(
        plain.heap_lock_stats(),
        traced.heap_lock_stats(),
        "tracing must never change lock traffic"
    );
    assert_eq!(sink.dropped(), 0, "sized to hold the whole run");
    let per_event = hoard_sim::CostModel::current().trace_event;
    assert_eq!(
        traced_dt,
        plain_dt + sink.len() as u64 * per_event,
        "tracing-on overhead is exactly #events × Cost::TraceEvent"
    );

    // Cross-instance isolation: the traced allocator's sink saw nothing
    // from the plain allocators.
    let log = sink.collect();
    assert_eq!(log.count(hoard_core::EventKind::Alloc) as u64 + log.count(hoard_core::EventKind::AllocMagazine) as u64,
        traced.stats().allocs,
        "every allocation shows up as exactly one event");
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    // A fixed-seed, single-processor machine run: every emission happens
    // on vcpu 0 with a deterministic virtual clock, so two runs must
    // serialize to the same bytes — traces are diffable artifacts.
    let run_once = || {
        let h = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
        let sink = Arc::new(TraceSink::with_config(TraceConfig {
            tracks: 2,
            capacity: 1 << 16,
        }));
        h.attach_tracer(Arc::clone(&sink));
        threadtest::run(
            &h,
            1,
            &threadtest::Params {
                total_objects: 2_000,
                batch: 50,
                size: 64,
                work_per_object: 5,
            },
        );
        sink.collect().to_json()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "golden trace drifted between runs");

    let log = TraceLog::from_json(&first).expect("valid native trace JSON");
    assert_eq!(log.dropped, 0);
    assert_eq!(log.tracks.len(), 1, "one processor, one track");
    assert_eq!(log.tracks[0].proc, 0, "machine worker 0");
    assert!(log.total_events() > 1_000, "the workload actually traced");
    for t in &log.tracks {
        assert!(
            t.events.windows(2).all(|w| w[0].ts <= w[1].ts),
            "timestamps monotone per track"
        );
    }
}

#[test]
fn profiler_off_is_bit_identical_and_on_charges_exactly_profile_samples() {
    // Unprofiled baseline.
    let plain = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let t0 = hoard_sim::now();
    let plain_addrs = churn(&plain);
    let plain_dt = hoard_sim::now() - t0;

    // Profiled run: identical layout and lock traffic; the virtual
    // clock moves by exactly one ProfileSample per alloc, per free,
    // and per claimed timeline tick — nothing else.
    let profiled = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let prof = Arc::new(HeapProfiler::new());
    profiled.attach_profiler(Arc::clone(&prof));
    let t1 = hoard_sim::now();
    let profiled_addrs = churn(&profiled);
    let profiled_dt = hoard_sim::now() - t1;

    assert_eq!(
        normalize(&plain_addrs),
        normalize(&profiled_addrs),
        "profiling must never change layout decisions"
    );
    assert_eq!(
        plain.heap_lock_stats(),
        profiled.heap_lock_stats(),
        "profiling must never change lock traffic"
    );
    let snap = prof.snapshot(hoard_sim::now());
    assert_eq!(snap.total_allocs, profiled.stats().allocs);
    let per = hoard_sim::CostModel::current().profile_sample;
    let charged = snap.total_allocs + snap.total_frees + snap.timeline.len() as u64;
    assert_eq!(
        profiled_dt,
        plain_dt + charged * per,
        "profiling-on overhead is exactly #ops+#ticks × Cost::ProfileSample"
    );
}

#[test]
fn profiler_books_cross_check_alloc_stats_and_heap_map() {
    let h = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let prof = Arc::new(HeapProfiler::new());
    h.attach_profiler(Arc::clone(&prof));

    // Mixed-size churn with sites, leaving a live set behind; the test
    // keeps its own requested-bytes ledger to check the profiler's.
    let mut live: Vec<(NonNull<u8>, usize)> = Vec::new();
    let mut expected_live = 0u64;
    for i in 0..2_000usize {
        let size = 8 + (i * 37) % 500;
        let prev = hoard_sim::set_alloc_site(1 + (i % 7) as u32);
        let p = unsafe { h.allocate(size) }.unwrap();
        hoard_sim::set_alloc_site(prev);
        live.push((p, size));
        expected_live += size as u64;
        if i % 3 == 0 {
            let (victim, vsize) = live.swap_remove((i * 31) % live.len());
            expected_live -= vsize as u64;
            unsafe { h.deallocate(victim) };
        }
    }

    // Mid-run: the profiler's live books equal the requested-bytes
    // ledger, per-site totals partition it, and the allocator's own
    // block-byte gauges bound it from above (`AllocStats.live_current`
    // counts size-class block bytes, so rounding makes it larger).
    let stats = h.stats();
    stats.check_consistency().expect("stats consistent");
    assert!(expected_live > 0, "live set survives");
    assert_eq!(prof.live_bytes(), expected_live);
    let snap = prof.snapshot(hoard_sim::now());
    assert_eq!(snap.live_bytes, expected_live);
    assert_eq!(
        snap.sites.iter().map(|s| s.live_bytes).sum::<u64>(),
        expected_live,
        "site attribution partitions live bytes"
    );
    assert!(
        stats.live_current >= expected_live,
        "block bytes ({}) cover requested bytes ({expected_live})",
        stats.live_current
    );
    assert_eq!(snap.sites.len(), 7, "all seven sites attributed");
    assert!(
        snap.sites.iter().all(|s| s.site != 0),
        "every allocation was tagged"
    );
    // Live blocks show up in the leak report until they are freed.
    assert_eq!(snap.leaked_bytes(), expected_live);

    let map = h.heap_map_snapshot();
    assert!(
        map.live_bytes() >= expected_live,
        "block bytes in use ({}) cover requested live bytes ({expected_live})",
        map.live_bytes(),
    );
    assert!(
        map.held_bytes() >= map.live_bytes(),
        "held covers in-use: A={} U={}",
        map.held_bytes(),
        map.live_bytes()
    );

    // Drain: books return to zero and the leak report empties.
    for (p, _) in live {
        unsafe { h.deallocate(p) };
    }
    h.flush_frontend();
    assert_eq!(prof.live_bytes(), 0);
    let end = prof.snapshot(hoard_sim::now());
    assert_eq!(end.leaked_bytes(), 0);
    assert_eq!(end.total_frees, end.total_allocs);
    assert_eq!(h.heap_map_snapshot().live_bytes(), 0);
}

#[test]
fn metrics_registry_agrees_with_alloc_stats_at_quiescence() {
    let h = HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap();
    let registry = Arc::new(h.new_metrics_registry());
    h.attach_metrics(Arc::clone(&registry));
    churn(&h);
    h.flush_frontend();

    let stats = h.stats();
    stats.check_consistency().expect("stats consistent");
    let snap = h.metrics_snapshot().expect("registry attached");
    assert_eq!(snap.total_allocs(), stats.allocs);
    assert_eq!(snap.total_frees(), stats.frees);
    assert!(
        snap.heaps.iter().any(|hm| hm.lock_acquires > 0),
        "lock telemetry recorded: {snap:?}"
    );
    let (acqs, _) = h.heap_lock_stats();
    let metered: u64 = snap.heaps.iter().map(|hm| hm.lock_acquires).sum();
    assert_eq!(metered, acqs, "registry lock counts match VLock's own");
    assert_eq!(snap.lock_hold.count, acqs, "every hold sampled");

    // Magazine bypass visibility: the front-end's lock-free operations
    // are attributed per class.
    let mag_ops: u64 = snap
        .heaps
        .iter()
        .flat_map(|hm| &hm.classes)
        .map(|c| c.magazine_ops)
        .sum();
    let m = stats.magazines;
    assert_eq!(mag_ops, m.alloc_hits + m.free_hits);
}

#[test]
fn hardening_gauges_surface_through_the_registry() {
    let h = HoardAllocator::with_config(
        HoardConfig::new().with_hardening(HardeningLevel::Basic),
    )
    .unwrap();
    let registry = Arc::new(h.new_metrics_registry());
    let sink = Arc::new(TraceSink::new());
    h.attach_metrics(Arc::clone(&registry));
    h.attach_tracer(Arc::clone(&sink));

    let p = unsafe { h.allocate(64) }.unwrap();
    unsafe { h.deallocate(p) };
    unsafe { h.deallocate(p) }; // double free: detected, not fatal

    let snap = h.metrics_snapshot().expect("registry attached");
    assert_eq!(snap.hardening.corruption_reports, 1);
    assert_eq!(
        sink.collect().count(hoard_core::EventKind::Corruption),
        1,
        "corruption also traced as an event"
    );
}

#[test]
fn attach_replaces_and_drop_releases_the_sink() {
    let sink1 = Arc::new(TraceSink::new());
    let sink2 = Arc::new(TraceSink::new());
    let registry = Arc::new(MetricsRegistry::new(2, 2));
    {
        let h = HoardAllocator::new_default();
        h.attach_tracer(Arc::clone(&sink1));
        h.attach_tracer(Arc::clone(&sink2)); // replaces, releases sink1
        h.attach_metrics(Arc::clone(&registry));
        assert_eq!(Arc::strong_count(&sink1), 1);
        assert_eq!(Arc::strong_count(&sink2), 2);
        let p = unsafe { h.allocate(32) }.unwrap();
        unsafe { h.deallocate(p) };
        assert!(sink1.is_empty());
        assert!(!sink2.is_empty());
    }
    // Drop released the allocator's references.
    assert_eq!(Arc::strong_count(&sink2), 1);
    assert_eq!(Arc::strong_count(&registry), 1);
}
