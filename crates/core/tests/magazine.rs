//! Integration tests for the thread-local magazine front-end: the
//! `magazine_capacity = 0` ablation (exact seed behaviour), quiescence
//! via `flush_frontend`, emptiness accounting of parked blocks, the
//! deferred remote-free protocol under real threads, and the
//! owner-migration retry race in `free_small`.

use hoard_core::{debug, HoardAllocator, HoardConfig};
use hoard_mem::MtAllocator;
use std::ptr::NonNull;
use std::sync::Arc;

/// Wrapper making raw payload addresses sendable between threads.
#[derive(Clone, Copy)]
struct Payload(usize);
unsafe impl Send for Payload {}

fn mag_on() -> HoardAllocator {
    HoardAllocator::with_config(HoardConfig::with_default_magazines()).unwrap()
}

/// A fixed single-thread trace: mixed sizes, interleaved frees.
/// Returns each handed-out address normalized to (page index in order
/// of first appearance, offset within the page), so two allocator
/// instances with identical *layout decisions* compare equal even
/// though their chunks land at different OS addresses. Pages, not
/// superblocks: chunks are only CHUNK_ALIGN (4096)-aligned, so the
/// page decomposition is the finest one stable across instances.
fn normalize(addrs: &[usize]) -> Vec<(usize, usize)> {
    const S: usize = 4096;
    let mut bases: Vec<usize> = Vec::new();
    addrs
        .iter()
        .map(|&a| {
            let base = a & !(S - 1);
            let idx = bases.iter().position(|&b| b == base).unwrap_or_else(|| {
                bases.push(base);
                bases.len() - 1
            });
            (idx, a - base)
        })
        .collect()
}

fn trace(h: &HoardAllocator) -> Vec<usize> {
    let mut addrs = Vec::new();
    let mut live: Vec<(NonNull<u8>, usize)> = Vec::new();
    for i in 0..4_000usize {
        let size = 8 + (i * 37) % 500;
        let p = unsafe { h.allocate(size) }.unwrap();
        addrs.push(p.as_ptr() as usize);
        live.push((p, size));
        if i % 3 == 0 {
            let (victim, _) = live.swap_remove((i * 31) % live.len());
            unsafe { h.deallocate(victim) };
        }
    }
    for (p, _) in live {
        unsafe { h.deallocate(p) };
    }
    addrs
}

#[test]
fn capacity_zero_is_bit_identical_to_the_seed_paths() {
    // The ablation gate: with the front-end disabled, every operation
    // must take exactly the pre-magazine code paths. Single-threaded
    // allocation is deterministic, so the address sequences (and the
    // lock counts) of a default-config allocator and an explicit
    // `magazine_capacity = 0` allocator must match exactly.
    let a = HoardAllocator::new_default();
    let b = HoardAllocator::with_config(HoardConfig::new().with_magazine_capacity(0)).unwrap();
    assert_eq!(
        normalize(&trace(&a)),
        normalize(&trace(&b)),
        "capacity 0 must not perturb layout"
    );
    assert_eq!(a.heap_lock_stats().0, b.heap_lock_stats().0);
    for h in [&a, &b] {
        let m = h.stats().magazines;
        assert_eq!(
            (m.alloc_hits, m.free_hits, m.refills, m.flushes, m.remote_pushes),
            (0, 0, 0, 0, 0),
            "front-end counters must stay silent when disabled"
        );
    }
}

#[test]
fn adaptive_off_is_bit_identical_to_the_static_front_end() {
    // The tuning ablation gate: with `adaptive_tuning` off, the
    // compiled-in controller must be behaviourally invisible — every
    // class runs the static capacity, no tick ever fires, and the
    // layout decisions match a plain magazine build exactly. A config
    // that turned the controller on and back off must land on the
    // same bits too.
    let a = mag_on();
    let b = HoardAllocator::with_config(
        HoardConfig::with_adaptive().with_adaptive_tuning(false),
    )
    .unwrap();
    assert_eq!(
        normalize(&trace(&a)),
        normalize(&trace(&b)),
        "disabled controller must not perturb layout"
    );
    assert_eq!(a.heap_lock_stats().0, b.heap_lock_stats().0);
    let (ma, mb) = (a.stats().magazines, b.stats().magazines);
    assert_eq!(
        (ma.alloc_hits, ma.free_hits, ma.refills, ma.flushes),
        (mb.alloc_hits, mb.free_hits, mb.refills, mb.flushes),
        "front-end traffic must match op for op"
    );
}

#[test]
fn magazines_change_lock_traffic_not_outcomes() {
    // Same trace with the front-end on: far fewer lock acquisitions,
    // identical external behaviour (everything freed, heap consistent).
    let plain = HoardAllocator::new_default();
    let mag = mag_on();
    trace(&plain);
    trace(&mag);
    let (plain_acqs, _) = plain.heap_lock_stats();
    let (mag_acqs, _) = mag.heap_lock_stats();
    assert!(
        mag_acqs * 5 < plain_acqs,
        "front-end must bypass most heap locks: {mag_acqs} vs {plain_acqs}"
    );
    let m = mag.stats().magazines;
    assert!(m.alloc_hits > 0 && m.refills > 0);
    mag.flush_frontend();
    assert_eq!(mag.stats().live_current, 0);
    let v = debug::validate(&mag);
    assert!(v.is_consistent(), "{:?}", v.errors);
    assert_eq!(v.total_u(), 0, "flush returns every parked block");
}

#[test]
fn parked_blocks_stay_counted_in_u() {
    // The emptiness invariant stays provable because magazine-held
    // blocks are treated as allocated: freeing into a magazine must NOT
    // lower the heap's u; flushing must.
    let h = mag_on();
    let ptrs: Vec<_> = (0..8).map(|_| unsafe { h.allocate(64) }.unwrap()).collect();
    let u_live = debug::validate(&h).total_u();
    assert!(u_live > 0);
    for p in ptrs {
        unsafe { h.deallocate(p) };
    }
    // All eight fit in one magazine (capacity >= 8): u unchanged.
    assert_eq!(
        debug::validate(&h).total_u(),
        u_live,
        "magazine-parked blocks must stay in u"
    );
    assert_eq!(h.stats().live_current, 0, "but the app-facing count drops");
    h.flush_frontend();
    assert_eq!(debug::validate(&h).total_u(), 0, "flush releases them");
}

#[test]
fn deferred_remote_frees_drain_back_to_the_owner() {
    // Producer allocates on its heap; consumer frees on another thread.
    // With magazines on, those frees ride the superblock's deferred
    // stack (remote_pushes) and are recovered by the producer's refills
    // (remote_drains); nothing is lost at quiescence.
    let h = Arc::new(mag_on());
    let (tx, rx) = crossbeam::channel::bounded::<Payload>(256);
    let producer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            for i in 0..20_000usize {
                let size = 8 + (i % 12) * 16;
                let p = unsafe { h.allocate(size) }.unwrap();
                tx.send(Payload(p.as_ptr() as usize)).unwrap();
            }
        })
    };
    let consumer = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            while let Ok(p) = rx.recv() {
                unsafe { h.deallocate(NonNull::new_unchecked(p.0 as *mut u8)) };
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
    let m = h.stats().magazines;
    assert!(m.remote_pushes > 0, "consumer frees must defer: {m:?}");
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
    assert_eq!(v.total_u(), 0, "every deferred block recovered");
}

#[test]
fn owner_migration_retry_loses_no_blocks() {
    // The free/migration race: `free_small` reads the superblock's
    // owner, locks that heap, and must re-check the owner — a
    // concurrent `restore_invariant` may have migrated the superblock
    // to the global heap between the read and the lock. This hammers
    // exactly that window: one thread churns enough to keep
    // migrations flowing (K = 0 makes every drained superblock
    // eligible), others free its blocks remotely.
    let cfg = HoardConfig::new().with_slack(0).with_magazine_capacity(8);
    let h = Arc::new(HoardAllocator::with_config(cfg).unwrap());
    let (tx, rx) = crossbeam::channel::bounded::<Payload>(64);
    let churner = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            let mut held: Vec<NonNull<u8>> = Vec::new();
            for i in 0..30_000usize {
                let p = unsafe { h.allocate(8 + (i % 4) * 8) }.unwrap();
                if i % 2 == 0 {
                    tx.send(Payload(p.as_ptr() as usize)).unwrap();
                } else {
                    held.push(p);
                }
                // Free bursts force f-emptiness crossings -> migrations.
                if held.len() >= 128 {
                    for q in held.drain(..) {
                        unsafe { h.deallocate(q) };
                    }
                }
            }
            for q in held {
                unsafe { h.deallocate(q) };
            }
        })
    };
    let remote_freers: Vec<_> = (0..3)
        .map(|_| {
            let h = Arc::clone(&h);
            let rx = rx.clone();
            std::thread::spawn(move || {
                while let Ok(p) = rx.recv() {
                    unsafe { h.deallocate(NonNull::new_unchecked(p.0 as *mut u8)) };
                }
            })
        })
        .collect();
    churner.join().unwrap();
    drop(rx);
    for t in remote_freers {
        t.join().unwrap();
    }
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0, "no block lost in the race");
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
    assert_eq!(v.total_u(), 0);
}

#[test]
fn refill_survives_a_drain_that_empties_the_superblock() {
    // Regression: a refill that selects a superblock and then drains
    // its deferred stack can empty it completely — the drain re-homes
    // it onto the empty list, and allocating from it without
    // reselecting corrupted the fullness groups (debug_assert "relink
    // of an empty-list superblock"). Alternate phases where one side
    // frees *everything* the other allocated, so refill-time drains
    // routinely empty superblocks.
    let h = Arc::new(mag_on());
    let (tx, rx) = crossbeam::channel::bounded::<Vec<Payload>>(4);
    let alloc_side = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            for _ in 0..200 {
                let batch: Vec<Payload> = (0..256)
                    .map(|_| {
                        let p = unsafe { h.allocate(32) }.unwrap();
                        Payload(p.as_ptr() as usize)
                    })
                    .collect();
                tx.send(batch).unwrap();
            }
        })
    };
    let free_side = {
        let h = Arc::clone(&h);
        std::thread::spawn(move || {
            while let Ok(batch) = rx.recv() {
                for p in batch {
                    unsafe { h.deallocate(NonNull::new_unchecked(p.0 as *mut u8)) };
                }
            }
        })
    };
    alloc_side.join().unwrap();
    free_side.join().unwrap();
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    let v = debug::validate(&h);
    assert!(v.is_consistent(), "{:?}", v.errors);
}

#[test]
fn flush_frontend_is_a_noop_when_disabled() {
    let h = HoardAllocator::new_default();
    let p = unsafe { h.allocate(64) }.unwrap();
    h.flush_frontend();
    unsafe { h.deallocate(p) };
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    assert!(debug::validate(&h).is_consistent());
}
