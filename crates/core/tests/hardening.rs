//! Hardened-path detection tests: each classic allocator-abuse pattern
//! must produce a typed [`CorruptionReport`] and a graceful return —
//! never a panic, never undefined behavior — while the allocator stays
//! internally consistent and usable.

use hoard_core::{debug, CorruptionKind, HardeningLevel, HoardAllocator, HoardConfig};
use hoard_mem::{
    read_header, write_header, ChunkSource, HeaderWord, MtAllocator, SourceStats, SystemSource,
    Tag,
};
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Mutex;

fn hardened(level: HardeningLevel) -> HoardAllocator {
    HoardAllocator::with_config(HoardConfig::new().with_hardening(level))
        .expect("hardened config is valid")
}

fn last_kind(h: &HoardAllocator<impl ChunkSource>) -> Option<CorruptionKind> {
    h.corruption_log().recent().last().map(|r| r.kind)
}

#[test]
fn clean_traffic_produces_no_reports() {
    for level in [HardeningLevel::Basic, HardeningLevel::Full] {
        let h = hardened(level);
        unsafe {
            let mut live = Vec::new();
            for i in 0..3000usize {
                let size = 8 + (i * 37) % 6000; // small and large classes
                let p = h.allocate(size).unwrap();
                std::ptr::write_bytes(p.as_ptr(), 0x5A, size);
                live.push(p);
                if i % 3 == 0 {
                    h.deallocate(live.swap_remove((i * 31) % live.len()));
                }
            }
            for p in live {
                h.deallocate(p);
            }
        }
        assert_eq!(
            h.corruption_log().total(),
            0,
            "false positive under {level:?}"
        );
        assert_eq!(h.stats().live_current, 0);
        debug::check_invariants(&h).expect("consistent after traffic");
    }
}

#[test]
fn small_double_free_is_detected_and_harmless() {
    let h = hardened(HardeningLevel::Basic);
    unsafe {
        let p = h.allocate(24).unwrap();
        h.deallocate(p);
        h.deallocate(p); // double free
        h.deallocate(p); // and again
    }
    assert_eq!(h.corruption_log().total(), 2);
    assert_eq!(last_kind(&h), Some(CorruptionKind::DoubleFree));
    // The allocator still works and the block is reusable exactly once.
    unsafe {
        let q = h.allocate(24).unwrap();
        std::ptr::write_bytes(q.as_ptr(), 0xEE, 24);
        h.deallocate(q);
    }
    assert_eq!(h.stats().live_current, 0);
    debug::check_invariants(&h).expect("consistent after double free");
}

#[test]
fn misaligned_and_foreign_pointers_are_refused() {
    let h = hardened(HardeningLevel::Basic);
    unsafe {
        let p = h.allocate(64).unwrap();

        // Misaligned: cannot be a block payload.
        h.deallocate(NonNull::new_unchecked(p.as_ptr().add(1)));
        assert_eq!(last_kind(&h), Some(CorruptionKind::MisalignedPointer));

        // Foreign: an aligned buffer whose "header" is a tag this
        // allocator never writes (bits 5..7 are unassigned).
        let mut buf = [0u64; 8];
        let base = buf.as_mut_ptr() as *mut u8;
        let fake = base.add(16);
        (fake.sub(8) as *mut usize).write(0b101);
        h.deallocate(NonNull::new_unchecked(fake));
        assert_eq!(last_kind(&h), Some(CorruptionKind::ForeignPointer));

        // A block of a different allocator design (baseline tag).
        let fake2 = base.add(40);
        write_header(fake2, HeaderWord::from_int(Tag::Baseline, 3));
        h.deallocate(NonNull::new_unchecked(fake2));
        assert_eq!(last_kind(&h), Some(CorruptionKind::ForeignPointer));

        h.deallocate(p);
    }
    assert_eq!(h.corruption_log().total(), 3);
    assert_eq!(h.stats().live_current, 0);
}

#[test]
fn interior_pointer_is_out_of_range() {
    let h = hardened(HardeningLevel::Basic);
    unsafe {
        let p = h.allocate(64).unwrap();
        let sb = read_header(p.as_ptr()).value;
        // Forge a plausible header in the block's own payload pointing
        // at the real superblock, then free the interior address: the
        // range check must catch that it is not on a block boundary.
        let interior = p.as_ptr().add(16);
        write_header(interior, HeaderWord::new(Tag::Superblock, sb));
        h.deallocate(NonNull::new_unchecked(interior));
        assert_eq!(last_kind(&h), Some(CorruptionKind::OutOfRangePointer));
        h.deallocate(p);
    }
    assert_eq!(h.stats().live_current, 0);
    debug::check_invariants(&h).expect("consistent after interior free");
}

#[test]
fn canary_smash_quarantines_the_block() {
    let h = hardened(HardeningLevel::Full);
    unsafe {
        let p = h.allocate(24).unwrap();
        let live_before = h.stats().live_current;
        // Overrun: write one byte past the payload's 8-aligned end,
        // straight into the canary word.
        p.as_ptr().add(24).write(0x00);
        h.deallocate(p);
        assert_eq!(last_kind(&h), Some(CorruptionKind::CanarySmashed));
        assert_eq!(h.corruption_log().quarantined(), 1);
        // The block was withheld, not freed: accounting unchanged, and
        // the heap scan still balances.
        assert_eq!(h.stats().live_current, live_before);
        debug::check_invariants(&h).expect("quarantine keeps the heap consistent");
        // The allocator keeps serving.
        let q = h.allocate(24).unwrap();
        assert_ne!(q, p, "quarantined block must not be recycled");
        h.deallocate(q);
    }
}

#[test]
fn use_after_free_write_is_reported_on_reuse() {
    let h = hardened(HardeningLevel::Full);
    unsafe {
        let p = h.allocate(48).unwrap();
        h.deallocate(p);
        // Dangling write, past the free-list link word.
        p.as_ptr().add(16).write(0xAA);
        // Same class allocates LIFO: the poisoned block comes back.
        let q = h.allocate(48).unwrap();
        assert_eq!(q, p, "LIFO reuse expected for this test");
        assert_eq!(last_kind(&h), Some(CorruptionKind::PoisonOverwrite));
        h.deallocate(q);
    }
    assert_eq!(h.stats().live_current, 0);
}

#[test]
fn corruption_hook_fires_synchronously() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static HITS: AtomicUsize = AtomicUsize::new(0);
    fn on_report(r: &hoard_core::CorruptionReport) {
        assert_eq!(r.kind, CorruptionKind::DoubleFree);
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    let h = hardened(HardeningLevel::Basic);
    h.corruption_log().set_hook(Some(on_report));
    unsafe {
        let p = h.allocate(32).unwrap();
        h.deallocate(p);
        h.deallocate(p);
    }
    assert_eq!(HITS.load(Ordering::Relaxed), 1);
}

/// A source that parks freed chunks instead of returning them to the
/// host, so stale headers stay mapped (and readable) after a free —
/// letting the large-object double-free test dereference its dangling
/// pointer without undefined behavior.
struct ParkingSource {
    inner: SystemSource,
    parked: Mutex<Vec<(usize, Layout)>>,
}

impl ParkingSource {
    fn new() -> Self {
        ParkingSource {
            inner: SystemSource::new(),
            parked: Mutex::new(Vec::new()),
        }
    }
}

impl Drop for ParkingSource {
    fn drop(&mut self) {
        for (addr, layout) in self.parked.lock().unwrap().drain(..) {
            unsafe {
                self.inner
                    .free_chunk(NonNull::new_unchecked(addr as *mut u8), layout)
            };
        }
    }
}

unsafe impl ChunkSource for ParkingSource {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        self.inner.alloc_chunk(layout)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        self.parked.lock().unwrap().push((ptr.as_ptr() as usize, layout));
    }

    fn stats(&self) -> SourceStats {
        self.inner.stats()
    }
}

#[test]
fn large_double_free_is_detected_via_registry() {
    let h = HoardAllocator::with_source(
        HoardConfig::new().with_hardening(HardeningLevel::Basic),
        ParkingSource::new(),
    )
    .unwrap();
    unsafe {
        let p = h.allocate(100_000).unwrap();
        h.deallocate(p);
        // The chunk is parked, so its Tag::Large header is still
        // readable — but the live registry knows it is gone.
        h.deallocate(p);
    }
    assert_eq!(h.corruption_log().total(), 1);
    assert_eq!(last_kind(&h), Some(CorruptionKind::DoubleFree));
}

#[test]
fn corrupt_large_header_is_quarantined_not_freed() {
    let h = hardened(HardeningLevel::Basic);
    unsafe {
        let p = h.allocate(50_000).unwrap();
        let chunk = read_header(p.as_ptr()).value as *mut u64;
        let held = h.stats().held_current;
        chunk.write(0xBAD0_BEEF); // smash the LargeHeader magic
        h.deallocate(p);
        assert_eq!(last_kind(&h), Some(CorruptionKind::BadLargeMagic));
        assert_eq!(h.corruption_log().quarantined(), 1);
        assert_eq!(
            h.stats().held_current,
            held,
            "a forged layout must never reach free_chunk"
        );
    }
}

#[test]
fn off_mode_keeps_the_papers_layout_and_paths() {
    // Off must not pay for hardening: no canary stride, no reports.
    let off = hardened(HardeningLevel::Off);
    let full = hardened(HardeningLevel::Full);
    unsafe {
        let ptrs_off: Vec<_> = (0..64).map(|_| off.allocate(64).unwrap()).collect();
        let ptrs_full: Vec<_> = (0..64).map(|_| full.allocate(64).unwrap()).collect();
        let stride = |v: &[NonNull<u8>]| v[1].as_ptr() as usize - v[0].as_ptr() as usize;
        assert_eq!(stride(&ptrs_off), 64 + 8, "paper layout: payload + header");
        assert_eq!(
            stride(&ptrs_full),
            64 + 8 + 8,
            "Full layout adds one canary word"
        );
        for p in ptrs_off {
            off.deallocate(p);
        }
        for p in ptrs_full {
            full.deallocate(p);
        }
    }
    assert_eq!(off.corruption_log().total(), 0);
    assert_eq!(full.corruption_log().total(), 0);
}

// ----- magazine front-end interactions -----
//
// With the front-end on, a small free parks in a thread-local magazine
// instead of returning to its superblock. Every detection the locked
// path makes must still fire: double frees against the retagged header,
// canary smashes on the way *into* the magazine (quarantine, nothing
// stashed), and poison overwrites on the way *out* (the poison sits
// unguarded while parked).

fn hardened_mag(level: HardeningLevel) -> HoardAllocator {
    HoardAllocator::with_config(
        HoardConfig::with_default_magazines().with_hardening(level),
    )
    .expect("hardened magazine config is valid")
}

#[test]
fn magazine_clean_traffic_produces_no_reports() {
    for level in [HardeningLevel::Basic, HardeningLevel::Full] {
        let h = hardened_mag(level);
        unsafe {
            let mut live = Vec::new();
            for i in 0..3000usize {
                let size = 8 + (i * 37) % 6000;
                let p = h.allocate(size).unwrap();
                std::ptr::write_bytes(p.as_ptr(), 0x5A, size);
                live.push(p);
                if i % 3 == 0 {
                    h.deallocate(live.swap_remove((i * 31) % live.len()));
                }
            }
            for p in live {
                h.deallocate(p);
            }
        }
        assert_eq!(
            h.corruption_log().total(),
            0,
            "false positive under {level:?} with magazines"
        );
        h.flush_frontend();
        assert_eq!(h.stats().live_current, 0);
        debug::check_invariants(&h).expect("consistent after magazine traffic");
    }
}

#[test]
fn double_free_of_a_magazine_parked_block_is_detected() {
    let h = hardened_mag(HardeningLevel::Basic);
    unsafe {
        let p = h.allocate(24).unwrap();
        h.deallocate(p); // parks in the magazine, header retagged Freed
        h.deallocate(p); // second free must hit the retagged header
    }
    assert_eq!(h.corruption_log().total(), 1);
    assert_eq!(last_kind(&h), Some(CorruptionKind::DoubleFree));
    // The parked block comes back out exactly once and stays usable.
    unsafe {
        let q = h.allocate(24).unwrap();
        std::ptr::write_bytes(q.as_ptr(), 0xEE, 24);
        h.deallocate(q);
    }
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    debug::check_invariants(&h).expect("consistent after magazine double free");
}

#[test]
fn canary_smash_is_caught_on_the_frontend_free() {
    let h = hardened_mag(HardeningLevel::Full);
    unsafe {
        let p = h.allocate(40).unwrap();
        // Overflow one byte past the requested size into the canary.
        std::ptr::write_bytes(p.as_ptr(), 0xAB, 41);
        h.deallocate(p); // front-end free must quarantine, not stash
    }
    assert_eq!(last_kind(&h), Some(CorruptionKind::CanarySmashed));
    assert_eq!(
        h.stats().live_current,
        40,
        "quarantined block stays allocated (accounting untouched)"
    );
    // The magazine must NOT recirculate the smashed block.
    unsafe {
        let q = h.allocate(40).unwrap();
        std::ptr::write_bytes(q.as_ptr(), 0x11, 40);
        h.deallocate(q);
    }
    assert_eq!(h.corruption_log().total(), 1, "no further reports");
    h.flush_frontend();
    debug::check_invariants(&h).expect("consistent after quarantine");
}

#[test]
fn poison_overwrite_while_parked_is_caught_on_reuse() {
    let h = hardened_mag(HardeningLevel::Full);
    unsafe {
        let p = h.allocate(48).unwrap();
        h.deallocate(p); // parked and poisoned in the magazine
        // Use-after-free through the dangling pointer while parked.
        *p.as_ptr().add(8) = 0x77;
        // LIFO magazine: the next same-class alloc pops that block.
        let q = h.allocate(48).unwrap();
        assert_eq!(q.as_ptr(), p.as_ptr(), "magazine is LIFO");
        h.deallocate(q);
    }
    assert_eq!(last_kind(&h), Some(CorruptionKind::PoisonOverwrite));
    h.flush_frontend();
    assert_eq!(h.stats().live_current, 0);
    debug::check_invariants(&h).expect("consistent after poison report");
}
