//! Behavioral tests for Hoard's configuration knobs and secondary paths:
//! the OS-release ablation, the eviction hysteresis latch, `reallocate`,
//! heap-count effects, and failure injection mid-run.

use hoard_core::{debug, HoardAllocator, HoardConfig};
use hoard_mem::{FailingSource, MtAllocator, SystemSource};

#[test]
fn os_release_ablation_returns_drained_memory() {
    // Boxed: two allocator values at once would crowd the test thread's
    // stack in debug builds (the struct embeds the heap array and the
    // magazine front-end).
    let on = Box::new(
        HoardAllocator::with_config(HoardConfig::new().with_release_empty_to_os(true)).unwrap(),
    );
    let off = Box::new(HoardAllocator::new_default());
    for h in [&on, &off] {
        unsafe {
            let ptrs: Vec<_> = (0..2000).map(|_| h.allocate(128).unwrap()).collect();
            for p in ptrs {
                h.deallocate(p);
            }
        }
    }
    assert!(
        on.stats().held_current < off.stats().held_current,
        "release-to-OS must shrink the resident footprint: on={} off={}",
        on.stats().held_current,
        off.stats().held_current
    );
    // Both still internally consistent.
    assert!(debug::validate(&on).is_consistent());
    assert!(debug::validate(&off).is_consistent());
}

#[test]
fn hysteresis_latch_prevents_boundary_oscillation_thrash() {
    // Hold a superblock's occupancy exactly at the f-emptiness boundary
    // and oscillate: without the armed latch every downward crossing
    // would migrate a superblock; with it, only the first does.
    let h = HoardAllocator::new_default();
    let cfg = *h.config();
    // One size class, fill several superblocks to just above the
    // boundary, then alternate free/alloc of one block many times.
    let size = 128usize;
    unsafe {
        let mut blocks: Vec<_> = (0..400).map(|_| h.allocate(size).unwrap()).collect();
        // Free down to ~the boundary (leave ~72% of blocks).
        for _ in 0..112 {
            h.deallocate(blocks.pop().unwrap());
        }
        let before = h.transfer_counts().0;
        for _ in 0..500 {
            let p = h.allocate(size).unwrap();
            h.deallocate(p);
        }
        let after = h.transfer_counts().0;
        assert!(
            after - before <= 2,
            "boundary oscillation caused {} migrations",
            after - before
        );
        let _ = cfg;
        for p in blocks {
            h.deallocate(p);
        }
    }
}

#[test]
fn reallocate_grows_within_class_in_place_and_moves_across() {
    let h = HoardAllocator::new_default();
    unsafe {
        // 100 requested -> 104-byte class: growing to 104 stays put.
        let p = h.allocate(100).unwrap();
        std::ptr::write_bytes(p.as_ptr(), 0x3D, 100);
        let q = h.reallocate(p, 100, h.usable_size(p)).unwrap();
        assert_eq!(q, p, "within-class growth is in place");
        // Growing past the class moves and preserves content.
        let r = h.reallocate(q, 100, 5000).unwrap();
        assert_ne!(r, q);
        for off in 0..100 {
            assert_eq!(*r.as_ptr().add(off), 0x3D);
        }
        // Growing a large object into a larger large object.
        let s = h.reallocate(r, 5000, 100_000).unwrap();
        for off in 0..100 {
            assert_eq!(*s.as_ptr().add(off), 0x3D);
        }
        h.deallocate(s);
    }
    assert_eq!(h.stats().live_current, 0);
}

#[test]
fn heap_count_one_degenerates_to_serial_like_but_correct() {
    let h =
        HoardAllocator::with_config(HoardConfig::new().with_heap_count(1)).unwrap();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| unsafe {
                for i in 0..2000usize {
                    let p = h.allocate(8 + i % 500).unwrap();
                    h.deallocate(p);
                }
            });
        }
    });
    assert_eq!(h.stats().live_current, 0);
    assert!(debug::validate(&h).is_consistent());
}

#[test]
fn mid_run_source_exhaustion_is_clean() {
    // Inject OOM after 3 chunks; the allocator must keep serving from
    // what it has, fail cleanly beyond, and recover as memory frees.
    let h = HoardAllocator::with_source(
        HoardConfig::new(),
        FailingSource::new(SystemSource::new(), 3),
    )
    .unwrap();
    unsafe {
        let mut live = Vec::new();
        while let Some(p) = h.allocate(512) {
            live.push(p);
            assert!(live.len() < 10_000, "failure injection never fired");
        }
        let served = live.len();
        assert!(served > 10, "three superblocks should serve many blocks");
        // Free half: allocation must work again (recycling, no new chunks).
        let half = live.split_off(served / 2);
        for p in half {
            h.deallocate(p);
        }
        let p = h.allocate(512).expect("recycled memory serves");
        h.deallocate(p);
        for p in live {
            h.deallocate(p);
        }
    }
    assert_eq!(h.stats().live_current, 0);
    assert!(debug::validate(&h).is_consistent());
}

#[test]
fn large_objects_do_not_participate_in_heap_accounting() {
    let h = HoardAllocator::new_default();
    unsafe {
        let p = h.allocate(1_000_000).unwrap();
        let v = debug::validate(&h);
        assert_eq!(v.total_a(), 0, "large chunks bypass heaps entirely");
        assert!(h.stats().held_current >= 1_000_000);
        h.deallocate(p);
    }
    assert_eq!(h.stats().held_current, 0);
}

#[test]
fn many_configs_roundtrip_mixed_traffic() {
    for s in [2048usize, 8192, 32768] {
        for (num, den) in [(1usize, 8usize), (1, 2), (7, 8)] {
            for k in [0usize, 3] {
                let cfg = HoardConfig::new()
                    .with_superblock_size(s)
                    .with_empty_fraction(num, den)
                    .with_slack(k)
                    .with_heap_count(5);
                let h = HoardAllocator::with_config(cfg).unwrap();
                unsafe {
                    let ptrs: Vec<_> = (0..500)
                        .map(|i| h.allocate(1 + (i * 13) % (s / 2)).unwrap())
                        .collect();
                    for p in ptrs {
                        h.deallocate(p);
                    }
                }
                assert_eq!(
                    h.stats().live_current,
                    0,
                    "S={s} f={num}/{den} K={k}"
                );
                let v = debug::validate(&h);
                assert!(v.is_consistent(), "S={s} f={num}/{den} K={k}: {:?}", v.errors);
            }
        }
    }
}

#[test]
fn alloc_vec_growth_exercises_hoard_realloc() {
    // Vec-style amortized doubling through Hoard: early doublings stay
    // within size classes (in place), later ones move across classes and
    // finally into the large-object path — content must survive it all.
    let h = HoardAllocator::new_default();
    {
        let mut v = hoard_mem::AllocVec::new_in(&h);
        for i in 0..20_000u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 20_000);
        for probe in [0usize, 1, 4_095, 19_999] {
            assert_eq!(v[probe], probe as u64);
        }
        // 20k u64 = 160 KB: the buffer must be a large object by now.
        assert!(h.stats().held_current >= 160_000);
        while v.len() > 3 {
            v.pop();
        }
        v.shrink_to_fit();
        assert_eq!(&v[..], &[0, 1, 2]);
    }
    assert_eq!(h.stats().live_current, 0);
    assert!(debug::validate(&h).is_consistent());
}
