//! # hoard-harness — regenerating the paper's tables and figures
//!
//! Each published table or figure of the Hoard paper's evaluation maps
//! to one [`Experiment`] (`E1`..`E12`; see `DESIGN.md` for the index).
//! The `reproduce` binary runs them and renders ASCII tables plus
//! optional CSV:
//!
//! ```text
//! reproduce all            # every experiment, paper-scale parameters
//! reproduce e2 e4 --quick  # selected experiments, reduced scale
//! reproduce e9 --csv out/  # also write CSV files
//! ```
//!
//! Measurement rules the harness enforces:
//!
//! * a **fresh allocator instance per run** — `VLock`s carry virtual
//!   release times, so reuse across machine runs (which reset clocks)
//!   would contaminate measurements;
//! * the global cache model is reset by each workload;
//! * speedups are normalized to the **serial allocator's one-processor
//!   makespan** on the same workload, as in the paper's figures (so an
//!   allocator faster than serial at P=1 starts above 1.0).

mod experiments;
mod factory;
mod heap_profile;
mod scope;
mod speedup;
mod summary;
mod table;
mod trc_tools;
mod tune;

pub use experiments::{all_experiments, experiment_by_id, Experiment, RunOptions};
pub use factory::AllocatorKind;
pub use heap_profile::{
    heap_profile_section, profile_trc, profile_workload, render_profile, BudgetFile, MemoryBudget,
    ProfiledRun, INJECTED_LEAK_SITE, PROFILE_CATALOG,
};
pub use scope::{
    class_table, event_summary, heap_lock_acquisitions, lock_table, metrics_table, scope_report,
    traced_larson, traced_larson_with, transfer_table, ScopeRun,
};
pub use speedup::{run_speedup, SpeedupPoint, SpeedupSeries};
pub use summary::{markdown_report, summarize_speedup, CurveSummary, Shape};
pub use table::Table;
pub use trc_tools::{
    record_workload, replay_digest, replay_trc, report_for, RecordOutcome, ReplayOutcome,
    TRC_REPORT_SCHEMA,
};
pub use tune::{
    ab_grid, bypass_512, run_tune_ab, AbAggregate, TuneAbReport, STATIC_GRID, THREAD_POINTS,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 12);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.id(), format!("e{}", i + 1));
            assert!(!e.title().is_empty());
            assert!(!e.paper_ref().is_empty());
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(experiment_by_id("e1").is_some());
        assert!(experiment_by_id("E9").is_some(), "case-insensitive");
        assert!(experiment_by_id("e99").is_none());
    }
}
