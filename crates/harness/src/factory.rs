//! Allocator factory: build fresh instances per measurement run.

use hoard_baselines::{
    MtLikeAllocator, OwnershipAllocator, PurePrivateAllocator, SerialAllocator,
};
use hoard_core::{HoardAllocator, HoardConfig};
use hoard_mem::MtAllocator;

/// The allocators every experiment sweeps, mirroring the paper's set
/// (Solaris malloc, ptmalloc, mtmalloc, Hoard) plus the taxonomy's
/// pure-private class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocatorKind {
    /// Single lock, single heap (Solaris-malloc model).
    Serial,
    /// Pure private heaps (Cilk/STL model).
    PurePrivate,
    /// Private heaps with ownership (ptmalloc model).
    Ownership,
    /// Per-thread caches over one central lock (mtmalloc model).
    MtLike,
    /// Hoard with the given configuration.
    Hoard(HoardConfig),
    /// Hoard with the thread-local magazine front-end enabled (the
    /// given configuration is used as-is; construct it with
    /// `HoardConfig::with_default_magazines()` or any nonzero
    /// `magazine_capacity`).
    HoardMagazine(HoardConfig),
}

impl AllocatorKind {
    /// Column label used across tables.
    pub fn label(&self) -> &'static str {
        match self {
            AllocatorKind::Serial => "serial",
            AllocatorKind::PurePrivate => "private",
            AllocatorKind::Ownership => "ownership",
            AllocatorKind::MtLike => "mtlike",
            AllocatorKind::Hoard(_) => "hoard",
            AllocatorKind::HoardMagazine(_) => "hoard-mag",
        }
    }

    /// Build a fresh instance (one per measurement run; see the crate
    /// docs for why instances are never reused).
    pub fn build(&self) -> Box<dyn MtAllocator> {
        match self {
            AllocatorKind::Serial => Box::new(SerialAllocator::new()),
            AllocatorKind::PurePrivate => Box::new(PurePrivateAllocator::new()),
            AllocatorKind::Ownership => Box::new(OwnershipAllocator::new()),
            AllocatorKind::MtLike => Box::new(MtLikeAllocator::new()),
            AllocatorKind::Hoard(cfg) | AllocatorKind::HoardMagazine(cfg) => {
                Box::new(HoardAllocator::with_config(*cfg).expect("valid hoard config"))
            }
        }
    }

    /// The default sweep, in the paper's presentation order, plus the
    /// magazine-front-end variant of Hoard as the final column.
    pub fn sweep() -> Vec<AllocatorKind> {
        vec![
            AllocatorKind::Serial,
            AllocatorKind::MtLike,
            AllocatorKind::PurePrivate,
            AllocatorKind::Ownership,
            AllocatorKind::Hoard(HoardConfig::new()),
            AllocatorKind::HoardMagazine(HoardConfig::with_default_magazines()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_allocates() {
        for kind in AllocatorKind::sweep() {
            let a = kind.build();
            unsafe {
                let p = a.allocate(64).expect("fresh allocator serves");
                a.deallocate(p);
            }
            assert_eq!(a.stats().live_current, 0, "{}", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = AllocatorKind::sweep().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn magazine_kind_actually_enables_the_frontend() {
        match AllocatorKind::sweep().last().unwrap() {
            AllocatorKind::HoardMagazine(cfg) => {
                assert!(cfg.magazine_capacity > 0, "front-end must be on")
            }
            other => panic!("sweep must end with hoard-mag, got {}", other.label()),
        }
    }
}
