//! The speedup runner behind every scalability figure.

use crate::factory::AllocatorKind;
use crate::table::Table;
use hoard_mem::MtAllocator;
use hoard_workloads::WorkloadResult;
use serde::{Deserialize, Serialize};

/// One measured point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Virtual processors.
    pub threads: usize,
    /// Virtual makespan of this run.
    pub makespan: u64,
    /// `serial makespan at P=1` / `this makespan` (paper normalization).
    pub speedup: f64,
}

/// A full curve for one allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupSeries {
    /// Allocator label.
    pub allocator: String,
    /// Points in ascending thread order.
    pub points: Vec<SpeedupPoint>,
}

/// Run the paper-style speedup sweep: every allocator kind at every
/// thread count, fresh instance per run, normalized to the serial
/// allocator's one-processor makespan.
pub fn run_speedup(
    workload: &dyn Fn(&dyn MtAllocator, usize) -> WorkloadResult,
    kinds: &[AllocatorKind],
    threads: &[usize],
) -> Vec<SpeedupSeries> {
    // Normalization baseline: serial at P=1.
    let baseline = {
        let serial = AllocatorKind::Serial.build();
        workload(&*serial, 1).makespan.max(1)
    };

    kinds
        .iter()
        .map(|kind| {
            let points = threads
                .iter()
                .map(|&p| {
                    let alloc = kind.build();
                    let result = workload(&*alloc, p);
                    SpeedupPoint {
                        threads: p,
                        makespan: result.makespan,
                        speedup: baseline as f64 / result.makespan.max(1) as f64,
                    }
                })
                .collect();
            SpeedupSeries {
                allocator: kind.label().to_string(),
                points,
            }
        })
        .collect()
}

/// Render speedup series as a table: one row per thread count, one
/// column per allocator.
pub fn speedup_table(
    id: &str,
    title: &str,
    threads: &[usize],
    series: &[SpeedupSeries],
) -> Table {
    let mut columns = vec!["P".to_string()];
    columns.extend(series.iter().map(|s| s.allocator.clone()));
    let mut table = Table::new(id, title, columns);
    for (i, &p) in threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for s in series {
            row.push(format!("{:.2}", s.points[i].speedup));
        }
        table.push_row(row);
    }
    table.push_note("speedup normalized to the serial allocator at P=1");
    table.push_note("virtual-time makespans from the simulated SMP (see DESIGN.md)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_workloads::threadtest;

    #[test]
    fn speedup_sweep_has_expected_shape() {
        let params = threadtest::Params {
            total_objects: 2_000,
            batch: 50,
            size: 8,
            work_per_object: 30,
        };
        let kinds = [
            AllocatorKind::Serial,
            AllocatorKind::Hoard(hoard_core::HoardConfig::new()),
        ];
        let threads = [1usize, 4];
        let series = run_speedup(
            &|alloc, p| threadtest::run(alloc, p, &params),
            &kinds,
            &threads,
        );
        assert_eq!(series.len(), 2);
        let serial = &series[0];
        let hoard = &series[1];
        assert!(
            (serial.points[0].speedup - 1.0).abs() < 0.25,
            "serial at P=1 is the (noisy) baseline: {}",
            serial.points[0].speedup
        );
        assert!(
            hoard.points[1].speedup > serial.points[1].speedup,
            "hoard must beat serial at P=4"
        );
        let table = speedup_table("e2", "threadtest", &threads, &series);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns, vec!["P", "serial", "hoard"]);
    }
}
