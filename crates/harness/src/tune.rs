//! `hoardscope tune --ab` — adaptive tuning vs the static grid.
//!
//! The feedback controller's claim (DESIGN.md §13) is that no single
//! static `magazine_capacity` serves every size class, so the adaptive
//! policy should beat *every* static point on aggregate virtual
//! makespan once enough processors contend. This module runs the grid:
//! static capacities {8, 16, 32, 64} plus the adaptive controller,
//! across the workload suite (threadtest, larson, prod-cons, storm,
//! server-traffic replay, batch-skew) at P ∈ {8, 14}, every run with a
//! metrics registry attached — the controller is blind without its
//! sensors. Multi-threaded virtual makespans are bimodal (host
//! scheduling decides lock handoff order), so each cell is the best of
//! several runs — the cell's intrinsic cost.
//!
//! The same report doubles as the CI smoke gate: `adaptive_within(tol)`
//! checks the adaptive aggregate against the best static point per
//! thread count with a tolerance in percent (`ci/tuning_budget.txt`).

use crate::Table;
use hoard_core::{HoardAllocator, HoardConfig};
use hoard_mem::{MtAllocator, SizeClassTable};
use hoard_workloads::trace::{replay, Trace};
use hoard_workloads::{batch_skew, larson, prod_cons, server_traffic, storm, threadtest};
use std::sync::Arc;

/// Static capacities of the A/B grid. The adaptive point rides along
/// under the name `adaptive`.
pub const STATIC_GRID: [usize; 4] = [8, 16, 32, 64];

/// Thread counts the acceptance criteria name.
pub const THREAD_POINTS: [usize; 2] = [8, 14];

/// One configuration's aggregate makespan at one thread count.
#[derive(Debug, Clone)]
pub struct AbAggregate {
    /// Configuration name (`static-N` or `adaptive`).
    pub name: String,
    /// Virtual processors.
    pub threads: usize,
    /// Sum of per-workload best-of-N makespans.
    pub total: u64,
}

/// Everything one A/B sweep produces.
pub struct TuneAbReport {
    /// Per-cell makespans (workload × config × P).
    pub cells: Table,
    /// Aggregate makespan per config per P.
    pub aggregates: Vec<AbAggregate>,
    /// 512-B-class heap-lock bypass (percent) per config, measured on
    /// the magbench batch-churn pattern.
    pub bypass_512: Vec<(String, u64)>,
}

impl TuneAbReport {
    /// The best (lowest) static aggregate at `threads`.
    pub fn best_static(&self, threads: usize) -> Option<&AbAggregate> {
        self.aggregates
            .iter()
            .filter(|a| a.threads == threads && a.name != "adaptive")
            .min_by_key(|a| a.total)
    }

    /// The adaptive aggregate at `threads`.
    pub fn adaptive(&self, threads: usize) -> Option<&AbAggregate> {
        self.aggregates
            .iter()
            .find(|a| a.threads == threads && a.name == "adaptive")
    }

    /// Whether the adaptive aggregate beats every static point outright
    /// at every measured thread count (the full acceptance criterion).
    pub fn adaptive_beats_all(&self) -> bool {
        self.adaptive_within(0.0)
    }

    /// Whether the adaptive aggregate stays within `tolerance_pct`
    /// percent of the best static point at every measured thread count
    /// (the CI smoke criterion; 0.0 = must win outright).
    pub fn adaptive_within(&self, tolerance_pct: f64) -> bool {
        THREAD_POINTS.iter().all(|&p| {
            match (self.adaptive(p), self.best_static(p)) {
                (Some(a), Some(s)) => {
                    a.total as f64 <= s.total as f64 * (1.0 + tolerance_pct / 100.0)
                }
                _ => false,
            }
        })
    }

    /// Aggregate table (one row per config × P, ratio vs best static).
    pub fn aggregate_table(&self) -> Table {
        let mut t = Table::new(
            "tune-ab",
            "TUNE A/B: aggregate virtual makespan, adaptive vs static grid",
            vec![
                "P".into(),
                "config".into(),
                "aggregate".into(),
                "vs best static".into(),
            ],
        );
        for &p in &THREAD_POINTS {
            let best = self.best_static(p).map_or(1, |a| a.total).max(1);
            for a in self.aggregates.iter().filter(|a| a.threads == p) {
                t.push_row(vec![
                    p.to_string(),
                    a.name.clone(),
                    a.total.to_string(),
                    format!("{:+.2}%", 100.0 * (a.total as f64 - best as f64) / best as f64),
                ]);
            }
        }
        t.push_note("aggregate = sum of per-workload best-of-N makespans (lower is better)");
        t.push_note("acceptance: adaptive <= every static point at P=8 and P=14");
        t
    }

    /// Bypass table for the ROADMAP-documented 512-B gap.
    pub fn bypass_table(&self) -> Table {
        let mut t = Table::new(
            "tune-bypass",
            "TUNE A/B: 512-B class heap-lock bypass on magbench batch churn",
            vec!["config".into(), "bypass %".into()],
        );
        for (name, pct) in &self.bypass_512 {
            t.push_row(vec![name.clone(), pct.to_string()]);
        }
        t.push_note("acceptance: adaptive >= 94% (static-32 sits near 90%)");
        t
    }

    /// The full rendered report.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}",
            self.cells.render(),
            self.aggregate_table().render(),
            self.bypass_table().render()
        )
    }
}

/// The grid: `(name, config)` for each static point plus adaptive.
pub fn ab_grid() -> Vec<(String, HoardConfig)> {
    let mut grid: Vec<(String, HoardConfig)> = STATIC_GRID
        .iter()
        .map(|&c| {
            (
                format!("static-{c}"),
                HoardConfig::with_default_magazines().with_magazine_capacity(c),
            )
        })
        .collect();
    grid.push(("adaptive".into(), HoardConfig::with_adaptive()));
    grid
}

/// Build an allocator with its metrics registry attached — the
/// controller's sensors. Every A/B cell goes through this; an adaptive
/// allocator without a registry never ticks and would silently measure
/// the seed capacities only.
fn instrumented(config: HoardConfig) -> HoardAllocator {
    let h = HoardAllocator::with_config(config).expect("valid config");
    let registry = Arc::new(h.new_metrics_registry());
    h.attach_metrics(registry);
    h
}

/// Best (minimum) of `reps` runs. Multi-threaded virtual makespans are
/// bimodal — host scheduling decides lock-handoff order, and a cell
/// can land in a slow mode on any single run — so the median of a few
/// runs still flips between modes. The minimum converges on the cell's
/// intrinsic cost and makes config-to-config comparison stable enough
/// to gate on.
fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> u64 {
    (0..reps).map(|_| f()).min().expect("reps > 0")
}

/// Run the full A/B sweep. `quick` reduces scale and repetitions for
/// the CI smoke gate.
pub fn run_tune_ab(quick: bool) -> TuneAbReport {
    let reps = if quick { 8 } else { 12 };

    let tt = threadtest::Params {
        total_objects: if quick { 6_000 } else { 40_000 },
        ..Default::default()
    };
    let la = larson::Params {
        slots_per_thread: if quick { 200 } else { 1_000 },
        rounds: 2,
        ops_per_round: if quick { 1_000 } else { 2_000 },
        ..Default::default()
    };
    let pc = prod_cons::Params {
        total_objects: if quick { 6_000 } else { 40_000 },
        ..Default::default()
    };
    let st = storm::Params {
        rounds: if quick { 4 } else { 20 },
        ..Default::default()
    };
    let bs = batch_skew::Params {
        rounds: if quick { 6 } else { 40 },
        ..Default::default()
    };

    // Per-workload rep multiplier: prod-cons is the most deeply bimodal
    // cell (its fast mode depends on the producers winning the initial
    // lock handoffs), so its minimum needs more samples to converge.
    type Cell = Box<dyn Fn(&HoardAllocator, usize) -> u64>;
    let workloads: Vec<(&'static str, usize, Cell)> = vec![
        (
            "threadtest",
            1,
            Box::new(move |h, p| threadtest::run(h, p, &tt).makespan),
        ),
        (
            "larson",
            1,
            Box::new(move |h, p| larson::run(h, p, &la).makespan),
        ),
        (
            "prod-cons",
            3,
            Box::new(move |h, p| prod_cons::run(h, p, &pc).makespan),
        ),
        (
            "storm",
            1,
            Box::new(move |h, p| storm::run(h, p, &st).makespan),
        ),
        (
            "batch-skew",
            1,
            Box::new(move |h, p| batch_skew::run(h, p, &bs).makespan),
        ),
    ];

    let mut cells = Table::new(
        "tune-cells",
        "TUNE A/B: per-workload best-of-N makespans",
        vec![
            "workload".into(),
            "P".into(),
            "config".into(),
            "makespan".into(),
        ],
    );
    let grid = ab_grid();
    let mut aggregates: Vec<AbAggregate> = grid
        .iter()
        .flat_map(|(name, _)| {
            THREAD_POINTS.iter().map(|&p| AbAggregate {
                name: name.clone(),
                threads: p,
                total: 0,
            })
        })
        .collect();
    let mut add = |name: &str, p: usize, mk: u64| {
        let a = aggregates
            .iter_mut()
            .find(|a| a.name == name && a.threads == p)
            .expect("grid aggregate");
        a.total += mk;
    };

    for (wl_name, rep_mul, run_cell) in &workloads {
        for &p in &THREAD_POINTS {
            for (name, config) in &grid {
                let mk = best_of(reps * rep_mul, || run_cell(&instrumented(*config), p));
                cells.push_row(vec![
                    (*wl_name).into(),
                    p.to_string(),
                    name.clone(),
                    mk.to_string(),
                ]);
                add(name, p, mk);
            }
        }
    }

    // Server-traffic rides the `.trc` replay path: one generated trace
    // per thread count, replayed on every grid point.
    for &p in &THREAD_POINTS {
        let (trc, _) = server_traffic::generate(&server_traffic::Params {
            workers: p,
            sessions: if quick { 600 } else { 2_000 },
            ..Default::default()
        });
        let trace = Trace::from_trc(&trc).expect("generated traces convert");
        for (name, config) in &grid {
            let mk = best_of(reps, || replay(&instrumented(*config), &trace).makespan);
            cells.push_row(vec![
                "server-traffic".into(),
                p.to_string(),
                name.clone(),
                mk.to_string(),
            ]);
            add(name, p, mk);
        }
    }
    cells.push_note(format!(
        "best of {reps} runs (multi-threaded makespans are bimodal under host \
         scheduling; the minimum is each cell's intrinsic cost); metrics \
         registry attached to every cell"
    ));

    let scale = if quick { 8_000 } else { 40_000 };
    let bypass_512 = grid
        .iter()
        .map(|(name, config)| (name.clone(), bypass_512(*config, scale)))
        .collect();

    TuneAbReport {
        cells,
        aggregates,
        bypass_512,
    }
}

/// 512-B-class heap-lock bypass (percent) on the magbench batch-churn
/// pattern: allocate 100, free 100, `scale` allocations total, single
/// thread, metrics attached. This is the exact shape
/// `results/magazine_frontend.txt` documents at ~90 % for static-32.
pub fn bypass_512(config: HoardConfig, scale: u64) -> u64 {
    const BATCH: usize = 100;
    const SIZE: usize = 512;
    let h = instrumented(config);
    let mut ptrs = Vec::with_capacity(BATCH);
    for _ in 0..scale / BATCH as u64 {
        for _ in 0..BATCH {
            ptrs.push(unsafe { h.allocate(SIZE) }.expect("oom"));
        }
        for p in ptrs.drain(..) {
            unsafe { h.deallocate(p) };
        }
    }
    h.flush_frontend();
    let snap = h.metrics_snapshot().expect("registry attached");
    let table = SizeClassTable::for_superblock_size(config.superblock_size);
    let class = table.index_for(SIZE).expect("512 B is a small class");
    snap.class_totals(class).bypass_pct()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_four_statics_and_adaptive() {
        let grid = ab_grid();
        assert_eq!(grid.len(), STATIC_GRID.len() + 1);
        assert!(grid.iter().any(|(n, c)| n == "adaptive" && c.adaptive_tuning));
        for (n, c) in &grid {
            if n != "adaptive" {
                assert!(!c.adaptive_tuning);
            }
        }
    }

    #[test]
    fn adaptive_lifts_the_512b_class_over_static_32() {
        let adaptive = bypass_512(HoardConfig::with_adaptive(), 8_000);
        let static32 = bypass_512(HoardConfig::with_default_magazines(), 8_000);
        assert!(
            adaptive > static32,
            "adaptive {adaptive}% should beat static-32 {static32}%"
        );
        // The ISSUE's regression floor: the adaptive controller must
        // hold the 512-B class at >= 94 % bypass on the batch pattern.
        assert!(adaptive >= 94, "adaptive bypass {adaptive}% below the 94% floor");
    }

    #[test]
    fn report_math_finds_best_static_and_applies_tolerance() {
        let report = TuneAbReport {
            cells: Table::new("t", "t", vec!["x".into()]),
            aggregates: vec![
                AbAggregate { name: "static-8".into(), threads: 8, total: 100 },
                AbAggregate { name: "static-64".into(), threads: 8, total: 90 },
                AbAggregate { name: "adaptive".into(), threads: 8, total: 91 },
                AbAggregate { name: "static-8".into(), threads: 14, total: 100 },
                AbAggregate { name: "static-64".into(), threads: 14, total: 95 },
                AbAggregate { name: "adaptive".into(), threads: 14, total: 94 },
            ],
            bypass_512: vec![],
        };
        assert_eq!(report.best_static(8).unwrap().total, 90);
        assert!(!report.adaptive_beats_all(), "91 > 90 at P=8");
        assert!(report.adaptive_within(2.0), "91 <= 90 * 1.02");
    }
}
