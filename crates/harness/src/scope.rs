//! `hoardscope` — turn a collected [`TraceLog`] (and optionally a
//! [`MetricsSnapshot`]) into the three diagnoses an allocator engineer
//! actually asks for:
//!
//! 1. **which locks hurt** — per-heap acquisition/contention/wait/hold,
//!    ranked by virtual wait;
//! 2. **transfer storms** — superblock migration between the global and
//!    processor heaps, bucketed over virtual time so bursts stand out;
//! 3. **front-end bypass** — per size class, how much traffic the
//!    magazines kept away from the heap locks.
//!
//! Everything except the hardening gauges is derived from the event log
//! alone, so a trace JSON written by one process can be analyzed by
//! another (`hoardscope FILE`).

use crate::Table;
use hoard_core::{
    EventKind, HoardAllocator, HoardConfig, MetricsSnapshot, TraceConfig, TraceLog, TraceSink,
};
use hoard_workloads::larson;
use std::sync::Arc;

/// Everything one traced run produces.
pub struct ScopeRun {
    /// The collected event trace.
    pub log: TraceLog,
    /// The metrics registry's snapshot at quiescence.
    pub metrics: MetricsSnapshot,
    /// Virtual makespan of the workload.
    pub makespan: u64,
}

/// Run larson (the remote-free-heavy benchmark) on `threads` virtual
/// processors with tracing and metrics attached — the standard demo and
/// test fixture. Deterministic: the workload seed and the virtual clock
/// are both fixed.
pub fn traced_larson(threads: usize, quick: bool) -> ScopeRun {
    traced_larson_with(HoardConfig::with_default_magazines(), threads, quick)
}

/// [`traced_larson`] against an explicit allocator configuration — the
/// contention gate runs it once per back-end and diffs the lock tables.
pub fn traced_larson_with(config: HoardConfig, threads: usize, quick: bool) -> ScopeRun {
    let h = HoardAllocator::with_config(config).expect("valid config");
    let sink = Arc::new(TraceSink::with_config(TraceConfig {
        tracks: threads.max(1),
        capacity: 1 << 18,
    }));
    let registry = Arc::new(h.new_metrics_registry());
    h.attach_tracer(Arc::clone(&sink));
    h.attach_metrics(Arc::clone(&registry));

    let mut params = larson::Params::default();
    if quick {
        params.slots_per_thread = 200;
        params.rounds = 2;
        params.ops_per_round = 1_000;
    }
    let result = larson::run(&h, threads, &params);
    h.flush_frontend();
    ScopeRun {
        log: sink.collect(),
        metrics: h.metrics_snapshot().expect("registry attached"),
        makespan: result.makespan,
    }
}

/// Total heap-lock acquisitions in a trace — the contention gate's
/// scalar. Every `LockAcquire` is one acquisition of one heap's `VLock`
/// (magazine and lock-free back-end traffic never emits one).
pub fn heap_lock_acquisitions(log: &TraceLog) -> u64 {
    log.count(EventKind::LockAcquire) as u64
}

/// Count events of `kind` per `arg0` (heap or class index, depending on
/// the kind), returning `(arg0, count, sum_arg1)` ascending by index.
fn by_arg0(log: &TraceLog, kind: EventKind) -> Vec<(u32, u64, u64)> {
    let mut acc: Vec<(u32, u64, u64)> = Vec::new();
    for (_, ev) in log.iter().filter(|(_, e)| e.kind == kind) {
        match acc.iter_mut().find(|(i, _, _)| *i == ev.arg0) {
            Some((_, n, s)) => {
                *n += 1;
                *s += ev.arg1;
            }
            None => acc.push((ev.arg0, 1, ev.arg1)),
        }
    }
    acc.sort_by_key(|&(i, _, _)| i);
    acc
}

/// Per-heap lock traffic ranked by total virtual wait (worst first).
/// Heap 0 is the global heap.
pub fn lock_table(log: &TraceLog) -> Table {
    let acquires = by_arg0(log, EventKind::LockAcquire);
    let releases = by_arg0(log, EventKind::LockRelease);
    let mut rows: Vec<(u32, u64, u64, u64, u64)> = acquires
        .iter()
        .map(|&(heap, n, wait)| {
            let contended = log
                .iter()
                .filter(|(_, e)| {
                    e.kind == EventKind::LockAcquire && e.arg0 == heap && e.arg1 > 0
                })
                .count() as u64;
            let held = releases
                .iter()
                .find(|&&(h, _, _)| h == heap)
                .map_or(0, |&(_, _, s)| s);
            (heap, n, contended, wait, held)
        })
        .collect();
    rows.sort_by_key(|&(_, _, _, wait, _)| std::cmp::Reverse(wait));

    let mut t = Table::new(
        "locks",
        "heap locks by virtual wait (0 = global heap)",
        vec![
            "heap".into(),
            "acquires".into(),
            "contended".into(),
            "wait".into(),
            "held".into(),
        ],
    );
    for (heap, n, contended, wait, held) in rows {
        t.push_row(vec![
            heap.to_string(),
            n.to_string(),
            contended.to_string(),
            wait.to_string(),
            held.to_string(),
        ]);
    }
    t.push_note("wait/held are virtual time units; contended = acquires with nonzero wait");
    t
}

/// Superblock transfers bucketed over virtual time: storms show up as
/// buckets far above the mean. One row per nonempty bucket.
pub fn transfer_table(log: &TraceLog, buckets: usize) -> Table {
    let transfers: Vec<(u64, bool)> = log
        .iter()
        .filter_map(|(_, e)| match e.kind {
            EventKind::TransferToGlobal => Some((e.ts, true)),
            EventKind::TransferFromGlobal => Some((e.ts, false)),
            _ => None,
        })
        .collect();
    let mut t = Table::new(
        "transfers",
        "superblock transfers over virtual time",
        vec![
            "window".into(),
            "to-global".into(),
            "from-global".into(),
            "total".into(),
        ],
    );
    if transfers.is_empty() {
        t.push_note("no superblock transfers in this trace");
        return t;
    }
    let end = transfers.iter().map(|&(ts, _)| ts).max().unwrap() + 1;
    let width = end.div_ceil(buckets.max(1) as u64).max(1);
    let mut counts = vec![(0u64, 0u64); buckets.max(1)];
    for &(ts, out) in &transfers {
        let b = ((ts / width) as usize).min(counts.len() - 1);
        if out {
            counts[b].0 += 1;
        } else {
            counts[b].1 += 1;
        }
    }
    let peak = counts.iter().map(|&(o, i)| o + i).max().unwrap_or(0);
    for (b, &(out, inn)) in counts.iter().enumerate() {
        if out + inn == 0 {
            continue;
        }
        let lo = b as u64 * width;
        let mark = if out + inn == peak && peak > 0 { " <- peak" } else { "" };
        t.push_row(vec![
            format!("[{lo}, {})", lo + width),
            out.to_string(),
            inn.to_string(),
            format!("{}{mark}", out + inn),
        ]);
    }
    t.push_note(format!(
        "{} transfers total; a bucket far above the others is a transfer storm",
        transfers.len()
    ));
    t
}

/// Per-class traffic split into lock-free front-end operations
/// (magazine hits, deferred remote pushes) and locked heap operations.
pub fn class_table(log: &TraceLog) -> Table {
    let classes: Vec<u32> = {
        let mut c: Vec<u32> = log
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    EventKind::Alloc
                        | EventKind::AllocMagazine
                        | EventKind::Free
                        | EventKind::FreeMagazine
                        | EventKind::RemoteFreePush
                )
            })
            .map(|(_, e)| e.arg0)
            .collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let count = |kind: EventKind, class: u32| -> u64 {
        log.iter()
            .filter(|(_, e)| e.kind == kind && e.arg0 == class)
            .count() as u64
    };
    let mut t = Table::new(
        "classes",
        "per-class front-end bypass",
        vec![
            "class".into(),
            "allocs".into(),
            "frees".into(),
            "frontend".into(),
            "locked".into(),
            "bypass%".into(),
        ],
    );
    for class in classes {
        let front = count(EventKind::AllocMagazine, class)
            + count(EventKind::FreeMagazine, class)
            + count(EventKind::RemoteFreePush, class);
        let locked = count(EventKind::Alloc, class) + count(EventKind::Free, class);
        let allocs = count(EventKind::Alloc, class) + count(EventKind::AllocMagazine, class);
        let frees = count(EventKind::Free, class)
            + count(EventKind::FreeMagazine, class)
            + count(EventKind::RemoteFreePush, class);
        let total = front + locked;
        t.push_row(vec![
            class.to_string(),
            allocs.to_string(),
            frees.to_string(),
            front.to_string(),
            locked.to_string(),
            format!("{:.1}", 100.0 * front as f64 / total.max(1) as f64),
        ]);
    }
    t.push_note("frontend = magazine ops + deferred remote pushes (no heap lock taken)");
    t
}

/// Event counts by kind, descending, with per-track totals in the notes.
pub fn event_summary(log: &TraceLog) -> Table {
    let mut t = Table::new(
        "events",
        "trace summary",
        vec!["event".into(), "count".into()],
    );
    let mut counts: Vec<(EventKind, usize)> = EventKind::ALL
        .iter()
        .map(|&k| (k, log.count(k)))
        .filter(|&(_, n)| n > 0)
        .collect();
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (kind, n) in counts {
        t.push_row(vec![kind.label().to_string(), n.to_string()]);
    }
    let tracks: Vec<String> = log
        .tracks
        .iter()
        .map(|tr| format!("proc {}: {}", tr.proc, tr.events.len()))
        .collect();
    t.push_note(format!(
        "{} events on {} tracks ({}); {} dropped",
        log.total_events(),
        log.tracks.len(),
        tracks.join(", "),
        log.dropped
    ));
    t
}

/// Hardening and histogram digests only the registry knows.
pub fn metrics_table(m: &MetricsSnapshot) -> Table {
    let mut t = Table::new(
        "metrics",
        "registry digests",
        vec!["metric".into(), "value".into()],
    );
    let hist = |name: &str, h: &hoard_core::HistogramSnapshot| {
        vec![
            name.to_string(),
            format!("n={} mean={:.1} p99={}", h.count, h.mean(), h.percentile(0.99)),
        ]
    };
    t.push_row(hist("lock wait", &m.lock_wait));
    t.push_row(hist("lock hold", &m.lock_hold));
    t.push_row(hist("transfer fullness %", &m.transfer_fullness));
    t.push_row(hist("magazine fill", &m.magazine_fill));
    t.push_row(vec![
        "corruption reports".into(),
        m.hardening.corruption_reports.to_string(),
    ]);
    t.push_row(vec!["quarantined".into(), m.hardening.quarantined.to_string()]);
    t.push_row(vec![
        "oom chunk reclaims".into(),
        m.hardening.chunk_reclaims.to_string(),
    ]);
    t.push_row(vec![
        "oom rescued allocs".into(),
        m.hardening.rescued_allocations.to_string(),
    ]);
    t.push_row(vec![
        "sb registry occupancy".into(),
        format!(
            "{}/{} ({:.1}%)",
            m.registry.occupancy,
            m.registry.capacity,
            100.0 * m.registry.occupancy_ratio()
        ),
    ]);
    t.push_row(vec![
        "sb registry degraded".into(),
        if m.registry.overflowed {
            "YES (overflow latched; mask checks fall back to headers)".into()
        } else {
            "no".to_string()
        },
    ]);
    t
}

/// The full text report: event summary, lock ranking, transfer
/// timeline, bypass rates, and (when a registry snapshot is available)
/// the histogram/hardening digests.
pub fn scope_report(log: &TraceLog, metrics: Option<&MetricsSnapshot>) -> String {
    let mut out = String::new();
    out.push_str(&event_summary(log).render());
    out.push('\n');
    out.push_str(&lock_table(log).render());
    out.push('\n');
    out.push_str(&transfer_table(log, 20).render());
    out.push('\n');
    out.push_str(&class_table(log).render());
    if let Some(m) = metrics {
        out.push('\n');
        out.push_str(&metrics_table(m).render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_renders_without_panicking() {
        let log = TraceLog {
            tracks: vec![],
            dropped: 0,
        };
        let report = scope_report(&log, None);
        assert!(report.contains("trace summary"));
        assert!(report.contains("no superblock transfers"));
    }
}
