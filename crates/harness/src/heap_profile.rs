//! The `hoardscope profile` toolchain: live-heap profiling of workloads
//! and `.trc` replays, fragmentation timelines, leak reports, and the
//! CI memory gate.
//!
//! A [`HeapProfiler`] is attached to a fresh allocator, the workload
//! (or a deterministic `.trc` replay) runs, and at quiesce — after
//! `flush_frontend`, inside a pinned [`sequential_scope`]
//! (hoard_sim::sequential_scope) — the books are frozen into a
//! [`ProfileSnapshot`] plus a structural [`HeapMap`]. The gate then
//! scores the pair against the checked-in budgets
//! (`ci/memory_budget.txt`): a fragmentation ceiling, a leaked-bytes
//! ceiling (zero for the stock catalog — every workload frees what it
//! allocates), and a held-peak ceiling per workload.

use hoard_core::{
    HeapMap, HeapProfiler, HoardAllocator, HoardConfig, ProfileConfig, ProfileSnapshot, TrcTrace,
    HEAP_PROFILE_SCHEMA,
};
use hoard_mem::MtAllocator;
use hoard_trace::jsonio::{obj, JsonValue};
use hoard_workloads::trace::{replay, Trace};
use hoard_workloads::{larson, prod_cons, server_traffic, threadtest, WorkloadResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Workloads the memory gate runs by default.
pub const PROFILE_CATALOG: [&str; 3] = ["threadtest", "prod-cons", "server-traffic"];

/// Site id used by [`inject_leak`]: deliberately leaked blocks show up
/// in the report under this site (named `injected_leak`).
pub const INJECTED_LEAK_SITE: u32 = 0xDEAD;

/// One profiled run: the workload result, the frozen profile, and the
/// structural heap map at quiesce.
pub struct ProfiledRun {
    /// Workload or catalog entry name (or the `.trc` path).
    pub name: String,
    /// The profiled run's result (profiling charges included in the
    /// makespan).
    pub result: WorkloadResult,
    /// Makespan of an identical run without the profiler attached
    /// (`None` when only the profiled run was performed).
    pub plain_makespan: Option<u64>,
    /// The frozen profile: sites, timeline, leaks.
    pub profile: ProfileSnapshot,
    /// Per-heap × per-class occupancy at quiesce.
    pub heap_map: HeapMap,
}

impl ProfiledRun {
    /// Profiling overhead as a percentage of the plain makespan
    /// (`None` without a baseline run).
    pub fn overhead_pct(&self) -> Option<f64> {
        let plain = self.plain_makespan?;
        if plain == 0 {
            return Some(0.0);
        }
        Some(100.0 * (self.result.makespan as f64 - plain as f64) / plain as f64)
    }

    /// The run's fragmentation `A/U`: held peak over requested live
    /// peak, as [`WorkloadResult::fragmentation`] defines it.
    pub fn fragmentation(&self) -> Option<f64> {
        self.result.fragmentation()
    }
}

/// Run one profilable workload with (and optionally without) a
/// profiler attached. `name` is one of [`PROFILE_CATALOG`] or `larson`
/// (profilable for overhead studies, not part of the gate catalog);
/// `threadtest`, `prod-cons`, and `larson` run on the concurrent
/// machine, `server-traffic` is generated and replayed
/// deterministically. With `measure_overhead` an identical bare run
/// provides the `plain_makespan` baseline.
///
/// # Panics
///
/// Panics on unknown workload names (the CLI validates first).
pub fn profile_workload(
    name: &str,
    config: HoardConfig,
    threads: usize,
    quick: bool,
    pconfig: ProfileConfig,
    measure_overhead: bool,
    inject_leak_bytes: u64,
) -> ProfiledRun {
    if name == "server-traffic" {
        let sessions = if quick { 5_000 } else { 50_000 };
        let (trc, _) = server_traffic::generate(&server_traffic::Params {
            workers: threads.max(1),
            sessions,
            ..Default::default()
        });
        let mut run = profile_trc(&trc, config, pconfig, measure_overhead, inject_leak_bytes)
            .expect("generated traffic replays");
        run.name = name.to_string();
        return run;
    }

    let run_once = |alloc: &HoardAllocator| -> WorkloadResult {
        match name {
            "threadtest" => {
                let mut p = threadtest::Params::default();
                if quick {
                    p.total_objects = 20_000;
                }
                threadtest::run(alloc, threads, &p)
            }
            "prod-cons" => {
                let mut p = prod_cons::Params::default();
                if quick {
                    p.total_objects = 10_000;
                }
                prod_cons::run(alloc, threads, &p)
            }
            "larson" => {
                let mut p = larson::Params::default();
                if quick {
                    p.slots_per_thread = 200;
                    p.rounds = 2;
                    p.ops_per_round = 1_000;
                }
                larson::run(alloc, threads, &p)
            }
            other => panic!(
                "profilable workloads are threadtest|prod-cons|server-traffic|larson, got {other:?}"
            ),
        }
    };

    let plain_makespan = measure_overhead.then(|| {
        let h = HoardAllocator::with_config(config).expect("valid config");
        run_once(&h).makespan
    });

    let h = HoardAllocator::with_config(config).expect("valid config");
    let prof = Arc::new(HeapProfiler::with_config(pconfig));
    h.attach_profiler(Arc::clone(&prof));
    let result = run_once(&h);
    let (profile, heap_map) = quiesce(&h, &prof, result.makespan, inject_leak_bytes);

    ProfiledRun {
        name: name.to_string(),
        result,
        plain_makespan,
        profile,
        heap_map,
    }
}

/// Profile a deterministic `.trc` replay: replay with a profiler
/// attached, quiesce, freeze. Replaying the same trace twice with the
/// same [`ProfileConfig`] yields byte-identical profiles — the
/// determinism contract `crates/workloads/tests/trc_replay.rs` checks.
///
/// # Errors
///
/// Propagates [`Trace::from_trc`] conversion failures.
pub fn profile_trc(
    trc: &TrcTrace,
    config: HoardConfig,
    pconfig: ProfileConfig,
    measure_overhead: bool,
    inject_leak_bytes: u64,
) -> Result<ProfiledRun, String> {
    let trace = Trace::from_trc(trc)?;
    let plain_makespan = measure_overhead.then(|| {
        let h = HoardAllocator::with_config(config).expect("valid config");
        replay(&h, &trace).makespan
    });

    let h = HoardAllocator::with_config(config).expect("valid config");
    let prof = Arc::new(HeapProfiler::with_config(pconfig));
    h.attach_profiler(Arc::clone(&prof));
    let result = replay(&h, &trace);
    let (profile, heap_map) = quiesce(&h, &prof, result.makespan, inject_leak_bytes);

    Ok(ProfiledRun {
        name: format!("trc seed={} {}", trc.seed, trc.config),
        result,
        plain_makespan,
        profile,
        heap_map,
    })
}

/// Flush the front-end and freeze profile + heap map inside a pinned
/// deterministic scope (the same idiom as `replay_trc`'s metrics
/// quiesce): proc 0, t = makespan, so the snapshots are a pure
/// function of the run. A nonzero `inject_leak_bytes` deliberately
/// allocates-and-abandons that many bytes first (negative-test hook
/// for the memory gate).
fn quiesce(
    h: &HoardAllocator,
    prof: &HeapProfiler,
    makespan: u64,
    inject_leak_bytes: u64,
) -> (ProfileSnapshot, HeapMap) {
    hoard_sim::sequential_scope(1, || {
        hoard_sim::switch_context(0, makespan);
        if inject_leak_bytes > 0 {
            inject_leak(h, prof, inject_leak_bytes);
        }
        h.flush_frontend();
        (prof.snapshot(hoard_sim::now()), h.heap_map_snapshot())
    })
}

/// Allocate-and-abandon `bytes` under [`INJECTED_LEAK_SITE`], so the
/// gate's leak check has something real to fail on.
fn inject_leak(h: &HoardAllocator, prof: &HeapProfiler, bytes: u64) {
    prof.name_site(INJECTED_LEAK_SITE, "injected_leak");
    let prev = hoard_sim::set_alloc_site(INJECTED_LEAK_SITE);
    let mut remaining = bytes;
    while remaining > 0 {
        let size = remaining.min(256) as usize;
        // Leaked on purpose: never deallocated, so it survives into
        // the quiesce report.
        unsafe { h.allocate(size) }.expect("leak injection allocates");
        remaining -= size as u64;
    }
    hoard_sim::set_alloc_site(prev);
}

/// Memory budgets for one workload. `None` = unchecked.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryBudget {
    /// Ceiling on fragmentation `A/U` (held peak / requested live peak).
    pub max_fragmentation: Option<f64>,
    /// Ceiling on leaked bytes at quiesce (0 for the stock catalog).
    pub max_leaked_bytes: Option<u64>,
    /// Ceiling on held-peak bytes `max A`.
    pub max_held_peak_bytes: Option<u64>,
}

impl MemoryBudget {
    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "max_fragmentation" => {
                self.max_fragmentation =
                    Some(value.parse().map_err(|_| format!("bad float {value:?}"))?);
            }
            "max_leaked_bytes" => {
                self.max_leaked_bytes =
                    Some(value.parse().map_err(|_| format!("bad integer {value:?}"))?);
            }
            "max_held_peak_bytes" => {
                self.max_held_peak_bytes =
                    Some(value.parse().map_err(|_| format!("bad integer {value:?}"))?);
            }
            other => return Err(format!("unknown budget key {other:?}")),
        }
        Ok(())
    }

    /// Budget violations for a profiled run, as human-readable
    /// messages; empty means the run passes.
    pub fn violations(&self, run: &ProfiledRun) -> Vec<String> {
        let mut out = Vec::new();
        if let (Some(ceiling), Some(frag)) = (self.max_fragmentation, run.fragmentation()) {
            if frag > ceiling {
                out.push(format!(
                    "fragmentation {frag:.3} exceeds budget {ceiling:.3} (held_peak {} / live_peak {})",
                    run.result.snapshot.held_peak, run.result.max_live_requested
                ));
            }
        }
        if let Some(ceiling) = self.max_leaked_bytes {
            let leaked = run.profile.leaked_bytes();
            if leaked > ceiling {
                let top = run
                    .profile
                    .leaks
                    .first()
                    .map(|l| format!("; top site {} ({} B)", l.name, l.bytes))
                    .unwrap_or_default();
                out.push(format!("leaked {leaked} B exceeds budget {ceiling} B{top}"));
            }
        }
        if let Some(ceiling) = self.max_held_peak_bytes {
            let held = run.result.snapshot.held_peak;
            if held > ceiling {
                out.push(format!("held peak {held} B exceeds budget {ceiling} B"));
            }
        }
        out
    }
}

/// The parsed `ci/memory_budget.txt`: global keys plus per-workload
/// overrides (`<workload>.<key> <value>` lines).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BudgetFile {
    global: MemoryBudget,
    per_workload: BTreeMap<String, MemoryBudget>,
}

impl BudgetFile {
    /// Parse the budget format: `key value` per line, `#` comments,
    /// `workload.key value` for per-workload overrides.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<BudgetFile, String> {
        let mut file = BudgetFile::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(key), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {}: expected `key value`: {line:?}", lineno + 1));
            };
            let target = match key.split_once('.') {
                Some((workload, key)) => (
                    file.per_workload.entry(workload.to_string()).or_default(),
                    key,
                ),
                None => (&mut file.global, key),
            };
            target
                .0
                .set(target.1, value)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(file)
    }

    /// The effective budget for `workload`: global keys with any
    /// per-workload overrides applied on top.
    pub fn for_workload(&self, workload: &str) -> MemoryBudget {
        let mut b = self.global;
        if let Some(o) = self.per_workload.get(workload) {
            b.max_fragmentation = o.max_fragmentation.or(b.max_fragmentation);
            b.max_leaked_bytes = o.max_leaked_bytes.or(b.max_leaked_bytes);
            b.max_held_peak_bytes = o.max_held_peak_bytes.or(b.max_held_peak_bytes);
        }
        b
    }
}

/// The `heap_profile` section embedded in `hoardscope trc report`
/// documents: timeline summary (`A`/`U` endpoints and peaks), the top
/// `top_k` sites by live bytes, the leak totals, and the heap map's
/// aggregate gauges.
pub fn heap_profile_section(run: &ProfiledRun, top_k: usize) -> JsonValue {
    let p = &run.profile;
    let peak_frag = p
        .timeline
        .iter()
        .filter(|pt| pt.live_bytes > 0)
        .map(|pt| pt.held_bytes as f64 / pt.live_bytes as f64)
        .fold(f64::NAN, f64::max);
    let timeline = obj(vec![
        ("points", JsonValue::Uint(p.timeline.len() as u64)),
        ("interval", JsonValue::Uint(p.timeline_interval)),
        ("held_peak_bytes", JsonValue::Uint(p.held_peak_bytes)),
        ("live_peak_bytes", JsonValue::Uint(p.live_peak_bytes)),
        (
            "peak_fragmentation",
            if peak_frag.is_nan() {
                JsonValue::Null
            } else {
                JsonValue::Float(peak_frag)
            },
        ),
    ]);
    let top_sites = JsonValue::Arr(
        p.top_sites(top_k)
            .iter()
            .map(|s| {
                obj(vec![
                    ("site", JsonValue::Uint(s.site as u64)),
                    ("name", JsonValue::Str(s.name.clone())),
                    ("live_bytes", JsonValue::Uint(s.live_bytes)),
                    ("total_bytes", JsonValue::Uint(s.total_bytes)),
                    ("total_allocs", JsonValue::Uint(s.total_allocs)),
                ])
            })
            .collect(),
    );
    let leaks = obj(vec![
        ("bytes", JsonValue::Uint(p.leaked_bytes())),
        (
            "objects",
            JsonValue::Uint(p.leaks.iter().map(|l| l.objects).sum()),
        ),
        ("sites", JsonValue::Uint(p.leaks.len() as u64)),
    ]);
    let heap_map = obj(vec![
        ("ts", JsonValue::Uint(run.heap_map.ts)),
        ("live_bytes", JsonValue::Uint(run.heap_map.live_bytes())),
        ("held_bytes", JsonValue::Uint(run.heap_map.held_bytes())),
        (
            "empty_superblocks",
            JsonValue::Uint(run.heap_map.empty_superblocks() as u64),
        ),
    ]);
    obj(vec![
        ("schema", JsonValue::Str(HEAP_PROFILE_SCHEMA.to_string())),
        ("total_allocs", JsonValue::Uint(p.total_allocs)),
        ("unmatched_frees", JsonValue::Uint(p.unmatched_frees)),
        ("timeline", timeline),
        ("top_sites", top_sites),
        ("leaks", leaks),
        ("heap_map", heap_map),
    ])
}

/// Render a profiled run as the `hoardscope profile` text report.
pub fn render_profile(run: &ProfiledRun, top_k: usize, with_timeline: bool) -> String {
    let p = &run.profile;
    let mut out = String::new();
    out.push_str(&format!(
        "== {} ==\nmakespan {}{}  allocs {}  frees {}  live@end {} B\n",
        run.name,
        run.result.makespan,
        run.overhead_pct()
            .map(|o| format!(" (profiling overhead {o:.2}%)"))
            .unwrap_or_default(),
        p.total_allocs,
        p.total_frees,
        p.live_bytes,
    ));
    out.push_str(&format!(
        "fragmentation A/U {}  held_peak {} B  live_peak {} B  empty superblocks {}\n",
        run.fragmentation()
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "n/a".to_string()),
        run.result.snapshot.held_peak,
        p.live_peak_bytes,
        run.heap_map.empty_superblocks(),
    ));
    out.push_str(&format!("top {} sites by live bytes:\n", top_k.min(p.sites.len())));
    for s in p.top_sites(top_k) {
        out.push_str(&format!(
            "  {:<20} live {:>10} B ({} objs)  cumulative {:>12} B ({} allocs)\n",
            s.name, s.live_bytes, s.live_objects, s.total_bytes, s.total_allocs
        ));
    }
    if p.leaks.is_empty() {
        out.push_str("leaks: none\n");
    } else {
        out.push_str(&format!(
            "leaks: {} B in {} objects across {} sites (age deciles {:?})\n",
            p.leaked_bytes(),
            p.leaks.iter().map(|l| l.objects).sum::<u64>(),
            p.leaks.len(),
            p.age_deciles,
        ));
        for l in &p.leaks {
            out.push_str(&format!(
                "  {:<20} {:>10} B in {} objects, oldest age {}\n",
                l.name, l.bytes, l.objects, l.oldest_age
            ));
        }
    }
    if with_timeline {
        out.push_str(&format!("timeline ({} points):\n", p.timeline.len()));
        for pt in &p.timeline {
            out.push_str(&format!(
                "  t={:<12} A={:<12} U={}\n",
                pt.ts, pt.held_bytes, pt.live_bytes
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_traffic() -> TrcTrace {
        server_traffic::generate(&server_traffic::Params {
            workers: 2,
            sessions: 800,
            seed: 7,
            ..Default::default()
        })
        .0
    }

    #[test]
    fn profiled_replay_attributes_sites_and_finds_no_leaks() {
        let run = profile_trc(
            &quick_traffic(),
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            0,
        )
        .expect("replays");
        // Server traffic stamps site = tenant + 1, so every alloc is
        // attributed and the untagged site never appears.
        assert!(run.profile.sites.iter().all(|s| s.site != 0));
        assert!(run.profile.sites.len() > 1, "multiple tenants profiled");
        assert_eq!(run.profile.total_allocs, run.result.snapshot.allocs);
        assert_eq!(run.profile.leaked_bytes(), 0, "traffic frees everything");
        assert_eq!(run.profile.live_bytes, 0);
        assert!(!run.profile.timeline.is_empty(), "timeline sampled");
    }

    #[test]
    fn profiled_replay_is_deterministic() {
        let trc = quick_traffic();
        let a = profile_trc(
            &trc,
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            0,
        )
        .unwrap();
        let b = profile_trc(
            &trc,
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            0,
        )
        .unwrap();
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.profile, b.profile, "profiles byte-identical");
        assert_eq!(a.heap_map, b.heap_map);
    }

    #[test]
    fn injected_leak_trips_the_gate_and_clean_runs_pass() {
        let budget = BudgetFile::parse("max_leaked_bytes 0\n").unwrap();
        let clean = profile_trc(
            &quick_traffic(),
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            0,
        )
        .unwrap();
        assert!(budget.for_workload("x").violations(&clean).is_empty());

        let leaky = profile_trc(
            &quick_traffic(),
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            4_096,
        )
        .unwrap();
        assert_eq!(leaky.profile.leaked_bytes(), 4_096);
        assert_eq!(leaky.profile.leaks[0].name, "injected_leak");
        let v = budget.for_workload("x").violations(&leaky);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("injected_leak"), "{v:?}");
    }

    #[test]
    fn budget_file_parses_overrides_and_rejects_junk() {
        let f = BudgetFile::parse(
            "# global\nmax_fragmentation 3.5\nmax_leaked_bytes 0\n\
             threadtest.max_held_peak_bytes 123456\n",
        )
        .unwrap();
        let t = f.for_workload("threadtest");
        assert_eq!(t.max_fragmentation, Some(3.5));
        assert_eq!(t.max_held_peak_bytes, Some(123_456));
        let other = f.for_workload("prod-cons");
        assert_eq!(other.max_held_peak_bytes, None);
        assert_eq!(other.max_leaked_bytes, Some(0));

        assert!(BudgetFile::parse("max_bogus 1\n").is_err());
        assert!(BudgetFile::parse("max_fragmentation\n").is_err());
        assert!(BudgetFile::parse("max_fragmentation 1 2\n").is_err());
    }

    #[test]
    fn catalog_workloads_profile_cleanly() {
        for name in PROFILE_CATALOG {
            let run = profile_workload(
                name,
                HoardConfig::with_default_magazines(),
                2,
                true,
                ProfileConfig::default(),
                false,
                0,
            );
            assert_eq!(run.profile.leaked_bytes(), 0, "{name} leaks");
            assert!(run.profile.total_allocs > 0, "{name} profiled nothing");
            assert!(
                run.heap_map.heaps.len() >= 2,
                "{name} heap map covers global + per-proc heaps"
            );
        }
    }

    #[test]
    fn report_section_shape() {
        let run = profile_trc(
            &quick_traffic(),
            HoardConfig::with_default_magazines(),
            ProfileConfig::default(),
            false,
            0,
        )
        .unwrap();
        let v = heap_profile_section(&run, 3);
        assert_eq!(v.get("schema").unwrap().as_str(), Some(HEAP_PROFILE_SCHEMA));
        let sites = v.get("top_sites").unwrap().as_array().unwrap();
        assert!(sites.len() <= 3);
        assert!(v
            .get("timeline")
            .unwrap()
            .get("points")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0);
        let text = render_profile(&run, 5, true);
        assert!(text.contains("top"), "{text}");
        assert!(text.contains("leaks: none"), "{text}");
    }
}
