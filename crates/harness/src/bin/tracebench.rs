//! `tracebench` — synthesize, store and replay allocation traces.
//!
//! ```text
//! tracebench synth out.trace --threads 8 --allocs 5000 --remote 150
//! tracebench replay out.trace            # all allocators, one table
//! tracebench replay out.trace --alloc hoard
//! ```
//!
//! Traces are the apples-to-apples instrument of allocator research: the
//! workload is frozen as data, so replay differences are attributable to
//! the allocator alone.

use hoard_harness::{AllocatorKind, Table};
use hoard_workloads::trace::{replay, synthesize, SynthesisParams, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("synth") => synth(&args[1..]),
        Some("replay") => run_replay(&args[1..]),
        _ => {
            eprintln!(
                "usage: tracebench synth FILE [--threads N] [--allocs N] \
                 [--remote PERMILLE] [--seed N]\n       \
                 tracebench replay FILE [--alloc NAME]"
            );
            std::process::exit(2);
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                std::process::exit(2);
            })
        })
}

fn synth(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("synth needs an output file");
        std::process::exit(2);
    };
    let params = SynthesisParams {
        threads: flag(args, "--threads").unwrap_or(4) as usize,
        allocs_per_thread: flag(args, "--allocs").unwrap_or(2_000) as usize,
        remote_free_permille: flag(args, "--remote").unwrap_or(100) as u32,
        seed: flag(args, "--seed").unwrap_or(0x7ACE),
        ..Default::default()
    };
    let trace = synthesize(&params);
    std::fs::write(path, trace.to_text()).expect("write trace");
    eprintln!(
        "wrote {path}: {} threads, {} events",
        trace.threads(),
        trace.len()
    );
}

fn run_replay(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("replay needs a trace file");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let trace = Trace::from_text(&text).unwrap_or_else(|e| {
        eprintln!("malformed trace: {e}");
        std::process::exit(2);
    });
    trace.validate().unwrap_or_else(|e| {
        eprintln!("invalid trace: {e}");
        std::process::exit(2);
    });

    let only = args
        .iter()
        .position(|a| a == "--alloc")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut table = Table::new(
        "trace",
        format!("replay of {path} ({} threads, {} events)", trace.threads(), trace.len()),
        vec![
            "allocator".into(),
            "makespan".into(),
            "throughput".into(),
            "remote frees".into(),
            "held peak".into(),
            "frag A/U".into(),
        ],
    );
    for kind in AllocatorKind::sweep() {
        if let Some(name) = &only {
            if kind.label() != name {
                continue;
            }
        }
        let alloc = kind.build();
        let result = replay(&*alloc, &trace);
        assert_eq!(result.snapshot.live_current, 0, "replay must return all memory");
        table.push_row(vec![
            kind.label().to_string(),
            result.makespan.to_string(),
            format!("{:.1}", result.throughput()),
            result.snapshot.remote_frees.to_string(),
            result.snapshot.held_peak.to_string(),
            format!("{:.2}", result.fragmentation().unwrap_or(f64::NAN)),
        ]);
    }
    table.push_note("identical events on every allocator; fresh instance per run");
    println!("{}", table.render());
}
