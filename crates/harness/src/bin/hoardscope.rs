//! `hoardscope` — analyze allocator telemetry traces.
//!
//! ```text
//! hoardscope --demo [--threads N] [--quick] [--lockfree]
//! hoardscope --demo --trace out.json          # also save the native trace
//! hoardscope --demo --chrome out.trace.json   # also save Chrome/Perfetto JSON
//! hoardscope --gate BUDGET [--threads N] [--quick]
//! hoardscope FILE                             # report on a saved native trace
//! ```
//!
//! `--demo` runs traced larson and prints the full report; `--lockfree`
//! switches the allocator to the lock-free back-end.
//!
//! `--gate` is the CI contention gate: it runs larson on both back-ends,
//! prints each lock ranking, and exits nonzero if the lock-free run's
//! heap-lock acquisitions exceed `BUDGET` (the checked-in budget lives
//! in `ci/contention_budget.txt`).
//!
//! The Chrome export loads in `chrome://tracing` or
//! <https://ui.perfetto.dev> — one track per virtual processor, lock
//! holds as duration slices, everything else as instants.

use hoard_core::{chrome_trace_json, HoardConfig, TraceLog};
use hoard_harness::{heap_lock_acquisitions, lock_table, scope_report, traced_larson_with};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--gate") {
        gate(&args);
    } else if args.iter().any(|a| a == "--demo") {
        demo(&args);
    } else if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        from_file(path);
    } else {
        eprintln!(
            "usage: hoardscope --demo [--threads N] [--quick] [--lockfree] \
             [--trace FILE] [--chrome FILE]\n       \
             hoardscope --gate BUDGET [--threads N] [--quick]\n       \
             hoardscope FILE"
        );
        std::process::exit(2);
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
}

fn threads_arg(args: &[String], default: usize) -> usize {
    flag_value(args, "--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(default)
}

fn demo(args: &[String]) {
    let threads = threads_arg(args, 4);
    let quick = args.iter().any(|a| a == "--quick");
    let config = if args.iter().any(|a| a == "--lockfree") {
        HoardConfig::with_lockfree()
    } else {
        HoardConfig::with_default_magazines()
    };
    let run = traced_larson_with(config, threads, quick);
    eprintln!(
        "traced larson: {} threads, makespan {}, {} events",
        threads,
        run.makespan,
        run.log.total_events()
    );
    if let Some(path) = flag_value(args, "--trace") {
        std::fs::write(path, run.log.to_json()).expect("write trace");
        eprintln!("wrote native trace to {path}");
    }
    if let Some(path) = flag_value(args, "--chrome") {
        std::fs::write(path, chrome_trace_json(&run.log)).expect("write chrome trace");
        eprintln!("wrote Chrome/Perfetto trace to {path} (open in ui.perfetto.dev)");
    }
    println!("{}", scope_report(&run.log, Some(&run.metrics)));
}

fn gate(args: &[String]) {
    let budget: u64 = flag_value(args, "--gate")
        .map(|v| v.parse().expect("--gate takes a heap-lock acquisition budget"))
        .expect("--gate requires a budget argument");
    let threads = threads_arg(args, 14);
    let quick = args.iter().any(|a| a == "--quick");

    let locked = traced_larson_with(HoardConfig::with_default_magazines(), threads, quick);
    let lockfree = traced_larson_with(HoardConfig::with_lockfree(), threads, quick);
    let locked_acqs = heap_lock_acquisitions(&locked.log);
    let lockfree_acqs = heap_lock_acquisitions(&lockfree.log);

    println!("== locked back-end (larson, {threads} threads) ==");
    println!("{}", lock_table(&locked.log).render());
    println!("== lock-free back-end (larson, {threads} threads) ==");
    println!("{}", lock_table(&lockfree.log).render());
    println!(
        "heap-lock acquisitions: locked={locked_acqs} lockfree={lockfree_acqs} \
         budget={budget} makespans: locked={} lockfree={}",
        locked.makespan, lockfree.makespan
    );
    if lockfree_acqs > budget {
        eprintln!(
            "contention gate FAILED: lock-free back-end took {lockfree_acqs} \
             heap-lock acquisitions, budget is {budget}"
        );
        std::process::exit(1);
    }
    eprintln!("contention gate passed: {lockfree_acqs} <= {budget}");
}

fn from_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let log = TraceLog::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a native trace (TraceLog JSON): {e}");
        std::process::exit(2);
    });
    println!("{}", scope_report(&log, None));
}
