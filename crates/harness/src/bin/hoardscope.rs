//! `hoardscope` — analyze allocator telemetry traces.
//!
//! ```text
//! hoardscope --demo [--threads N] [--quick] [--lockfree]
//! hoardscope --demo --trace out.json          # also save the native trace
//! hoardscope --demo --chrome out.trace.json   # also save Chrome/Perfetto JSON
//! hoardscope --gate BUDGET [--threads N] [--quick]
//! hoardscope FILE                             # report on a saved native trace
//!
//! hoardscope trc record WORKLOAD OUT.trc [--threads N] [--quick] [--lockfree]
//! hoardscope trc replay FILE.trc [--lockfree] [--twice]
//! hoardscope trc gen OUT.trc [--sessions N] [--workers N] [--seed S]
//! hoardscope trc report FILE.trc [--lockfree] [--json OUT]
//!
//! hoardscope profile [TARGET] [--top K] [--timeline] [--gate]
//!            [--budget FILE] [--inject-leak] [--overhead]
//!            [--threads N] [--quick] [--lockfree]
//!            [--json OUT] [--collapsed OUT]
//!
//! hoardscope tune --ab [--quick] [--gate TOLERANCE_PCT]
//! ```
//!
//! `--demo` runs traced larson and prints the full report; `--lockfree`
//! switches the allocator to the lock-free back-end.
//!
//! `--gate` is the CI contention gate: it runs larson on both back-ends,
//! prints each lock ranking and the superblock-registry gauges, and
//! exits nonzero if the lock-free run's heap-lock acquisitions exceed
//! `BUDGET` (the checked-in budget lives in `ci/contention_budget.txt`)
//! or either run's superblock registry latched degraded mode.
//!
//! `tune --ab` runs the adaptive-tuning A/B sweep: the feedback
//! controller vs a grid of static magazine capacities across the
//! workload suite at P ∈ {8, 14}. With `--gate TOLERANCE_PCT` it exits
//! nonzero unless the adaptive aggregate stays within that percentage
//! of the best static point (the CI budget lives in
//! `ci/tuning_budget.txt`); without it, the sweep must win outright.
//!
//! The `trc` subcommands drive the binary `.trc` allocation-trace
//! pipeline: `record` captures a named workload (threadtest|larson)
//! and prints the capture's virtual-time overhead, `replay` re-executes
//! a capture against a fresh allocator and prints the determinism
//! digest (`--twice` replays twice and fails on any divergence), `gen`
//! synthesizes server-shaped traffic, and `report` scores a replay as
//! JSON (including a `heap_profile` section from a second, profiled
//! replay). The `trc` prefix is optional — `hoardscope record …` works
//! too.
//!
//! `profile` is the live-heap profiler front-end. `TARGET` is either a
//! `.trc` capture (profiled via deterministic replay) or a catalog
//! workload name (threadtest|prod-cons|server-traffic); with no target
//! the whole catalog runs. It prints allocation-site Pareto tables and
//! the leak report, `--timeline` adds the A/U fragmentation timeline,
//! `--overhead` also runs an unprofiled baseline and reports the
//! virtual-time overhead, `--json`/`--collapsed` export the full
//! `hoard-heap-profile-v1` document and collapsed-stack site profile.
//! `--gate` is the CI memory gate: each run is scored against
//! `ci/memory_budget.txt` (or `--budget FILE`) and any violation —
//! leaked bytes, fragmentation ceiling, held-peak ceiling — exits
//! nonzero. `--inject-leak` deliberately leaks blocks so CI can prove
//! the gate fails loudly.
//!
//! The Chrome export loads in `chrome://tracing` or
//! <https://ui.perfetto.dev> — one track per virtual processor, lock
//! holds as duration slices, everything else as instants.

use hoard_core::{
    chrome_trace_json, jsonio, HoardConfig, ProfileConfig, TraceLog, TrcTrace,
};
use hoard_harness::{
    heap_lock_acquisitions, heap_profile_section, lock_table, profile_trc, profile_workload,
    record_workload, render_profile, replay_trc, report_for, run_tune_ab, scope_report,
    traced_larson_with, BudgetFile, ProfiledRun, PROFILE_CATALOG,
};
use hoard_workloads::server_traffic;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trc") {
        args.remove(0);
    }
    match args.first().map(String::as_str) {
        Some("tune") => tune(&args[1..]),
        Some("record") => trc_record(&args[1..]),
        Some("replay") => trc_replay(&args[1..]),
        Some("gen") => trc_gen(&args[1..]),
        Some("report") => trc_report(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        _ if args.iter().any(|a| a == "--gate") => gate(&args),
        _ if args.iter().any(|a| a == "--demo") => demo(&args),
        Some(path) if !path.starts_with("--") => from_file(path),
        _ => {
            eprintln!(
                "usage: hoardscope --demo [--threads N] [--quick] [--lockfree] \
                 [--trace FILE] [--chrome FILE]\n       \
                 hoardscope --gate BUDGET [--threads N] [--quick]\n       \
                 hoardscope FILE\n       \
                 hoardscope [trc] record WORKLOAD OUT.trc [--threads N] [--quick] [--lockfree]\n       \
                 hoardscope [trc] replay FILE.trc [--lockfree] [--twice]\n       \
                 hoardscope [trc] gen OUT.trc [--sessions N] [--workers N] [--seed S]\n       \
                 hoardscope [trc] report FILE.trc [--lockfree] [--json OUT]\n       \
                 hoardscope profile [TARGET] [--top K] [--timeline] [--gate] [--budget FILE] \
                 [--inject-leak] [--overhead] [--json OUT] [--collapsed OUT]\n       \
                 hoardscope tune --ab [--quick] [--gate TOLERANCE_PCT]"
            );
            std::process::exit(2);
        }
    }
}

fn hoard_config(args: &[String]) -> HoardConfig {
    if args.iter().any(|a| a == "--lockfree") {
        HoardConfig::with_lockfree()
    } else {
        HoardConfig::with_default_magazines()
    }
}

/// Value-taking flags of the `trc` subcommands (under `profile`,
/// `--gate` is a boolean and `--top`/`--budget`/`--collapsed` take
/// values — see [`PROFILE_VALUE_FLAGS`]).
const TRC_VALUE_FLAGS: [&str; 6] = [
    "--threads", "--seed", "--sessions", "--workers", "--json", "--gate",
];

/// Value-taking flags of the `profile` subcommand.
const PROFILE_VALUE_FLAGS: [&str; 5] = [
    "--threads", "--top", "--budget", "--json", "--collapsed",
];

/// Positional (non-flag) arguments, skipping the values of value-taking
/// flags.
fn positionals<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = value_flags.contains(&a.as_str());
        } else {
            out.push(a);
        }
    }
    out
}

fn load_trc(path: &str) -> TrcTrace {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    TrcTrace::decode(&bytes).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid .trc capture: {e}");
        std::process::exit(2);
    })
}

fn trc_record(args: &[String]) {
    let pos = positionals(args, &TRC_VALUE_FLAGS);
    let [workload, out] = pos[..] else {
        eprintln!("usage: hoardscope trc record WORKLOAD OUT.trc (threadtest|larson)");
        std::process::exit(2);
    };
    if !matches!(workload.as_str(), "threadtest" | "larson") {
        eprintln!("recordable workloads are threadtest|larson, got {workload:?}");
        std::process::exit(2);
    }
    let threads = threads_arg(args, 4);
    let quick = args.iter().any(|a| a == "--quick");
    let rec = record_workload(workload, hoard_config(args), threads, quick);
    std::fs::write(out, rec.trc.encode()).expect("write .trc");
    eprintln!(
        "recorded {workload} P={threads}: {} records ({} allocs, {} frees, {} spilled) -> {out}",
        rec.trc.len(),
        rec.stats.allocs,
        rec.stats.frees,
        rec.stats.spilled,
    );
    println!(
        "makespan plain={} recorded={} overhead={:.2}%",
        rec.plain_makespan,
        rec.recorded_makespan,
        rec.overhead_pct()
    );
}

fn trc_replay(args: &[String]) {
    let pos = positionals(args, &TRC_VALUE_FLAGS);
    let [path] = pos[..] else {
        eprintln!("usage: hoardscope trc replay FILE.trc [--lockfree] [--twice]");
        std::process::exit(2);
    };
    let trc = load_trc(path);
    let out = replay_trc(&trc, hoard_config(args)).unwrap_or_else(|e| {
        eprintln!("cannot replay {path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "replayed {path}: {} streams, {} records, makespan {}, {} allocs, live_peak {}",
        trc.streams.len(),
        trc.len(),
        out.result.makespan,
        out.result.snapshot.allocs,
        out.result.snapshot.live_peak,
    );
    if args.iter().any(|a| a == "--twice") {
        let again = replay_trc(&trc, hoard_config(args)).expect("second replay");
        if again.digest != out.digest {
            eprintln!(
                "replay NONDETERMINISTIC: digest {:016x} != {:016x}",
                out.digest, again.digest
            );
            std::process::exit(1);
        }
        eprintln!("second replay agreed");
    }
    println!("digest {:016x}", out.digest);
}

fn trc_gen(args: &[String]) {
    let pos = positionals(args, &TRC_VALUE_FLAGS);
    let [out] = pos[..] else {
        eprintln!("usage: hoardscope trc gen OUT.trc [--sessions N] [--workers N] [--seed S]");
        std::process::exit(2);
    };
    let mut params = server_traffic::Params::default();
    if let Some(v) = flag_value(args, "--sessions") {
        params.sessions = v.parse().expect("--sessions takes a number");
    }
    if let Some(v) = flag_value(args, "--workers") {
        params.workers = v.parse().expect("--workers takes a number");
    }
    if let Some(v) = flag_value(args, "--seed") {
        params.seed = v.parse().expect("--seed takes a number");
    }
    let (trc, summary) = server_traffic::generate(&params);
    let bytes = trc.encode();
    std::fs::write(out, &bytes).expect("write .trc");
    println!(
        "generated {} sessions ({} records, {} bytes) -> {out}: {} storms, \
         {} evictions ({} sessions), {} migrated, peak_live {} B",
        summary.sessions,
        trc.len(),
        bytes.len(),
        summary.storms,
        summary.evictions,
        summary.evicted_sessions,
        summary.migrated,
        summary.peak_live,
    );
}

fn trc_report(args: &[String]) {
    let pos = positionals(args, &TRC_VALUE_FLAGS);
    let [path] = pos[..] else {
        eprintln!("usage: hoardscope trc report FILE.trc [--lockfree] [--json OUT]");
        std::process::exit(2);
    };
    let trc = load_trc(path);
    let config = hoard_config(args);
    let out = replay_trc(&trc, config).unwrap_or_else(|e| {
        eprintln!("cannot replay {path}: {e}");
        std::process::exit(2);
    });
    // A second, profiled replay supplies the report's heap_profile
    // section (the plain replay above keeps the determinism digest
    // untouched by profiling charges).
    let profiled = profile_trc(&trc, config, ProfileConfig::default(), false, 0)
        .expect("trace replayed once already");
    let json = report_for(
        &trc,
        &out,
        &config,
        Some(heap_profile_section(&profiled, 10)),
    );
    if let Some(dest) = flag_value(args, "--json") {
        std::fs::write(dest, &json).expect("write report");
        eprintln!("wrote report to {dest}");
    }
    println!("{json}");
}

fn profile_cmd(args: &[String]) {
    let pos = positionals(args, &PROFILE_VALUE_FLAGS);
    let top_k: usize = flag_value(args, "--top")
        .map(|v| v.parse().expect("--top takes a number"))
        .unwrap_or(10);
    let with_timeline = args.iter().any(|a| a == "--timeline");
    let gate = args.iter().any(|a| a == "--gate");
    let overhead = args.iter().any(|a| a == "--overhead");
    // 64 KiB of deliberate leakage: enough to trip any sane budget,
    // small enough not to distort the run (CI's negative test).
    let inject = if args.iter().any(|a| a == "--inject-leak") {
        65_536
    } else {
        0
    };
    let threads = threads_arg(args, 4);
    let quick = args.iter().any(|a| a == "--quick");
    let config = hoard_config(args);
    let pconfig = ProfileConfig::default();

    let runs: Vec<ProfiledRun> = match pos[..] {
        [] => PROFILE_CATALOG
            .iter()
            .map(|n| profile_workload(n, config, threads, quick, pconfig, overhead, inject))
            .collect(),
        [target] if target.ends_with(".trc") => {
            let trc = load_trc(target);
            let mut run = profile_trc(&trc, config, pconfig, overhead, inject)
                .unwrap_or_else(|e| {
                    eprintln!("cannot profile {target}: {e}");
                    std::process::exit(2);
                });
            run.name = target.clone();
            vec![run]
        }
        [target] if PROFILE_CATALOG.contains(&target.as_str()) || target == "larson" => {
            vec![profile_workload(
                target, config, threads, quick, pconfig, overhead, inject,
            )]
        }
        _ => {
            eprintln!(
                "usage: hoardscope profile [FILE.trc | {}|larson] [--top K] [--timeline] \
                 [--gate] [--budget FILE] [--inject-leak] [--overhead]",
                PROFILE_CATALOG.join("|")
            );
            std::process::exit(2);
        }
    };

    for run in &runs {
        println!("{}", render_profile(run, top_k, with_timeline));
    }

    if let Some(dest) = flag_value(args, "--json") {
        let doc = jsonio::obj(
            runs.iter()
                .map(|r| (r.name.as_str(), r.profile.to_json_value()))
                .collect(),
        );
        std::fs::write(dest, doc.to_json()).expect("write profile JSON");
        eprintln!("wrote heap profile JSON to {dest}");
    }
    if let Some(dest) = flag_value(args, "--collapsed") {
        let text: String = runs.iter().map(|r| r.profile.collapsed_stack(true)).collect();
        std::fs::write(dest, text).expect("write collapsed stacks");
        eprintln!("wrote collapsed-stack site profile to {dest}");
    }

    if gate {
        let budget_path = flag_value(args, "--budget")
            .map(String::as_str)
            .unwrap_or("ci/memory_budget.txt");
        let text = std::fs::read_to_string(budget_path).unwrap_or_else(|e| {
            eprintln!("cannot read budget {budget_path}: {e}");
            std::process::exit(2);
        });
        let budgets = BudgetFile::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad budget file {budget_path}: {e}");
            std::process::exit(2);
        });
        let mut failed = false;
        for run in &runs {
            for v in budgets.for_workload(&run.name).violations(run) {
                eprintln!("memory gate FAILED ({}): {v}", run.name);
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "memory gate passed: {} run(s) within {budget_path}",
            runs.len()
        );
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
}

fn threads_arg(args: &[String], default: usize) -> usize {
    flag_value(args, "--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(default)
}

fn demo(args: &[String]) {
    let threads = threads_arg(args, 4);
    let quick = args.iter().any(|a| a == "--quick");
    let config = if args.iter().any(|a| a == "--lockfree") {
        HoardConfig::with_lockfree()
    } else {
        HoardConfig::with_default_magazines()
    };
    let run = traced_larson_with(config, threads, quick);
    eprintln!(
        "traced larson: {} threads, makespan {}, {} events",
        threads,
        run.makespan,
        run.log.total_events()
    );
    if let Some(path) = flag_value(args, "--trace") {
        std::fs::write(path, run.log.to_json()).expect("write trace");
        eprintln!("wrote native trace to {path}");
    }
    if let Some(path) = flag_value(args, "--chrome") {
        std::fs::write(path, chrome_trace_json(&run.log)).expect("write chrome trace");
        eprintln!("wrote Chrome/Perfetto trace to {path} (open in ui.perfetto.dev)");
    }
    println!("{}", scope_report(&run.log, Some(&run.metrics)));
}

fn gate(args: &[String]) {
    let budget: u64 = flag_value(args, "--gate")
        .map(|v| v.parse().expect("--gate takes a heap-lock acquisition budget"))
        .expect("--gate requires a budget argument");
    let threads = threads_arg(args, 14);
    let quick = args.iter().any(|a| a == "--quick");

    let locked = traced_larson_with(HoardConfig::with_default_magazines(), threads, quick);
    let lockfree = traced_larson_with(HoardConfig::with_lockfree(), threads, quick);
    let locked_acqs = heap_lock_acquisitions(&locked.log);
    let lockfree_acqs = heap_lock_acquisitions(&lockfree.log);

    println!("== locked back-end (larson, {threads} threads) ==");
    println!("{}", lock_table(&locked.log).render());
    println!("== lock-free back-end (larson, {threads} threads) ==");
    println!("{}", lock_table(&lockfree.log).render());
    println!(
        "heap-lock acquisitions: locked={locked_acqs} lockfree={lockfree_acqs} \
         budget={budget} makespans: locked={} lockfree={}",
        locked.makespan, lockfree.makespan
    );
    // The superblock registry must stay healthy: a latched overflow
    // silently downgrades the masked-metadata checks to header walks,
    // so a degraded run fails the gate even under its lock budget.
    let mut degraded = false;
    for (label, run) in [("locked", &locked), ("lockfree", &lockfree)] {
        let reg = &run.metrics.registry;
        println!(
            "sb registry ({label}): occupancy {}/{} ({:.1}%), degraded: {}",
            reg.occupancy,
            reg.capacity,
            100.0 * reg.occupancy_ratio(),
            if reg.overflowed { "YES" } else { "no" }
        );
        degraded |= reg.overflowed;
    }
    if degraded {
        eprintln!(
            "contention gate FAILED: superblock registry latched degraded mode \
             (mask checks falling back to header walks)"
        );
        std::process::exit(1);
    }
    if lockfree_acqs > budget {
        eprintln!(
            "contention gate FAILED: lock-free back-end took {lockfree_acqs} \
             heap-lock acquisitions, budget is {budget}"
        );
        std::process::exit(1);
    }
    eprintln!("contention gate passed: {lockfree_acqs} <= {budget}");
}

fn tune(args: &[String]) {
    if !args.iter().any(|a| a == "--ab") {
        eprintln!("usage: hoardscope tune --ab [--quick] [--gate TOLERANCE_PCT]");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let report = run_tune_ab(quick);
    println!("{}", report.render());
    match flag_value(args, "--gate") {
        Some(tol) => {
            let tol: f64 = tol.parse().expect("--gate takes a tolerance in percent");
            if !report.adaptive_within(tol) {
                eprintln!(
                    "tuning gate FAILED: adaptive aggregate exceeds best static + {tol}%"
                );
                std::process::exit(1);
            }
            eprintln!("tuning gate passed: adaptive within {tol}% of best static");
        }
        None => {
            if !report.adaptive_beats_all() {
                eprintln!("adaptive does NOT beat every static point");
                std::process::exit(1);
            }
            eprintln!("adaptive beats every static point at P=8 and P=14");
        }
    }
}

fn from_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let log = TraceLog::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a native trace (TraceLog JSON): {e}");
        std::process::exit(2);
    });
    println!("{}", scope_report(&log, None));
}
