//! `hoardscope` — analyze allocator telemetry traces.
//!
//! ```text
//! hoardscope --demo [--threads N] [--quick]   # traced larson, report
//! hoardscope --demo --trace out.json          # also save the native trace
//! hoardscope --demo --chrome out.trace.json   # also save Chrome/Perfetto JSON
//! hoardscope FILE                             # report on a saved native trace
//! ```
//!
//! The Chrome export loads in `chrome://tracing` or
//! <https://ui.perfetto.dev> — one track per virtual processor, lock
//! holds as duration slices, everything else as instants.

use hoard_core::{chrome_trace_json, TraceLog};
use hoard_harness::{scope_report, traced_larson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--demo") {
        demo(&args);
    } else if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        from_file(path);
    } else {
        eprintln!(
            "usage: hoardscope --demo [--threads N] [--quick] \
             [--trace FILE] [--chrome FILE]\n       \
             hoardscope FILE"
        );
        std::process::exit(2);
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
}

fn demo(args: &[String]) {
    let threads: usize = flag_value(args, "--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(4);
    let quick = args.iter().any(|a| a == "--quick");
    let run = traced_larson(threads, quick);
    eprintln!(
        "traced larson: {} threads, makespan {}, {} events",
        threads,
        run.makespan,
        run.log.total_events()
    );
    if let Some(path) = flag_value(args, "--trace") {
        std::fs::write(path, run.log.to_json()).expect("write trace");
        eprintln!("wrote native trace to {path}");
    }
    if let Some(path) = flag_value(args, "--chrome") {
        std::fs::write(path, chrome_trace_json(&run.log)).expect("write chrome trace");
        eprintln!("wrote Chrome/Perfetto trace to {path} (open in ui.perfetto.dev)");
    }
    println!("{}", scope_report(&run.log, Some(&run.metrics)));
}

fn from_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let log = TraceLog::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not a native trace (TraceLog JSON): {e}");
        std::process::exit(2);
    });
    println!("{}", scope_report(&log, None));
}
