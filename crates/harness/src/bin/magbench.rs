//! `magbench` — before/after evidence for the magazine front-end.
//!
//! ```text
//! magbench            # full grid (the numbers committed under results/)
//! magbench --quick    # reduced scale, for CI smoke
//! ```
//!
//! Three sections:
//!
//! 1. **Lock bypass** — the `alloc_micro` hot-path patterns (pair
//!    churn, batch churn) run against plain Hoard and the magazine
//!    variant, reporting heap-lock acquisitions per allocator operation.
//!    The front-end's contract is that ≥ 90 % of small allocations
//!    bypass the heap lock entirely.
//! 2. **Virtual-time speedups** — threadtest, larson and prod-cons at
//!    P ∈ {1, 8, 14}, plain Hoard vs magazines, as makespans and ratios.
//! 3. **Front-end telemetry** — the `MagazineStats` counters for one
//!    representative producer–consumer run.
//! 4. **Slow-path storm** — the `storm` workload (refill/flush/transfer
//!    ping-pong) at P ∈ {8, 14}, locked magazines vs the lock-free
//!    back-end: makespans plus the back-end traffic counters.

use hoard_core::{HoardAllocator, HoardConfig};
use hoard_harness::Table;
use hoard_mem::MtAllocator;
use hoard_workloads as wl;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale: u64 = std::env::var("MAGBENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 4_000 } else { 40_000 });

    for table in [
        lock_bypass_table(scale),
        speedup_table(scale),
        telemetry_table(scale),
        storm_table(scale),
    ] {
        println!("{}", table.render());
    }
}

fn hoard_plain() -> HoardAllocator {
    HoardAllocator::new_default()
}

fn hoard_mag() -> HoardAllocator {
    HoardAllocator::with_config(HoardConfig::with_default_magazines()).expect("valid config")
}

fn hoard_lockfree() -> HoardAllocator {
    HoardAllocator::with_config(HoardConfig::with_lockfree()).expect("valid config")
}

/// Run `ops` pair-churn iterations (allocate then free immediately).
fn pair_churn(h: &HoardAllocator, size: usize, ops: u64) {
    for _ in 0..ops {
        let p = unsafe { h.allocate(size) }.expect("oom");
        unsafe { h.deallocate(p) };
    }
}

/// Run batch churn: allocate `batch`, then free them all, `ops / batch`
/// times (the LIFO pattern of `alloc_micro`'s `micro_batch_churn`).
fn batch_churn(h: &HoardAllocator, size: usize, ops: u64) {
    const BATCH: usize = 100;
    let mut ptrs = Vec::with_capacity(BATCH);
    for _ in 0..ops / BATCH as u64 {
        for _ in 0..BATCH {
            ptrs.push(unsafe { h.allocate(size) }.expect("oom"));
        }
        for p in ptrs.drain(..) {
            unsafe { h.deallocate(p) };
        }
    }
}

fn lock_bypass_table(scale: u64) -> Table {
    let mut t = Table::new(
        "mag-locks",
        "MAGBENCH: heap-lock traffic on the alloc_micro hot paths",
        vec![
            "pattern".into(),
            "allocator".into(),
            "size".into(),
            "ops".into(),
            "lock acqs".into(),
            "contended".into(),
            "locks/op".into(),
            "bypass %".into(),
        ],
    );
    type Pattern = (&'static str, fn(&HoardAllocator, usize, u64));
    let patterns: [Pattern; 2] = [("pair", pair_churn), ("batch", batch_churn)];
    let mut totals = [(0u64, 0u64); 2]; // (ops, acqs) per allocator
    for (name, pattern) in patterns {
        for size in [8usize, 64, 512] {
            for (i, (label, h)) in [("hoard", hoard_plain()), ("hoard-mag", hoard_mag())]
                .into_iter()
                .enumerate()
            {
                pattern(&h, size, scale);
                let (acqs, contended) = h.heap_lock_stats();
                // Pair and batch churn perform one alloc and one free
                // per op-pair; normalize per allocator operation.
                let total_ops = 2 * scale;
                totals[i].0 += total_ops;
                totals[i].1 += acqs;
                let per_op = acqs as f64 / total_ops as f64;
                t.push_row(vec![
                    name.into(),
                    label.into(),
                    size.to_string(),
                    total_ops.to_string(),
                    acqs.to_string(),
                    contended.to_string(),
                    format!("{per_op:.4}"),
                    format!("{:.1}", 100.0 * (1.0 - per_op.min(1.0))),
                ]);
            }
        }
    }
    for (i, label) in ["hoard", "hoard-mag"].into_iter().enumerate() {
        let (ops, acqs) = totals[i];
        let per_op = acqs as f64 / ops as f64;
        t.push_row(vec![
            "all".into(),
            label.into(),
            "-".into(),
            ops.to_string(),
            acqs.to_string(),
            "-".into(),
            format!("{per_op:.4}"),
            format!("{:.1}", 100.0 * (1.0 - per_op.min(1.0))),
        ]);
    }
    t.push_note("single-threaded; one op = one allocate or one free");
    t.push_note("acceptance: hoard-mag bypasses the heap lock on >=90% of ops");
    t.push_note("lock acqs include global-heap restore traffic (present in plain hoard too: see batch/512)");
    t
}

fn speedup_table(scale: u64) -> Table {
    let mut t = Table::new(
        "mag-speedup",
        "MAGBENCH: virtual-time makespans, plain Hoard vs magazine front-end",
        vec![
            "workload".into(),
            "P".into(),
            "hoard".into(),
            "hoard-mag".into(),
            "ratio".into(),
        ],
    );
    type Workload = (&'static str, Box<dyn Fn(&dyn MtAllocator, usize) -> u64>);
    let tt = wl::threadtest::Params {
        total_objects: scale,
        ..Default::default()
    };
    let la = wl::larson::Params {
        ops_per_round: (scale / 20).max(100),
        ..Default::default()
    };
    let pc = wl::prod_cons::Params {
        total_objects: scale,
        ..Default::default()
    };
    let workloads: [Workload; 3] = [
        (
            "threadtest",
            Box::new(move |a, p| wl::threadtest::run(a, p, &tt).makespan),
        ),
        (
            "larson",
            Box::new(move |a, p| wl::larson::run(a, p, &la).makespan),
        ),
        (
            "prod-cons",
            Box::new(move |a, p| wl::prod_cons::run(a, p, &pc).makespan),
        ),
    ];
    // Multi-threaded makespans depend on real thread interleavings
    // (lock handoff order, which drained blocks a refill recycles under
    // the cache model), so single runs are bimodal; the median of five
    // is stable.
    let median = |f: &dyn Fn() -> u64| -> u64 {
        let mut xs: Vec<u64> = (0..5).map(|_| f()).collect();
        xs.sort_unstable();
        xs[2]
    };
    for (name, run) in &workloads {
        for p in [1usize, 8, 14] {
            let base = median(&|| run(&hoard_plain(), p)).max(1);
            let mag = median(&|| run(&hoard_mag(), p)).max(1);
            t.push_row(vec![
                (*name).into(),
                p.to_string(),
                base.to_string(),
                mag.to_string(),
                format!("{:.2}x", base as f64 / mag as f64),
            ]);
        }
    }
    t.push_note("ratio > 1.00x means the magazine front-end is faster");
    t.push_note("fresh allocator per cell; median of 5 runs; virtual time (see DESIGN.md)");
    t
}

/// One workload cell: the snapshot plus heap-lock telemetry.
struct Probe {
    snap: hoard_mem::AllocSnapshot,
    lock_acqs: u64,
    lock_contended: u64,
}

fn probe(h: &HoardAllocator, run: impl FnOnce(&HoardAllocator)) -> Probe {
    run(h);
    let (lock_acqs, lock_contended) = h.heap_lock_stats();
    Probe {
        snap: h.stats(),
        lock_acqs,
        lock_contended,
    }
}

fn telemetry_table(scale: u64) -> Table {
    let pc = wl::prod_cons::Params {
        total_objects: scale,
        ..Default::default()
    };
    let la = wl::larson::Params {
        ops_per_round: (scale / 20).max(100),
        ..Default::default()
    };
    let cells: Vec<Probe> = vec![
        probe(&hoard_plain(), |h| {
            wl::prod_cons::run(h, 8, &pc);
        }),
        probe(&hoard_mag(), |h| {
            wl::prod_cons::run(h, 8, &pc);
        }),
        probe(&hoard_plain(), |h| {
            wl::larson::run(h, 14, &la);
        }),
        probe(&hoard_mag(), |h| {
            wl::larson::run(h, 14, &la);
        }),
    ];
    let mut t = Table::new(
        "mag-telemetry",
        "MAGBENCH: allocator counters on the cross-thread workloads",
        vec![
            "counter".into(),
            "pc/hoard P=8".into(),
            "pc/mag P=8".into(),
            "larson/hoard P=14".into(),
            "larson/mag P=14".into(),
        ],
    );
    let row = |name: &str, f: &dyn Fn(&Probe) -> u64| {
        let mut r = vec![name.to_string()];
        r.extend(cells.iter().map(|c| f(c).to_string()));
        r
    };
    t.push_row(row("allocs", &|c| c.snap.allocs));
    t.push_row(row("frees", &|c| c.snap.frees));
    t.push_row(row("remote frees", &|c| c.snap.remote_frees));
    t.push_row(row("magazine alloc hits", &|c| c.snap.magazines.alloc_hits));
    t.push_row(row("magazine free hits", &|c| c.snap.magazines.free_hits));
    t.push_row(row("refills (locked)", &|c| c.snap.magazines.refills));
    t.push_row(row("flushes (locked)", &|c| c.snap.magazines.flushes));
    t.push_row(row("remote pushes (CAS)", &|c| c.snap.magazines.remote_pushes));
    t.push_row(row("remote drains", &|c| c.snap.magazines.remote_drains));
    t.push_row(row("free owner retries", &|c| {
        c.snap.magazines.free_owner_retries
    }));
    t.push_row(row("transfers to global", &|c| c.snap.transfers_to_global));
    t.push_row(row("transfers from global", &|c| {
        c.snap.transfers_from_global
    }));
    t.push_row(row("held peak (bytes)", &|c| c.snap.held_peak));
    t.push_row(row("heap-lock acqs", &|c| c.lock_acqs));
    t.push_row(row("heap-lock contended", &|c| c.lock_contended));
    t.push_row(row("live at end", &|c| c.snap.live_current));
    t.push_note("remote pushes are foreign frees deferred without a lock");
    t
}

fn storm_table(scale: u64) -> Table {
    // Scale rounds with the global knob; batch stays fixed so each
    // round still overflows the magazines.
    let params = wl::storm::Params {
        rounds: (scale / 2_000).clamp(4, 40) as usize,
        ..Default::default()
    };
    let mut t = Table::new(
        "backend-storm",
        "MAGBENCH: slow-path storm (refill/flush/transfer ping-pong), locked vs lock-free back-end",
        vec![
            "P".into(),
            "allocator".into(),
            "makespan".into(),
            "ratio".into(),
            "lock acqs".into(),
            "contended".into(),
            "to-global".into(),
            "from-global".into(),
            "remote pushes".into(),
            "remote drains".into(),
        ],
    );
    // Median-of-5 makespans (multi-threaded runs are bimodal, see
    // speedup_table); counters from a fresh representative run.
    let run_cell = |mk: fn() -> HoardAllocator, p: usize| -> (u64, Probe) {
        let mut xs: Vec<u64> = (0..5)
            .map(|_| wl::storm::run(&mk(), p, &params).makespan)
            .collect();
        xs.sort_unstable();
        (xs[2], probe(&mk(), |h| {
            wl::storm::run(h, p, &params);
        }))
    };
    for p in [8usize, 14] {
        let (mag_mk, mag) = run_cell(hoard_mag, p);
        let (lf_mk, lf) = run_cell(hoard_lockfree, p);
        for (label, mk, pr, ratio) in [
            ("hoard-mag", mag_mk, &mag, 1.0),
            ("hoard-lockfree", lf_mk, &lf, mag_mk as f64 / lf_mk.max(1) as f64),
        ] {
            t.push_row(vec![
                p.to_string(),
                label.into(),
                mk.to_string(),
                format!("{ratio:.2}x"),
                pr.lock_acqs.to_string(),
                pr.lock_contended.to_string(),
                pr.snap.transfers_to_global.to_string(),
                pr.snap.transfers_from_global.to_string(),
                pr.snap.magazines.remote_pushes.to_string(),
                pr.snap.magazines.remote_drains.to_string(),
            ]);
        }
    }
    t.push_note("ratio > 1.00x means the lock-free back-end is faster");
    t.push_note("fresh allocator per cell; median-of-5 makespans; counters from one representative run");
    t
}
