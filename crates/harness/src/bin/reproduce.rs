//! `reproduce` — regenerate the Hoard paper's tables and figures.
//!
//! ```text
//! reproduce all                 # every experiment
//! reproduce e2 e9              # selected experiments
//! reproduce all --quick        # reduced-scale smoke run
//! reproduce e2 --threads 1,2,4 # custom processor sweep
//! reproduce all --csv out/     # also write CSV per table
//! reproduce all --report FILE  # also write a markdown digest
//! reproduce list               # show the experiment index
//! ```

use hoard_harness::{all_experiments, experiment_by_id, RunOptions};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut ids: Vec<String> = Vec::new();
    let mut opts = RunOptions::default();
    let mut csv_dir: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                let threads = if opts.threads == RunOptions::default().threads {
                    RunOptions::quick().threads
                } else {
                    opts.threads.clone()
                };
                opts = RunOptions {
                    threads,
                    quick: true,
                };
            }
            "--threads" => {
                let spec = iter.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a comma-separated list, e.g. 1,2,4");
                    std::process::exit(2);
                });
                opts.threads = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad thread count: {s}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--csv" => {
                csv_dir = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--report" => {
                report_path = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--report needs a file path");
                    std::process::exit(2);
                }));
            }
            "list" => {
                for e in all_experiments() {
                    println!("{:>4}  {:<42} {}", e.id(), e.title(), e.paper_ref());
                }
                return;
            }
            "all" => ids.extend(all_experiments().iter().map(|e| e.id().to_string())),
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    ids.dedup();

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
    }

    let mut all_tables = Vec::new();
    for id in &ids {
        let Some(experiment) = experiment_by_id(id) else {
            eprintln!("unknown experiment: {id} (try `reproduce list`)");
            std::process::exit(2);
        };
        eprintln!(
            ">> running {} — {} [{}]",
            experiment.id(),
            experiment.title(),
            experiment.paper_ref()
        );
        let start = std::time::Instant::now();
        let tables = experiment.run(&opts);
        eprintln!("   done in {:.1}s", start.elapsed().as_secs_f64());
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}_{i}.csv", experiment.id());
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(table.to_csv().as_bytes()).expect("write csv");
                eprintln!("   wrote {path}");
            }
        }
        all_tables.extend(tables);
    }

    if let Some(path) = report_path {
        let md = hoard_harness::markdown_report(&all_tables);
        std::fs::write(&path, md).expect("write report");
        eprintln!("   wrote {path}");
    }
}

fn print_usage() {
    eprintln!(
        "usage: reproduce <experiment ids... | all | list> [--quick] \
         [--threads 1,2,4] [--csv DIR] [--report FILE]"
    );
}
