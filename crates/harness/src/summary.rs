//! Post-processing of speedup tables: scaling efficiency, qualitative
//! classification (scales / flattens / collapses), and a markdown digest
//! — the machinery behind `reproduce report`.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Qualitative shape of one allocator's speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shape {
    /// ≥ 60% parallel efficiency at the largest processor count.
    Scales,
    /// Grows but below 60% efficiency (saturating).
    Flattens,
    /// Ends at or below 1.2× its one-processor value.
    Collapses,
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shape::Scales => write!(f, "scales"),
            Shape::Flattens => write!(f, "flattens"),
            Shape::Collapses => write!(f, "collapses"),
        }
    }
}

/// Summary of one allocator's curve within one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveSummary {
    /// Allocator label (table column).
    pub allocator: String,
    /// Speedup at the largest processor count.
    pub final_speedup: f64,
    /// Largest processor count in the sweep.
    pub max_threads: usize,
    /// `final_speedup / max_threads`.
    pub efficiency: f64,
    /// Qualitative classification.
    pub shape: Shape,
}

/// Summarize a speedup table (first column `P`, one column per
/// allocator, `{:.2}`-formatted speedups).
///
/// Returns `None` when the table is not speedup-shaped.
pub fn summarize_speedup(table: &Table) -> Option<Vec<CurveSummary>> {
    if table.columns.first().map(String::as_str) != Some("P") || table.rows.is_empty() {
        return None;
    }
    let max_threads: usize = table.rows.last()?.first()?.parse().ok()?;
    let mut out = Vec::new();
    for (col, name) in table.columns.iter().enumerate().skip(1) {
        let first: f64 = table.rows.first()?.get(col)?.parse().ok()?;
        let last: f64 = table.rows.last()?.get(col)?.parse().ok()?;
        let efficiency = last / max_threads as f64;
        let shape = if last <= first.max(1.0) * 1.2 {
            Shape::Collapses
        } else if efficiency >= 0.6 {
            Shape::Scales
        } else {
            Shape::Flattens
        };
        out.push(CurveSummary {
            allocator: name.clone(),
            final_speedup: last,
            max_threads,
            efficiency,
            shape,
        });
    }
    Some(out)
}

/// Render a markdown digest for a set of experiment tables: one section
/// per table, speedup tables summarized per allocator, other tables
/// passed through as fenced blocks.
pub fn markdown_report(tables: &[Table]) -> String {
    let mut out = String::from("# Reproduction digest\n");
    for table in tables {
        out.push_str(&format!(
            "\n## {} — {}\n\n",
            table.id.to_uppercase(),
            table.title
        ));
        if let Some(curves) = summarize_speedup(table) {
            out.push_str("| allocator | speedup @ max P | efficiency | verdict |\n");
            out.push_str("|---|---|---|---|\n");
            for c in &curves {
                out.push_str(&format!(
                    "| {} | {:.2}x @ P={} | {:.0}% | {} |\n",
                    c.allocator,
                    c.final_speedup,
                    c.max_threads,
                    c.efficiency * 100.0,
                    c.shape
                ));
            }
            out.push('\n');
        }
        out.push_str("```text\n");
        out.push_str(&table.render());
        out.push_str("```\n");
        for note in &table.notes {
            out.push_str(&format!("> {note}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup_table() -> Table {
        let mut t = Table::new(
            "e2",
            "threadtest speedup",
            vec!["P".into(), "serial".into(), "hoard".into(), "mtlike".into()],
        );
        t.push_row(vec!["1".into(), "1.00".into(), "1.00".into(), "1.00".into()]);
        t.push_row(vec!["8".into(), "0.40".into(), "7.90".into(), "3.90".into()]);
        t.push_row(vec![
            "14".into(),
            "0.38".into(),
            "13.90".into(),
            "5.50".into(),
        ]);
        t
    }

    #[test]
    fn classifies_shapes() {
        let curves = summarize_speedup(&speedup_table()).expect("speedup-shaped");
        let by_name = |n: &str| curves.iter().find(|c| c.allocator == n).unwrap();
        assert_eq!(by_name("serial").shape, Shape::Collapses);
        assert_eq!(by_name("hoard").shape, Shape::Scales);
        assert_eq!(by_name("mtlike").shape, Shape::Flattens);
        assert!((by_name("hoard").efficiency - 13.9 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn non_speedup_tables_pass_through() {
        let t = Table::new("e1", "inventory", vec!["benchmark".into()]);
        assert!(summarize_speedup(&t).is_none());
        let md = markdown_report(&[t]);
        assert!(md.contains("## E1 — inventory"));
        assert!(md.contains("```text"));
    }

    #[test]
    fn report_contains_summary_and_raw_table() {
        let md = markdown_report(&[speedup_table()]);
        assert!(md.contains("| hoard | 13.90x @ P=14 | 99% | scales |"));
        assert!(md.contains("| serial | 0.38x @ P=14 | 3% | collapses |"));
        assert!(md.contains("== E2 — threadtest speedup =="));
    }
}
