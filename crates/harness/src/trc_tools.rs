//! The `hoardscope record / replay / gen / report` pipeline: capture
//! any workload run to a `.trc` file, replay a `.trc` against a fresh
//! allocator, generate server-shaped traffic, and score a replay.
//!
//! The contract that makes the pipeline useful as a regression
//! instrument is **replay determinism**: replaying the same `.trc`
//! twice produces byte-identical results, compressed into a single
//! [`metrics digest`](replay_digest) that CI can diff. The digest
//! covers the virtual makespan, operation and byte accounting, and the
//! per-heap × per-class metrics registry — if any of it moves between
//! two replays of one trace, something nondeterministic crept into the
//! allocator or the simulator.

use hoard_core::{
    HoardAllocator, HoardConfig, MetricsSnapshot, RecorderStats, TrcRecorder, TrcTrace,
};
use hoard_mem::SizeClassTable;
use hoard_trace::jsonio::{obj, JsonValue};
use hoard_workloads::trace::{replay, Trace};
use hoard_workloads::{larson, threadtest, WorkloadResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schema tag stamped into every `trc report` document; CI validates
/// against it.
pub const TRC_REPORT_SCHEMA: &str = "hoard-trc-report-v1";

/// Everything `hoardscope record` produces.
pub struct RecordOutcome {
    /// The captured trace.
    pub trc: TrcTrace,
    /// Capture counters (allocs/frees seen, unmatched, spilled).
    pub stats: RecorderStats,
    /// Makespan of the *recorded* run (capture charges included).
    pub recorded_makespan: u64,
    /// Makespan of an identical run without the recorder attached.
    pub plain_makespan: u64,
}

impl RecordOutcome {
    /// Capture overhead as a percentage of the plain makespan.
    pub fn overhead_pct(&self) -> f64 {
        if self.plain_makespan == 0 {
            0.0
        } else {
            100.0 * (self.recorded_makespan as f64 - self.plain_makespan as f64)
                / self.plain_makespan as f64
        }
    }
}

/// Everything one `.trc` replay produces.
pub struct ReplayOutcome {
    /// The usual workload result (makespan, ops, live peak, snapshot).
    pub result: WorkloadResult,
    /// The metrics registry's snapshot at quiescence.
    pub metrics: MetricsSnapshot,
    /// The determinism digest over `result` + `metrics`.
    pub digest: u64,
}

fn run_named(
    alloc: &HoardAllocator,
    workload: &str,
    threads: usize,
    quick: bool,
) -> WorkloadResult {
    match workload {
        "threadtest" => {
            let mut p = threadtest::Params::default();
            if quick {
                p.total_objects = 20_000;
            }
            threadtest::run(alloc, threads, &p)
        }
        "larson" => {
            let mut p = larson::Params::default();
            if quick {
                p.slots_per_thread = 200;
                p.rounds = 2;
                p.ops_per_round = 1_000;
            }
            larson::run(alloc, threads, &p)
        }
        other => panic!("recordable workloads are threadtest|larson, got {other:?}"),
    }
}

/// Seed a named workload carries in its own parameters (recorded in the
/// `.trc` header so the capture is self-describing).
fn workload_seed(workload: &str) -> u64 {
    match workload {
        "larson" => larson::Params::default().seed,
        _ => 0,
    }
}

/// Run `workload` twice with identical configuration — once bare for
/// the overhead baseline, once with a [`TrcRecorder`] attached — and
/// return the capture. Panics on unknown workload names (the CLI
/// validates first).
pub fn record_workload(
    workload: &str,
    config: HoardConfig,
    threads: usize,
    quick: bool,
) -> RecordOutcome {
    let plain = {
        let h = HoardAllocator::with_config(config).expect("valid config");
        run_named(&h, workload, threads, quick)
    };

    let h = HoardAllocator::with_config(config).expect("valid config");
    let tag = format!("{workload} P={threads}{}", if quick { " quick" } else { "" });
    let rec = Arc::new(TrcRecorder::new(workload_seed(workload), &tag, threads.max(1)));
    h.attach_recorder(Arc::clone(&rec));
    let recorded = run_named(&h, workload, threads, quick);

    RecordOutcome {
        trc: rec.trace(),
        stats: rec.stats(),
        recorded_makespan: recorded.makespan,
        plain_makespan: plain.makespan,
    }
}

/// Replay a `.trc` against a fresh Hoard allocator (with a metrics
/// registry attached) and compute the determinism digest.
///
/// # Errors
///
/// Propagates [`Trace::from_trc`] conversion failures.
pub fn replay_trc(trc: &TrcTrace, config: HoardConfig) -> Result<ReplayOutcome, String> {
    let trace = Trace::from_trc(trc)?;
    let h = HoardAllocator::with_config(config).expect("valid config");
    let registry = Arc::new(h.new_metrics_registry());
    h.attach_metrics(Arc::clone(&registry));
    let result = replay(&h, &trace);
    // Quiesce inside a fresh deterministic scope: the flush takes heap
    // locks whose virtual wait is measured against the caller's clock,
    // and the caller's thread-local clock carries arbitrary history.
    // Pinning it to (proc 0, t = makespan) — the flush happens "after"
    // the run — makes the post-replay metrics a pure function of the
    // trace.
    let metrics = hoard_sim::sequential_scope(1, || {
        hoard_sim::switch_context(0, result.makespan);
        h.flush_frontend();
        h.metrics_snapshot().expect("registry attached")
    });
    let digest = replay_digest(&result, &metrics);
    Ok(ReplayOutcome {
        result,
        metrics,
        digest,
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    v.to_le_bytes()
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// FNV-1a 64 digest of everything a replay determines: makespan, op
/// and byte accounting, and every per-heap × per-class counter. Two
/// replays of the same `.trc` on the same configuration must agree.
pub fn replay_digest(result: &WorkloadResult, metrics: &MetricsSnapshot) -> u64 {
    let s = &result.snapshot;
    let mut h = FNV_OFFSET;
    for v in [
        result.makespan,
        result.ops,
        result.max_live_requested,
        s.allocs,
        s.frees,
        s.remote_frees,
        s.live_peak,
        s.held_peak,
        s.transfers_to_global,
        s.transfers_from_global,
    ] {
        h = fnv1a_u64(h, v);
    }
    for heap in &metrics.heaps {
        h = fnv1a_u64(h, heap.heap as u64);
        for c in &heap.classes {
            for v in [c.class as u64, c.allocs, c.frees, c.remote_frees, c.magazine_ops] {
                h = fnv1a_u64(h, v);
            }
        }
    }
    h
}

/// Score a replayed trace as a JSON document (the `hoardscope trc
/// report` payload).
///
/// Layout (`schema` = [`TRC_REPORT_SCHEMA`]):
///
/// * `trace` — header facts: config tag, seed, streams, record and
///   allocation counts;
/// * `replay` — makespan, ops, `load` (ops per million virtual units),
///   `fragmentation` (held-peak over requested-live-peak, the paper's
///   `A/U`), byte accounting, and the determinism `digest`;
/// * `classes` — per-size-class allocation histogram aggregated across
///   heaps, with the class's block size resolved from `config`;
/// * `registry` — superblock-registry occupancy / degraded gauges;
/// * `heap_profile` — present when a profiled replay is supplied: the
///   [`crate::heap_profile_section`] summary (timeline endpoints,
///   top sites, leak totals, heap-map gauges).
pub fn report_for(
    trc: &TrcTrace,
    outcome: &ReplayOutcome,
    config: &HoardConfig,
    heap_profile: Option<JsonValue>,
) -> String {
    let r = &outcome.result;
    let s = &r.snapshot;

    let frag = r.fragmentation();
    let trace = obj(vec![
        ("config", JsonValue::Str(trc.config.clone())),
        ("seed", JsonValue::Uint(trc.seed)),
        ("streams", JsonValue::Uint(trc.streams.len() as u64)),
        ("records", JsonValue::Uint(trc.len() as u64)),
        ("allocs", JsonValue::Uint(trc.allocs())),
    ]);
    let replay = obj(vec![
        ("makespan", JsonValue::Uint(r.makespan)),
        ("ops", JsonValue::Uint(r.ops)),
        ("load", JsonValue::Float(r.throughput())),
        (
            "fragmentation",
            frag.map_or(JsonValue::Null, JsonValue::Float),
        ),
        ("max_live_requested", JsonValue::Uint(r.max_live_requested)),
        ("live_peak", JsonValue::Uint(s.live_peak)),
        ("held_peak", JsonValue::Uint(s.held_peak)),
        ("allocs", JsonValue::Uint(s.allocs)),
        ("frees", JsonValue::Uint(s.frees)),
        ("remote_frees", JsonValue::Uint(s.remote_frees)),
        (
            "digest",
            JsonValue::Str(format!("{:016x}", outcome.digest)),
        ),
    ]);

    // Aggregate the per-heap × per-class counters into one histogram
    // per size class, ascending by class index.
    let mut per_class: BTreeMap<usize, [u64; 4]> = BTreeMap::new();
    for heap in &outcome.metrics.heaps {
        for c in &heap.classes {
            let e = per_class.entry(c.class).or_default();
            e[0] += c.allocs;
            e[1] += c.frees;
            e[2] += c.remote_frees;
            e[3] += c.magazine_ops;
        }
    }
    let table = SizeClassTable::for_superblock_size(config.superblock_size);
    let classes = JsonValue::Arr(
        per_class
            .into_iter()
            .map(|(class, [allocs, frees, remote, mag])| {
                let block = if class < table.len() {
                    JsonValue::Uint(u64::from(table.class(class).block_size))
                } else {
                    JsonValue::Null
                };
                obj(vec![
                    ("class", JsonValue::Uint(class as u64)),
                    ("block_size", block),
                    ("allocs", JsonValue::Uint(allocs)),
                    ("frees", JsonValue::Uint(frees)),
                    ("remote_frees", JsonValue::Uint(remote)),
                    ("magazine_ops", JsonValue::Uint(mag)),
                ])
            })
            .collect(),
    );

    let reg = &outcome.metrics.registry;
    let registry = obj(vec![
        ("occupancy", JsonValue::Uint(reg.occupancy)),
        ("capacity", JsonValue::Uint(reg.capacity)),
        ("overflowed", JsonValue::Bool(reg.overflowed)),
    ]);

    let mut fields = vec![
        ("schema", JsonValue::Str(TRC_REPORT_SCHEMA.to_string())),
        ("trace", trace),
        ("replay", replay),
        ("classes", classes),
        ("registry", registry),
    ];
    if let Some(profile) = heap_profile {
        fields.push(("heap_profile", profile));
    }
    obj(fields).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoard_workloads::server_traffic;

    #[test]
    fn record_then_replay_reproduces_counts_exactly() {
        let out = record_workload("threadtest", HoardConfig::with_default_magazines(), 2, true);
        assert_eq!(out.stats.unmatched_frees, 0);
        assert_eq!(out.stats.allocs, out.stats.frees, "threadtest frees all");
        let rep = replay_trc(&out.trc, HoardConfig::with_default_magazines()).expect("replays");
        // The capture holds every alloc the workload performed; replay
        // performs exactly those ops again.
        assert_eq!(rep.result.snapshot.allocs, out.stats.allocs);
        assert_eq!(rep.result.snapshot.frees, out.stats.frees);
        assert_eq!(rep.result.snapshot.live_current, 0);
    }

    #[test]
    fn replaying_the_same_trc_twice_is_byte_identical() {
        let (trc, _) = server_traffic::generate(&server_traffic::Params {
            workers: 2,
            sessions: 1_500,
            ..Default::default()
        });
        let a = replay_trc(&trc, HoardConfig::with_default_magazines()).unwrap();
        let b = replay_trc(&trc, HoardConfig::with_default_magazines()).unwrap();
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn digest_notices_changes() {
        let (trc, _) = server_traffic::generate(&server_traffic::Params {
            workers: 2,
            sessions: 500,
            ..Default::default()
        });
        let (other, _) = server_traffic::generate(&server_traffic::Params {
            workers: 2,
            sessions: 501,
            ..Default::default()
        });
        let a = replay_trc(&trc, HoardConfig::with_default_magazines()).unwrap();
        let b = replay_trc(&other, HoardConfig::with_default_magazines()).unwrap();
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn report_json_is_well_formed() {
        let (trc, _) = server_traffic::generate(&server_traffic::Params {
            workers: 2,
            sessions: 800,
            ..Default::default()
        });
        let config = HoardConfig::with_default_magazines();
        let out = replay_trc(&trc, config).unwrap();
        let json = report_for(&trc, &out, &config, None);
        let doc = JsonValue::parse(&json).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(TRC_REPORT_SCHEMA)
        );
        let digest = doc
            .get("replay")
            .and_then(|r| r.get("digest"))
            .and_then(JsonValue::as_str)
            .expect("digest present");
        assert_eq!(digest, format!("{:016x}", out.digest));
        let classes = doc.get("classes").and_then(JsonValue::as_array).unwrap();
        assert!(!classes.is_empty(), "traffic touches some size classes");
        for c in classes {
            assert!(c.get("allocs").and_then(JsonValue::as_u64).is_some());
            assert!(c.get("block_size").is_some());
        }
        assert!(doc
            .get("registry")
            .and_then(|r| r.get("overflowed"))
            .and_then(JsonValue::as_bool)
            .is_some());
    }

    #[test]
    fn recording_overhead_is_charged() {
        // Single-threaded on purpose: multi-proc virtual makespans vary
        // with host scheduling (lock-handoff order), which would swamp
        // the small capture charge this test is about. One worker's
        // virtual time is stable enough to see it.
        let out = record_workload("larson", HoardConfig::with_default_magazines(), 1, true);
        assert!(
            out.recorded_makespan > out.plain_makespan,
            "capture charges show in virtual time: {} vs {}",
            out.recorded_makespan,
            out.plain_makespan
        );
        assert!(out.overhead_pct() <= 10.0, "overhead {}%", out.overhead_pct());
    }
}
