//! The experiment registry: `E1`..`E12`, one per paper table/figure.
//!
//! See `DESIGN.md` §4 for the index mapping experiments to the paper's
//! artefacts, and `EXPERIMENTS.md` for recorded paper-vs-measured
//! outcomes.

use crate::factory::AllocatorKind;
use crate::speedup::{run_speedup, speedup_table};
use crate::table::Table;
use hoard_core::HoardConfig;
use hoard_mem::MtAllocator;
use hoard_workloads as wl;
use hoard_workloads::WorkloadResult;

/// A named benchmark closure for the fragmentation table.
type FragRun<'a> = (&'a str, Box<dyn Fn(&dyn MtAllocator) -> WorkloadResult>);

/// Options shared by every experiment run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Thread counts for scalability sweeps (paper: 1..14 on the Sun
    /// E5000).
    pub threads: Vec<usize>,
    /// Reduced-scale parameters for a fast smoke run.
    pub quick: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: vec![1, 2, 4, 6, 8, 10, 12, 14],
            quick: false,
        }
    }
}

impl RunOptions {
    /// Quick-mode options (small sweeps, small workloads).
    pub fn quick() -> Self {
        RunOptions {
            threads: vec![1, 2, 4, 8],
            quick: true,
        }
    }

    fn scale(&self, full: u64, quick: u64) -> u64 {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// One reproducible experiment (a paper table or figure).
pub struct Experiment {
    id: &'static str,
    title: &'static str,
    paper_ref: &'static str,
    runner: fn(&RunOptions) -> Vec<Table>,
}

impl Experiment {
    /// Experiment id (`e1`..`e12`).
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Human title.
    pub fn title(&self) -> &'static str {
        self.title
    }

    /// Which paper artefact this regenerates.
    pub fn paper_ref(&self) -> &'static str {
        self.paper_ref
    }

    /// Run the experiment, producing one or more tables.
    pub fn run(&self, opts: &RunOptions) -> Vec<Table> {
        (self.runner)(opts)
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// All experiments, in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "benchmark suite inventory",
            paper_ref: "Table: the benchmarks used in the evaluation",
            runner: e1_catalog,
        },
        Experiment {
            id: "e2",
            title: "threadtest speedup",
            paper_ref: "Figure: threadtest speedup vs. processors",
            runner: e2_threadtest,
        },
        Experiment {
            id: "e3",
            title: "shbench speedup",
            paper_ref: "Figure: shbench speedup vs. processors",
            runner: e3_shbench,
        },
        Experiment {
            id: "e4",
            title: "larson throughput & speedup",
            paper_ref: "Figure: Larson server benchmark",
            runner: e4_larson,
        },
        Experiment {
            id: "e5",
            title: "active-false speedup",
            paper_ref: "Figure: active false sharing",
            runner: e5_active_false,
        },
        Experiment {
            id: "e6",
            title: "passive-false speedup",
            paper_ref: "Figure: passive false sharing",
            runner: e6_passive_false,
        },
        Experiment {
            id: "e7",
            title: "barnes-hut speedup",
            paper_ref: "Figure: Barnes-Hut (compute-bound control)",
            runner: e7_barnes_hut,
        },
        Experiment {
            id: "e8",
            title: "BEM-like solver speedup",
            paper_ref: "Figure: BEMengine (substituted; see DESIGN.md)",
            runner: e8_bem,
        },
        Experiment {
            id: "e9",
            title: "Hoard memory efficiency (fragmentation)",
            paper_ref: "Table: max held / max live per benchmark",
            runner: e9_fragmentation,
        },
        Experiment {
            id: "e10",
            title: "uniprocessor overhead (real time)",
            paper_ref: "Table/discussion: Hoard vs. serial on one processor",
            runner: e10_uniprocessor,
        },
        Experiment {
            id: "e11",
            title: "producer-consumer blowup",
            paper_ref: "Sections 2-3: blowup by allocator class",
            runner: e11_blowup,
        },
        Experiment {
            id: "e12",
            title: "sensitivity to f, K and S",
            paper_ref: "Design-parameter discussion (robustness)",
            runner: e12_sensitivity,
        },
    ]
}

/// Find an experiment by case-insensitive id.
pub fn experiment_by_id(id: &str) -> Option<Experiment> {
    let id = id.to_ascii_lowercase();
    all_experiments().into_iter().find(|e| e.id == id)
}

// ---------- individual experiments ----------

fn e1_catalog(_opts: &RunOptions) -> Vec<Table> {
    let mut t = Table::new(
        "e1",
        "benchmark suite inventory",
        vec!["benchmark".into(), "description".into(), "default parameters".into()],
    );
    for info in wl::catalog() {
        t.push_row(vec![
            info.name.to_string(),
            info.description.split_whitespace().collect::<Vec<_>>().join(" "),
            info.parameters,
        ]);
    }
    t.push_note("shbench and bem-like are substitutes for proprietary originals (DESIGN.md)");
    vec![t]
}

fn e2_threadtest(opts: &RunOptions) -> Vec<Table> {
    let params = wl::threadtest::Params {
        total_objects: opts.scale(100_000, 10_000),
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::threadtest::run(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e2", "threadtest speedup", &opts.threads, &series)]
}

fn e3_shbench(opts: &RunOptions) -> Vec<Table> {
    let params = wl::shbench::Params {
        total_ops: opts.scale(40_000, 6_000),
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::shbench::run(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e3", "shbench speedup", &opts.threads, &series)]
}

fn e4_larson(opts: &RunOptions) -> Vec<Table> {
    let params = wl::larson::Params {
        ops_per_round: opts.scale(4_000, 800),
        slots_per_thread: if opts.quick { 200 } else { 500 },
        ..Default::default()
    };
    // Larson is a *throughput* benchmark: per-thread work is constant
    // (a server taking more connections with more processors), so the
    // figure reports throughput scaled to serial at P=1.
    let kinds = AllocatorKind::sweep();
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::larson::run(a, p, &params),
        &kinds,
        &opts.threads,
    );
    let per_thread_ops = params.ops_per_round * params.rounds as u64;
    let serial_tput_1 = {
        let s0 = &series[0]; // serial is first in sweep()
        per_thread_ops as f64 / s0.points[0].makespan.max(1) as f64
    };
    let mut tput = Table::new(
        "e4",
        "larson throughput, relative to serial at P=1",
        {
            let mut c = vec!["P".to_string()];
            c.extend(kinds.iter().map(|k| k.label().to_string()));
            c
        },
    );
    for (i, &p) in opts.threads.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for s in &series {
            let ops = per_thread_ops * p as u64;
            let tp = ops as f64 / s.points[i].makespan.max(1) as f64;
            row.push(format!("{:.2}", tp / serial_tput_1));
        }
        tput.push_row(row);
    }
    tput.push_note("per-thread work constant (server model); value = throughput / serial@1");
    tput.push_note("virtual-time makespans from the simulated SMP (see DESIGN.md)");
    vec![tput]
}

fn e5_active_false(opts: &RunOptions) -> Vec<Table> {
    let params = wl::false_sharing::Params {
        total_writes: opts.scale(100_000, 20_000),
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::false_sharing::active_false(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e5", "active-false speedup", &opts.threads, &series)]
}

fn e6_passive_false(opts: &RunOptions) -> Vec<Table> {
    let params = wl::false_sharing::Params {
        total_writes: opts.scale(100_000, 20_000),
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::false_sharing::passive_false(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e6", "passive-false speedup", &opts.threads, &series)]
}

fn e7_barnes_hut(opts: &RunOptions) -> Vec<Table> {
    let params = wl::barnes_hut::Params {
        bodies: if opts.quick { 500 } else { 2_000 },
        steps: if opts.quick { 2 } else { 3 },
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::barnes_hut::run(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e7", "barnes-hut speedup", &opts.threads, &series)]
}

fn e8_bem(opts: &RunOptions) -> Vec<Table> {
    let params = wl::bem_like::Params {
        phases: if opts.quick { 2 } else { 4 },
        solve_iters_total: if opts.quick { 400 } else { 1_600 },
        ..Default::default()
    };
    let series = run_speedup(
        &|a: &dyn MtAllocator, p| wl::bem_like::run(a, p, &params),
        &AllocatorKind::sweep(),
        &opts.threads,
    );
    vec![speedup_table("e8", "bem-like speedup", &opts.threads, &series)]
}

fn e9_fragmentation(opts: &RunOptions) -> Vec<Table> {
    let threads = 8.min(*opts.threads.last().unwrap_or(&8));
    let mut t = Table::new(
        "e9",
        "Hoard memory efficiency per benchmark",
        vec![
            "benchmark".into(),
            "max live U (bytes)".into(),
            "max held A (bytes)".into(),
            "frag A/U".into(),
        ],
    );
    // Parameterized so each benchmark carries an application-realistic
    // live heap (the paper's table measures real programs; a
    // microbenchmark whose live set is a few hundred bytes would just
    // report the additive O(P*S) term). The false-sharing
    // microbenchmarks are excluded for that reason.
    let runs: Vec<FragRun> = vec![
        ("threadtest", {
            let p = wl::threadtest::Params {
                total_objects: opts.scale(100_000, 10_000),
                batch: 500,
                size: 64,
                ..Default::default()
            };
            Box::new(move |a: &dyn MtAllocator| wl::threadtest::run(a, threads, &p))
        }),
        ("shbench", {
            let p = wl::shbench::Params {
                total_ops: opts.scale(40_000, 6_000),
                ..Default::default()
            };
            Box::new(move |a: &dyn MtAllocator| wl::shbench::run(a, threads, &p))
        }),
        ("larson", {
            let p = wl::larson::Params {
                ops_per_round: opts.scale(4_000, 800),
                ..Default::default()
            };
            Box::new(move |a: &dyn MtAllocator| wl::larson::run(a, threads, &p))
        }),
        ("barnes-hut", {
            let p = wl::barnes_hut::Params {
                bodies: if opts.quick { 500 } else { 2_000 },
                ..Default::default()
            };
            Box::new(move |a: &dyn MtAllocator| wl::barnes_hut::run(a, threads, &p))
        }),
        ("bem-like", {
            let p = wl::bem_like::Params {
                phases: if opts.quick { 2 } else { 4 },
                ..Default::default()
            };
            Box::new(move |a: &dyn MtAllocator| wl::bem_like::run(a, threads, &p))
        }),
    ];
    for (name, runner) in runs {
        let hoard = AllocatorKind::Hoard(HoardConfig::new()).build();
        let result = runner(&*hoard);
        let frag = result
            .fragmentation()
            .map_or_else(|| "n/a".to_string(), |f| format!("{f:.2}"));
        t.push_row(vec![
            name.to_string(),
            result.max_live_requested.to_string(),
            result.snapshot.held_peak.to_string(),
            frag,
        ]);
    }
    t.push_note(format!("run at P = {threads}; U counts requested bytes, A bytes held from the OS"));
    vec![t]
}

fn e10_uniprocessor(opts: &RunOptions) -> Vec<Table> {
    // Real wall-clock time: valid on one host CPU by construction.
    let params = wl::threadtest::Params {
        total_objects: opts.scale(200_000, 20_000),
        work_per_object: 0,
        ..Default::default()
    };
    let mut t = Table::new(
        "e10",
        "single-processor runtime, real time (allocator-bound churn)",
        vec![
            "allocator".into(),
            "wall time (ms)".into(),
            "vs serial".into(),
        ],
    );
    let mut serial_ms = None;
    for kind in AllocatorKind::sweep() {
        let alloc = kind.build();
        let start = std::time::Instant::now();
        let _ = wl::threadtest::run(&*alloc, 1, &params);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if kind.label() == "serial" {
            serial_ms = Some(ms);
        }
        let rel = serial_ms.map_or(1.0, |s| ms / s);
        t.push_row(vec![
            kind.label().to_string(),
            format!("{ms:.1}"),
            format!("{rel:.2}x"),
        ]);
    }
    t.push_note("host wall-clock, single thread; includes simulator bookkeeping overhead equally for all allocators");
    vec![t]
}

fn e11_blowup(opts: &RunOptions) -> Vec<Table> {
    let params = wl::consume::Params {
        rounds: if opts.quick { 20 } else { 50 },
        ..Default::default()
    };
    let kinds = AllocatorKind::sweep();
    let mut t = Table::new(
        "e11",
        "producer-consumer footprint growth (held KiB after round N)",
        {
            let mut c = vec!["round".to_string()];
            c.extend(kinds.iter().map(|k| k.label().to_string()));
            c
        },
    );
    let series: Vec<Vec<u64>> = kinds
        .iter()
        .map(|kind| {
            let alloc = kind.build();
            wl::consume::run(&*alloc, 2, &params).held_series
        })
        .collect();
    let checkpoints: Vec<usize> = [0usize, 4, 9, 19, 29, 39, 49]
        .iter()
        .copied()
        .filter(|&r| r < params.rounds)
        .collect();
    for r in checkpoints {
        let mut row = vec![(r + 1).to_string()];
        for s in &series {
            row.push(format!("{:.0}", s[r] as f64 / 1024.0));
        }
        t.push_row(row);
    }
    t.push_note("live memory is one batch throughout; growth = allocator blowup (paper §2-3)");
    vec![t]
}

fn e12_sensitivity(opts: &RunOptions) -> Vec<Table> {
    let threads = 8.min(*opts.threads.last().unwrap_or(&8));
    let base = HoardConfig::new();
    let columns = || -> Vec<String> {
        vec![
            "f".into(),
            "K".into(),
            "S (KiB)".into(),
            "makespan (Kunits)".into(),
            "frag A/U".into(),
            "global transfers".into(),
        ]
    };
    let row = |cfg: &HoardConfig, result: &WorkloadResult| -> Vec<String> {
        let frag = result
            .fragmentation()
            .map_or_else(|| "n/a".to_string(), |f| format!("{f:.2}"));
        let transfers =
            result.snapshot.transfers_to_global + result.snapshot.transfers_from_global;
        vec![
            format!("{}/{}", cfg.empty_fraction_num, cfg.empty_fraction_den),
            cfg.slack_k.to_string(),
            (cfg.superblock_size / 1024).to_string(),
            format!("{:.0}", result.makespan as f64 / 1e3),
            frag,
            transfers.to_string(),
        ]
    };

    // (a) f on shbench: mixed sizes with random lifetimes settle heaps at
    // ~60% fullness, so the emptiness threshold's placement decides
    // whether the allocator perpetually migrates superblocks.
    let sh = wl::shbench::Params {
        total_ops: opts.scale(20_000, 5_000),
        ..Default::default()
    };
    let mut tf = Table::new(
        "e12",
        "Hoard sensitivity to f (shbench: random lifetimes, mixed sizes)",
        columns(),
    );
    for (num, den) in [(1usize, 8usize), (1, 4), (1, 2), (3, 4)] {
        let cfg = base.with_empty_fraction(num, den);
        let alloc = AllocatorKind::Hoard(cfg).build();
        let result = wl::shbench::run(&*alloc, threads, &sh);
        tf.push_row(row(&cfg, &result));
    }
    tf.push_note(format!(
        "shbench at P = {threads}; small f declares ~60%-full heaps \
         permanently too empty and churns superblocks through the global heap"
    ));

    // (b) K and S on threadtest: batch churn drains superblocks fully,
    // exercising the empty-list slack and superblock-size trade-offs.
    let tt = wl::threadtest::Params {
        total_objects: opts.scale(50_000, 8_000),
        ..Default::default()
    };
    let mut tks = Table::new(
        "e12",
        "Hoard sensitivity to K and S (threadtest: batch churn)",
        columns(),
    );
    let mut configs: Vec<HoardConfig> = Vec::new();
    for k in [0usize, 1, 2, 8] {
        configs.push(base.with_slack(k));
    }
    for s in [4096usize, 16384] {
        configs.push(base.with_superblock_size(s));
    }
    for cfg in configs {
        let alloc = AllocatorKind::Hoard(cfg).build();
        let result = wl::threadtest::run(&*alloc, threads, &tt);
        tks.push_row(row(&cfg, &result));
    }
    tks.push_note(format!(
        "threadtest at P = {threads}; K = 0 shows superblock ping-ponging via transfer counts"
    ));
    vec![tf, tks]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            threads: vec![1, 2],
            quick: true,
        }
    }

    #[test]
    fn e1_lists_all_benchmarks() {
        let tables = e1_catalog(&tiny_opts());
        assert_eq!(tables[0].rows.len(), 10);
    }

    #[test]
    fn e2_runs_and_orders_hoard_above_serial() {
        let tables = e2_threadtest(&tiny_opts());
        let t = &tables[0];
        assert_eq!(t.columns[0], "P");
        // Last row (P=2): hoard column must beat serial column.
        let row = t.rows.last().unwrap();
        let serial: f64 = row[1].parse().unwrap();
        let hoard: f64 = row[t.columns.iter().position(|c| c == "hoard").unwrap()]
            .parse()
            .unwrap();
        assert!(hoard > serial, "hoard {hoard} vs serial {serial}");
    }

    #[test]
    fn e9_reports_finite_fragmentation() {
        let tables = e9_fragmentation(&tiny_opts());
        for row in &tables[0].rows {
            let frag: f64 = row[3].parse().expect("numeric fragmentation");
            assert!((1.0..100.0).contains(&frag), "{}: frag {frag}", row[0]);
        }
    }

    #[test]
    fn e11_shows_private_growth_hoard_flat() {
        let tables = e11_blowup(&tiny_opts());
        let t = &tables[0];
        let private_col = t.columns.iter().position(|c| c == "private").unwrap();
        let hoard_col = t.columns.iter().position(|c| c == "hoard").unwrap();
        let first = &t.rows[1]; // round 5
        let last = t.rows.last().unwrap();
        let private_growth: f64 = last[private_col].parse::<f64>().unwrap()
            - first[private_col].parse::<f64>().unwrap();
        let hoard_growth: f64 =
            last[hoard_col].parse::<f64>().unwrap() - first[hoard_col].parse::<f64>().unwrap();
        assert!(private_growth > 50.0, "private grew {private_growth} KiB");
        assert!(hoard_growth <= 16.0, "hoard grew {hoard_growth} KiB");
    }
}
