//! Minimal table model with aligned ASCII rendering and CSV export.

use serde::{Deserialize, Serialize};

/// A rendered experiment result: header, aligned rows, footnotes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id (`e2`) this table belongs to.
    pub id: String,
    /// Human title (usually the paper artefact it regenerates).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
    /// Footnotes (assumptions, normalization, substitutions).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id.to_uppercase(), self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {cell:>w$} |", w = w));
            }
            s.push('\n');
            s
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        out.push_str(&sep);
        out.push_str(&line(&self.columns, &widths));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out.push_str(&sep);
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "e0",
            "sample",
            vec!["P".into(), "hoard".into(), "serial".into()],
        );
        t.push_row(vec!["1".into(), "1.00".into(), "1.00".into()]);
        t.push_row(vec!["14".into(), "13.20".into(), "0.10".into()]);
        t.push_note("normalized to serial at P=1");
        t
    }

    #[test]
    fn renders_aligned() {
        let r = sample().render();
        assert!(r.contains("E0 — sample"));
        // Widths: P=2 ("14"), hoard=5 ("hoard"/"13.20"), serial=6.
        assert!(r.contains("| 14 | 13.20 |   0.10 |"), "alignment:\n{r}");
        assert!(r.contains("note: normalized"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = sample();
        t.push_row(vec!["x,y".into(), "a\"b".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("P,hoard,serial\n"));
        assert!(csv.contains("\"x,y\",\"a\"\"b\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        sample().push_row(vec!["only-one".into()]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Table>(&json).unwrap(), t);
    }
}
