//! End-to-end export check (the PR's acceptance scenario): a fixed-seed
//! larson run on 4 virtual processors with magazines, tracer, and
//! metrics attached must produce a valid Chrome `trace_event` JSON with
//! one track per processor covering allocation, magazine, transfer and
//! lock activity — and `hoardscope` must summarize it.

use hoard_core::{
    chrome_trace_json, jsonio::JsonValue, EventKind, HoardConfig, ProfileConfig, CHROME_PID,
    HEAP_PROFILE_SCHEMA,
};
use hoard_harness::{
    heap_profile_section, profile_trc, replay_trc, report_for, scope_report, traced_larson,
    TRC_REPORT_SCHEMA,
};
use hoard_workloads::server_traffic;

#[test]
fn traced_larson_exports_valid_chrome_trace_and_hoardscope_reports_it() {
    let run = traced_larson(4, true);
    let log = &run.log;
    assert_eq!(log.dropped, 0, "sink must be sized for the run");

    // Per-processor coverage: all four machine workers traced.
    let procs: Vec<usize> = log.tracks.iter().map(|t| t.proc).collect();
    for p in 0..4 {
        assert!(procs.contains(&p), "missing track for vcpu {p}: {procs:?}");
    }

    // Event-kind coverage: the categories the ISSUE names.
    for kind in [
        EventKind::AllocMagazine,
        EventKind::FreeMagazine,
        EventKind::MagazineRefill,
        EventKind::MagazineFlush,
        EventKind::RemoteFreePush,
        EventKind::RemoteFreeDrain,
        EventKind::TransferToGlobal,
        EventKind::LockAcquire,
        EventKind::LockRelease,
    ] {
        assert!(log.count(kind) > 0, "no {} events traced", kind.label());
    }

    // Chrome trace_event schema: parse with the same hand-rolled JSON
    // layer the exporter uses (the dev image's serde_json is a stub).
    let chrome = chrome_trace_json(log);
    let root = JsonValue::parse(&chrome).expect("well-formed JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > log.total_events(), "events + metadata");

    let mut last_ts: Vec<(u64, u64)> = Vec::new(); // (tid, last ts)
    let mut metadata = 0usize;
    let mut instants = 0usize;
    let mut slices = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph present");
        let pid = ev.get("pid").and_then(|v| v.as_u64()).expect("pid present");
        let tid = ev.get("tid").and_then(|v| v.as_u64()).expect("tid present");
        assert_eq!(pid, CHROME_PID);
        match ph {
            "M" => {
                metadata += 1;
                continue; // metadata carries no ts
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(|v| v.as_str()), Some("t"));
                instants += 1;
            }
            "X" => {
                assert!(ev.get("dur").and_then(|v| v.as_u64()).is_some());
                slices += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(|v| v.as_u64()).expect("ts present");
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                assert!(*last <= ts, "ts not monotone on tid {tid}");
                *last = ts;
            }
            None => last_ts.push((tid, ts)),
        }
    }
    assert_eq!(metadata, 1 + log.tracks.len(), "process + one per thread");
    assert_eq!(slices, log.count(EventKind::LockRelease), "one slice per hold");
    assert_eq!(instants + slices, log.total_events());
    assert!(last_ts.len() >= 4, "at least one timed track per vcpu");

    // hoardscope renders all four sections with real content.
    let report = scope_report(log, Some(&run.metrics));
    for needle in [
        "trace summary",
        "heap locks by virtual wait",
        "superblock transfers",
        "per-class front-end bypass",
        "registry digests",
        "alloc.magazine",
        "corruption reports",
    ] {
        assert!(report.contains(needle), "report missing {needle:?}:\n{report}");
    }

    // Byte-reproducibility is only promised for single-processor runs
    // (the core golden-trace test): with P=4, OS scheduling reorders
    // contended acquisitions. The *workload-determined* aggregates must
    // still reproduce exactly on a fixed seed — but not the slow-path /
    // magazine split of those totals: whether an op hits the magazine
    // depends on refill/flush/remote-drain timing, which real-thread
    // scheduling perturbs under host load (the ROADMAP's
    // "deterministic virtual time under host load" open item). Replay
    // determinism for that is what the `.trc` pipeline's sequential
    // engine provides; here we assert the per-path *sums*.
    let again = traced_larson(4, true);
    assert_eq!(run.metrics.total_allocs(), again.metrics.total_allocs());
    assert_eq!(run.metrics.total_frees(), again.metrics.total_frees());
    for (a, b, label) in [
        (EventKind::Alloc, EventKind::AllocMagazine, "alloc"),
        (EventKind::Free, EventKind::FreeMagazine, "free"),
    ] {
        assert_eq!(
            log.count(a) + log.count(b),
            again.log.count(a) + again.log.count(b),
            "fixed-seed {label} count must reproduce"
        );
    }
}

/// The `hoardscope trc report` schema with the heap-profile section:
/// every field CI's validator reads must be present with the right
/// shape, and the section must agree with the profiled replay it came
/// from.
#[test]
fn trc_report_carries_the_heap_profile_section() {
    let (trc, _) = server_traffic::generate(&server_traffic::Params {
        workers: 2,
        sessions: 800,
        seed: 11,
        ..Default::default()
    });
    let config = HoardConfig::with_default_magazines();
    let out = replay_trc(&trc, config).expect("replays");
    let profiled = profile_trc(&trc, config, ProfileConfig::default(), false, 0).expect("profiles");
    let json = report_for(
        &trc,
        &out,
        &config,
        Some(heap_profile_section(&profiled, 5)),
    );

    let doc = JsonValue::parse(&json).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some(TRC_REPORT_SCHEMA)
    );
    let hp = doc.get("heap_profile").expect("heap_profile section");
    assert_eq!(
        hp.get("schema").and_then(JsonValue::as_str),
        Some(HEAP_PROFILE_SCHEMA)
    );
    assert_eq!(
        hp.get("total_allocs").and_then(JsonValue::as_u64),
        Some(profiled.profile.total_allocs)
    );
    assert_eq!(hp.get("unmatched_frees").and_then(JsonValue::as_u64), Some(0));

    let timeline = hp.get("timeline").expect("timeline summary");
    for field in ["points", "interval", "held_peak_bytes", "live_peak_bytes"] {
        assert!(
            timeline.get(field).and_then(JsonValue::as_u64).is_some(),
            "timeline.{field} missing or not a number"
        );
    }
    assert!(
        timeline.get("peak_fragmentation").is_some(),
        "peak_fragmentation present (number or null)"
    );

    let sites = hp
        .get("top_sites")
        .and_then(JsonValue::as_array)
        .expect("top_sites array");
    assert!(!sites.is_empty() && sites.len() <= 5);
    for s in sites {
        assert!(s.get("site").and_then(JsonValue::as_u64).is_some());
        assert!(s.get("name").and_then(JsonValue::as_str).is_some());
        for field in ["live_bytes", "total_bytes", "total_allocs"] {
            assert!(s.get(field).and_then(JsonValue::as_u64).is_some());
        }
    }

    let leaks = hp.get("leaks").expect("leaks summary");
    assert_eq!(leaks.get("bytes").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(leaks.get("sites").and_then(JsonValue::as_u64), Some(0));

    let map = hp.get("heap_map").expect("heap_map gauges");
    assert_eq!(map.get("live_bytes").and_then(JsonValue::as_u64), Some(0));
    assert!(map.get("held_bytes").and_then(JsonValue::as_u64).is_some());
    assert!(map
        .get("empty_superblocks")
        .and_then(JsonValue::as_u64)
        .is_some());

    // Without a profiled replay the section is simply absent — the v1
    // report shape is unchanged.
    let plain = report_for(&trc, &out, &config, None);
    let plain_doc = JsonValue::parse(&plain).expect("valid JSON");
    assert!(plain_doc.get("heap_profile").is_none());
}
