//! Chunk sources — the allocators' "operating system".
//!
//! Hoard and the baselines never talk to the host allocator directly;
//! they request superblock-sized, superblock-aligned chunks from a
//! [`ChunkSource`]. This indirection gives us three things the
//! reproduction needs:
//!
//! 1. **Accounting** — `A(t)`, the bytes currently/maximally *held* from
//!    the OS, which together with the in-use bytes `U(t)` yields the
//!    paper's fragmentation and blowup measurements.
//! 2. **Virtual cost** — each chunk allocation charges the
//!    [`Cost::OsChunk`](hoard_sim::Cost) penalty, so allocators that go
//!    to the OS too often pay for it in the simulated figures.
//! 3. **Failure injection** — [`LimitedSource`] and [`FailingSource`]
//!    let tests exercise out-of-memory paths deterministically.

use crate::stats::peak_max;
use hoard_sim::{charge_cost, Cost};
use serde::{Deserialize, Serialize};
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Provider of large aligned chunks. Implementations must be thread-safe.
///
/// # Safety
///
/// Implementations must return chunks that are valid for reads and writes
/// of `layout.size()` bytes, aligned to `layout.align()`, and exclusively
/// owned by the caller until passed back to [`free_chunk`].
///
/// [`free_chunk`]: ChunkSource::free_chunk
pub unsafe trait ChunkSource: Send + Sync {
    /// Allocate a chunk of the given layout, or `None` when exhausted.
    ///
    /// # Safety
    ///
    /// `layout` must have nonzero size.
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>>;

    /// Return a chunk previously obtained from [`alloc_chunk`] with the
    /// same layout.
    ///
    /// # Safety
    ///
    /// `ptr` must come from this source's `alloc_chunk` with an identical
    /// `layout`, and must not be used afterwards.
    ///
    /// [`alloc_chunk`]: ChunkSource::alloc_chunk
    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout);

    /// Accounting snapshot.
    fn stats(&self) -> SourceStats;
}

// A shared reference to a source is itself a source: this lets a test
// hand an allocator `&source` and keep the original to inspect stats
// after the allocator (and its Drop) are gone.
unsafe impl<S: ChunkSource> ChunkSource for &S {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        (**self).alloc_chunk(layout)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        (**self).free_chunk(ptr, layout);
    }

    fn stats(&self) -> SourceStats {
        (**self).stats()
    }
}

/// Point-in-time accounting of a [`ChunkSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Bytes currently held from the OS.
    pub held_current: u64,
    /// High-water mark of held bytes — the `A` in the paper's
    /// fragmentation ratio `A / U`.
    pub held_peak: u64,
    /// Number of chunk allocations performed.
    pub chunk_allocs: u64,
    /// Number of chunks returned.
    pub chunk_frees: u64,
}

#[derive(Debug, Default)]
struct Counters {
    held: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl Counters {
    const fn new() -> Self {
        Counters {
            held: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
        }
    }

    fn on_alloc(&self, bytes: u64) {
        let now = self.held.fetch_add(bytes, Ordering::Relaxed) + bytes;
        peak_max(&self.peak, now);
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    fn on_free(&self, bytes: u64) {
        self.held.fetch_sub(bytes, Ordering::Relaxed);
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SourceStats {
        SourceStats {
            held_current: self.held.load(Ordering::Relaxed),
            held_peak: self.peak.load(Ordering::Relaxed),
            chunk_allocs: self.allocs.load(Ordering::Relaxed),
            chunk_frees: self.frees.load(Ordering::Relaxed),
        }
    }
}

/// The default chunk source: the host *system* allocator plus virtual OS
/// cost.
///
/// Deliberately calls [`std::alloc::System`] rather than the global
/// `std::alloc::alloc`: when a Hoard instance built on this source is
/// installed as `#[global_allocator]`, going through the global hooks
/// would recurse into Hoard itself.
#[derive(Debug, Default)]
pub struct SystemSource {
    counters: Counters,
}

impl SystemSource {
    /// Create a source with zeroed counters. `const`, so a source can be
    /// embedded in a `static` allocator.
    pub const fn new() -> Self {
        SystemSource {
            counters: Counters::new(),
        }
    }
}

unsafe impl ChunkSource for SystemSource {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        use std::alloc::GlobalAlloc;
        charge_cost(Cost::OsChunk);
        let ptr = std::alloc::System.alloc(layout);
        let nn = NonNull::new(ptr)?;
        // Whether the host recycled this address must not leak into the
        // virtual cost model: declare the chunk's lines cold.
        hoard_sim::chunk_acquired(nn.as_ptr(), layout.size());
        self.counters.on_alloc(layout.size() as u64);
        Some(nn)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        use std::alloc::GlobalAlloc;
        charge_cost(Cost::OsRelease);
        std::alloc::System.dealloc(ptr.as_ptr(), layout);
        self.counters.on_free(layout.size() as u64);
    }

    fn stats(&self) -> SourceStats {
        self.counters.snapshot()
    }
}

/// A source that refuses allocations beyond a byte budget — deterministic
/// out-of-memory injection for tests and for bounding runaway blowup
/// demonstrations.
#[derive(Debug)]
pub struct LimitedSource<S> {
    inner: S,
    capacity: u64,
}

impl<S: ChunkSource> LimitedSource<S> {
    /// Wrap `inner`, refusing to exceed `capacity` bytes held at once.
    pub fn new(inner: S, capacity: u64) -> Self {
        LimitedSource { inner, capacity }
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

unsafe impl<S: ChunkSource> ChunkSource for LimitedSource<S> {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        // Optimistic check; a benign race can slightly overshoot, which is
        // acceptable for test budgeting (exactness is not required).
        if self.inner.stats().held_current + layout.size() as u64 > self.capacity {
            return None;
        }
        self.inner.alloc_chunk(layout)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        self.inner.free_chunk(ptr, layout);
    }

    fn stats(&self) -> SourceStats {
        self.inner.stats()
    }
}

/// A source that succeeds `successes` times and then fails every
/// allocation — for exercising error paths mid-operation.
#[derive(Debug)]
pub struct FailingSource<S> {
    inner: S,
    remaining: AtomicUsize,
}

impl<S: ChunkSource> FailingSource<S> {
    /// Wrap `inner`, allowing exactly `successes` chunk allocations.
    pub fn new(inner: S, successes: usize) -> Self {
        FailingSource {
            inner,
            remaining: AtomicUsize::new(successes),
        }
    }
}

unsafe impl<S: ChunkSource> ChunkSource for FailingSource<S> {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return None;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.inner.alloc_chunk(layout)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        self.inner.free_chunk(ptr, layout);
    }

    fn stats(&self) -> SourceStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, size.next_power_of_two()).unwrap()
    }

    #[test]
    fn system_source_tracks_held_and_peak() {
        let s = SystemSource::new();
        let l = layout(8192);
        let a = unsafe { s.alloc_chunk(l) }.unwrap();
        let b = unsafe { s.alloc_chunk(l) }.unwrap();
        assert_eq!(s.stats().held_current, 16384);
        unsafe { s.free_chunk(a, l) };
        assert_eq!(s.stats().held_current, 8192);
        assert_eq!(s.stats().held_peak, 16384, "peak survives frees");
        unsafe { s.free_chunk(b, l) };
        let st = s.stats();
        assert_eq!(st.held_current, 0);
        assert_eq!(st.chunk_allocs, 2);
        assert_eq!(st.chunk_frees, 2);
    }

    #[test]
    fn system_source_chunks_are_aligned_and_writable() {
        let s = SystemSource::new();
        let l = Layout::from_size_align(16384, 16384).unwrap();
        let p = unsafe { s.alloc_chunk(l) }.unwrap();
        assert_eq!(p.as_ptr() as usize % 16384, 0);
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0xAB, 16384);
            assert_eq!(*p.as_ptr(), 0xAB);
            s.free_chunk(p, l);
        }
    }

    #[test]
    fn system_source_charges_virtual_os_cost() {
        let s = SystemSource::new();
        let t0 = hoard_sim::now();
        let l = layout(8192);
        let p = unsafe { s.alloc_chunk(l) }.unwrap();
        assert!(hoard_sim::now() >= t0 + hoard_sim::CostModel::current().os_chunk);
        unsafe { s.free_chunk(p, l) };
    }

    #[test]
    fn limited_source_enforces_budget() {
        let s = LimitedSource::new(SystemSource::new(), 16384);
        let l = layout(8192);
        let a = unsafe { s.alloc_chunk(l) }.unwrap();
        let b = unsafe { s.alloc_chunk(l) }.unwrap();
        assert!(unsafe { s.alloc_chunk(l) }.is_none(), "over budget");
        unsafe { s.free_chunk(a, l) };
        let c = unsafe { s.alloc_chunk(l) }.expect("freed budget is reusable");
        unsafe {
            s.free_chunk(b, l);
            s.free_chunk(c, l);
        }
    }

    #[test]
    fn failing_source_counts_down() {
        let s = FailingSource::new(SystemSource::new(), 2);
        let l = layout(8192);
        let a = unsafe { s.alloc_chunk(l) }.unwrap();
        let b = unsafe { s.alloc_chunk(l) }.unwrap();
        assert!(unsafe { s.alloc_chunk(l) }.is_none());
        assert!(unsafe { s.alloc_chunk(l) }.is_none(), "stays failed");
        unsafe {
            s.free_chunk(a, l);
            s.free_chunk(b, l);
        }
    }

    #[test]
    fn source_stats_serialize() {
        let st = SourceStats {
            held_current: 1,
            held_peak: 2,
            chunk_allocs: 3,
            chunk_frees: 4,
        };
        let s = serde_json::to_string(&st).unwrap();
        assert_eq!(serde_json::from_str::<SourceStats>(&s).unwrap(), st);
    }
}
