//! Large objects (requests above `S/2`).
//!
//! The paper routes requests larger than half a superblock straight to
//! the operating system — they are rare, page-granular, and would waste
//! most of a superblock. Each large object gets its own chunk: a small
//! `LargeHeader` at the chunk start, the payload at a fixed offset,
//! and the standard per-block header word tagged [`Tag::Large`]
//! immediately before the payload so `free` can dispatch without knowing
//! the size.

use crate::{align_up, write_header, ChunkSource, HeaderWord, Tag};
use std::alloc::Layout;
use std::ptr::NonNull;

/// Alignment of large-object chunks (page-like).
const CHUNK_ALIGN: usize = 4096;

/// Payload offset within the chunk: room for [`LargeHeader`] plus the
/// tag word, rounded to a cache line.
const PREFIX: usize = 64;

const LARGE_MAGIC: u64 = 0x1A26_E0B1_1A26_E0B1;

/// Header at the start of every large-object chunk.
#[repr(C)]
struct LargeHeader {
    magic: u64,
    /// Requested payload size in bytes.
    size: usize,
    /// Total chunk size (for the free's layout).
    chunk_size: usize,
}

/// Allocate a large object of `size` bytes from `source`.
///
/// # Safety
///
/// `size` must be nonzero.
pub unsafe fn alloc_large<S: ChunkSource>(source: &S, size: usize) -> Option<NonNull<u8>> {
    let chunk_size = align_up(PREFIX + size, CHUNK_ALIGN);
    let layout = Layout::from_size_align(chunk_size, CHUNK_ALIGN).expect("large layout");
    let chunk = source.alloc_chunk(layout)?;
    let hdr = chunk.as_ptr() as *mut LargeHeader;
    hdr.write(LargeHeader {
        magic: LARGE_MAGIC,
        size,
        chunk_size,
    });
    let payload = chunk.as_ptr().add(PREFIX);
    write_header(payload, HeaderWord::new(Tag::Large, chunk.as_ptr() as usize));
    Some(NonNull::new_unchecked(payload))
}

/// Free a large object; returns its payload size (for accounting), or
/// `None` — without touching the chunk — when the header's magic does
/// not verify. The magic check is always on (not a `debug_assert`): a
/// corrupt or forged header would otherwise feed an attacker-controlled
/// `Layout` straight into `free_chunk`. Callers route `None` into their
/// corruption-reporting path.
///
/// # Safety
///
/// `chunk_addr` must be the [`Tag::Large`] header value of a live large
/// object previously produced by [`alloc_large`] on the same `source`,
/// or at minimum point at `size_of::<LargeHeader>()` readable bytes.
pub unsafe fn free_large<S: ChunkSource>(source: &S, chunk_addr: usize) -> Option<usize> {
    let hdr = chunk_addr as *mut LargeHeader;
    if (*hdr).magic != LARGE_MAGIC {
        return None;
    }
    let size = (*hdr).size;
    let chunk_size = (*hdr).chunk_size;
    let layout = Layout::from_size_align(chunk_size, CHUNK_ALIGN).expect("large layout");
    source.free_chunk(NonNull::new_unchecked(chunk_addr as *mut u8), layout);
    Some(size)
}

/// Payload size of a live large object.
///
/// # Safety
///
/// As for [`free_large`], but the object stays live.
pub unsafe fn large_size(chunk_addr: usize) -> usize {
    let hdr = chunk_addr as *mut LargeHeader;
    debug_assert_eq!((*hdr).magic, LARGE_MAGIC, "corrupt large-object header");
    (*hdr).size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_header, SystemSource};

    #[test]
    fn roundtrip_and_accounting() {
        let src = SystemSource::new();
        unsafe {
            let p = alloc_large(&src, 10_000).unwrap();
            assert_eq!(p.as_ptr() as usize % 8, 0);
            std::ptr::write_bytes(p.as_ptr(), 0xCD, 10_000);
            let h = read_header(p.as_ptr());
            assert_eq!(h.tag, Tag::Large);
            assert_eq!(large_size(h.value), 10_000);
            assert!(src.stats().held_current >= 10_000);
            let freed = free_large(&src, h.value);
            assert_eq!(freed, Some(10_000));
            assert_eq!(src.stats().held_current, 0);
        }
    }

    #[test]
    fn chunk_is_page_rounded() {
        let src = SystemSource::new();
        unsafe {
            let p = alloc_large(&src, 1).unwrap();
            assert_eq!(src.stats().held_current, 4096, "one page for a tiny large object");
            let h = read_header(p.as_ptr());
            assert!(free_large(&src, h.value).is_some());
        }
    }

    #[test]
    fn distinct_large_objects_do_not_overlap() {
        let src = SystemSource::new();
        unsafe {
            let a = alloc_large(&src, 5000).unwrap();
            let b = alloc_large(&src, 5000).unwrap();
            std::ptr::write_bytes(a.as_ptr(), 0x11, 5000);
            std::ptr::write_bytes(b.as_ptr(), 0x22, 5000);
            assert_eq!(*a.as_ptr(), 0x11);
            assert_eq!(*b.as_ptr(), 0x22);
            let ha = read_header(a.as_ptr());
            let hb = read_header(b.as_ptr());
            assert!(free_large(&src, ha.value).is_some());
            assert!(free_large(&src, hb.value).is_some());
        }
    }

    #[test]
    fn corrupt_magic_is_refused_without_freeing() {
        let src = SystemSource::new();
        unsafe {
            let p = alloc_large(&src, 3000).unwrap();
            let h = read_header(p.as_ptr());
            // Smash the magic the way a heap-overflow would.
            let hdr = h.value as *mut u64;
            let good = hdr.read();
            hdr.write(0xBAD0_BEEF);
            assert_eq!(free_large(&src, h.value), None, "corrupt header refused");
            assert!(src.stats().held_current > 0, "chunk must not be freed");
            // Restore and free for a clean exit.
            hdr.write(good);
            assert_eq!(free_large(&src, h.value), Some(3000));
            assert_eq!(src.stats().held_current, 0);
        }
    }
}
