//! The common allocator interface.
//!
//! [`MtAllocator`] is the `malloc`/`free`-shaped contract every allocator
//! in the workspace implements — Hoard itself and each baseline from the
//! paper's taxonomy — so workloads, the harness and the benches can be
//! written once and parameterized by allocator.

use crate::stats::AllocSnapshot;
use std::ptr::NonNull;

/// A thread-safe `malloc`-style allocator with self-describing blocks.
///
/// Blocks returned by [`allocate`](MtAllocator::allocate) are at least
/// 8-byte aligned and at least `size` bytes long.
/// [`deallocate`](MtAllocator::deallocate) takes only the pointer — each
/// allocator stores a header word before the payload (see
/// [`crate::read_header`]).
///
/// # Safety
///
/// Implementations must guarantee that, until deallocated, every
/// allocated block is valid for reads and writes of `size` bytes, does
/// not overlap any other live block, and may be allocated and freed from
/// any thread (including freeing on a different thread than the
/// allocating one — the paper's *remote free*).
pub unsafe trait MtAllocator: Send + Sync {
    /// Short human-readable allocator name (used in tables: `hoard`,
    /// `serial`, `private`, `ownership`, `mtlike`).
    fn name(&self) -> &'static str;

    /// Allocate `size` bytes (8-aligned). Returns `None` on exhaustion.
    ///
    /// # Safety
    ///
    /// `size` must be nonzero.
    unsafe fn allocate(&self, size: usize) -> Option<NonNull<u8>>;

    /// Free a block previously returned by
    /// [`allocate`](MtAllocator::allocate) on this allocator.
    ///
    /// # Safety
    ///
    /// `ptr` must come from this allocator's `allocate` and must not be
    /// used (or freed again) afterwards. Any thread may call this.
    unsafe fn deallocate(&self, ptr: NonNull<u8>);

    /// Accounting snapshot, including chunk-source `held` figures.
    fn stats(&self) -> AllocSnapshot;

    /// The usable payload size of a live block (may exceed the requested
    /// size due to size-class rounding).
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this allocator.
    unsafe fn usable_size(&self, ptr: NonNull<u8>) -> usize;

    /// Resize a block to `new_size` bytes, preserving
    /// `min(old_size, new_size)` bytes of content. The default grows in
    /// place when the block's size class already covers `new_size`, and
    /// otherwise allocates-copies-frees (what C `realloc` does).
    ///
    /// Returns `None` — leaving the original block intact and live — if
    /// a required new allocation fails.
    ///
    /// # Safety
    ///
    /// `ptr` must be a live block of this allocator holding at least
    /// `old_size` valid bytes; `new_size` must be nonzero. On `Some`,
    /// the old pointer must not be used again.
    unsafe fn reallocate(
        &self,
        ptr: NonNull<u8>,
        old_size: usize,
        new_size: usize,
    ) -> Option<NonNull<u8>> {
        debug_assert!(new_size > 0);
        if self.usable_size(ptr) >= new_size {
            return Some(ptr); // in-place: the class already covers it
        }
        let fresh = self.allocate(new_size)?;
        std::ptr::copy_nonoverlapping(ptr.as_ptr(), fresh.as_ptr(), old_size.min(new_size));
        self.deallocate(ptr);
        Some(fresh)
    }
}

/// Blanket impl so `&A` works wherever an allocator is expected.
unsafe impl<A: MtAllocator + ?Sized> MtAllocator for &A {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    unsafe fn allocate(&self, size: usize) -> Option<NonNull<u8>> {
        (**self).allocate(size)
    }

    unsafe fn deallocate(&self, ptr: NonNull<u8>) {
        (**self).deallocate(ptr)
    }

    fn stats(&self) -> AllocSnapshot {
        (**self).stats()
    }

    unsafe fn usable_size(&self, ptr: NonNull<u8>) -> usize {
        (**self).usable_size(ptr)
    }

    unsafe fn reallocate(
        &self,
        ptr: NonNull<u8>,
        old_size: usize,
        new_size: usize,
    ) -> Option<NonNull<u8>> {
        (**self).reallocate(ptr, old_size, new_size)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::stats::AllocStats;
    use std::alloc::Layout;

    /// A trivial header-carrying allocator over the host heap, used to
    /// test the trait machinery and [`crate::AllocBox`].
    #[derive(Debug, Default)]
    pub struct HostAllocator {
        pub stats: AllocStats,
    }

    unsafe impl MtAllocator for HostAllocator {
        fn name(&self) -> &'static str {
            "host"
        }

        unsafe fn allocate(&self, size: usize) -> Option<NonNull<u8>> {
            let total = crate::align_up(size, 8) + crate::HEADER_SIZE;
            let layout = Layout::from_size_align(total, 8).ok()?;
            let raw = std::alloc::alloc(layout);
            let raw = NonNull::new(raw)?;
            let payload = raw.as_ptr().add(crate::HEADER_SIZE);
            // Store the size for dealloc/usable_size.
            crate::write_header(
                payload,
                crate::HeaderWord::from_int(crate::Tag::Baseline, size),
            );
            self.stats.on_alloc(size as u64);
            Some(NonNull::new_unchecked(payload))
        }

        unsafe fn deallocate(&self, ptr: NonNull<u8>) {
            let size = crate::read_header(ptr.as_ptr()).to_int();
            self.stats.on_free(size as u64, false);
            let total = crate::align_up(size, 8) + crate::HEADER_SIZE;
            let layout = Layout::from_size_align(total, 8).unwrap();
            std::alloc::dealloc(ptr.as_ptr().sub(crate::HEADER_SIZE), layout);
        }

        fn stats(&self) -> AllocSnapshot {
            self.stats.snapshot()
        }

        unsafe fn usable_size(&self, ptr: NonNull<u8>) -> usize {
            crate::read_header(ptr.as_ptr()).to_int()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::HostAllocator;
    use super::*;

    #[test]
    fn host_allocator_roundtrip() {
        let a = HostAllocator::default();
        unsafe {
            let p = a.allocate(100).unwrap();
            assert_eq!(p.as_ptr() as usize % 8, 0);
            std::ptr::write_bytes(p.as_ptr(), 0x5A, 100);
            assert_eq!(a.usable_size(p), 100);
            assert_eq!(a.stats().live_current, 100);
            a.deallocate(p);
            assert_eq!(a.stats().live_current, 0);
        }
    }

    #[test]
    fn reallocate_preserves_content_and_grows_in_place_when_possible() {
        let a = HostAllocator::default();
        unsafe {
            let p = a.allocate(64).unwrap();
            std::ptr::write_bytes(p.as_ptr(), 0x11, 64);
            // Shrink: always in place under the default impl.
            let q = a.reallocate(p, 64, 16).unwrap();
            assert_eq!(q, p, "shrink stays in place");
            // Grow beyond usable size: moves and copies.
            let r = a.reallocate(q, 16, 4096).unwrap();
            for off in 0..16 {
                assert_eq!(*r.as_ptr().add(off), 0x11, "content preserved");
            }
            a.deallocate(r);
        }
        assert_eq!(a.stats().live_current, 0);
    }

    #[test]
    fn reference_blanket_impl_forwards() {
        let a = HostAllocator::default();
        let r: &dyn MtAllocator = &a;
        unsafe {
            let p = r.allocate(8).unwrap();
            assert_eq!(r.name(), "host");
            r.deallocate(p);
        }
        assert_eq!(a.stats().allocs, 1);
    }
}
