//! Small alignment and geometry helpers.

/// Cache line size of the modelled machine (matches `hoard_sim`).
pub const CACHE_LINE: usize = 64;

/// Minimum alignment every allocator in this workspace guarantees.
pub const MIN_ALIGN: usize = 8;

/// Round `x` up to the next multiple of `align` (a power of two).
///
/// # Panics
///
/// Debug-asserts that `align` is a nonzero power of two.
pub const fn align_up(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// Round `x` down to the previous multiple of `align` (a power of two).
///
/// # Panics
///
/// Debug-asserts that `align` is a nonzero power of two.
pub const fn align_down(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(8191, 8192), 8192);
    }

    #[test]
    fn align_down_basics() {
        assert_eq!(align_down(0, 8), 0);
        assert_eq!(align_down(7, 8), 0);
        assert_eq!(align_down(8, 8), 8);
        assert_eq!(align_down(8193, 8192), 8192);
    }

    #[test]
    fn up_down_bracket_value() {
        for x in [0usize, 1, 63, 64, 65, 1000, 4095, 4096] {
            for a in [8usize, 64, 4096] {
                assert!(align_down(x, a) <= x);
                assert!(align_up(x, a) >= x);
                assert_eq!(align_up(x, a) % a, 0);
                assert_eq!(align_down(x, a) % a, 0);
            }
        }
    }
}
