//! Block headers — how a pointer finds its way home on `free`.
//!
//! Every block any allocator in this workspace hands out is preceded by
//! one machine word (the *header*), so `deallocate(ptr)` can recover
//! everything it needs from `ptr` alone, exactly like C `free`. The low
//! three bits of the word are a [`Tag`] discriminating the block kind;
//! the upper bits carry a pointer or small payload. (Superblock and heap
//! structures are ≥ 8-aligned, so their low bits are free for tagging.)

use crate::util::MIN_ALIGN;

/// Size in bytes of the per-block header word.
pub const HEADER_SIZE: usize = std::mem::size_of::<usize>();

const TAG_MASK: usize = 0b111;

/// Block kind stored in a header's low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Upper bits: address of the owning superblock header (Hoard).
    Superblock = 0,
    /// Upper bits: address of a large-object header.
    Large = 1,
    /// Upper bits: allocator-specific payload (baselines store the size
    /// class and owning-heap index here).
    Baseline = 2,
    /// Upper bits: byte offset back to the block's *real* header, used
    /// for over-aligned `GlobalAlloc` requests.
    Offset = 3,
    /// Upper bits: address of the superblock that freed the block. A
    /// hardened allocator rewrites a block's header with this tag on
    /// `free` (and back to [`Tag::Superblock`] on reuse), so a second
    /// `free` of the same pointer is detected in O(1).
    Freed = 4,
}

impl Tag {
    /// Decode a tag, or `None` for bit patterns no allocator emits.
    /// Hardened deallocation paths use this to classify wild pointers
    /// without panicking.
    pub fn try_from_bits(bits: usize) -> Option<Tag> {
        match bits {
            0 => Some(Tag::Superblock),
            1 => Some(Tag::Large),
            2 => Some(Tag::Baseline),
            3 => Some(Tag::Offset),
            4 => Some(Tag::Freed),
            _ => None,
        }
    }

    fn from_bits(bits: usize) -> Tag {
        Tag::try_from_bits(bits).expect("unassigned header tag bits")
    }
}

/// A decoded header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderWord {
    /// Block kind.
    pub tag: Tag,
    /// Tag-specific payload (pointer address or small integer). Always a
    /// multiple of 8 for pointer payloads.
    pub value: usize,
}

impl HeaderWord {
    /// Encode a header word.
    ///
    /// # Panics
    ///
    /// Panics if `value` has any of its low three bits set (pointer
    /// payloads must be 8-aligned; integer payloads must be pre-shifted
    /// by the caller via [`HeaderWord::from_int`]).
    pub fn new(tag: Tag, value: usize) -> Self {
        assert_eq!(value & TAG_MASK, 0, "header payload must be 8-aligned");
        HeaderWord { tag, value }
    }

    /// Encode an integer payload (shifted into the upper bits).
    pub fn from_int(tag: Tag, int: usize) -> Self {
        HeaderWord {
            tag,
            value: int << 3,
        }
    }

    /// Decode an integer payload written by [`HeaderWord::from_int`].
    pub fn to_int(self) -> usize {
        self.value >> 3
    }

    fn encode(self) -> usize {
        self.value | self.tag as usize
    }

    fn decode(word: usize) -> Self {
        HeaderWord {
            tag: Tag::from_bits(word & TAG_MASK),
            value: word & !TAG_MASK,
        }
    }
}

/// Write the header for the block whose payload begins at `payload`.
///
/// # Safety
///
/// The `HEADER_SIZE` bytes immediately before `payload` must be valid for
/// writes and reserved for the header; `payload` must be 8-aligned.
pub unsafe fn write_header(payload: *mut u8, word: HeaderWord) {
    debug_assert_eq!(payload as usize % MIN_ALIGN, 0);
    let slot = payload.sub(HEADER_SIZE) as *mut usize;
    slot.write(word.encode());
}

/// Read the header of the block whose payload begins at `payload`.
///
/// # Safety
///
/// `payload` must point at a live block previously prepared with
/// [`write_header`].
pub unsafe fn read_header(payload: *mut u8) -> HeaderWord {
    debug_assert_eq!(payload as usize % MIN_ALIGN, 0);
    let slot = payload.sub(HEADER_SIZE) as *mut usize;
    HeaderWord::decode(slot.read())
}

/// Read a header without trusting its contents: returns `None` when the
/// tag bits do not decode to any [`Tag`]. Hardened deallocation uses
/// this so a wild pointer produces a report instead of a panic.
///
/// # Safety
///
/// The `HEADER_SIZE` bytes before `payload` must be readable; `payload`
/// must be 8-aligned.
pub unsafe fn try_read_header(payload: *mut u8) -> Option<HeaderWord> {
    debug_assert_eq!(payload as usize % MIN_ALIGN, 0);
    let slot = payload.sub(HEADER_SIZE) as *mut usize;
    let word = slot.read();
    Tag::try_from_bits(word & TAG_MASK).map(|tag| HeaderWord {
        tag,
        value: word & !TAG_MASK,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pointer_payload() {
        let mut buf = [0u8; 64];
        let payload = unsafe { buf.as_mut_ptr().add(16) };
        let payload = crate::align_up(payload as usize, 8) as *mut u8;
        let fake_superblock = 0xDEAD_BEE0usize; // 8-aligned
        unsafe {
            write_header(payload, HeaderWord::new(Tag::Superblock, fake_superblock));
            let h = read_header(payload);
            assert_eq!(h.tag, Tag::Superblock);
            assert_eq!(h.value, fake_superblock);
        }
    }

    #[test]
    fn roundtrip_every_tag() {
        let mut buf = [0u8; 64];
        let payload = crate::align_up(buf.as_mut_ptr() as usize + 8, 8) as *mut u8;
        for tag in [Tag::Superblock, Tag::Large, Tag::Baseline, Tag::Offset, Tag::Freed] {
            unsafe {
                write_header(payload, HeaderWord::new(tag, 0x1000));
                assert_eq!(read_header(payload).tag, tag);
            }
        }
    }

    #[test]
    fn try_read_header_rejects_unassigned_tags() {
        let mut buf = [0u8; 64];
        let payload = crate::align_up(buf.as_mut_ptr() as usize + 8, 8) as *mut u8;
        unsafe {
            write_header(payload, HeaderWord::new(Tag::Freed, 0x2000));
            let h = try_read_header(payload).expect("freed tag decodes");
            assert_eq!(h.tag, Tag::Freed);
            assert_eq!(h.value, 0x2000);
            // Raw garbage in the tag bits must not decode.
            let slot = payload.sub(HEADER_SIZE) as *mut usize;
            for bits in 5..8usize {
                slot.write(0x3000 | bits);
                assert_eq!(try_read_header(payload), None, "tag bits {bits}");
            }
        }
    }

    #[test]
    fn int_payload_roundtrip() {
        let w = HeaderWord::from_int(Tag::Baseline, 12345);
        assert_eq!(w.to_int(), 12345);
        assert_eq!(w.tag, Tag::Baseline);
    }

    #[test]
    #[should_panic(expected = "8-aligned")]
    fn unaligned_pointer_payload_rejected() {
        let _ = HeaderWord::new(Tag::Superblock, 0x1001);
    }

    #[test]
    fn header_is_one_word() {
        assert_eq!(HEADER_SIZE, std::mem::size_of::<usize>());
    }
}
