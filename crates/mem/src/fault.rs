//! Deterministic fault injection for chunk sources.
//!
//! [`LimitedSource`](crate::LimitedSource) and
//! [`FailingSource`](crate::FailingSource) cover the two simplest
//! out-of-memory shapes (a byte budget and a hard cliff). Real systems
//! fail in richer patterns — periodic pressure, random spikes, a burst
//! that passes, a cold start that recovers — and a robustness campaign
//! needs all of them *reproducibly*. [`FaultPlan`] describes such a
//! pattern as a pure function of the allocation-call index (plus a seed
//! for the probabilistic plan), and [`InjectingSource`] applies it to
//! any inner [`ChunkSource`]: the same plan over the same call sequence
//! always fails the same calls, so a failing campaign run can be
//! replayed exactly.

use crate::chunk::{ChunkSource, SourceStats};
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic schedule of chunk-allocation failures, evaluated
/// against the 0-based index of each `alloc_chunk` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Every `n`-th call fails (call indices `n-1, 2n-1, ...`).
    /// `n = 1` fails everything; useful as the harshest setting.
    EveryNth {
        /// Period of the failure pattern (must be ≥ 1).
        n: u64,
    },
    /// Each call independently fails with probability
    /// `p_permille / 1000`, drawn from a seeded hash of the call index —
    /// deterministic for a given `(seed, index)` pair.
    Probability {
        /// Failure probability in parts per thousand (0..=1000).
        p_permille: u32,
        /// Seed decorrelating this plan from other instances.
        seed: u64,
    },
    /// Calls with index in `start .. start + len` fail; everything
    /// before and after succeeds (an outage window).
    Burst {
        /// First failing call index.
        start: u64,
        /// Number of consecutive failing calls.
        len: u64,
    },
    /// The first `fail_first` calls fail, then the source recovers for
    /// good (cold-start / transient pressure).
    TransientThenRecover {
        /// Number of leading calls that fail.
        fail_first: u64,
    },
}

impl FaultPlan {
    /// Whether the `index`-th allocation call (0-based) fails under this
    /// plan. Pure: same inputs, same answer.
    pub fn fails(&self, index: u64) -> bool {
        match *self {
            FaultPlan::EveryNth { n } => {
                debug_assert!(n >= 1, "EveryNth needs n >= 1");
                index % n.max(1) == n.max(1) - 1
            }
            FaultPlan::Probability { p_permille, seed } => {
                splitmix64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1000
                    < p_permille as u64
            }
            FaultPlan::Burst { start, len } => index >= start && index - start < len,
            FaultPlan::TransientThenRecover { fail_first } => index < fail_first,
        }
    }
}

/// splitmix64: a tiny, high-quality mixing function (public domain,
/// Vigna). Good enough to decorrelate call indices; not a CSPRNG.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`ChunkSource`] decorator that fails `alloc_chunk` calls according
/// to a [`FaultPlan`]. Frees always pass through — a failed OS cannot
/// refuse to take memory back.
#[derive(Debug)]
pub struct InjectingSource<S> {
    inner: S,
    plan: FaultPlan,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl<S: ChunkSource> InjectingSource<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        InjectingSource {
            inner,
            plan,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Total `alloc_chunk` calls observed (successful or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

unsafe impl<S: ChunkSource> ChunkSource for InjectingSource<S> {
    unsafe fn alloc_chunk(&self, layout: Layout) -> Option<NonNull<u8>> {
        let index = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.plan.fails(index) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.inner.alloc_chunk(layout)
    }

    unsafe fn free_chunk(&self, ptr: NonNull<u8>, layout: Layout) {
        self.inner.free_chunk(ptr, layout);
    }

    fn stats(&self) -> SourceStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemSource;

    #[test]
    fn every_nth_fails_exactly_on_schedule() {
        let plan = FaultPlan::EveryNth { n: 3 };
        let fails: Vec<u64> = (0..12).filter(|&i| plan.fails(i)).collect();
        assert_eq!(fails, vec![2, 5, 8, 11]);
        let always = FaultPlan::EveryNth { n: 1 };
        assert!((0..10).all(|i| always.fails(i)));
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::Probability {
            p_permille: 100,
            seed: 42,
        };
        let first: Vec<bool> = (0..1000).map(|i| plan.fails(i)).collect();
        let second: Vec<bool> = (0..1000).map(|i| plan.fails(i)).collect();
        assert_eq!(first, second, "same seed, same schedule");
        let rate = first.iter().filter(|&&b| b).count();
        assert!(
            (50..200).contains(&rate),
            "p=0.1 over 1000 draws gave {rate} failures"
        );
        // A different seed gives a different schedule.
        let other = FaultPlan::Probability {
            p_permille: 100,
            seed: 43,
        };
        assert_ne!(
            first,
            (0..1000).map(|i| other.fails(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn burst_and_transient_windows() {
        let burst = FaultPlan::Burst { start: 5, len: 3 };
        let fails: Vec<u64> = (0..12).filter(|&i| burst.fails(i)).collect();
        assert_eq!(fails, vec![5, 6, 7]);
        let transient = FaultPlan::TransientThenRecover { fail_first: 4 };
        let fails: Vec<u64> = (0..12).filter(|&i| transient.fails(i)).collect();
        assert_eq!(fails, vec![0, 1, 2, 3]);
    }

    #[test]
    fn injecting_source_counts_and_delegates() {
        let src = InjectingSource::new(SystemSource::new(), FaultPlan::EveryNth { n: 2 });
        let layout = Layout::from_size_align(8192, 4096).unwrap();
        let mut got = Vec::new();
        for _ in 0..6 {
            if let Some(p) = unsafe { src.alloc_chunk(layout) } {
                got.push(p);
            }
        }
        assert_eq!(src.calls(), 6);
        assert_eq!(src.injected_failures(), 3, "indices 1, 3, 5 fail");
        assert_eq!(got.len(), 3);
        for p in got {
            unsafe { src.free_chunk(p, layout) };
        }
        assert_eq!(src.stats().held_current, 0);
    }
}
