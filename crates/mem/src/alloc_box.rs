//! [`AllocBox`] — typed RAII ownership of a block from any
//! [`MtAllocator`].
//!
//! Lets real data structures (the Barnes–Hut octree, server sessions in
//! the examples) live inside the allocator under test instead of the
//! host heap, the same way the paper's C++ benchmarks link against the
//! allocator being measured.

use crate::api::MtAllocator;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// An owned, typed allocation in an [`MtAllocator`].
///
/// Behaves like `Box<T>` scoped to the allocator's lifetime: dropping it
/// runs `T`'s destructor and returns the memory.
pub struct AllocBox<'a, T> {
    ptr: NonNull<T>,
    alloc: &'a dyn MtAllocator,
}

impl<'a, T> AllocBox<'a, T> {
    /// Allocate and initialize a `T`. Returns `None` when the allocator
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `T` requires alignment greater than 8 (the common
    /// allocator API's guarantee) or is zero-sized.
    pub fn new_in(value: T, alloc: &'a dyn MtAllocator) -> Option<Self> {
        assert!(
            std::mem::align_of::<T>() <= crate::MIN_ALIGN,
            "AllocBox supports types with alignment <= 8"
        );
        assert!(std::mem::size_of::<T>() > 0, "zero-sized types not supported");
        let raw = unsafe { alloc.allocate(std::mem::size_of::<T>()) }?;
        let ptr = raw.cast::<T>();
        unsafe { ptr.as_ptr().write(value) };
        Some(AllocBox { ptr, alloc })
    }

    /// The raw payload pointer (valid while the box is alive).
    pub fn as_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Deref for AllocBox<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> DerefMut for AllocBox<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { self.ptr.as_mut() }
    }
}

impl<T> Drop for AllocBox<'_, T> {
    fn drop(&mut self) {
        unsafe {
            self.ptr.as_ptr().drop_in_place();
            self.alloc.deallocate(self.ptr.cast());
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AllocBox<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AllocBox").field(&**self).finish()
    }
}

// Safety: AllocBox owns the T; the allocator is Sync. Same rules as Box.
unsafe impl<T: Send> Send for AllocBox<'_, T> {}
unsafe impl<T: Sync> Sync for AllocBox<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_support::HostAllocator;

    #[test]
    fn value_roundtrip_and_drop_frees() {
        let a = HostAllocator::default();
        {
            let mut b = AllocBox::new_in([1u64, 2, 3], &a).unwrap();
            assert_eq!(b[1], 2);
            b[1] = 42;
            assert_eq!(*b, [1, 42, 3]);
            assert_eq!(a.stats().live_current, 24);
        }
        assert_eq!(a.stats().live_current, 0, "drop returned the block");
    }

    #[test]
    fn destructor_runs() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static DROPS: AtomicU32 = AtomicU32::new(0);
        struct Canary(#[allow(dead_code)] u8); // non-zero-sized
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = HostAllocator::default();
        drop(AllocBox::new_in(Canary(0), &a).unwrap());
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn overaligned_type_rejected() {
        #[repr(align(64))]
        struct Big(#[allow(dead_code)] u8);
        let a = HostAllocator::default();
        let _ = AllocBox::new_in(Big(0), &a);
    }
}
