//! [`AllocVec`] — a growable array backed by any [`MtAllocator`].
//!
//! Demonstrates (and tests) the allocator's `reallocate` path the way
//! `Vec` exercises a system `malloc`: amortized-doubling growth, moves
//! that must preserve content, and shrink-to-fit. Like
//! [`AllocBox`](crate::AllocBox), it lets real data structures live in
//! the allocator under test.

use crate::api::MtAllocator;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// A `Vec<T>`-alike whose buffer lives in an [`MtAllocator`].
///
/// Supports `Copy` payloads (the benchmarks' use case); this keeps drop
/// semantics trivial and the unsafe surface small.
pub struct AllocVec<'a, T: Copy> {
    buf: Option<NonNull<T>>,
    len: usize,
    capacity: usize,
    alloc: &'a dyn MtAllocator,
}

impl<'a, T: Copy> AllocVec<'a, T> {
    /// An empty vector over `alloc` (no allocation until the first push).
    ///
    /// # Panics
    ///
    /// Panics if `T` is zero-sized or requires alignment above 8.
    pub fn new_in(alloc: &'a dyn MtAllocator) -> Self {
        assert!(std::mem::size_of::<T>() > 0, "zero-sized types not supported");
        assert!(
            std::mem::align_of::<T>() <= crate::MIN_ALIGN,
            "AllocVec supports alignment <= 8"
        );
        AllocVec {
            buf: None,
            len: 0,
            capacity: 0,
            alloc,
        }
    }

    /// Elements currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an element, growing the buffer (amortized doubling) when
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if the allocator is exhausted.
    pub fn push(&mut self, value: T) {
        if self.len == self.capacity {
            self.grow_to(self.capacity.max(4) * 2);
        }
        unsafe {
            self.buf
                .expect("capacity > 0 after grow")
                .as_ptr()
                .add(self.len)
                .write(value);
        }
        self.len += 1;
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(unsafe { self.buf?.as_ptr().add(self.len).read() })
    }

    /// Shrink the buffer to exactly fit the current length (freeing it
    /// entirely when empty).
    ///
    /// Always moves to a fresh exactly-sized buffer: an in-place
    /// `reallocate` would keep the old block's usable size, releasing
    /// nothing.
    pub fn shrink_to_fit(&mut self) {
        if self.len == self.capacity {
            return;
        }
        let Some(old) = self.buf.take() else {
            return;
        };
        if self.len == 0 {
            unsafe { self.alloc.deallocate(old.cast()) };
            self.capacity = 0;
            return;
        }
        let elem = std::mem::size_of::<T>();
        let fresh = unsafe { self.alloc.allocate(self.len * elem) }
            .expect("allocator exhausted");
        unsafe {
            std::ptr::copy_nonoverlapping(
                old.as_ptr() as *const u8,
                fresh.as_ptr(),
                self.len * elem,
            );
            self.alloc.deallocate(old.cast());
        }
        self.buf = Some(fresh.cast());
        self.capacity = unsafe { self.alloc.usable_size(fresh) } / elem;
    }

    fn grow_to(&mut self, new_capacity: usize) {
        let elem = std::mem::size_of::<T>();
        let new_bytes = new_capacity * elem;
        let fresh = match self.buf {
            None => unsafe { self.alloc.allocate(new_bytes) },
            Some(buf) => unsafe {
                self.alloc
                    .reallocate(buf.cast(), self.capacity * elem, new_bytes)
            },
        }
        .expect("allocator exhausted");
        self.buf = Some(fresh.cast());
        // The allocator may hand back more than requested; use it.
        self.capacity = unsafe { self.alloc.usable_size(fresh) } / elem;
    }
}

impl<T: Copy> Deref for AllocVec<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        match self.buf {
            Some(buf) => unsafe { std::slice::from_raw_parts(buf.as_ptr(), self.len) },
            None => &[],
        }
    }
}

impl<T: Copy> DerefMut for AllocVec<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        match self.buf {
            Some(buf) => unsafe { std::slice::from_raw_parts_mut(buf.as_ptr(), self.len) },
            None => &mut [],
        }
    }
}

impl<T: Copy> Drop for AllocVec<'_, T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            unsafe { self.alloc.deallocate(buf.cast()) };
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AllocVec<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy> Extend<T> for AllocVec<'_, T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_support::HostAllocator;

    #[test]
    fn push_pop_grow_roundtrip() {
        let a = HostAllocator::default();
        {
            let mut v: AllocVec<'_, u64> = AllocVec::new_in(&a);
            assert!(v.is_empty());
            for i in 0..1000u64 {
                v.push(i * 3);
            }
            assert_eq!(v.len(), 1000);
            assert!(v.capacity() >= 1000);
            // Content intact across the many growth moves.
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i as u64 * 3);
            }
            for i in (0..1000u64).rev() {
                assert_eq!(v.pop(), Some(i * 3));
            }
            assert_eq!(v.pop(), None);
        }
        assert_eq!(a.stats().live_current, 0, "buffer returned on drop");
    }

    #[test]
    fn slice_access_and_mutation() {
        let a = HostAllocator::default();
        let mut v = AllocVec::new_in(&a);
        v.extend([1i32, 2, 3, 4]);
        v[2] = 99;
        assert_eq!(&v[..], &[1, 2, 99, 4]);
        assert_eq!(v.iter().sum::<i32>(), 106);
        assert_eq!(format!("{v:?}"), "[1, 2, 99, 4]");
    }

    #[test]
    fn shrink_to_fit_releases_capacity() {
        let a = HostAllocator::default();
        let mut v = AllocVec::new_in(&a);
        v.extend(0..100u32);
        while v.len() > 5 {
            v.pop();
        }
        v.shrink_to_fit();
        assert!(v.capacity() < 100);
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
        while v.pop().is_some() {}
        v.shrink_to_fit();
        assert_eq!(v.capacity(), 0);
        assert_eq!(a.stats().live_current, 0, "empty shrink frees the buffer");
    }
}
