//! Size classes.
//!
//! The paper spaces size classes a factor `b = 1.2` apart, which bounds
//! internal fragmentation at 20% while keeping the class count
//! logarithmic in `S`. We use the hybrid rule
//! `next = max(cur + 8, round8(cur · 6/5))`: exact 8-byte steps for tiny
//! sizes (where ×1.2 would round to a no-op) and geometric growth above.
//! Classes cover `8 ..= S/2`; larger requests bypass superblocks.
//!
//! The table is computed by a `const fn`, so a [`SizeClassTable`] can be
//! embedded in a `static` allocator.

/// Upper bound on the number of size classes for any supported
/// superblock size (`S ≤ 2^20` comfortably fits).
pub const MAX_CLASSES: usize = 56;

/// One size class: all blocks of a class have the same payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeClass {
    /// Usable payload bytes per block (multiple of 8).
    pub block_size: u32,
}

/// The full table of size classes for a given superblock size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClassTable {
    classes: [SizeClass; MAX_CLASSES],
    count: usize,
    /// Largest size served from superblocks (== largest block_size).
    max_size: usize,
}

const fn round8(x: usize) -> usize {
    (x + 7) & !7
}

impl SizeClassTable {
    /// Build the table for superblocks of `s` bytes (classes up to
    /// `s/2`). `const`, so usable in statics.
    ///
    /// # Panics
    ///
    /// Panics (at compile time for const use) if `s/2 < 8` or the table
    /// capacity is exceeded.
    pub const fn for_superblock_size(s: usize) -> Self {
        let limit = s / 2;
        assert!(limit >= 8, "superblock too small for any size class");
        let mut classes = [SizeClass { block_size: 0 }; MAX_CLASSES];
        let mut count = 0usize;
        let mut cur = 8usize;
        while cur <= limit {
            assert!(count < MAX_CLASSES, "size class table overflow");
            classes[count] = SizeClass {
                block_size: cur as u32,
            };
            count += 1;
            // Exact 8-byte steps up to 128 (so small sizes resolve
            // arithmetically), geometric ×1.2 above.
            cur = if cur < 128 {
                cur + 8
            } else {
                let geometric = round8(cur * 6 / 5);
                if geometric > cur + 8 {
                    geometric
                } else {
                    cur + 8
                }
            };
        }
        // Ensure the table covers requests up to exactly S/2 (the paper's
        // large-object threshold): the geometric sequence may stop short.
        if classes[count - 1].block_size < limit as u32 {
            assert!(count < MAX_CLASSES, "size class table overflow");
            classes[count] = SizeClass {
                block_size: limit as u32,
            };
            count += 1;
        }
        let max_size = classes[count - 1].block_size as usize;
        SizeClassTable {
            classes,
            count,
            max_size,
        }
    }

    /// Number of classes in the table.
    pub const fn len(&self) -> usize {
        self.count
    }

    /// Whether the table is empty (never true for a valid table).
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest request size served from superblocks.
    pub const fn max_size(&self) -> usize {
        self.max_size
    }

    /// The class at `index`. `const`, so per-class derived tables (the
    /// feedback controller's seed capacities) can live in statics.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub const fn class(&self, index: usize) -> SizeClass {
        assert!(index < self.count, "size class index out of range");
        self.classes[index]
    }

    /// Map a request of `size` bytes to its class index, or `None` when
    /// the request exceeds [`max_size`](Self::max_size) (large-object
    /// path).
    ///
    /// Sizes ≤ 128 are resolved arithmetically (classes there are exact
    /// 8-byte steps); larger sizes scan the geometric tail.
    pub fn index_for(&self, size: usize) -> Option<usize> {
        if size > self.max_size {
            return None;
        }
        if size <= 128 {
            // Classes 0..=15 are 8, 16, ..., 128.
            return Some((size.max(1) - 1) / 8);
        }
        // Scan the geometric tail starting after the linear prefix.
        let mut i = 16;
        while i < self.count {
            if self.classes[i].block_size as usize >= size {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Iterate over the classes.
    pub fn iter(&self) -> impl Iterator<Item = SizeClass> + '_ {
        self.classes[..self.count].iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: SizeClassTable = SizeClassTable::for_superblock_size(8192);

    #[test]
    fn table_is_const_constructible() {
        assert!(!TABLE.is_empty());
        assert_eq!(TABLE.max_size(), 4096);
    }

    #[test]
    fn linear_prefix_is_exact_8_byte_steps() {
        for (i, expect) in (8..=128).step_by(8).enumerate() {
            assert_eq!(TABLE.class(i).block_size, expect as u32);
        }
    }

    #[test]
    fn classes_are_monotone_and_8_aligned() {
        let mut prev = 0;
        for c in TABLE.iter() {
            assert!(c.block_size > prev);
            assert_eq!(c.block_size % 8, 0);
            prev = c.block_size;
        }
    }

    #[test]
    fn growth_ratio_is_bounded() {
        // Consecutive classes differ by at most the 1.2 factor (plus
        // 8-byte rounding slack), bounding internal fragmentation.
        let classes: Vec<_> = TABLE.iter().collect();
        for w in classes.windows(2) {
            let ratio = w[1].block_size as f64 / w[0].block_size as f64;
            assert!(
                ratio <= 1.2 + 8.0 / w[0].block_size as f64 + 1e-9,
                "ratio {ratio} too large between {} and {}",
                w[0].block_size,
                w[1].block_size
            );
        }
    }

    #[test]
    fn index_for_covers_every_size() {
        for size in 1..=TABLE.max_size() {
            let idx = TABLE
                .index_for(size)
                .unwrap_or_else(|| panic!("no class for size {size}"));
            let c = TABLE.class(idx);
            assert!(
                c.block_size as usize >= size,
                "class {} too small for {size}",
                c.block_size
            );
            if idx > 0 {
                assert!(
                    (TABLE.class(idx - 1).block_size as usize) < size,
                    "size {size} should use the smaller class {idx}"
                );
            }
        }
    }

    #[test]
    fn oversize_requests_have_no_class() {
        assert_eq!(TABLE.index_for(TABLE.max_size() + 1), None);
        assert_eq!(TABLE.index_for(usize::MAX), None);
    }

    #[test]
    fn exact_class_sizes_map_to_themselves() {
        for (i, c) in TABLE.iter().enumerate() {
            assert_eq!(TABLE.index_for(c.block_size as usize), Some(i));
        }
    }

    #[test]
    fn other_superblock_sizes_work() {
        for s in [1024usize, 4096, 16 * 1024, 64 * 1024] {
            let t = SizeClassTable::for_superblock_size(s);
            assert_eq!(t.max_size(), s / 2, "coverage up to exactly S/2");
            assert!(t.len() <= MAX_CLASSES);
            // Full coverage.
            for size in [1usize, 8, 9, 100, s / 4, t.max_size()] {
                assert!(t.index_for(size).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_index_bounds_checked() {
        let _ = TABLE.class(TABLE.len());
    }
}
