//! # hoard-mem — memory substrate and common allocator API
//!
//! Everything the allocators in this reproduction share:
//!
//! * [`ChunkSource`] — the "operating system": a provider of large,
//!   aligned chunks (superblocks). [`SystemSource`] backs chunks with the
//!   host allocator and charges the virtual OS cost; [`LimitedSource`],
//!   [`FailingSource`], and [`InjectingSource`] (driven by a seeded
//!   deterministic [`FaultPlan`]) inject out-of-memory conditions for
//!   testing.
//! * [`MtAllocator`] — the `malloc`/`free`-shaped interface every
//!   allocator (Hoard and the baselines) implements, with self-describing
//!   blocks (`deallocate` takes only the pointer, like C `free`).
//! * [`AllocStats`] / [`AllocSnapshot`] — the accounting the paper's
//!   fragmentation table needs: bytes *in use* (`U`) versus bytes *held*
//!   from the OS (`A`), with high-water marks.
//! * [`AllocBox`] — a typed RAII box over any [`MtAllocator`], so real
//!   data structures (e.g. the Barnes–Hut octree) can live in the
//!   allocator under test.
//!
//! ## Example
//!
//! ```
//! use hoard_mem::{ChunkSource, SystemSource};
//! use std::alloc::Layout;
//!
//! let source = SystemSource::new();
//! let layout = Layout::from_size_align(8192, 8192).unwrap();
//! let chunk = unsafe { source.alloc_chunk(layout) }.expect("oom");
//! assert_eq!(chunk.as_ptr() as usize % 8192, 0, "chunk is aligned");
//! unsafe { source.free_chunk(chunk, layout) };
//! assert_eq!(source.stats().held_current, 0);
//! ```

mod alloc_box;
mod alloc_vec;
mod api;
mod chunk;
mod fault;
mod header;
pub mod large;
mod size_class;
mod stats;
mod util;

pub use alloc_box::AllocBox;
pub use alloc_vec::AllocVec;
pub use api::MtAllocator;
pub use chunk::{ChunkSource, FailingSource, LimitedSource, SourceStats, SystemSource};
pub use fault::{FaultPlan, InjectingSource};
pub use header::{read_header, try_read_header, write_header, HeaderWord, Tag, HEADER_SIZE};
pub use size_class::{SizeClass, SizeClassTable, MAX_CLASSES};
pub use stats::{AllocSnapshot, AllocStats, MagazineStats};
pub use util::{align_down, align_up, CACHE_LINE, MIN_ALIGN};
