//! Allocator accounting.
//!
//! The paper's memory-efficiency results are stated in terms of two
//! quantities: `U(t)` — bytes *in use* by the program (requested through
//! `malloc` and not yet freed) — and `A(t)` — bytes *held* from the
//! operating system. **Fragmentation** is `max A / max U`, and **blowup**
//! compares `max A` against what an ideal serial allocator would hold.
//! [`AllocStats`] is the shared, thread-safe ledger each allocator
//! updates on its hot paths (relaxed atomics; a handful of nanoseconds).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone `fetch_max` for high-water marks on a relaxed atomic.
pub(crate) fn peak_max(peak: &AtomicU64, candidate: u64) {
    let mut cur = peak.load(Ordering::Relaxed);
    while candidate > cur {
        match peak.compare_exchange_weak(cur, candidate, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

/// Thread-safe allocator accounting cell. Embed one per allocator.
#[derive(Debug, Default)]
pub struct AllocStats {
    live: AtomicU64,
    live_peak: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    remote_frees: AtomicU64,
    transfers_to_global: AtomicU64,
    transfers_from_global: AtomicU64,
    mag_alloc_hits: AtomicU64,
    mag_free_hits: AtomicU64,
    mag_refills: AtomicU64,
    mag_flushes: AtomicU64,
    mag_remote_pushes: AtomicU64,
    mag_remote_drains: AtomicU64,
    free_owner_retries: AtomicU64,
}

impl AllocStats {
    /// A zeroed ledger. `const`, so it can live in a `static` allocator.
    pub const fn new() -> Self {
        AllocStats {
            live: AtomicU64::new(0),
            live_peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            remote_frees: AtomicU64::new(0),
            transfers_to_global: AtomicU64::new(0),
            transfers_from_global: AtomicU64::new(0),
            mag_alloc_hits: AtomicU64::new(0),
            mag_free_hits: AtomicU64::new(0),
            mag_refills: AtomicU64::new(0),
            mag_flushes: AtomicU64::new(0),
            mag_remote_pushes: AtomicU64::new(0),
            mag_remote_drains: AtomicU64::new(0),
            free_owner_retries: AtomicU64::new(0),
        }
    }

    /// Record a successful allocation of `bytes` usable payload bytes.
    pub fn on_alloc(&self, bytes: u64) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        peak_max(&self.live_peak, now);
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a free of `bytes`; `remote` means the freeing thread is not
    /// the one mapped to the block's owning heap (the paper's
    /// cross-thread / "bled" frees).
    pub fn on_free(&self, bytes: u64, remote: bool) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
        self.frees.fetch_add(1, Ordering::Relaxed);
        if remote {
            self.remote_frees.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a superblock migration to the global heap.
    pub fn on_transfer_to_global(&self) {
        self.transfers_to_global.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a superblock migration from the global heap to a
    /// per-processor heap.
    pub fn on_transfer_from_global(&self) {
        self.transfers_from_global.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an allocation served straight from a thread-local magazine.
    pub fn on_magazine_alloc_hit(&self) {
        self.mag_alloc_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a free absorbed by a thread-local magazine.
    pub fn on_magazine_free_hit(&self) {
        self.mag_free_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a magazine refill (one locked batch pull from a heap).
    pub fn on_magazine_refill(&self) {
        self.mag_refills.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a magazine flush (one locked batch return to a heap).
    pub fn on_magazine_flush(&self) {
        self.mag_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a push onto a superblock's deferred remote-free stack.
    pub fn on_remote_push(&self) {
        self.mag_remote_pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the owner draining a deferred remote-free stack
    /// (one drain event, regardless of how many blocks it recovered).
    pub fn on_remote_drain(&self) {
        self.mag_remote_drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a `free` that re-read the block's owner and retried because
    /// the superblock migrated between the read and the lock acquisition.
    pub fn on_free_owner_retry(&self) {
        self.free_owner_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently live (in use by the program).
    pub fn live_now(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            live_current: self.live.load(Ordering::Relaxed),
            live_peak: self.live_peak.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            remote_frees: self.remote_frees.load(Ordering::Relaxed),
            transfers_to_global: self.transfers_to_global.load(Ordering::Relaxed),
            transfers_from_global: self.transfers_from_global.load(Ordering::Relaxed),
            held_current: 0,
            held_peak: 0,
            magazines: MagazineStats {
                alloc_hits: self.mag_alloc_hits.load(Ordering::Relaxed),
                free_hits: self.mag_free_hits.load(Ordering::Relaxed),
                refills: self.mag_refills.load(Ordering::Relaxed),
                flushes: self.mag_flushes.load(Ordering::Relaxed),
                remote_pushes: self.mag_remote_pushes.load(Ordering::Relaxed),
                remote_drains: self.mag_remote_drains.load(Ordering::Relaxed),
                free_owner_retries: self.free_owner_retries.load(Ordering::Relaxed),
            },
        }
    }
}

/// Serializable snapshot of an allocator's counters, optionally enriched
/// with the backing [`SourceStats`](crate::SourceStats) (`held_*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSnapshot {
    /// Bytes in use (`U(t)`).
    pub live_current: u64,
    /// High-water mark of bytes in use (`max U`).
    pub live_peak: u64,
    /// `malloc` count.
    pub allocs: u64,
    /// `free` count.
    pub frees: u64,
    /// Frees performed by a thread other than the owner.
    pub remote_frees: u64,
    /// Superblocks moved to the global heap (Hoard only).
    pub transfers_to_global: u64,
    /// Superblocks taken from the global heap (Hoard only).
    pub transfers_from_global: u64,
    /// Bytes held from the OS (`A(t)`), from the chunk source.
    pub held_current: u64,
    /// High-water mark of held bytes (`max A`).
    pub held_peak: u64,
    /// Thread-local front-end counters (all zero unless the allocator
    /// runs with `magazine_capacity > 0`).
    #[serde(default)]
    pub magazines: MagazineStats,
}

/// Counters for the thread-local magazine front-end and the deferred
/// remote-free protocol. All zero when the front-end is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MagazineStats {
    /// Allocations served from a magazine without touching any lock.
    pub alloc_hits: u64,
    /// Frees absorbed by a magazine without touching any lock.
    pub free_hits: u64,
    /// Locked batch refills (magazine empty → pull from owning heap).
    pub refills: u64,
    /// Locked batch flushes (magazine full → return to owning heap).
    pub flushes: u64,
    /// Foreign frees deferred via a superblock's atomic remote stack.
    pub remote_pushes: u64,
    /// Drain events where an owner recovered deferred remote frees.
    pub remote_drains: u64,
    /// `free_small` owner-migration races detected and retried.
    pub free_owner_retries: u64,
}

impl AllocSnapshot {
    /// Merge chunk-source accounting into this snapshot.
    pub fn with_source(mut self, src: crate::SourceStats) -> Self {
        self.held_current = src.held_current;
        self.held_peak = src.held_peak;
        self
    }

    /// The paper's fragmentation ratio `max A / max U`.
    ///
    /// Returns `None` when nothing was ever allocated.
    pub fn fragmentation(&self) -> Option<f64> {
        if self.live_peak == 0 {
            None
        } else {
            Some(self.held_peak as f64 / self.live_peak as f64)
        }
    }

    /// Cross-counter consistency checks, valid for any snapshot taken at
    /// a quiescent point (no in-flight operations). Returns the first
    /// violated relation. Harness summaries and tests call this so a
    /// counter that silently stops being maintained fails loudly instead
    /// of skewing results tables.
    pub fn check_consistency(&self) -> Result<(), String> {
        let rules: [(&str, bool); 7] = [
            ("frees <= allocs", self.frees <= self.allocs),
            (
                "allocs == frees implies live_current == 0",
                self.allocs != self.frees || self.live_current == 0,
            ),
            ("live_current <= live_peak", self.live_current <= self.live_peak),
            ("held_current <= held_peak", self.held_current <= self.held_peak),
            ("remote_frees <= frees", self.remote_frees <= self.frees),
            (
                "magazine alloc hits <= allocs",
                self.magazines.alloc_hits <= self.allocs,
            ),
            (
                "magazine free hits <= frees",
                self.magazines.free_hits <= self.frees,
            ),
        ];
        for (rule, holds) in rules {
            if !holds {
                return Err(format!("inconsistent snapshot: {rule} violated in {self:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_accounting_and_peak() {
        let s = AllocStats::new();
        s.on_alloc(100);
        s.on_alloc(50);
        assert_eq!(s.live_now(), 150);
        s.on_free(100, false);
        let snap = s.snapshot();
        assert_eq!(snap.live_current, 50);
        assert_eq!(snap.live_peak, 150);
        assert_eq!(snap.allocs, 2);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.remote_frees, 0);
    }

    #[test]
    fn remote_frees_counted_separately() {
        let s = AllocStats::new();
        s.on_alloc(8);
        s.on_free(8, true);
        assert_eq!(s.snapshot().remote_frees, 1);
    }

    #[test]
    fn fragmentation_ratio() {
        let snap = AllocSnapshot {
            live_peak: 100,
            held_peak: 135,
            ..Default::default()
        };
        assert!((snap.fragmentation().unwrap() - 1.35).abs() < 1e-9);
        assert_eq!(AllocSnapshot::default().fragmentation(), None);
    }

    #[test]
    fn with_source_merges_held() {
        let snap = AllocSnapshot::default().with_source(crate::SourceStats {
            held_current: 7,
            held_peak: 9,
            chunk_allocs: 1,
            chunk_frees: 0,
        });
        assert_eq!(snap.held_current, 7);
        assert_eq!(snap.held_peak, 9);
    }

    /// Every atomic counter in [`AllocStats`] must surface in
    /// [`AllocSnapshot`] (directly or via [`MagazineStats`]). The structs
    /// are flat `u64`/`AtomicU64` records, so field counts reduce to
    /// `size_of / 8` — if this test fails, a counter was added to one
    /// side without the other: extend `snapshot()` and the snapshot
    /// struct (serde derives pick the new field up automatically), then
    /// update the arithmetic here.
    #[test]
    fn every_stats_counter_is_exported_in_the_snapshot() {
        let stats_counters = std::mem::size_of::<AllocStats>() / 8;
        let snapshot_fields = std::mem::size_of::<AllocSnapshot>() / 8;
        // `held_current`/`held_peak` come from `SourceStats`, not from
        // `AllocStats`; everything else maps 1:1.
        const SOURCE_ONLY_FIELDS: usize = 2;
        assert_eq!(
            stats_counters + SOURCE_ONLY_FIELDS,
            snapshot_fields,
            "AllocStats has {stats_counters} counters but AllocSnapshot \
             serializes {snapshot_fields} fields ({SOURCE_ONLY_FIELDS} of \
             which come from SourceStats): a counter was added without \
             exporting it (or vice versa)"
        );
    }

    #[test]
    fn consistency_checks_accept_real_traffic_and_reject_drift() {
        let s = AllocStats::new();
        s.on_alloc(64);
        s.on_alloc(32);
        s.on_free(64, false);
        s.on_magazine_alloc_hit();
        assert_eq!(s.snapshot().check_consistency(), Ok(()));

        let mut bad = s.snapshot();
        bad.frees = bad.allocs + 1;
        assert!(bad.check_consistency().unwrap_err().contains("frees <= allocs"));

        let mut leak = s.snapshot();
        leak.frees = leak.allocs;
        assert!(leak
            .check_consistency()
            .unwrap_err()
            .contains("live_current == 0"));
    }

    #[test]
    fn peak_max_is_monotone_under_contention() {
        let peak = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let peak = &peak;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        peak_max(peak, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(peak.load(Ordering::Relaxed), 3999);
    }
}
