//! Allocator accounting.
//!
//! The paper's memory-efficiency results are stated in terms of two
//! quantities: `U(t)` — bytes *in use* by the program (requested through
//! `malloc` and not yet freed) — and `A(t)` — bytes *held* from the
//! operating system. **Fragmentation** is `max A / max U`, and **blowup**
//! compares `max A` against what an ideal serial allocator would hold.
//! [`AllocStats`] is the shared, thread-safe ledger each allocator
//! updates on its hot paths (relaxed atomics; a handful of nanoseconds).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone `fetch_max` for high-water marks on a relaxed atomic.
pub(crate) fn peak_max(peak: &AtomicU64, candidate: u64) {
    let mut cur = peak.load(Ordering::Relaxed);
    while candidate > cur {
        match peak.compare_exchange_weak(cur, candidate, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

/// Thread-safe allocator accounting cell. Embed one per allocator.
#[derive(Debug, Default)]
pub struct AllocStats {
    live: AtomicU64,
    live_peak: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    remote_frees: AtomicU64,
    transfers_to_global: AtomicU64,
    transfers_from_global: AtomicU64,
}

impl AllocStats {
    /// A zeroed ledger. `const`, so it can live in a `static` allocator.
    pub const fn new() -> Self {
        AllocStats {
            live: AtomicU64::new(0),
            live_peak: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            remote_frees: AtomicU64::new(0),
            transfers_to_global: AtomicU64::new(0),
            transfers_from_global: AtomicU64::new(0),
        }
    }

    /// Record a successful allocation of `bytes` usable payload bytes.
    pub fn on_alloc(&self, bytes: u64) {
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        peak_max(&self.live_peak, now);
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a free of `bytes`; `remote` means the freeing thread is not
    /// the one mapped to the block's owning heap (the paper's
    /// cross-thread / "bled" frees).
    pub fn on_free(&self, bytes: u64, remote: bool) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
        self.frees.fetch_add(1, Ordering::Relaxed);
        if remote {
            self.remote_frees.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a superblock migration to the global heap.
    pub fn on_transfer_to_global(&self) {
        self.transfers_to_global.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a superblock migration from the global heap to a
    /// per-processor heap.
    pub fn on_transfer_from_global(&self) {
        self.transfers_from_global.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently live (in use by the program).
    pub fn live_now(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            live_current: self.live.load(Ordering::Relaxed),
            live_peak: self.live_peak.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            remote_frees: self.remote_frees.load(Ordering::Relaxed),
            transfers_to_global: self.transfers_to_global.load(Ordering::Relaxed),
            transfers_from_global: self.transfers_from_global.load(Ordering::Relaxed),
            held_current: 0,
            held_peak: 0,
        }
    }
}

/// Serializable snapshot of an allocator's counters, optionally enriched
/// with the backing [`SourceStats`](crate::SourceStats) (`held_*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSnapshot {
    /// Bytes in use (`U(t)`).
    pub live_current: u64,
    /// High-water mark of bytes in use (`max U`).
    pub live_peak: u64,
    /// `malloc` count.
    pub allocs: u64,
    /// `free` count.
    pub frees: u64,
    /// Frees performed by a thread other than the owner.
    pub remote_frees: u64,
    /// Superblocks moved to the global heap (Hoard only).
    pub transfers_to_global: u64,
    /// Superblocks taken from the global heap (Hoard only).
    pub transfers_from_global: u64,
    /// Bytes held from the OS (`A(t)`), from the chunk source.
    pub held_current: u64,
    /// High-water mark of held bytes (`max A`).
    pub held_peak: u64,
}

impl AllocSnapshot {
    /// Merge chunk-source accounting into this snapshot.
    pub fn with_source(mut self, src: crate::SourceStats) -> Self {
        self.held_current = src.held_current;
        self.held_peak = src.held_peak;
        self
    }

    /// The paper's fragmentation ratio `max A / max U`.
    ///
    /// Returns `None` when nothing was ever allocated.
    pub fn fragmentation(&self) -> Option<f64> {
        if self.live_peak == 0 {
            None
        } else {
            Some(self.held_peak as f64 / self.live_peak as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_accounting_and_peak() {
        let s = AllocStats::new();
        s.on_alloc(100);
        s.on_alloc(50);
        assert_eq!(s.live_now(), 150);
        s.on_free(100, false);
        let snap = s.snapshot();
        assert_eq!(snap.live_current, 50);
        assert_eq!(snap.live_peak, 150);
        assert_eq!(snap.allocs, 2);
        assert_eq!(snap.frees, 1);
        assert_eq!(snap.remote_frees, 0);
    }

    #[test]
    fn remote_frees_counted_separately() {
        let s = AllocStats::new();
        s.on_alloc(8);
        s.on_free(8, true);
        assert_eq!(s.snapshot().remote_frees, 1);
    }

    #[test]
    fn fragmentation_ratio() {
        let snap = AllocSnapshot {
            live_peak: 100,
            held_peak: 135,
            ..Default::default()
        };
        assert!((snap.fragmentation().unwrap() - 1.35).abs() < 1e-9);
        assert_eq!(AllocSnapshot::default().fragmentation(), None);
    }

    #[test]
    fn with_source_merges_held() {
        let snap = AllocSnapshot::default().with_source(crate::SourceStats {
            held_current: 7,
            held_peak: 9,
            chunk_allocs: 1,
            chunk_frees: 0,
        });
        assert_eq!(snap.held_current, 7);
        assert_eq!(snap.held_peak, 9);
    }

    #[test]
    fn peak_max_is_monotone_under_contention() {
        let peak = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let peak = &peak;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        peak_max(peak, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(peak.load(Ordering::Relaxed), 3999);
    }
}
