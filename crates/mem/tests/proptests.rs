//! Property-based tests for the memory substrate: size-class geometry,
//! header encodings, and chunk-source accounting under random traffic.

use hoard_mem::{
    ChunkSource, HeaderWord, LimitedSource, SizeClassTable, SystemSource, Tag,
};
use proptest::prelude::*;
use std::alloc::Layout;

proptest! {
    #[test]
    fn size_classes_cover_and_order(size in 1usize..=4096) {
        let table = SizeClassTable::for_superblock_size(8192);
        let idx = table.index_for(size).expect("covered");
        let class = table.class(idx);
        prop_assert!(class.block_size as usize >= size);
        // Tightness: the class below (if any) must be too small.
        if idx > 0 {
            prop_assert!((table.class(idx - 1).block_size as usize) < size);
        }
        // Bounded internal fragmentation: ≤ 20% + 8-byte rounding.
        prop_assert!(
            (class.block_size as usize) <= size * 6 / 5 + 8,
            "class {} for size {size}",
            class.block_size
        );
    }

    #[test]
    fn size_classes_for_any_superblock(shift in 10u32..=17) {
        let s = 1usize << shift;
        let table = SizeClassTable::for_superblock_size(s);
        prop_assert_eq!(table.max_size(), s / 2);
        prop_assert!(table.len() <= hoard_mem::MAX_CLASSES);
        let mut prev = 0u32;
        for c in table.iter() {
            prop_assert!(c.block_size > prev);
            prop_assert_eq!(c.block_size % 8, 0);
            prev = c.block_size;
        }
    }

    #[test]
    fn header_word_roundtrips(int in 0usize..=(usize::MAX >> 4)) {
        for tag in [Tag::Superblock, Tag::Large, Tag::Baseline, Tag::Offset] {
            let word = HeaderWord::from_int(tag, int);
            prop_assert_eq!(word.to_int(), int);
            prop_assert_eq!(word.tag, tag);
        }
    }

    #[test]
    fn header_storage_roundtrips(int in 0usize..=1_000_000, tag_pick in 0usize..4) {
        let tag = [Tag::Superblock, Tag::Large, Tag::Baseline, Tag::Offset][tag_pick];
        let mut buf = [0u8; 32];
        let payload = hoard_mem::align_up(buf.as_mut_ptr() as usize + 8, 8) as *mut u8;
        unsafe {
            hoard_mem::write_header(payload, HeaderWord::from_int(tag, int));
            let read = hoard_mem::read_header(payload);
            prop_assert_eq!(read.to_int(), int);
            prop_assert_eq!(read.tag, tag);
        }
    }

    #[test]
    fn limited_source_never_exceeds_budget(
        chunks in proptest::collection::vec(1usize..=4, 1..20),
        capacity_chunks in 1usize..=8,
    ) {
        let unit = 8192usize;
        let source = LimitedSource::new(SystemSource::new(), (capacity_chunks * unit) as u64);
        let mut live: Vec<(std::ptr::NonNull<u8>, Layout)> = Vec::new();
        for &n in &chunks {
            let layout = Layout::from_size_align(n * unit, 4096).unwrap();
            if let Some(p) = unsafe { source.alloc_chunk(layout) } {
                live.push((p, layout));
            }
            prop_assert!(
                source.stats().held_current <= source.capacity(),
                "budget exceeded: {} > {}",
                source.stats().held_current,
                source.capacity()
            );
            // Free oldest periodically to exercise reuse.
            if live.len() > 2 {
                let (p, l) = live.remove(0);
                unsafe { source.free_chunk(p, l) };
            }
        }
        for (p, l) in live {
            unsafe { source.free_chunk(p, l) };
        }
        prop_assert_eq!(source.stats().held_current, 0);
    }
}

#[test]
fn alignment_helpers_are_consistent_exhaustively() {
    for x in 0..10_000usize {
        for a in [8usize, 16, 64, 4096] {
            let up = hoard_mem::align_up(x, a);
            let down = hoard_mem::align_down(x, a);
            assert!(down <= x && x <= up);
            assert_eq!(up % a, 0);
            assert_eq!(down % a, 0);
            if x % a == 0 {
                assert_eq!(up, down, "aligned values are fixed points");
            } else {
                assert_eq!(up - down, a, "bracketing multiples are adjacent");
            }
        }
    }
}
