//! Telemetry overhead: the same workload with tracing off, metrics
//! only, and full tracing (sink + registry).
//!
//! Two ledgers matter:
//!
//! 1. **virtual time** — the sim charges `Cost::TraceEvent` per emitted
//!    event, so tracing shifts the modelled makespan; the acceptance
//!    bound is ≤ 10% on threadtest/larson. Printed before the criterion
//!    groups (it needs one run each, not sampling).
//! 2. **wall time** — the real cost of the hooks themselves (the atomic
//!    gate when off; the ring-buffer write when on).
//!
//! Medians are recorded in `results/trace_overhead.txt`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hoard_core::{HoardAllocator, HoardConfig, TraceConfig, TraceSink};
use hoard_mem::MtAllocator;
use hoard_workloads::{larson, threadtest};
use std::hint::black_box;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Metrics,
    Full,
}

const MODES: [(Mode, &str); 3] = [
    (Mode::Off, "off"),
    (Mode::Metrics, "metrics"),
    (Mode::Full, "trace+metrics"),
];

fn build(mode: Mode) -> HoardAllocator {
    let h = HoardAllocator::with_config(HoardConfig::with_default_magazines())
        .expect("valid config");
    if mode != Mode::Off {
        h.attach_metrics(Arc::new(h.new_metrics_registry()));
    }
    if mode == Mode::Full {
        h.attach_tracer(Arc::new(TraceSink::with_config(TraceConfig {
            tracks: 8,
            capacity: 1 << 20,
        })));
    }
    h
}

/// One-shot virtual-makespan comparison (deterministic, no sampling
/// needed): prints the tracing-on/off ratio for both acceptance
/// workloads.
fn report_virtual_overhead() {
    println!("# virtual-time overhead (single deterministic run each)");
    let tt = |mode: Mode| {
        let h = build(mode);
        threadtest::run(&h, 4, &threadtest::Params::default()).makespan
    };
    let ls = |mode: Mode| {
        let h = build(mode);
        larson::run(&h, 4, &larson::Params::default()).makespan
    };
    for (name, run) in [
        ("threadtest", &tt as &dyn Fn(Mode) -> u64),
        ("larson", &ls),
    ] {
        let off = run(Mode::Off);
        let on = run(Mode::Full);
        println!(
            "{name}: makespan off={off} on={on} overhead={:+.2}%",
            100.0 * (on as f64 - off as f64) / off as f64
        );
    }
}

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
}

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_alloc_free_pair");
    tune(&mut group);
    group.throughput(Throughput::Elements(1));
    for (mode, label) in MODES {
        let alloc = build(mode);
        group.bench_function(label, |b| {
            b.iter(|| unsafe {
                let p = alloc.allocate(black_box(64)).unwrap();
                alloc.deallocate(black_box(p));
            })
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    const BATCH: usize = 100;
    let mut group = c.benchmark_group("trace_batch_churn");
    tune(&mut group);
    group.throughput(Throughput::Elements(2 * BATCH as u64));
    for (mode, label) in MODES {
        let alloc = build(mode);
        group.bench_function(label, |b| {
            let mut ptrs = Vec::with_capacity(BATCH);
            b.iter(|| unsafe {
                for _ in 0..BATCH {
                    ptrs.push(alloc.allocate(black_box(64)).unwrap());
                }
                for p in ptrs.drain(..) {
                    alloc.deallocate(p);
                }
            })
        });
    }
    group.finish();
}

fn benches_with_preamble(c: &mut Criterion) {
    report_virtual_overhead();
    bench_pair(c);
    bench_churn(c);
}

criterion_group!(benches, benches_with_preamble);
criterion_main!(benches);
