//! Design-choice ablations for Hoard (experiment E12 in bench form):
//! sweep `f`, `K`, `S`, the heap count, and the OS-release flag on the
//! allocator-bound workloads, measuring virtual makespans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoard_bench::measure_virtual;
use hoard_core::HoardConfig;
use hoard_harness::AllocatorKind;
use hoard_mem::MtAllocator;
use hoard_workloads as wl;

const P: usize = 8;

fn run_threadtest(a: &dyn MtAllocator) -> wl::WorkloadResult {
    let params = wl::threadtest::Params {
        total_objects: 20_000,
        ..Default::default()
    };
    wl::threadtest::run(a, P, &params)
}

fn run_larson(a: &dyn MtAllocator) -> wl::WorkloadResult {
    let params = wl::larson::Params {
        ops_per_round: 1_000,
        slots_per_thread: 200,
        ..Default::default()
    };
    wl::larson::run(a, P, &params)
}

fn sweep_config(
    c: &mut Criterion,
    group_name: &str,
    configs: &[(String, HoardConfig)],
    workload: &dyn Fn(&dyn MtAllocator) -> wl::WorkloadResult,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (label, cfg) in configs {
        let kind = AllocatorKind::Hoard(*cfg);
        group.bench_with_input(BenchmarkId::from_parameter(label), cfg, |b, _| {
            b.iter_custom(|iters| measure_virtual(iters, &|| kind.build(), workload))
        });
    }
    group.finish();
}

fn ablate_empty_fraction(c: &mut Criterion) {
    let configs: Vec<_> = [(1usize, 8usize), (1, 4), (1, 2)]
        .iter()
        .map(|&(n, d)| {
            (
                format!("f_{n}_{d}"),
                HoardConfig::new().with_empty_fraction(n, d),
            )
        })
        .collect();
    sweep_config(c, "ablate_f_threadtest", &configs, &run_threadtest);
    sweep_config(c, "ablate_f_larson", &configs, &run_larson);
}

fn ablate_slack(c: &mut Criterion) {
    let configs: Vec<_> = [0usize, 1, 2, 8]
        .iter()
        .map(|&k| (format!("K_{k}"), HoardConfig::new().with_slack(k)))
        .collect();
    sweep_config(c, "ablate_k_threadtest", &configs, &run_threadtest);
    sweep_config(c, "ablate_k_larson", &configs, &run_larson);
}

fn ablate_superblock_size(c: &mut Criterion) {
    let configs: Vec<_> = [4096usize, 8192, 16384, 32768]
        .iter()
        .map(|&s| {
            (
                format!("S_{}k", s / 1024),
                HoardConfig::new().with_superblock_size(s),
            )
        })
        .collect();
    sweep_config(c, "ablate_s_threadtest", &configs, &run_threadtest);
}

fn ablate_heap_count(c: &mut Criterion) {
    let configs: Vec<_> = [4usize, 8, 16, 32]
        .iter()
        .map(|&p| (format!("heaps_{p}"), HoardConfig::new().with_heap_count(p)))
        .collect();
    sweep_config(c, "ablate_heaps_threadtest", &configs, &run_threadtest);
}

fn ablate_os_release(c: &mut Criterion) {
    let configs = vec![
        ("park_in_global".to_string(), HoardConfig::new()),
        (
            "release_to_os".to_string(),
            HoardConfig::new().with_release_empty_to_os(true),
        ),
    ];
    sweep_config(c, "ablate_os_release_threadtest", &configs, &run_threadtest);
}

criterion_group! {
    name = ablations;
    // Virtual-time measurements are deterministic (zero variance);
    // the plotters backend panics on degenerate ranges, so plots
    // are disabled and reports stay textual.
    config = Criterion::default().without_plots();
    targets =
    ablate_empty_fraction,
    ablate_slack,
    ablate_superblock_size,
    ablate_heap_count,
    ablate_os_release

}
criterion_main!(ablations);
