//! Producer–consumer throughput curves in virtual time.
//!
//! The companion bench to the magazine front-end: producers allocate
//! flat-out while consumers free foreign blocks, so the makespan is
//! dominated by how the allocator resolves cross-thread frees. Compare
//! the `hoard` and `hoard-mag` series: the magazine variant routes
//! consumer frees through per-superblock deferred stacks (one CAS)
//! instead of the owner heap's lock. Benchmark ids are
//! `<allocator>/P<threads>`; values are virtual makespans reported as
//! nanoseconds, as in `speedup_curves`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoard_bench::measure_virtual;
use hoard_harness::AllocatorKind;
use hoard_workloads as wl;

const THREADS: &[usize] = &[1, 2, 8, 14];

fn bench_prod_cons(c: &mut Criterion) {
    let params = wl::prod_cons::Params {
        total_objects: 20_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pc_prod_cons");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kind in AllocatorKind::sweep() {
        for &p in THREADS {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("P{p}")),
                &p,
                |b, &p| {
                    b.iter_custom(|iters| {
                        measure_virtual(iters, &|| kind.build(), &|a| {
                            wl::prod_cons::run(a, p, &params)
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = figures;
    // Virtual-time measurements are deterministic (zero variance); the
    // plotters backend panics on degenerate ranges, so plots stay off.
    config = Criterion::default().without_plots();
    targets = bench_prod_cons,
}
criterion_main!(figures);
