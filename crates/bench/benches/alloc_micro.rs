//! Real wall-clock micro-benchmarks of allocator hot paths — the bench
//! form of the uniprocessor-overhead comparison (experiment E10).
//!
//! These run on the host clock (valid on one CPU): single-thread
//! `malloc`/`free` pairs, LIFO batch churn, mixed size-class traffic,
//! and large-object round-trips, for every allocator in the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hoard_harness::AllocatorKind;
use std::hint::black_box;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
}

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_alloc_free_pair");
    tune(&mut group);
    group.throughput(Throughput::Elements(1));
    for kind in AllocatorKind::sweep() {
        for size in [8usize, 64, 512] {
            let alloc = kind.build();
            group.bench_with_input(
                BenchmarkId::new(kind.label(), size),
                &size,
                |b, &size| {
                    b.iter(|| unsafe {
                        let p = alloc.allocate(black_box(size)).unwrap();
                        alloc.deallocate(black_box(p));
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_batch_churn(c: &mut Criterion) {
    const BATCH: usize = 100;
    let mut group = c.benchmark_group("micro_batch_churn");
    tune(&mut group);
    group.throughput(Throughput::Elements(2 * BATCH as u64));
    for kind in AllocatorKind::sweep() {
        let alloc = kind.build();
        group.bench_function(kind.label(), |b| {
            let mut ptrs = Vec::with_capacity(BATCH);
            b.iter(|| unsafe {
                for _ in 0..BATCH {
                    ptrs.push(alloc.allocate(black_box(64)).unwrap());
                }
                for p in ptrs.drain(..) {
                    alloc.deallocate(p);
                }
            })
        });
    }
    group.finish();
}

fn bench_mixed_sizes(c: &mut Criterion) {
    let sizes: Vec<usize> = (0..64).map(|i| 1 + (i * 97) % 1000).collect();
    let mut group = c.benchmark_group("micro_mixed_sizes");
    tune(&mut group);
    group.throughput(Throughput::Elements(2 * sizes.len() as u64));
    for kind in AllocatorKind::sweep() {
        let alloc = kind.build();
        group.bench_function(kind.label(), |b| {
            let mut ptrs = Vec::with_capacity(sizes.len());
            b.iter(|| unsafe {
                for &s in &sizes {
                    ptrs.push(alloc.allocate(black_box(s)).unwrap());
                }
                for p in ptrs.drain(..) {
                    alloc.deallocate(p);
                }
            })
        });
    }
    group.finish();
}

fn bench_large_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_large_object");
    tune(&mut group);
    for kind in AllocatorKind::sweep() {
        let alloc = kind.build();
        group.bench_function(kind.label(), |b| {
            b.iter(|| unsafe {
                let p = alloc.allocate(black_box(100_000)).unwrap();
                alloc.deallocate(p);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = micro;
    // Virtual-time measurements are deterministic (zero variance);
    // the plotters backend panics on degenerate ranges, so plots
    // are disabled and reports stay textual.
    config = Criterion::default().without_plots();
    targets =
    bench_pair,
    bench_batch_churn,
    bench_mixed_sizes,
    bench_large_objects

}
criterion_main!(micro);
