//! Virtual-time speedup curves — the bench form of the paper's
//! scalability figures (experiments E2–E8).
//!
//! Each group is one figure; each benchmark id is
//! `<allocator>/P<threads>`. Values are virtual makespans reported as
//! nanoseconds (1 virtual unit = 1 ns), so `P1 time / P14 time` read off
//! a Criterion report *is* the figure's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hoard_bench::measure_virtual;
use hoard_harness::AllocatorKind;
use hoard_mem::MtAllocator;
use hoard_workloads as wl;
use hoard_workloads::WorkloadResult;

const THREADS: &[usize] = &[1, 8, 14];

fn sweep(
    c: &mut Criterion,
    figure: &str,
    run: &dyn Fn(&dyn MtAllocator, usize) -> WorkloadResult,
) {
    let mut group = c.benchmark_group(figure);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kind in AllocatorKind::sweep() {
        for &p in THREADS {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("P{p}")),
                &p,
                |b, &p| {
                    b.iter_custom(|iters| {
                        measure_virtual(iters, &|| kind.build(), &|a| run(a, p))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_threadtest(c: &mut Criterion) {
    let params = wl::threadtest::Params {
        total_objects: 20_000,
        ..Default::default()
    };
    sweep(c, "e2_threadtest", &|a, p| wl::threadtest::run(a, p, &params));
}

fn bench_shbench(c: &mut Criterion) {
    let params = wl::shbench::Params {
        total_ops: 8_000,
        ..Default::default()
    };
    sweep(c, "e3_shbench", &|a, p| wl::shbench::run(a, p, &params));
}

fn bench_larson(c: &mut Criterion) {
    let params = wl::larson::Params {
        ops_per_round: 1_000,
        slots_per_thread: 200,
        ..Default::default()
    };
    sweep(c, "e4_larson", &|a, p| wl::larson::run(a, p, &params));
}

fn bench_active_false(c: &mut Criterion) {
    let params = wl::false_sharing::Params {
        total_writes: 30_000,
        ..Default::default()
    };
    sweep(c, "e5_active_false", &|a, p| {
        wl::false_sharing::active_false(a, p, &params)
    });
}

fn bench_passive_false(c: &mut Criterion) {
    let params = wl::false_sharing::Params {
        total_writes: 30_000,
        ..Default::default()
    };
    sweep(c, "e6_passive_false", &|a, p| {
        wl::false_sharing::passive_false(a, p, &params)
    });
}

fn bench_barnes_hut(c: &mut Criterion) {
    let params = wl::barnes_hut::Params {
        bodies: 600,
        steps: 2,
        ..Default::default()
    };
    sweep(c, "e7_barnes_hut", &|a, p| wl::barnes_hut::run(a, p, &params));
}

fn bench_bem(c: &mut Criterion) {
    let params = wl::bem_like::Params {
        phases: 2,
        solve_iters_total: 400,
        ..Default::default()
    };
    sweep(c, "e8_bem_like", &|a, p| wl::bem_like::run(a, p, &params));
}

criterion_group! {
    name = figures;
    // Virtual-time measurements are deterministic (zero variance);
    // the plotters backend panics on degenerate ranges, so plots
    // are disabled and reports stay textual.
    config = Criterion::default().without_plots();
    targets =
    bench_threadtest,
    bench_shbench,
    bench_larson,
    bench_active_false,
    bench_passive_false,
    bench_barnes_hut,
    bench_bem,

}
criterion_main!(figures);
