//! Hardening-level overhead on the small-allocation fast path.
//!
//! `Off` vs `Basic` vs `Full` on exactly the paths the levels touch:
//! the single alloc/free pair (free-list hit plus the deallocate
//! checks), LIFO batch churn (block reuse, where `Full` verifies
//! poison and rewrites canaries), and mixed small sizes. `Off` must
//! price at the paper's layout — no canary stride, no checks — so any
//! gap between `Off` here and the same shapes in `alloc_micro` is
//! noise, not design. Measured medians are recorded in
//! `results/hardening_overhead.txt`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hoard_core::{HardeningLevel, HoardAllocator, HoardConfig};
use hoard_mem::MtAllocator;
use std::hint::black_box;

const LEVELS: [HardeningLevel; 3] = [
    HardeningLevel::Off,
    HardeningLevel::Basic,
    HardeningLevel::Full,
];

fn label(level: HardeningLevel) -> &'static str {
    match level {
        HardeningLevel::Off => "off",
        HardeningLevel::Basic => "basic",
        HardeningLevel::Full => "full",
    }
}

fn build(level: HardeningLevel) -> HoardAllocator {
    HoardAllocator::with_config(HoardConfig::new().with_hardening(level))
        .expect("hardened config is valid")
}

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
}

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardening_alloc_free_pair");
    tune(&mut group);
    group.throughput(Throughput::Elements(1));
    for level in LEVELS {
        for size in [8usize, 64, 512] {
            let alloc = build(level);
            group.bench_with_input(
                BenchmarkId::new(label(level), size),
                &size,
                |b, &size| {
                    b.iter(|| unsafe {
                        let p = alloc.allocate(black_box(size)).unwrap();
                        alloc.deallocate(black_box(p));
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_batch_churn(c: &mut Criterion) {
    const BATCH: usize = 100;
    let mut group = c.benchmark_group("hardening_batch_churn");
    tune(&mut group);
    group.throughput(Throughput::Elements(2 * BATCH as u64));
    for level in LEVELS {
        let alloc = build(level);
        group.bench_function(label(level), |b| {
            let mut ptrs = Vec::with_capacity(BATCH);
            b.iter(|| unsafe {
                for _ in 0..BATCH {
                    ptrs.push(alloc.allocate(black_box(64)).unwrap());
                }
                for p in ptrs.drain(..) {
                    alloc.deallocate(p);
                }
            })
        });
    }
    group.finish();
}

fn bench_mixed_classes(c: &mut Criterion) {
    // Rotating small sizes so several size classes (and their free
    // lists) stay warm — closer to workload traffic than one class.
    const SIZES: [usize; 6] = [8, 24, 48, 96, 256, 1024];
    let mut group = c.benchmark_group("hardening_mixed_small");
    tune(&mut group);
    group.throughput(Throughput::Elements(SIZES.len() as u64 * 2));
    for level in LEVELS {
        let alloc = build(level);
        group.bench_function(label(level), |b| {
            let mut ptrs = Vec::with_capacity(SIZES.len());
            b.iter(|| unsafe {
                for size in SIZES {
                    ptrs.push(alloc.allocate(black_box(size)).unwrap());
                }
                for p in ptrs.drain(..) {
                    alloc.deallocate(p);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pair, bench_batch_churn, bench_mixed_classes);
criterion_main!(benches);
