//! # hoard-bench — Criterion benchmarks for the reproduction
//!
//! Three bench binaries live under `benches/`:
//!
//! * `speedup_curves` — one group per paper figure (`e2`..`e8`): every
//!   allocator × thread count, reported in **virtual time** (the
//!   simulated machine's makespan, encoded as nanoseconds via
//!   `iter_custom`), so Criterion's statistics and comparisons apply to
//!   the same quantity the paper plots.
//! * `alloc_micro` — real wall-clock micro-benchmarks of the allocator
//!   hot paths (single-thread `malloc`/`free`, batch churn, mixed
//!   sizes), the uniprocessor-overhead complement (experiment E10).
//! * `ablations` — Hoard design-parameter sweeps (`f`, `K`, `S`,
//!   fullness-group policy effects) in virtual time (experiment E12's
//!   bench form).
//!
//! This library hosts the small shared helpers.

use hoard_mem::MtAllocator;
use hoard_workloads::WorkloadResult;
use std::time::Duration;

/// Convert a virtual-time makespan to a [`Duration`] (1 unit = 1 ns) so
/// Criterion can aggregate it via `iter_custom`.
pub fn vtime(makespan: u64) -> Duration {
    Duration::from_nanos(makespan)
}

/// Run `workload` `iters` times on fresh allocators from `factory`,
/// summing virtual makespans (the `iter_custom` contract).
pub fn measure_virtual(
    iters: u64,
    factory: &dyn Fn() -> Box<dyn MtAllocator>,
    workload: &dyn Fn(&dyn MtAllocator) -> WorkloadResult,
) -> Duration {
    let mut total = 0u64;
    for _ in 0..iters {
        let alloc = factory();
        total += workload(&*alloc).makespan;
    }
    vtime(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_maps_units_to_nanos() {
        assert_eq!(vtime(1234).as_nanos(), 1234);
    }

    #[test]
    fn measure_virtual_sums_runs() {
        let factory = || -> Box<dyn MtAllocator> {
            Box::new(hoard_core::HoardAllocator::new_default())
        };
        let params = hoard_workloads::threadtest::Params {
            total_objects: 500,
            batch: 50,
            size: 8,
            work_per_object: 10,
        };
        let one = measure_virtual(1, &factory, &|a| {
            hoard_workloads::threadtest::run(a, 2, &params)
        });
        let three = measure_virtual(3, &factory, &|a| {
            hoard_workloads::threadtest::run(a, 2, &params)
        });
        assert!(three > one, "summing over iterations");
    }
}
